//! `ftsg` — command-line driver for the fault-tolerant sparse-grid
//! advection solver.
//!
//! ```text
//! ftsg [--technique cr|rc|ac|bc] [--dim D] [--n N] [--l L] [--scale S]
//!      [--steps LOG2] [--problem advection|elliptic]
//!      [--fail COUNT] [--fail-at STEP] [--cluster local|opl|raijin]
//!      [--policy respawn|shrink|substitute|defer] [--spares N]
//!      [--spare-node] [--central-combine] [--trace] [--trace-json FILE]
//!      [--output PREFIX] [--seed S]
//! ```
//!
//! Runs one complete application: solve, (optionally) suffer real process
//! failures, detect, reconstruct, recover, combine, and report the error
//! against the analytic solution plus the virtual-time cost breakdown.

use std::sync::Arc;

use ftsg::app::app::keys;
use ftsg::app::{run_app, AppConfig, ProcLayout, RecoveryPolicy, RespawnPolicy, Technique};
use ftsg::mpi::{run, BetaUlfm, ClusterProfile, FaultPlan, RunConfig};

struct Cli {
    technique: Technique,
    dim: usize,
    problem: String,
    n: u32,
    l: u32,
    scale: usize,
    log2_steps: u32,
    failures: usize,
    fail_at: Option<u64>,
    cluster: String,
    policy: RecoveryPolicy,
    spares: usize,
    sync_ckpt: bool,
    spare_node: bool,
    central_combine: bool,
    trace: bool,
    output: Option<String>,
    trace_json: Option<String>,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftsg [--technique cr|rc|ac|bc] [--dim D] [--n N] [--l L] [--scale S]\n\
         \x20           [--steps LOG2] [--problem advection|elliptic]\n\
         \x20           [--fail COUNT] [--fail-at STEP] [--cluster local|opl|raijin]\n\
         \x20           [--policy respawn|shrink|substitute|defer] [--spares N]\n\
         \x20           [--sync-ckpt] [--spare-node] [--central-combine] [--seed S]"
    );
    std::process::exit(2);
}

fn parse() -> Cli {
    let mut cli = Cli {
        technique: Technique::AlternateCombination,
        dim: 2,
        problem: "advection".into(),
        n: 9,
        l: 4,
        scale: 1,
        log2_steps: 6,
        failures: 0,
        fail_at: None,
        cluster: "local".into(),
        policy: RecoveryPolicy::Respawn,
        spares: 4,
        sync_ckpt: false,
        spare_node: false,
        central_combine: false,
        trace: false,
        output: None,
        trace_json: None,
        seed: 2014,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--technique" => {
                cli.technique = match take(&mut i).to_lowercase().as_str() {
                    "cr" => Technique::CheckpointRestart,
                    "rc" => Technique::ResamplingCopying,
                    "ac" => Technique::AlternateCombination,
                    "bc" => Technique::BuddyCheckpoint,
                    _ => usage(),
                }
            }
            "--dim" => {
                cli.dim = take(&mut i).parse().unwrap_or_else(|_| usage());
                if cli.dim < 2 {
                    usage()
                }
            }
            "--problem" => cli.problem = take(&mut i).to_lowercase(),
            "--n" => cli.n = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--l" => cli.l = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scale" => cli.scale = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => cli.log2_steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fail" => cli.failures = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fail-at" => cli.fail_at = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--cluster" => cli.cluster = take(&mut i).to_lowercase(),
            "--policy" => {
                cli.policy = RecoveryPolicy::from_label(&take(&mut i)).unwrap_or_else(|| usage())
            }
            "--spares" => cli.spares = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--sync-ckpt" => cli.sync_ckpt = true,
            "--spare-node" => cli.spare_node = true,
            "--central-combine" => cli.central_combine = true,
            "--trace" => cli.trace = true,
            "--output" => cli.output = Some(take(&mut i)),
            "--trace-json" => cli.trace_json = Some(take(&mut i)),
            "--seed" => cli.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    cli
}

fn main() {
    let cli = parse();
    // d >= 3 selects the generalized driver; the problem flag picks which
    // nd model problem it solves (d = 2 keeps the paper's 2D advection).
    let problem_nd = if cli.dim >= 3 {
        Some(match cli.problem.as_str() {
            "advection" => ftsg::pde::ndproblem::ProblemN::standard_advection(cli.dim),
            "elliptic" => ftsg::pde::ndproblem::ProblemN::standard_elliptic(cli.dim),
            _ => usage(),
        })
    } else {
        None
    };
    let mut cfg = AppConfig {
        dim: cli.dim,
        n: cli.n,
        l: cli.l,
        scale: cli.scale,
        technique: cli.technique,
        log2_steps: cli.log2_steps,
        plan: FaultPlan::none(),
        checkpoints: 4,
        ckpt_dir: ftsg::app::config::default_ckpt_dir(),
        ckpt_async: !cli.sync_ckpt,
        ckpt_corruption: Default::default(),
        problem: ftsg::pde::AdvectionProblem::standard(),
        problem_nd,
        simulated_lost_grids: Vec::new(),
        recovery_policy: cli.policy,
        spares: cli.spares,
        respawn_policy: if cli.spare_node {
            RespawnPolicy::SpareNode
        } else {
            RespawnPolicy::SameHost
        },
        output_prefix: cli.output.clone().map(Into::into),
        combine_mode: if cli.central_combine {
            ftsg::app::CombineMode::Central
        } else {
            ftsg::app::CombineMode::Tree
        },
        kernel: ftsg::pde::KernelConfig::global(),
        cancel: None,
        observer: None,
    };
    if let Err(e) = cfg.validate() {
        eprintln!("ftsg: invalid configuration: {e}");
        std::process::exit(2);
    }
    let (n_active, n_grids) = if cfg.dim >= 3 {
        let l =
            ftsg::app::ProcLayoutN::new(cfg.dim, cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
        (l.world_size(), l.system().n_grids())
    } else {
        let l = ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
        (l.world_size(), l.system().n_grids())
    };
    // Spare ranks (substitute policy only) sit after the active slots;
    // victims are always drawn from the active slots.
    let world = cfg.world_size(n_active);
    if cli.failures > 0 {
        let at = cli.fail_at.unwrap_or(cfg.steps());
        cfg.plan = FaultPlan::random(cli.failures, n_active, at, cli.seed, &[]);
        println!(
            "injecting {} failure(s) at step {at}: ranks {:?}",
            cli.failures,
            cfg.plan.victim_ranks()
        );
    }

    let mut rc = match cli.cluster.as_str() {
        "local" => RunConfig::local(world).with_seed(cli.seed),
        "opl" => RunConfig::cluster(ClusterProfile::opl(), world)
            .with_seed(cli.seed)
            .with_model(Arc::new(BetaUlfm)),
        "raijin" => RunConfig::cluster(ClusterProfile::raijin(), world).with_seed(cli.seed),
        _ => usage(),
    };
    // Tracing is on by default (bounded ring); give explicit trace
    // requests a deeper buffer so big runs keep every event.
    if cli.trace || cli.trace_json.is_some() {
        rc = rc.with_trace_capacity(1 << 20);
    }

    println!(
        "ftsg: {} on {} | d={} n={} l={} scale={} -> {} grids, {} ranks, 2^{} steps",
        cfg.technique.label(),
        rc.profile.name,
        cfg.dim,
        cfg.n,
        cfg.l,
        cfg.scale,
        n_grids,
        world,
        cfg.log2_steps
    );

    let app_cfg = cfg.clone();
    let report = run(rc, move |ctx| run_app(&app_cfg, ctx));
    if !report.app_errors.is_empty() {
        eprintln!("run failed:");
        for e in &report.app_errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }

    println!("\n-- results ----------------------------------------------------");
    let g = |k: &str| report.get_f64(k).unwrap_or(f64::NAN);
    println!("combined-solution l1 error vs analytic : {:.4e}", g(keys::ERR_L1));
    println!("virtual makespan                       : {:.4} s", g(keys::T_TOTAL));
    println!("  solve phase                          : {:.4} s", g(keys::T_SOLVE));
    if cfg.technique == Technique::CheckpointRestart {
        println!("  checkpoint writes                    : {:.4} s", g(keys::T_CKPT));
    }
    if g(keys::N_FAILED) > 0.0 {
        println!("failures repaired                      : {}", g(keys::N_FAILED));
        println!("  failed-list creation                 : {:.4} s", g(keys::T_LIST));
        println!("  communicator reconstruction          : {:.4} s", g(keys::T_RECONSTRUCT));
        println!(
            "    shrink {:.4} s | spawn {:.4} s | merge {:.4} s | agree {:.4} s",
            g(keys::T_SHRINK),
            g(keys::T_SPAWN),
            g(keys::T_MERGE),
            g(keys::T_AGREE)
        );
        println!("  data recovery                        : {:.4} s", g(keys::T_RECOVERY));
    }
    println!("processes: {} created, {} failed", report.procs_created, report.procs_failed);

    if let Some(path) = &cli.trace_json {
        match ftsg::mpi::write_chrome_trace(&report, path) {
            Ok(()) => println!("\n[chrome trace written to {path} — open in ui.perfetto.dev]"),
            Err(e) => eprintln!("could not write trace: {e}"),
        }
    }
    if cli.trace {
        println!("\n-- virtual-time by operation (summed over ranks) ---------------");
        let mut rows: Vec<(&str, usize, f64)> =
            report.op_totals().into_iter().map(|(op, (n, t))| (op, n, t)).collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2));
        for (op, n, t) in rows {
            println!("{op:>16}  x{n:<8}  {t:>12.4} s");
        }
    }
}
