//! # ftsg — fault-tolerant sparse grid combination PDE solving
//!
//! Umbrella crate re-exporting the whole stack built to reproduce
//! *"Application Level Fault Recovery: Using Fault-Tolerant Open MPI in a
//! PDE Solver"* (IPDPSW 2014):
//!
//! * [`mpi`] — the simulated fault-tolerant MPI runtime (ULFM semantics).
//! * [`grid`] — the sparse grid combination technique.
//! * [`pde`] — the 2D advection Lax–Wendroff solver.
//! * [`app`] — the fault-tolerant application: process layout, detection,
//!   communicator reconstruction, and the three data recovery techniques.
//!
//! See `examples/` for runnable entry points and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use advect2d as pde;
pub use ftsg_core as app;
pub use sparsegrid as grid;
pub use ulfm_sim as mpi;
