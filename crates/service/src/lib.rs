//! Multi-tenant campaign service.
//!
//! Runs many solver campaigns — parameter sweeps, chaos campaigns,
//! technique/policy A/Bs — concurrently inside one process, multiplexed
//! over a small pool of OS worker threads. Each job executes the existing
//! [`AppConfig`]-driven fault-tolerant solve on the pooled fiber runtime
//! ([`ulfm_sim::run`]), so a "job" is an entire simulated MPI world, not a
//! single rank.
//!
//! The contract the service adds on top of the runtime:
//!
//! * **Bounded submission with backpressure** — [`Service::submit`] blocks
//!   when the queue is full; [`Service::try_submit`] refuses instead and
//!   hands the [`JobSpec`] back untouched.
//! * **Panic isolation** — a worker panic (inside service glue, a custom
//!   job body, or a solve whose runtime re-raised rank errors) is caught
//!   at the job boundary and lands that job in [`JobState::Failed`] with
//!   the panic payload. Shared maps use poison-recovering locks, so a
//!   sabotaged job never wedges the queue or its siblings.
//! * **Cooperative cancellation** — every job carries an
//!   `Arc<AtomicBool>` token (callers may supply their own). Solve jobs
//!   thread it into [`AppConfig::cancel`], where the application polls it
//!   at epoch boundaries behind a broadcast + fault-tolerant agree and all
//!   simulated ranks exit together; queued jobs cancelled before a worker
//!   picks them up never start at all.
//! * **Streamed results** — [`Service::start`] returns an `mpsc` receiver
//!   of [`JobEvent`]s ([`sink`] renders them as JSONL for the CLI).
//!
//! Ordering guarantee: per job, events always appear in the order
//! `Queued → Started → (Progress | Recovered)* → terminal`; events of
//! different jobs interleave arbitrarily.

pub mod sink;

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use ftsg_core::app::{keys, run_app};
use ftsg_core::config::{AppConfig, AppEvent, AppObserver};
use ftsg_core::ProcLayout;
use ulfm_sim::{run, Report, RunConfig};

/// Opaque job handle, unique per [`Service`] for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle state of a job. `Done`, `Failed` and `Cancelled` are
/// terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted into the bounded queue, not yet picked by a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; the output is available until taken.
    Done,
    /// The job died — panic payload or error text inside.
    Failed(String),
    /// The cancellation token was honoured (before or during the run).
    Cancelled,
}

impl JobState {
    /// True for `Done` / `Failed` / `Cancelled`.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One entry of the streamed results API.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// Accepted into the queue.
    Queued { id: JobId, name: String },
    /// A worker started executing the job.
    Started { id: JobId },
    /// Solve progress: rank 0 reached epoch boundary `step` of `steps`.
    Progress { id: JobId, step: u64, steps: u64 },
    /// The solve committed a recovery at detection step `step` covering
    /// `ranks` failed ranks.
    Recovered { id: JobId, step: u64, ranks: usize },
    /// Terminal: success. `makespan` is the solve's virtual makespan in
    /// seconds (0 for custom jobs).
    Done { id: JobId, makespan: f64 },
    /// Terminal: panic or error, with the payload.
    Failed { id: JobId, error: String },
    /// Terminal: cancellation honoured.
    Cancelled { id: JobId },
}

impl JobEvent {
    /// The job this event belongs to.
    pub fn id(&self) -> JobId {
        match *self {
            JobEvent::Queued { id, .. }
            | JobEvent::Started { id }
            | JobEvent::Progress { id, .. }
            | JobEvent::Recovered { id, .. }
            | JobEvent::Done { id, .. }
            | JobEvent::Failed { id, .. }
            | JobEvent::Cancelled { id } => id,
        }
    }

    /// True if this event ends its job's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobEvent::Done { .. } | JobEvent::Failed { .. } | JobEvent::Cancelled { .. })
    }
}

/// Output of a custom job body (downcast by the submitter).
pub type CustomOutput = Box<dyn Any + Send>;

/// Handle passed to custom job bodies so long-running closures can
/// cooperate with the service.
pub struct JobCtx {
    id: JobId,
    cancel: Arc<AtomicBool>,
    events: EventTx,
}

impl JobCtx {
    /// This job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// True once cancellation was requested; poll between work items.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Stream a progress event for this job.
    pub fn progress(&self, step: u64, steps: u64) {
        self.events.send(JobEvent::Progress { id: self.id, step, steps });
    }
}

/// Body of a custom job. Returning `Err` marks the job `Failed`; a panic
/// does the same with the panic payload (and nothing else — the pool and
/// sibling jobs are unaffected).
pub type CustomFn = Box<dyn FnOnce(&JobCtx) -> Result<CustomOutput, String> + Send>;

/// A solver run as a service job.
#[derive(Debug, Clone)]
pub struct SolveSpec {
    /// Full application configuration (technique, fault plan, ...).
    pub cfg: AppConfig,
    /// Runtime RNG seed (fault timing reproducibility).
    pub seed: u64,
    /// Stall-detector override; `None` keeps the runtime default.
    pub stall: Option<Duration>,
    /// Fiber-pool worker threads *inside* the simulated world. Service
    /// jobs already run many worlds concurrently, so 1 (the default) is
    /// right unless jobs are huge and few.
    pub sim_workers: usize,
}

/// What a job executes.
pub enum JobWork {
    /// A full fault-tolerant solve on the simulated runtime. Boxed so a
    /// queued job costs a pointer, not a full `AppConfig`.
    Solve(Box<SolveSpec>),
    /// An arbitrary closure (the chaos engine uses this to keep its
    /// oracle checks next to the run).
    Custom(CustomFn),
}

/// A submission: a name for humans plus the work and an optional
/// caller-owned cancellation token.
pub struct JobSpec {
    /// Display name, echoed in [`JobEvent::Queued`] and the JSONL sink.
    pub name: String,
    /// The payload.
    pub work: JobWork,
    /// External cancellation token; one is allocated if absent.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl JobSpec {
    /// A solve job with the runtime-default stall timeout and a
    /// single-threaded fiber pool.
    pub fn solve(name: impl Into<String>, cfg: AppConfig, seed: u64) -> Self {
        JobSpec {
            name: name.into(),
            work: JobWork::Solve(Box::new(SolveSpec { cfg, seed, stall: None, sim_workers: 1 })),
            cancel: None,
        }
    }

    /// A custom job.
    pub fn custom(
        name: impl Into<String>,
        f: impl FnOnce(&JobCtx) -> Result<CustomOutput, String> + Send + 'static,
    ) -> Self {
        JobSpec { name: name.into(), work: JobWork::Custom(Box::new(f)), cancel: None }
    }

    /// Test hook: a job whose body panics with `msg` as soon as it runs.
    /// Used to prove panic isolation (the job must land `Failed` with
    /// `msg` in the payload while siblings and the queue stay healthy).
    pub fn sabotage(name: impl Into<String>, msg: impl Into<String>) -> Self {
        let msg = msg.into();
        JobSpec::custom(name, move |_jc| -> Result<CustomOutput, String> {
            panic!("{msg}");
        })
    }

    /// Attach a caller-owned cancellation token (set it to `true` at any
    /// time; the service also sets it on [`Service::cancel`]).
    pub fn with_cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Why a submission was refused.
pub enum SubmitError {
    /// `try_submit` only: the bounded queue is full right now. The spec
    /// comes back so the caller can retry or block on [`Service::submit`].
    Full(JobSpec),
    /// The service is shutting down; the spec comes back.
    Closed(JobSpec),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(s) => write!(f, "queue full (job {:?} refused)", s.name),
            SubmitError::Closed(s) => write!(f, "service closed (job {:?} refused)", s.name),
        }
    }
}

// `JobWork::Custom` holds an opaque closure, so `Debug` is by hand.
impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(s) => write!(f, "Full({:?})", s.name),
            SubmitError::Closed(s) => write!(f, "Closed({:?})", s.name),
        }
    }
}

/// Terminal result of a job, kept in the registry until taken.
pub enum JobOutput {
    /// The full runtime report of a solve (also present for cancelled
    /// solves that honoured the token mid-run).
    Solve(Report),
    /// Whatever the custom body returned.
    Custom(CustomOutput),
}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (each runs one job at a time).
    pub workers: usize,
    /// Bounded submission-queue depth; `submit` blocks past this.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 2, queue_depth: 64 }
    }
}

/// Lock a mutex, recovering from poison: a panicking job must never make
/// service state unusable for its siblings, and every critical section
/// here leaves the registry consistent at any intermediate point.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `Sender` is `Send` but not `Sync`; the observer closures handed to the
/// runtime need `Sync`, so event emission goes through a tiny mutex (low
/// rate: queue/start/terminal plus one event per solve epoch).
#[derive(Clone)]
struct EventTx(Arc<Mutex<Sender<JobEvent>>>);

impl EventTx {
    fn send(&self, ev: JobEvent) {
        // A dropped receiver is fine — the caller stopped listening.
        let _ = lock_recover(&self.0).send(ev);
    }
}

struct JobRecord {
    name: String,
    state: JobState,
    cancel: Arc<AtomicBool>,
    output: Option<JobOutput>,
}

struct Inner {
    jobs: Mutex<HashMap<u64, JobRecord>>,
    /// Signalled whenever any job reaches a terminal state.
    terminal_cv: Condvar,
    /// Jobs submitted and not yet terminal (queued + running).
    open: Mutex<usize>,
    events: EventTx,
}

impl Inner {
    fn set_terminal(&self, id: u64, state: JobState, output: Option<JobOutput>) {
        debug_assert!(state.is_terminal());
        {
            let mut jobs = lock_recover(&self.jobs);
            if let Some(rec) = jobs.get_mut(&id) {
                rec.state = state;
                rec.output = output;
            }
        }
        *lock_recover(&self.open) -= 1;
        self.terminal_cv.notify_all();
    }
}

struct QueuedJob {
    id: u64,
    work: JobWork,
    cancel: Arc<AtomicBool>,
}

/// The job service. Dropping it (or calling [`Service::shutdown`]) closes
/// the queue and joins the workers after the queue drains.
pub struct Service {
    inner: Arc<Inner>,
    submit_tx: Option<SyncSender<QueuedJob>>,
    workers: Vec<thread::JoinHandle<()>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl Service {
    /// Start the worker pool. Returns the service handle plus the event
    /// stream (unbounded: the service never blocks on a slow listener).
    pub fn start(cfg: ServiceConfig) -> (Service, Receiver<JobEvent>) {
        let (ev_tx, ev_rx) = channel();
        let events = EventTx(Arc::new(Mutex::new(ev_tx)));
        let inner = Arc::new(Inner {
            jobs: Mutex::new(HashMap::new()),
            terminal_cv: Condvar::new(),
            open: Mutex::new(0),
            events,
        });
        let (tx, rx) = sync_channel::<QueuedJob>(cfg.queue_depth.max(1));
        let shared_rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                let shared_rx = Arc::clone(&shared_rx);
                thread::Builder::new()
                    .name(format!("ftsg-serve-{w}"))
                    .spawn(move || worker_loop(&inner, &shared_rx))
                    .expect("spawn service worker")
            })
            .collect();
        let svc = Service {
            inner,
            submit_tx: Some(tx),
            workers,
            next_id: std::sync::atomic::AtomicU64::new(1),
        };
        (svc, ev_rx)
    }

    fn register(&self, spec: JobSpec) -> (QueuedJob, JobId) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = spec.cancel.unwrap_or_default();
        let rec = JobRecord {
            name: spec.name.clone(),
            state: JobState::Queued,
            cancel: Arc::clone(&cancel),
            output: None,
        };
        lock_recover(&self.inner.jobs).insert(id, rec);
        *lock_recover(&self.inner.open) += 1;
        self.inner.events.send(JobEvent::Queued { id: JobId(id), name: spec.name });
        (QueuedJob { id, work: spec.work, cancel }, JobId(id))
    }

    /// Roll back a registration whose enqueue was refused, handing the
    /// caller back a spec equivalent to the one submitted (minus the
    /// consumed `Queued` event, which gets a matching `Cancelled`).
    fn unregister(&self, job: QueuedJob) -> JobSpec {
        let rec = lock_recover(&self.inner.jobs).remove(&job.id);
        *lock_recover(&self.inner.open) -= 1;
        self.inner.terminal_cv.notify_all();
        self.inner.events.send(JobEvent::Cancelled { id: JobId(job.id) });
        JobSpec {
            name: rec.map(|r| r.name).unwrap_or_default(),
            work: job.work,
            cancel: Some(job.cancel),
        }
    }

    /// Submit a job, blocking while the bounded queue is full
    /// (backpressure). Returns the job id once accepted.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let (job, id) = self.register(spec);
        let Some(tx) = self.submit_tx.as_ref() else {
            return Err(SubmitError::Closed(self.unregister(job)));
        };
        match tx.send(job) {
            Ok(()) => Ok(id),
            // Workers gone: roll the registration back.
            Err(std::sync::mpsc::SendError(job)) => Err(SubmitError::Closed(self.unregister(job))),
        }
    }

    /// Submit without blocking: `Err(Full)` (spec returned) when the
    /// queue is at capacity.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let (job, id) = self.register(spec);
        let Some(tx) = self.submit_tx.as_ref() else {
            return Err(SubmitError::Closed(self.unregister(job)));
        };
        match tx.try_send(job) {
            Ok(()) => Ok(id),
            Err(TrySendError::Full(job)) => Err(SubmitError::Full(self.unregister(job))),
            Err(TrySendError::Disconnected(job)) => Err(SubmitError::Closed(self.unregister(job))),
        }
    }

    /// Request cancellation. Queued jobs are dropped before they start;
    /// running solves exit at their next epoch boundary. Returns `false`
    /// for unknown ids and jobs already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let jobs = lock_recover(&self.inner.jobs);
        match jobs.get(&id.0) {
            Some(rec) if !rec.state.is_terminal() => {
                rec.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Current state of a job (`None` for unknown ids).
    pub fn state(&self, id: JobId) -> Option<JobState> {
        lock_recover(&self.inner.jobs).get(&id.0).map(|r| r.state.clone())
    }

    /// Block until `id` reaches a terminal state; returns it (`None` for
    /// unknown ids).
    pub fn wait(&self, id: JobId) -> Option<JobState> {
        let mut jobs = lock_recover(&self.inner.jobs);
        loop {
            match jobs.get(&id.0) {
                None => return None,
                Some(rec) if rec.state.is_terminal() => return Some(rec.state.clone()),
                Some(_) => {
                    jobs = self.inner.terminal_cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Take a terminal job's output (waits for termination first).
    /// `None` if the id is unknown, the job failed before producing
    /// output, or the output was already taken.
    pub fn take_output(&self, id: JobId) -> Option<JobOutput> {
        self.wait(id)?;
        lock_recover(&self.inner.jobs).get_mut(&id.0).and_then(|r| r.output.take())
    }

    /// Block until every submitted job is terminal (the queue is fully
    /// drained and no worker is mid-job).
    pub fn drain(&self) {
        let mut open = lock_recover(&self.inner.open);
        while *open > 0 {
            open = self.inner.terminal_cv.wait(open).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of jobs not yet terminal (queued + running).
    pub fn open_jobs(&self) -> usize {
        *lock_recover(&self.inner.open)
    }

    /// Drain the queue, then stop and join the workers. Called by `Drop`
    /// too; explicit use gives a panic-free join point.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.drain();
        // Closing the channel makes every idle worker's recv() fail.
        self.submit_tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(inner: &Inner, shared_rx: &Mutex<Receiver<QueuedJob>>) {
    loop {
        // Standard shared-receiver pool: one idle worker at a time blocks
        // in recv() holding the lock; execution happens outside it.
        let job = match lock_recover(shared_rx).recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: shutdown
        };
        run_one(inner, job);
    }
}

/// Execute one job with the panic boundary. Every exit path below calls
/// `set_terminal` exactly once, so `drain()` always observes the open
/// count returning to zero — including for sabotaged jobs.
fn run_one(inner: &Inner, job: QueuedJob) {
    let id = JobId(job.id);
    // Cancelled while still queued: never start.
    if job.cancel.load(Ordering::Relaxed) {
        inner.events.send(JobEvent::Cancelled { id });
        inner.set_terminal(job.id, JobState::Cancelled, None);
        return;
    }
    if let Some(rec) = lock_recover(&inner.jobs).get_mut(&job.id) {
        rec.state = JobState::Running;
    }
    inner.events.send(JobEvent::Started { id });

    let events = inner.events.clone();
    let cancel = Arc::clone(&job.cancel);
    let work = job.work;
    let outcome = catch_unwind(AssertUnwindSafe(move || match work {
        JobWork::Solve(spec) => execute_solve(id, *spec, cancel, events),
        JobWork::Custom(f) => {
            let jc = JobCtx { id, cancel, events };
            let out = f(&jc)?;
            if jc.cancelled() {
                Ok(Terminal::Cancelled(None))
            } else {
                Ok(Terminal::Done { output: JobOutput::Custom(out), makespan: 0.0 })
            }
        }
    }));
    match outcome {
        Ok(Ok(Terminal::Done { output, makespan })) => {
            inner.events.send(JobEvent::Done { id, makespan });
            inner.set_terminal(job.id, JobState::Done, Some(output));
        }
        Ok(Ok(Terminal::Cancelled(output))) => {
            inner.events.send(JobEvent::Cancelled { id });
            inner.set_terminal(job.id, JobState::Cancelled, output);
        }
        Ok(Err(error)) => {
            inner.events.send(JobEvent::Failed { id, error: error.clone() });
            inner.set_terminal(job.id, JobState::Failed(error), None);
        }
        Err(payload) => {
            let error = panic_message(payload.as_ref());
            inner.events.send(JobEvent::Failed { id, error: error.clone() });
            inner.set_terminal(job.id, JobState::Failed(error), None);
        }
    }
}

enum Terminal {
    Done { output: JobOutput, makespan: f64 },
    Cancelled(Option<JobOutput>),
}

/// Run the fault-tolerant solve of `spec` as this job's body.
fn execute_solve(
    id: JobId,
    spec: SolveSpec,
    cancel: Arc<AtomicBool>,
    events: EventTx,
) -> Result<Terminal, String> {
    let SolveSpec { cfg, seed, stall, sim_workers } = spec;
    let layout_world =
        ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale).world_size();
    let world = cfg.world_size(layout_world);
    // Chain rather than replace a caller-supplied observer: it runs
    // first, synchronously on rank 0's fiber (tests use this to flip the
    // cancel token at an exact protocol point).
    let prior = cfg.observer.clone();
    let observer = AppObserver::new(move |ev| {
        if let Some(p) = &prior {
            p.emit(ev);
        }
        match ev {
            AppEvent::Epoch { step, steps } => {
                events.send(JobEvent::Progress { id, step, steps });
            }
            AppEvent::Recovered { step, ranks } => {
                events.send(JobEvent::Recovered { id, step, ranks });
            }
        }
    });
    let cfg = cfg.with_cancel(cancel).with_observer(observer);
    let mut rc = RunConfig::local(world).with_seed(seed).with_workers(sim_workers.max(1));
    if let Some(s) = stall {
        rc.stall_timeout = s;
    }
    let report = run(rc, move |ctx| run_app(&cfg, ctx));
    if !report.app_errors.is_empty() {
        return Err(report.app_errors.join("; "));
    }
    if report.get_f64(keys::CANCELLED).is_some() {
        return Ok(Terminal::Cancelled(Some(JobOutput::Solve(report))));
    }
    let makespan = report.makespan;
    Ok(Terminal::Done { output: JobOutput::Solve(report), makespan })
}

/// Render a `catch_unwind` payload as text (panics carry `&str` or
/// `String` in practice).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}
