//! JSONL rendering of the [`JobEvent`](crate::JobEvent) stream.
//!
//! One event per line, hand-rolled like every other JSON artifact in this
//! repo (no serde in the dependency closure). The `ftsg-serve` CLI pumps
//! the service's receiver straight into a sink; tests parse lines back
//! with plain string matching.

use std::io::{self, Write};
use std::sync::mpsc::Receiver;

use crate::JobEvent;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one event as a single JSON object (no trailing newline).
pub fn event_json(ev: &JobEvent) -> String {
    match ev {
        JobEvent::Queued { id, name } => {
            format!(r#"{{"event":"queued","job":{},"name":"{}"}}"#, id.0, esc(name))
        }
        JobEvent::Started { id } => {
            format!(r#"{{"event":"started","job":{}}}"#, id.0)
        }
        JobEvent::Progress { id, step, steps } => {
            format!(r#"{{"event":"progress","job":{},"step":{step},"steps":{steps}}}"#, id.0)
        }
        JobEvent::Recovered { id, step, ranks } => {
            format!(r#"{{"event":"recovered","job":{},"step":{step},"ranks":{ranks}}}"#, id.0)
        }
        JobEvent::Done { id, makespan } => {
            format!(r#"{{"event":"done","job":{},"makespan":{makespan}}}"#, id.0)
        }
        JobEvent::Failed { id, error } => {
            format!(r#"{{"event":"failed","job":{},"error":"{}"}}"#, id.0, esc(error))
        }
        JobEvent::Cancelled { id } => {
            format!(r#"{{"event":"cancelled","job":{}}}"#, id.0)
        }
    }
}

/// Line-buffered JSONL writer.
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer (file, stdout lock, `Vec<u8>` in tests).
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Write one event line.
    pub fn write(&mut self, ev: &JobEvent) -> io::Result<()> {
        writeln!(self.w, "{}", event_json(ev))
    }

    /// Unwrap the inner writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Drain a receiver to the sink until the sending side closes; returns
/// the number of events written. Run this on its own thread while the
/// submitting thread drives the service.
pub fn pump<W: Write>(rx: Receiver<JobEvent>, w: W) -> io::Result<usize> {
    let mut sink = JsonlSink::new(w);
    let mut n = 0usize;
    for ev in rx {
        sink.write(&ev)?;
        n += 1;
    }
    Ok(n)
}
