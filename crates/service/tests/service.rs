//! Service-level guarantees: panic isolation, queue health after
//! sabotage, backpressure, and cooperative cancellation (including
//! cancellation raised in the middle of a committed recovery).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

use ftsg_core::config::{AppConfig, AppEvent, AppObserver, Technique};
use ftsg_service::{
    CustomOutput, JobEvent, JobId, JobOutput, JobSpec, JobState, Service, ServiceConfig,
    SubmitError,
};
use ulfm_sim::FaultPlan;

fn collect_events(rx: Receiver<JobEvent>) -> Vec<JobEvent> {
    rx.try_iter().collect()
}

/// The heart of the tentpole: sabotaged jobs land `Failed` with their
/// payload, every sibling completes, the queue drains, and the pool
/// stays usable afterwards.
#[test]
fn panic_isolation_exactly_the_sabotaged_jobs_fail() {
    let (svc, rx) = Service::start(ServiceConfig { workers: 3, queue_depth: 16 });

    let mut good = Vec::new();
    let mut bad = Vec::new();
    for i in 0..9 {
        if i % 3 == 1 {
            let id = svc
                .submit(JobSpec::sabotage(format!("bad-{i}"), format!("boom-{i}")))
                .expect("submit");
            bad.push((i, id));
        } else {
            let id = svc
                .submit(JobSpec::custom(format!("good-{i}"), move |_jc| {
                    Ok(Box::new(i * 10) as CustomOutput)
                }))
                .expect("submit");
            good.push((i, id));
        }
    }
    svc.drain();
    assert_eq!(svc.open_jobs(), 0, "queue must fully drain despite panics");

    for (i, id) in &bad {
        match svc.state(*id) {
            Some(JobState::Failed(msg)) => {
                assert!(
                    msg.contains(&format!("boom-{i}")),
                    "panic payload must survive to the job state, got {msg:?}"
                );
            }
            other => panic!("sabotaged job {id} should be Failed, got {other:?}"),
        }
    }
    for (i, id) in &good {
        assert_eq!(svc.state(*id), Some(JobState::Done), "sibling {id} must complete");
        match svc.take_output(*id) {
            Some(JobOutput::Custom(out)) => {
                assert_eq!(*out.downcast::<i32>().expect("i32 output"), i * 10);
            }
            other => panic!("expected custom output for {id}, got none: {:?}", other.is_some()),
        }
    }

    // The pool is still healthy: a job submitted after the sabotage runs.
    let late = svc.submit(JobSpec::custom("late", |_jc| Ok(Box::new(7u8) as CustomOutput)));
    let late = late.expect("submit after sabotage");
    assert_eq!(svc.wait(late), Some(JobState::Done));

    svc.shutdown();
    let events = collect_events(rx);
    let failed: Vec<JobId> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Failed { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    let mut expect: Vec<JobId> = bad.iter().map(|(_, id)| *id).collect();
    expect.sort();
    let mut got = failed.clone();
    got.sort();
    assert_eq!(got, expect, "exactly the sabotaged jobs emit Failed events");
    // Per-job ordering: terminal event is last for every job.
    for (_, id) in bad.iter().chain(good.iter()) {
        let mine: Vec<&JobEvent> = events.iter().filter(|e| e.id() == *id).collect();
        assert!(mine.last().expect("events for job").is_terminal());
    }
}

/// A solve whose simulated world runs the real fault-tolerant
/// application completes as a service job, streaming progress events.
#[test]
fn solve_job_completes_and_streams_progress() {
    let (svc, rx) = Service::start(ServiceConfig { workers: 2, queue_depth: 8 });
    let cfg = AppConfig::small(Technique::CheckpointRestart);
    let id = svc.submit(JobSpec::solve("cr-clean", cfg, 42)).expect("submit");
    assert_eq!(svc.wait(id), Some(JobState::Done));
    let Some(JobOutput::Solve(report)) = svc.take_output(id) else {
        panic!("solve output missing");
    };
    assert!(report.app_errors.is_empty());
    assert!(report.makespan > 0.0);
    svc.shutdown();
    let events = collect_events(rx);
    assert!(
        events.iter().any(|e| matches!(e, JobEvent::Progress { .. })),
        "epoch boundaries must stream as Progress events"
    );
    assert!(events.iter().any(|e| matches!(e, JobEvent::Done { makespan, .. } if *makespan > 0.0)));
}

/// A solve that loses ranks mid-run streams `Recovered` and still lands
/// `Done` — failures inside the simulated world are the application's
/// business, not job failures.
#[test]
fn solve_job_with_faults_recovers_and_completes() {
    let (svc, rx) = Service::start(ServiceConfig { workers: 1, queue_depth: 4 });
    let cfg =
        AppConfig::small(Technique::CheckpointRestart).with_plan(FaultPlan::new(vec![(3, 12)]));
    let id = svc.submit(JobSpec::solve("cr-faulty", cfg, 7)).expect("submit");
    assert_eq!(svc.wait(id), Some(JobState::Done));
    let Some(JobOutput::Solve(report)) = svc.take_output(id) else {
        panic!("solve output missing");
    };
    assert_eq!(report.procs_failed, 1);
    svc.shutdown();
    let events = collect_events(rx);
    assert!(
        events.iter().any(|e| matches!(e, JobEvent::Recovered { ranks, .. } if *ranks == 1)),
        "committed recovery must stream as a Recovered event"
    );
}

/// Cancellation raised *during* a recovery round: the caller's observer
/// flips the token synchronously inside rank 0's `Recovered` callback, so
/// the very next epoch-boundary poll sees it. The job must finish the
/// committed recovery, then land `Cancelled` — with the report showing
/// both the repaired failure and the cancellation marker.
#[test]
fn cancellation_mid_recovery_lands_cancelled_not_failed() {
    let (svc, rx) = Service::start(ServiceConfig { workers: 1, queue_depth: 4 });
    let token = Arc::new(AtomicBool::new(false));
    // 64 steps, 4 checkpoints -> detection boundaries every 16 steps.
    // Kill rank 3 at step 20: detected at 32, recovered, then epochs 48
    // and 64 remain — the poll at 48 must observe the token.
    let mut cfg = AppConfig::small(Technique::CheckpointRestart)
        .with_plan(FaultPlan::new(vec![(3, 20)]))
        .with_checkpoints(4);
    cfg.log2_steps = 6;
    let flip = Arc::clone(&token);
    let cfg = cfg.with_observer(AppObserver::new(move |ev| {
        if matches!(ev, AppEvent::Recovered { .. }) {
            flip.store(true, Ordering::Relaxed);
        }
    }));
    let id = svc
        .submit(JobSpec::solve("cr-cancel-mid-recovery", cfg, 11).with_cancel_token(token))
        .expect("submit");
    assert_eq!(svc.wait(id), Some(JobState::Cancelled));
    let Some(JobOutput::Solve(report)) = svc.take_output(id) else {
        panic!("cancelled solves keep their report");
    };
    assert!(report.app_errors.is_empty(), "cancellation is quiet: {:?}", report.app_errors);
    assert_eq!(report.procs_failed, 1, "the injected failure was really repaired");
    assert_eq!(
        report.get_f64(ftsg_core::app::keys::CANCELLED),
        Some(1.0),
        "rank 0 reports the cancellation marker"
    );
    svc.shutdown();
    let events = collect_events(rx);
    assert!(events.iter().any(|e| matches!(e, JobEvent::Recovered { .. })));
    assert!(events.iter().any(|e| matches!(e, JobEvent::Cancelled { .. })));
    assert!(!events.iter().any(|e| matches!(e, JobEvent::Failed { .. })));
}

/// A job cancelled while still queued never starts: no `Started` event,
/// terminal state `Cancelled`.
#[test]
fn cancelling_a_queued_job_prevents_it_from_starting() {
    let (svc, rx) = Service::start(ServiceConfig { workers: 1, queue_depth: 4 });
    let gate = Arc::new(AtomicBool::new(false));
    let hold = Arc::clone(&gate);
    let blocker = svc
        .submit(JobSpec::custom("blocker", move |_jc| {
            while !hold.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(Box::new(()) as CustomOutput)
        }))
        .expect("submit blocker");
    let victim = svc
        .submit(JobSpec::custom("victim", |_jc| Ok(Box::new(()) as CustomOutput)))
        .expect("submit victim");
    assert!(svc.cancel(victim), "cancelling a queued job succeeds");
    gate.store(true, Ordering::Relaxed);
    assert_eq!(svc.wait(blocker), Some(JobState::Done));
    assert_eq!(svc.wait(victim), Some(JobState::Cancelled));
    svc.shutdown();
    let events = collect_events(rx);
    assert!(
        !events.iter().any(|e| matches!(e, JobEvent::Started { id } if *id == victim)),
        "a queued-cancelled job must never emit Started"
    );
}

/// `try_submit` refuses (and returns the spec) once the bounded queue is
/// full; blocking `submit` then applies backpressure until a slot frees.
#[test]
fn try_submit_signals_backpressure_when_the_queue_is_full() {
    let (svc, _rx) = Service::start(ServiceConfig { workers: 1, queue_depth: 1 });
    let gate = Arc::new(AtomicBool::new(false));
    let hold = Arc::clone(&gate);
    let blocker = svc
        .submit(JobSpec::custom("blocker", move |_jc| {
            while !hold.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(Box::new(()) as CustomOutput)
        }))
        .expect("submit blocker");
    // Give the single worker a moment to pick the blocker up, then fill
    // the depth-1 queue; the next try_submit must refuse.
    let mut filler = JobSpec::custom("filler", |_jc| Ok(Box::new(()) as CustomOutput));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let filler_id = loop {
        match svc.try_submit(filler) {
            Ok(id) => break id,
            Err(SubmitError::Full(spec)) => {
                assert!(std::time::Instant::now() < deadline, "queue never accepted filler");
                filler = spec;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    };
    // Depth-1 queue now holds the filler (worker is busy on the
    // blocker): a further try_submit sees Full and gets its spec back.
    let spare = JobSpec::custom("spare", |_jc| Ok(Box::new(()) as CustomOutput));
    match svc.try_submit(spare) {
        Err(SubmitError::Full(spec)) => assert_eq!(spec.name, "spare"),
        Ok(_) => panic!("queue should be full"),
        Err(e) => panic!("unexpected submit error: {e}"),
    }
    gate.store(true, Ordering::Relaxed);
    assert_eq!(svc.wait(blocker), Some(JobState::Done));
    assert_eq!(svc.wait(filler_id), Some(JobState::Done));
    svc.shutdown();
}
