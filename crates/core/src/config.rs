//! Application configuration: problem size, technique, scale, failures.

use std::path::PathBuf;

use advect2d::ndproblem::ProblemN;
use advect2d::{AdvectionProblem, KernelConfig};
use sparsegrid::{GridSystemN, Layout};
use ulfm_sim::FaultPlan;

use crate::checkpoint::CorruptionPlan;
use crate::policy::RecoveryPolicy;
use crate::reconstruct::RespawnPolicy;

/// The three data recovery techniques of the paper (§II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Exact recovery from periodic disk checkpoints; restart + recompute.
    CheckpointRestart,
    /// Near-exact recovery: duplicate diagonal grids are copied, lower
    /// diagonals resampled from the finer diagonal above them.
    ResamplingCopying,
    /// Approximate recovery: recompute combination coefficients over the
    /// survivors (robust combination with two extra layers) and sample the
    /// combined solution as the lost grid's data.
    AlternateCombination,
    /// **Extension (not in the paper):** diskless *buddy* checkpointing —
    /// each sub-grid periodically ships its state to a partner group's
    /// root, which keeps it in memory; recovery restores from the buddy
    /// copy (falling back to an initial-condition restart if the buddy's
    /// root died too) and recomputes, exactly like Checkpoint/Restart but
    /// without touching the disk.
    BuddyCheckpoint,
}

impl Technique {
    /// The grid-system layout this technique runs with (paper Fig. 1).
    pub fn layout(&self) -> Layout {
        match self {
            Technique::CheckpointRestart | Technique::BuddyCheckpoint => Layout::Plain,
            Technique::ResamplingCopying => Layout::Duplicates,
            Technique::AlternateCombination => Layout::ExtraLayers,
        }
    }

    /// Does this technique run periodic protection points (checkpoints /
    /// buddy exchanges) with mid-run failure detection?
    pub fn has_periodic_protection(&self) -> bool {
        matches!(self, Technique::CheckpointRestart | Technique::BuddyCheckpoint)
    }

    /// Short label used in experiment tables ("CR", "RC", "AC").
    pub fn label(&self) -> &'static str {
        match self {
            Technique::CheckpointRestart => "CR",
            Technique::ResamplingCopying => "RC",
            Technique::AlternateCombination => "AC",
            Technique::BuddyCheckpoint => "BC",
        }
    }

    /// All three, in the paper's reporting order.
    pub fn all() -> [Technique; 3] {
        [
            Technique::ResamplingCopying,
            Technique::AlternateCombination,
            Technique::CheckpointRestart,
        ]
    }
}

/// Full configuration of one application run.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Full grid size `n` (the paper uses 13; defaults here are smaller so
    /// runs stay laptop-scale — see EXPERIMENTS.md).
    pub n: u32,
    /// Combination level `l ≥ 2` (the paper uses 4).
    pub l: u32,
    /// Process-count scale `s`: `2s` processes per diagonal (and
    /// duplicate) grid, `s` per lower diagonal, `⌈s/2⌉` / `⌈s/4⌉` per
    /// extra-layer grid — the paper's Fig. 9 caption is `s = 4`
    /// (8/4/2/1).
    pub scale: usize,
    /// The recovery technique under test.
    pub technique: Technique,
    /// Solve for `2^log2_steps` timesteps (the paper runs `2^13`).
    pub log2_steps: u32,
    /// The failure schedule (solver-step indexed; `step == steps` means
    /// "just before the final detection point").
    pub plan: FaultPlan,
    /// Number of checkpoints `C` for Checkpoint/Restart — the paper's
    /// Eq. 2: `C = T / T_IO` with `T` the MTBF (half the run time in
    /// their setup).
    pub checkpoints: u32,
    /// Directory for checkpoint files (a per-run temp dir by default).
    pub ckpt_dir: PathBuf,
    /// Checkpoint writes go through the background writer stage
    /// (default); `false` restores the synchronous critical-path write
    /// for A/B comparison. Either way the solver output is bitwise
    /// identical — only where the `T_IO` virtual cost lands differs.
    pub ckpt_async: bool,
    /// Fault-injection corruption strikes applied to checkpoint files as
    /// they land (chaos campaigns; empty by default).
    pub ckpt_corruption: CorruptionPlan,
    /// The PDE being solved.
    pub problem: AdvectionProblem,
    /// Spatial dimension of the run (2 = the tuned 2D fast path, the
    /// bitwise reference; ≥ 3 routes through the d-dimensional driver).
    pub dim: usize,
    /// The d-dimensional PDE (`dim ≥ 3` only; `None` defaults to the
    /// standard advection–diffusion instance in `dim` dimensions).
    pub problem_nd: Option<ProblemN>,
    /// *Simulated* grid losses (the paper's Figs. 9 and 10 use non-real,
    /// simulated failures): at the final detection point, the data
    /// recovery path runs for these grids as if each had lost a process,
    /// without killing anyone and without communicator reconstruction.
    pub simulated_lost_grids: Vec<usize>,
    /// Where replacement processes go (the paper's same-host placement,
    /// or the §V future-work spare-node policy).
    pub respawn_policy: RespawnPolicy,
    /// What "repair" means: respawn to full size (paper), shrink and
    /// continue degraded, promote spares, or defer to the combination
    /// epoch. See [`RecoveryPolicy`].
    pub recovery_policy: RecoveryPolicy,
    /// Idle spare ranks provisioned after the active slots
    /// (`SpareSubstitute` only; the launch world is
    /// `layout.world_size() + spares`). Ignored by the other policies.
    pub spares: usize,
    /// If set, the controller writes the combined solution here as
    /// `<prefix>.csv` and `<prefix>.pgm` after the final combination.
    pub output_prefix: Option<PathBuf>,
    /// Combine via the binomial reduction tree over group leaders
    /// (default) or the centralized master gather kept in-tree as the
    /// reference path. The tree result is bitwise equal to
    /// `sparsegrid::combine_binomial` of the same ordered term list; the
    /// central path reproduces the left-fold `combine_onto`.
    pub combine_mode: CombineMode,
    /// Stencil-kernel configuration for every distributed solver this
    /// run creates: scalar reference vs vectorized rows, plus optional
    /// intra-rank row-band parallelism. All settings are
    /// bitwise-identical (see `advect2d::simd`); defaults come from the
    /// `FTSG_KERNEL` / `FTSG_BANDS` / `FTSG_BAND_MIN_CELLS` env knobs.
    pub kernel: KernelConfig,
    /// Cooperative cancellation token (the campaign service sets it).
    /// Polled at epoch (detection-segment) boundaries behind a rank-0
    /// broadcast plus a fault-tolerant agree, so every rank leaves the
    /// run together; `None` (the default) adds zero runtime operations —
    /// fault-site operation counts of existing chaos specs are unchanged.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Live progress/recovery observer, called by rank 0 only (the
    /// campaign service streams these as `JobEvent`s). `None` by default.
    pub observer: Option<AppObserver>,
}

/// Live application events for an external observer: epoch boundaries and
/// completed recoveries, reported by rank 0 only (so an observer sees one
/// consistent stream, not `world` interleaved ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    /// Rank 0 reached the epoch (detection-segment) boundary at `step` of
    /// `steps` total.
    Epoch { step: u64, steps: u64 },
    /// A repair plus data recovery committed at detection step `step`
    /// covering `ranks` failed ranks.
    Recovered { step: u64, ranks: usize },
}

/// Shareable [`AppEvent`] callback (the closure is invoked on whichever
/// thread runs rank 0's fiber — it must be cheap and must not block on
/// the run itself).
#[derive(Clone)]
pub struct AppObserver(pub std::sync::Arc<dyn Fn(AppEvent) + Send + Sync>);

impl AppObserver {
    /// Wrap a callback.
    pub fn new(f: impl Fn(AppEvent) + Send + Sync + 'static) -> Self {
        AppObserver(std::sync::Arc::new(f))
    }

    /// Invoke the callback.
    pub fn emit(&self, ev: AppEvent) {
        (self.0)(ev)
    }
}

impl std::fmt::Debug for AppObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AppObserver(..)")
    }
}

/// How the final combination is evaluated across group leaders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineMode {
    /// Binomial reduction tree over group leaders: each hop ships a
    /// partially combined grid, depth `⌈log₂ G⌉`.
    #[default]
    Tree,
    /// Every leader ships its grid to rank 0, which evaluates the
    /// left-fold combination serially (the pre-tree reference path).
    Central,
}

impl AppConfig {
    /// A small, fast configuration for tests and examples.
    pub fn small(technique: Technique) -> Self {
        AppConfig {
            n: 6,
            l: 3,
            scale: 1,
            technique,
            log2_steps: 5,
            plan: FaultPlan::none(),
            checkpoints: 2,
            ckpt_dir: default_ckpt_dir(),
            ckpt_async: true,
            ckpt_corruption: CorruptionPlan::none(),
            problem: AdvectionProblem::standard(),
            dim: 2,
            problem_nd: None,
            simulated_lost_grids: Vec::new(),
            respawn_policy: RespawnPolicy::SameHost,
            recovery_policy: RecoveryPolicy::Respawn,
            spares: 0,
            output_prefix: None,
            combine_mode: CombineMode::default(),
            kernel: KernelConfig::global(),
            cancel: None,
            observer: None,
        }
    }

    /// A small, fast d-dimensional configuration (3D chaos shape by
    /// default: `d = 3, n = 4, l = 4`).
    pub fn small_nd(technique: Technique, dim: usize) -> Self {
        let mut cfg = AppConfig::small(technique);
        cfg.dim = dim;
        cfg.n = 4;
        cfg.l = 4;
        cfg.log2_steps = 4;
        cfg
    }

    /// The paper's structural configuration (`l = 4`) at a reduced grid
    /// size `n` and step count — the shape-preserving substitution
    /// documented in DESIGN.md §2.
    pub fn paper_shaped(technique: Technique, n: u32, scale: usize, log2_steps: u32) -> Self {
        AppConfig {
            n,
            l: 4,
            scale,
            technique,
            log2_steps,
            plan: FaultPlan::none(),
            checkpoints: 4,
            ckpt_dir: default_ckpt_dir(),
            ckpt_async: true,
            ckpt_corruption: CorruptionPlan::none(),
            problem: AdvectionProblem::standard(),
            dim: 2,
            problem_nd: None,
            simulated_lost_grids: Vec::new(),
            respawn_policy: RespawnPolicy::SameHost,
            recovery_policy: RecoveryPolicy::Respawn,
            spares: 0,
            output_prefix: None,
            combine_mode: CombineMode::default(),
            kernel: KernelConfig::global(),
            cancel: None,
            observer: None,
        }
    }

    /// Attach a cooperative cancellation token: once `flag` is set, the
    /// run exits with [`ulfm_sim::Error::Cancelled`] at the next epoch
    /// boundary every rank agrees on. The flag must be monotonic (set
    /// once, never cleared) — the epoch poll is an agreement, so a flag
    /// observed by only part of the world simply cancels one epoch later.
    pub fn with_cancel(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attach a live progress/recovery observer (rank 0 only).
    pub fn with_observer(mut self, obs: AppObserver) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Replace the stencil-kernel configuration (formulation + banding).
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Write the combined solution to `<prefix>.csv` / `<prefix>.pgm`.
    pub fn with_output_prefix(mut self, prefix: impl Into<PathBuf>) -> Self {
        self.output_prefix = Some(prefix.into());
        self
    }

    /// Replace the respawn policy (spare-node recovery, paper §V).
    pub fn with_respawn_policy(mut self, policy: RespawnPolicy) -> Self {
        self.respawn_policy = policy;
        self
    }

    /// Replace the recovery policy (shrink / substitute / defer).
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery_policy = policy;
        self
    }

    /// Provision `k` idle spare ranks after the active slots
    /// (`SpareSubstitute`). The caller must launch
    /// `layout.world_size() + k` processes; see [`AppConfig::world_size`].
    pub fn with_spares(mut self, k: usize) -> Self {
        self.spares = k;
        self
    }

    /// The world size this configuration must be launched with: the
    /// layout's active slots, plus the spare tail under
    /// [`RecoveryPolicy::SpareSubstitute`].
    pub fn world_size(&self, layout_world: usize) -> usize {
        match self.recovery_policy {
            RecoveryPolicy::SpareSubstitute => layout_world + self.spares,
            _ => layout_world,
        }
    }

    /// Replace the simulated-loss list (paper Figs. 9 and 10).
    pub fn with_simulated_losses(mut self, grids: Vec<usize>) -> Self {
        self.simulated_lost_grids = grids;
        self
    }

    /// Replace the failure plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replace the checkpoint count (Eq. 2 output).
    pub fn with_checkpoints(mut self, c: u32) -> Self {
        self.checkpoints = c;
        self
    }

    /// Combine via the centralized master gather (the reference path).
    pub fn with_central_combine(mut self) -> Self {
        self.combine_mode = CombineMode::Central;
        self
    }

    /// Checkpoint synchronously on the critical path (the pre-async
    /// reference behavior, kept for A/B comparison).
    pub fn with_sync_checkpoints(mut self) -> Self {
        self.ckpt_async = false;
        self
    }

    /// Attach a checkpoint-corruption plan (fault injection).
    pub fn with_ckpt_corruption(mut self, plan: CorruptionPlan) -> Self {
        self.ckpt_corruption = plan;
        self
    }

    /// Set the spatial dimension (≥ 3 routes through the nd driver).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Replace the d-dimensional PDE (`dim ≥ 3` runs only).
    pub fn with_problem_nd(mut self, problem: ProblemN) -> Self {
        self.problem_nd = Some(problem);
        self
    }

    /// The d-dimensional PDE this configuration solves (`dim ≥ 3`):
    /// the explicit [`AppConfig::problem_nd`], or the standard
    /// advection–diffusion instance in `dim` dimensions.
    pub fn resolved_problem_nd(&self) -> ProblemN {
        self.problem_nd.clone().unwrap_or_else(|| ProblemN::standard_advection(self.dim))
    }

    /// Validate the configuration at the application boundary, *before*
    /// any layout or level-set construction can panic. This is where
    /// user-supplied `(dim, n, l)` triples that would drive
    /// `LevelSetN::truncated_simplex` (or the `dim as u32` / coefficient
    /// arithmetic behind it) into a panic or overflow are turned into
    /// plain config errors instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.scale < 1 {
            return Err(format!("process scale must be ≥ 1, got {}", self.scale));
        }
        GridSystemN::try_new(self.dim, self.n, self.l, self.technique.layout())?;
        if self.dim >= 3 {
            if let Some(p) = &self.problem_nd {
                if p.dim() != self.dim {
                    return Err(format!(
                        "problem dimension {} does not match configured dim {}",
                        p.dim(),
                        self.dim
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of solver timesteps.
    pub fn steps(&self) -> u64 {
        1u64 << self.log2_steps
    }

    /// Checkpoint period in steps (CR only): the run is divided into
    /// `C + 1` segments with a checkpoint after each of the first `C`.
    pub fn ckpt_period(&self) -> u64 {
        (self.steps() / (self.checkpoints as u64 + 1)).max(1)
    }

    /// The optimal checkpoint count of the paper's Eq. 2, given a
    /// predicted run time `t_app` and per-checkpoint write time `t_io`
    /// (both seconds): `C = T / T_IO` with MTBF `T = t_app / 2`.
    ///
    /// The result is clamped to `1 ..= u32::MAX`. Degenerate inputs are
    /// handled explicitly rather than through float-cast saturation
    /// (`inf as u32` happens to saturate, `NaN as u32` is 0 — neither is
    /// something to rely on):
    ///
    /// * `t_io <= 0`, `t_io` NaN — a free (or nonsensical) checkpoint
    ///   write caps out at `u32::MAX` checkpoints ("checkpoint as often
    ///   as the schedule allows"; [`AppConfig::ckpt_period`] clamps the
    ///   period to one step anyway);
    /// * `t_app <= 0`, `t_app` NaN or infinite — no meaningful MTBF, so
    ///   fall back to the minimum of one checkpoint.
    pub fn optimal_checkpoints(t_app: f64, t_io: f64) -> u32 {
        if !t_app.is_finite() || t_app <= 0.0 {
            return 1;
        }
        if t_io.is_nan() || t_io <= 0.0 {
            return u32::MAX;
        }
        let c = (t_app / 2.0) / t_io;
        if c >= u32::MAX as f64 {
            u32::MAX
        } else {
            (c.floor() as u32).max(1)
        }
    }
}

/// A per-process-unique checkpoint directory under the system temp dir.
pub fn default_ckpt_dir() -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("ftsg-ckpt-{}-{}", std::process::id(), seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_layouts() {
        assert_eq!(Technique::CheckpointRestart.layout(), Layout::Plain);
        assert_eq!(Technique::ResamplingCopying.layout(), Layout::Duplicates);
        assert_eq!(Technique::AlternateCombination.layout(), Layout::ExtraLayers);
        assert_eq!(Technique::CheckpointRestart.label(), "CR");
    }

    #[test]
    fn steps_and_period() {
        let cfg = AppConfig::small(Technique::CheckpointRestart);
        assert_eq!(cfg.steps(), 32);
        assert_eq!(cfg.ckpt_period(), 10); // 32 / 3
        let cfg = cfg.with_checkpoints(100);
        assert_eq!(cfg.ckpt_period(), 1); // clamped
    }

    #[test]
    fn eq2_optimal_checkpoints() {
        // Paper numbers: app ~ 200 s on OPL (T_IO = 3.52) → C = 28.
        assert_eq!(AppConfig::optimal_checkpoints(200.0, 3.52), 28);
        // Raijin's tiny T_IO gives a huge C.
        assert!(AppConfig::optimal_checkpoints(200.0, 0.03) > 3000);
        // Never zero.
        assert_eq!(AppConfig::optimal_checkpoints(0.1, 100.0), 1);
    }

    #[test]
    fn eq2_degenerate_inputs_are_guarded() {
        // Free writes: checkpoint as often as possible, explicitly.
        assert_eq!(AppConfig::optimal_checkpoints(200.0, 0.0), u32::MAX);
        assert_eq!(AppConfig::optimal_checkpoints(200.0, -1.0), u32::MAX);
        assert_eq!(AppConfig::optimal_checkpoints(200.0, f64::NAN), u32::MAX);
        // No meaningful MTBF: fall back to the single-checkpoint minimum.
        assert_eq!(AppConfig::optimal_checkpoints(0.0, 3.52), 1);
        assert_eq!(AppConfig::optimal_checkpoints(-5.0, 3.52), 1);
        assert_eq!(AppConfig::optimal_checkpoints(f64::NAN, 3.52), 1);
        assert_eq!(AppConfig::optimal_checkpoints(f64::INFINITY, 3.52), 1);
        // Finite but enormous ratios saturate instead of overflowing.
        assert_eq!(AppConfig::optimal_checkpoints(1e300, 1e-300), u32::MAX);
        // An infinite t_io is a legal "writes never finish" → minimum.
        assert_eq!(AppConfig::optimal_checkpoints(200.0, f64::INFINITY), 1);
    }

    #[test]
    fn ckpt_dirs_are_unique() {
        assert_ne!(default_ckpt_dir(), default_ckpt_dir());
    }

    #[test]
    fn validate_rejects_bad_simplex_parameters_without_panicking() {
        // Regression (satellite bugfix): these parameter triples used to
        // reach `LevelSetN::truncated_simplex` and panic (or overflow the
        // `dim as u32` / tau arithmetic) deep inside layout construction.
        let ok = AppConfig::small_nd(Technique::CheckpointRestart, 3);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.l = 1; // l < 2
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.n = 2; // n < l
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.dim = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.dim = usize::MAX; // would overflow `dim as u32`
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.n = u32::MAX; // tau = n + (d-1)m overflows
        bad.l = 4;
        assert!(bad.validate().is_err());
        let mut bad = ok.clone();
        bad.scale = 0;
        assert!(bad.validate().is_err());
        // Problem/dim mismatch is a config error, not a solver assert.
        let mut bad = ok;
        bad.problem_nd = Some(advect2d::ndproblem::ProblemN::standard_advection(4));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn resolved_problem_nd_defaults_to_advection() {
        let cfg = AppConfig::small_nd(Technique::CheckpointRestart, 3);
        assert_eq!(cfg.resolved_problem_nd().dim(), 3);
        assert!(!cfg.resolved_problem_nd().is_elliptic());
        let cfg = cfg.with_problem_nd(ProblemN::standard_elliptic(3));
        assert!(cfg.resolved_problem_nd().is_elliptic());
    }
}
