//! Gather–scatter between distributed blocks and whole sub-grids.
//!
//! "The solutions are combined in parallel using a gather–scatter
//! approach" (§II-A): each group's root gathers the member blocks into a
//! full [`Grid2`], the roots exchange grids (for combination or data
//! recovery), and recovered grids are scattered back into member blocks.

use sparsegrid::{Grid2, LevelPair};
use ulfm_sim::{Comm, Ctx, Error, Result};

use crate::layout::GroupInfo;
use crate::psolve::block_range;

/// Assemble a full periodic grid (with its duplicated seam row/column)
/// from per-member fundamental-domain blocks, ordered by group rank.
pub fn assemble_grid(level: LevelPair, info: &GroupInfo, blocks: &[Vec<f64>]) -> Result<Grid2> {
    let nxg = 1usize << level.i;
    let nyg = 1usize << level.j;
    if blocks.len() != info.size {
        return Err(Error::InvalidArg(format!(
            "assemble_grid: {} blocks for group of {}",
            blocks.len(),
            info.size
        )));
    }
    let mut grid = Grid2::zeros(level);
    for (local, block) in blocks.iter().enumerate() {
        let pi = local % info.px;
        let pj = local / info.px;
        let (x0, lnx) = block_range(nxg, info.px, pi);
        let (y0, lny) = block_range(nyg, info.py, pj);
        if block.len() != lnx * lny {
            return Err(Error::InvalidArg(format!(
                "assemble_grid: block {local} has {} values, expected {}",
                block.len(),
                lnx * lny
            )));
        }
        for m in 0..lny {
            grid.row_mut(y0 + m)[x0..x0 + lnx].copy_from_slice(&block[m * lnx..(m + 1) * lnx]);
        }
    }
    // Periodic seam: node 2^i duplicates node 0.
    for m in 0..nyg {
        let row = grid.row_mut(m);
        row[nxg] = row[0];
    }
    let row_len = nxg + 1;
    grid.values_mut().copy_within(0..row_len, nyg * row_len);
    Ok(grid)
}

/// Cut a full grid into the per-member blocks of a group (inverse of
/// [`assemble_grid`]; the seam is dropped).
pub fn split_grid(grid: &Grid2, info: &GroupInfo) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    split_grid_into(grid, info, &mut out);
    out
}

/// [`split_grid`] into reused storage: the outer vector and each inner
/// block vector keep their allocations across calls (the periodic
/// combine splits the same layout every interval).
pub fn split_grid_into(grid: &Grid2, info: &GroupInfo, out: &mut Vec<Vec<f64>>) {
    let level = grid.level();
    let nxg = 1usize << level.i;
    let nyg = 1usize << level.j;
    out.resize_with(info.size, Vec::new);
    out.truncate(info.size);
    for (local, block) in out.iter_mut().enumerate() {
        let pi = local % info.px;
        let pj = local / info.px;
        let (x0, lnx) = block_range(nxg, info.px, pi);
        let (y0, lny) = block_range(nyg, info.py, pj);
        block.clear();
        block.reserve(lnx * lny);
        for m in 0..lny {
            block.extend_from_slice(&grid.row(y0 + m)[x0..x0 + lnx]);
        }
    }
}

/// Collective over the group: gather member blocks to the group root.
/// Returns `Some(grid)` on the root, `None` elsewhere.
pub fn gather_grid(
    ctx: &Ctx,
    group: &Comm,
    info: &GroupInfo,
    level: LevelPair,
    my_block: &[f64],
) -> Result<Option<Grid2>> {
    match group.gather(ctx, 0, my_block)? {
        Some(blocks) => Ok(Some(assemble_grid(level, info, &blocks)?)),
        None => Ok(None),
    }
}

/// Collective over the group: the root splits `grid` and scatters; every
/// member receives its block.
pub fn scatter_grid(
    ctx: &Ctx,
    group: &Comm,
    info: &GroupInfo,
    grid: Option<&Grid2>,
) -> Result<Vec<f64>> {
    let parts = grid.map(|g| split_grid(g, info));
    group.scatter(ctx, 0, parts.as_deref())
}

/// Translate an *original* world rank into the current (possibly
/// shrunken) world. `members[i]` is the original rank of current rank `i`
/// (ascending — the shrink preserves relative order); `None` means the
/// world was never shrunk, so ranks are original. Returns `None` when the
/// original rank is dead under the current membership.
///
/// The combination under `ShrinkRedistribute` routes every grid exchange
/// through this: group leaders and the central root are recorded in the
/// layout by original rank, but live at their compacted rank.
pub fn current_rank_of(orig: usize, members: Option<&[usize]>) -> Option<usize> {
    match members {
        None => Some(orig),
        Some(m) => m.binary_search(&orig).ok(),
    }
}

/// Send a whole grid over a communicator as two messages (level header +
/// payload). Pairs with [`recv_grid`].
pub fn send_grid(ctx: &Ctx, comm: &Comm, dest: usize, tag: i32, grid: &Grid2) -> Result<()> {
    comm.send(ctx, dest, tag, &[grid.level().i as u64, grid.level().j as u64])?;
    comm.send(ctx, dest, tag, grid.values())
}

/// Receive a whole grid sent by [`send_grid`].
pub fn recv_grid(ctx: &Ctx, comm: &Comm, src: usize, tag: i32) -> Result<Grid2> {
    let mut scratch = GridScratch::default();
    recv_grid_into(ctx, comm, src, tag, &mut scratch)
}

/// Reused receive buffers for [`recv_grid_into`]: holding them across
/// calls keeps repeated grid receives (the combination's hop payloads,
/// the recovery transfers) free of per-message heap allocation on the
/// application side — the wire bytes are already pooled by the
/// simulator's `BufPool`.
#[derive(Debug, Default)]
pub struct GridScratch {
    header: Vec<u64>,
    values: Vec<f64>,
}

/// [`recv_grid`] into reused scratch storage. The returned [`Grid2`]
/// takes the scratch value buffer (it must own its storage); the scratch
/// regrows on the next call from the pool-backed wire payload, so the
/// steady state performs no allocation once the buffers reached the
/// high-water mark of the grid sizes flowing through them.
pub fn recv_grid_into(
    ctx: &Ctx,
    comm: &Comm,
    src: usize,
    tag: i32,
    scratch: &mut GridScratch,
) -> Result<Grid2> {
    comm.recv_into(ctx, src, tag, &mut scratch.header)?;
    if scratch.header.len() != 2 {
        return Err(Error::InvalidArg(format!(
            "recv_grid: malformed header of {} values",
            scratch.header.len()
        )));
    }
    let level = LevelPair::new(scratch.header[0] as u32, scratch.header[1] as u32);
    comm.recv_into(ctx, src, tag, &mut scratch.values)?;
    Grid2::from_raw(level, std::mem::take(&mut scratch.values)).map_err(Error::InvalidArg)
}

/// Binomial-tree reduction of per-leader partial grids, ending at world
/// rank `root` (§II-A's combination, restructured from the centralized
/// master gather into a log-depth reduction over the group leaders).
///
/// `leaders[k]` is the world rank holding partial `k`; `mine` must be
/// `Some` exactly on those ranks (every partial lives on `target`).
/// Round `r` pairs index `i` with `i + 2^r`: the higher index ships its
/// partial (a whole, partially-combined grid) and drops out, the lower
/// one adds it in place. The pairing and the per-receiver addition order
/// are exactly those of [`sparsegrid::combine_binomial`], and each hop
/// merge is a plain elementwise `+=`, so the reduced grid is **bitwise
/// equal** to that serial reference for the same ordered term list.
///
/// All hops use the nonblocking `isend`/`irecv_into`/`wait` path: a peer
/// dying mid-tree surfaces `ProcFailed` (or `Revoked`) at the waiting
/// rank instead of wedging it, and every hop is a fault-injection site.
/// `scratch` is the reused hop-receive buffer. Returns the combined grid
/// on `root` (`None` if `leaders` is empty), `None` elsewhere.
#[allow(clippy::too_many_arguments)]
pub fn binomial_combine(
    ctx: &Ctx,
    comm: &Comm,
    leaders: &[usize],
    root: usize,
    target: LevelPair,
    mine: Option<Grid2>,
    scratch: &mut Vec<f64>,
    tag: i32,
) -> Result<Option<Grid2>> {
    let me = comm.rank();
    let my_idx = leaders.iter().position(|&r| r == me);
    // A non-leader never carries a partial. A leader normally does, but a
    // retried round can arrive with its partial already consumed — that
    // surfaces as `Error::Protocol` at the ship hop below, not an abort.
    debug_assert!(my_idx.is_some() || mine.is_none(), "partial only on a leader");
    let n = leaders.len();
    let mut part = mine;
    if let (Some(i), Some(grid)) = (my_idx, part.as_mut()) {
        let mut stride = 1;
        while stride < n {
            if i % (2 * stride) == stride {
                // Ship my partial down the tree and drop out.
                comm.isend(ctx, leaders[i - stride], tag, grid.values())?.wait(ctx)?;
                part = None;
                break;
            }
            if i % (2 * stride) == 0 && i + stride < n {
                comm.irecv_into(ctx, leaders[i + stride], tag, scratch)?.wait(ctx)?;
                let vals = grid.values_mut();
                if scratch.len() != vals.len() {
                    return Err(Error::InvalidArg(format!(
                        "tree combine: hop payload of {} values, expected {}",
                        scratch.len(),
                        vals.len()
                    )));
                }
                for (a, b) in vals.iter_mut().zip(scratch.iter()) {
                    *a += *b;
                }
                ctx.compute_cells(vals.len() as u64);
            }
            stride *= 2;
        }
    }
    // The reduction ends at `leaders[0]`; ship to `root` if different.
    if n == 0 {
        return Ok(None);
    }
    if leaders[0] == root {
        return Ok(if me == root { part } else { None });
    }
    if me == leaders[0] {
        // The reduction root's partial can be missing if a failure landed
        // mid-hop and a retried round consumed it; surface that as a
        // recoverable protocol error so the caller's combine retry loop
        // re-runs the round instead of aborting the process.
        let grid = part.take().ok_or_else(|| {
            Error::Protocol("reduction root's combined grid was consumed mid-round".into())
        })?;
        comm.isend(ctx, root, tag, grid.values())?.wait(ctx)?;
        Ok(None)
    } else if me == root {
        comm.irecv_into(ctx, leaders[0], tag, scratch)?.wait(ctx)?;
        Grid2::from_raw(target, std::mem::take(scratch)).map(Some).map_err(Error::InvalidArg)
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(size: usize, px: usize, py: usize) -> GroupInfo {
        GroupInfo { grid: 0, first: 0, size, px, py }
    }

    #[test]
    fn assemble_split_roundtrip() {
        let level = LevelPair::new(4, 3);
        let original = Grid2::from_fn(level, |x, y| (x * 5.0).sin() + y);
        // Make the grid periodic-consistent (seam equals start).
        let mut periodic = original.clone();
        for m in 0..periodic.ny() {
            let v = periodic.at(0, m);
            *periodic.at_mut(periodic.nx() - 1, m) = v;
        }
        let (nx, ny) = (periodic.nx(), periodic.ny());
        for k in 0..nx {
            let v = periodic.at(k, 0);
            *periodic.at_mut(k, ny - 1) = v;
        }
        let g = info(4, 2, 2);
        let blocks = split_grid(&periodic, &g);
        assert_eq!(blocks.len(), 4);
        let back = assemble_grid(level, &g, &blocks).unwrap();
        assert_eq!(back, periodic);
    }

    #[test]
    fn assemble_validates_shapes() {
        let level = LevelPair::new(2, 2);
        let g = info(2, 2, 1);
        assert!(assemble_grid(level, &g, &[vec![0.0; 8]]).is_err()); // too few blocks
        let bad = vec![vec![0.0; 7], vec![0.0; 8]];
        assert!(assemble_grid(level, &g, &bad).is_err()); // wrong block size
    }

    #[test]
    fn single_member_split_is_whole_interior() {
        let level = LevelPair::new(2, 2);
        let grid = Grid2::from_fn(level, |x, y| x * 10.0 + y);
        let g = info(1, 1, 1);
        let blocks = split_grid(&grid, &g);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 16); // 4 × 4 fundamental nodes
    }

    #[test]
    fn gather_scatter_over_runtime() {
        use ulfm_sim::{run, RunConfig};
        let level = LevelPair::new(3, 3);
        let report = run(RunConfig::local(4), move |ctx| {
            let w = ctx.initial_world().unwrap();
            let g = info(4, 2, 2);
            // Build a deterministic block per rank.
            let (x0, lnx) = block_range(8, 2, w.rank() % 2);
            let (y0, lny) = block_range(8, 2, w.rank() / 2);
            let mut block = Vec::new();
            for m in 0..lny {
                for k in 0..lnx {
                    block.push(((y0 + m) * 8 + (x0 + k)) as f64);
                }
            }
            let gathered = gather_grid(ctx, &w, &g, level, &block).unwrap();
            if w.rank() == 0 {
                let grid = gathered.unwrap();
                assert_eq!(grid.at(5, 2), (2 * 8 + 5) as f64);
                assert_eq!(grid.at(8, 3), grid.at(0, 3)); // seam
                                                          // Scatter it back.
                let mine = scatter_grid(ctx, &w, &g, Some(&grid)).unwrap();
                assert_eq!(mine, block);
            } else {
                assert!(gathered.is_none());
                let mine = scatter_grid(ctx, &w, &g, None).unwrap();
                assert_eq!(mine, block);
            }
            ctx.report_add("ok", 1.0);
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(4.0));
    }

    #[test]
    fn send_recv_grid_over_runtime() {
        use ulfm_sim::{run, RunConfig};
        let report = run(RunConfig::local(2), |ctx| {
            let w = ctx.initial_world().unwrap();
            if w.rank() == 0 {
                let g = Grid2::from_fn(LevelPair::new(3, 2), |x, y| x - y);
                send_grid(ctx, &w, 1, 55, &g).unwrap();
            } else {
                let g = recv_grid(ctx, &w, 0, 55).unwrap();
                assert_eq!(g.level(), LevelPair::new(3, 2));
                assert!((g.eval(0.5, 0.5) - 0.0).abs() < 1e-12);
                ctx.report_f64("ok", 1.0);
            }
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(1.0));
    }
}
