//! Solution output: write combined grids to simple, tool-friendly formats.
//!
//! The experiments only need norms, but a downstream user debugging a
//! recovery wants to *look* at the field. Two formats:
//!
//! * **CSV** — `x,y,value` rows, trivially plottable
//!   (`gnuplot`, pandas, ...);
//! * **PGM** — a greyscale image of the field, value range mapped to
//!   0–255, viewable everywhere.

use std::io::{self, Write};
use std::path::Path;

use sparsegrid::Grid2;

/// Write `x,y,value` CSV rows (with a header) for every node.
pub fn write_csv(grid: &Grid2, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "x,y,value")?;
    for m in 0..grid.ny() {
        for k in 0..grid.nx() {
            let (x, y) = grid.coords(k, m);
            writeln!(f, "{x},{y},{}", grid.at(k, m))?;
        }
    }
    f.flush()
}

/// Write a binary PGM (P5) image of the field, min→black, max→white.
/// A constant field renders mid-grey.
pub fn write_pgm(grid: &Grid2, path: impl AsRef<Path>) -> io::Result<()> {
    let (lo, hi) = grid
        .values()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = hi - lo;
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P5")?;
    writeln!(f, "{} {}", grid.nx(), grid.ny())?;
    writeln!(f, "255")?;
    let mut row = Vec::with_capacity(grid.nx());
    // Image convention: top row = y max.
    for m in (0..grid.ny()).rev() {
        row.clear();
        for k in 0..grid.nx() {
            let v = grid.at(k, m);
            let byte = if span > 0.0 {
                (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8
            } else {
                128
            };
            row.push(byte);
        }
        f.write_all(&row)?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegrid::LevelPair;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ftsg-output-{}-{name}", std::process::id()))
    }

    #[test]
    fn csv_has_header_and_all_nodes() {
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, y| x + y);
        let path = tmp("grid.csv");
        write_csv(&g, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x,y,value");
        assert_eq!(lines.len(), 1 + 25);
        assert!(lines[1].starts_with("0,0,"));
        // Last node is (1, 1) with value 2.
        assert_eq!(lines.last().unwrap(), &"1,1,2");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pgm_header_and_size() {
        let g = Grid2::from_fn(LevelPair::new(3, 2), |x, _| x);
        let path = tmp("grid.pgm");
        write_pgm(&g, &path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let text = String::from_utf8_lossy(&raw[..20]);
        assert!(text.starts_with("P5\n9 5\n255\n"));
        // Payload: 9 × 5 bytes after the header.
        let header_len = "P5\n9 5\n255\n".len();
        assert_eq!(raw.len(), header_len + 45);
        // Leftmost column is the minimum (black), rightmost the max.
        assert_eq!(raw[header_len], 0);
        assert_eq!(raw[header_len + 8], 255);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pgm_constant_field_is_grey() {
        let g = Grid2::from_fn(LevelPair::new(1, 1), |_, _| 3.5);
        let path = tmp("flat.pgm");
        write_pgm(&g, &path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(raw[raw.len() - 9..].iter().all(|&b| b == 128));
        let _ = std::fs::remove_file(path);
    }
}
