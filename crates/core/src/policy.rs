//! Recovery policies: what "repair" means when processes die.
//!
//! The paper always restores the world to its original size by respawning
//! replacements on their old hosts (here: [`RecoveryPolicy::Respawn`]).
//! The policy engine adds the alternatives studied in *Shrink or
//! Substitute* (Ashraf et al., arXiv 1801.04523) and *To Repair or Not to
//! Repair* (Rocco et al., arXiv 2410.08647):
//!
//! * [`RecoveryPolicy::ShrinkRedistribute`] — survivors shrink the world
//!   and continue at reduced size. Grids that lost a member are dropped
//!   for good; the final combination recomputes its coefficients over the
//!   surviving grid set (the FTCT robust-combination update), so the run
//!   still produces a solution — a degraded-accuracy one — with **zero**
//!   spawn/merge cost per failure.
//! * [`RecoveryPolicy::SpareSubstitute`] — the launch provisions
//!   `AppConfig::spares` extra idle ranks after the active slots. A repair
//!   is revoke → shrink → one rank-reordering split that promotes spares
//!   into the failed slots: no spawn round-trip, no intercommunicator
//!   merge. If a failure burst exhausts the remaining spares the repair
//!   falls back to the respawn protocol (the invariant "world rank `< W`
//!   ⇔ grid slot" is restored either way).
//! * [`RecoveryPolicy::DeferRepair`] — mid-run detections only shrink
//!   (like `ShrinkRedistribute`); broken grids sit out and nothing is
//!   spawned while the survivors keep stepping. At the combination epoch
//!   the accumulated dead are respawned in one batch, data recovery runs
//!   with the full failed set, and the final state matches `Respawn`
//!   (exactly — bitwise for the checkpointed techniques, since restore +
//!   deterministic recompute commutes with when the repair happens).
//!
//! Contracts (enforced by the chaos engine's O7 oracle):
//!
//! | policy     | final world size       | final grid coverage            |
//! |------------|------------------------|--------------------------------|
//! | respawn    | `W`                    | identical to the healthy run   |
//! | shrink     | `W − dead`             | survivors keep their grids; broken grids reported as dropped |
//! | substitute | `W + spares − promoted`| slots `0..W` full; tail ranks idle |
//! | defer      | `W`                    | identical to the healthy run   |

/// How the application repairs the world communicator after failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecoveryPolicy {
    /// The paper's protocol: respawn every failed rank, restore the
    /// original size and rank order (Figs. 3/5/7).
    #[default]
    Respawn,
    /// Shrink-and-redistribute: continue on the survivors at reduced
    /// size; never spawn. Broken grids are dropped and the final
    /// combination uses robust coefficients over the surviving grid set.
    ShrinkRedistribute,
    /// Promote pre-provisioned spare ranks into the failed grid slots
    /// with a single split — no spawn round-trip.
    SpareSubstitute,
    /// Continue degraded (shrink-only) until the combination epoch, then
    /// respawn the accumulated dead in one batch and recover.
    DeferRepair,
}

impl RecoveryPolicy {
    /// Stable lowercase name, used in chaos specs (`CR+shrink/...`),
    /// CLI flags and CI matrix lanes.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::Respawn => "respawn",
            RecoveryPolicy::ShrinkRedistribute => "shrink",
            RecoveryPolicy::SpareSubstitute => "substitute",
            RecoveryPolicy::DeferRepair => "defer",
        }
    }

    /// Parse a [`Self::label`] (case-insensitive).
    pub fn from_label(s: &str) -> Option<RecoveryPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "respawn" => Some(RecoveryPolicy::Respawn),
            "shrink" => Some(RecoveryPolicy::ShrinkRedistribute),
            "substitute" | "sub" => Some(RecoveryPolicy::SpareSubstitute),
            "defer" | "norepair" => Some(RecoveryPolicy::DeferRepair),
            _ => None,
        }
    }

    /// All four, in reporting order.
    pub fn all() -> [RecoveryPolicy; 4] {
        [
            RecoveryPolicy::Respawn,
            RecoveryPolicy::ShrinkRedistribute,
            RecoveryPolicy::SpareSubstitute,
            RecoveryPolicy::DeferRepair,
        ]
    }

    /// Does a mid-run detection under this policy repair by shrinking
    /// only (no spawn, world gets smaller)?
    pub fn shrinks_mid_run(&self) -> bool {
        matches!(self, RecoveryPolicy::ShrinkRedistribute | RecoveryPolicy::DeferRepair)
    }

    /// Does the final state restore the healthy run's placement exactly
    /// (world size `W`, every slot on its original grid and host)?
    pub fn restores_full_placement(&self) -> bool {
        matches!(self, RecoveryPolicy::Respawn | RecoveryPolicy::DeferRepair)
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for p in RecoveryPolicy::all() {
            assert_eq!(RecoveryPolicy::from_label(p.label()), Some(p));
            assert_eq!(RecoveryPolicy::from_label(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(RecoveryPolicy::from_label("bogus"), None);
    }

    #[test]
    fn default_is_respawn() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Respawn);
        assert!(RecoveryPolicy::Respawn.restores_full_placement());
        assert!(RecoveryPolicy::DeferRepair.restores_full_placement());
        assert!(RecoveryPolicy::ShrinkRedistribute.shrinks_mid_run());
        assert!(!RecoveryPolicy::SpareSubstitute.shrinks_mid_run());
    }
}
