//! Asynchronous checkpointing: a background writer stage that takes the
//! checkpoint file I/O off the solver's critical path.
//!
//! The paper prices Checkpoint/Restart entirely by `T_IO` (Eq. 2,
//! `C = T / T_IO`) because every periodic write stalls the group root for
//! a full disk write. Here the root instead *snapshots* its gathered
//! sub-grid into a reusable double buffer and hands it to a bounded queue
//! consumed by a dedicated writer thread; the solver keeps stepping while
//! the write is in flight. The matching virtual-disk cost is charged as
//! deferred I/O via [`Ctx::disk_write_async`] and settled — hidden where
//! compute covered it, exposed where it did not — at the drain barriers.
//!
//! Protocol invariants:
//!
//! * **Bounded queue, backpressure.** At most [`QUEUE_DEPTH`] snapshots
//!   are in flight; `enqueue` blocks on buffer reuse when the writer falls
//!   behind, so memory stays bounded and a fast solver cannot outrun a
//!   slow disk without feeling it.
//! * **Drain barriers.** `drain` blocks until the queue is empty and
//!   surfaces any writer-side I/O error. The application drains before
//!   every checkpoint *restore* (a restart must only ever see fully
//!   landed files) and at end of run (before the store is cleared).
//! * **Crash atomicity.** The writer reuses [`CheckpointStore::write_raw`],
//!   so every file still lands via tmp + rename + directory fsync: a rank
//!   killed with writes in flight leaves either a complete, checksummed
//!   checkpoint or none — never a torn one.
//!
//! Fault sites: [`OpClass::CkptSnapshot`] fires before the buffer copy,
//! [`OpClass::CkptEnqueue`] before the hand-off, [`OpClass::CkptWrite`]
//! (inside `disk_write_async`) before the virtual write is scheduled, and
//! [`OpClass::CkptDrain`] at the top of every drain — so chaos campaigns
//! can kill a root at every stage of the pipeline.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use sparsegrid::{Grid2, LevelPair};
use ulfm_sim::{Ctx, Error, OpClass, Result};

use crate::checkpoint::CheckpointStore;

/// Snapshots in flight at once. Two means "double buffer": one being
/// written, one being filled.
pub const QUEUE_DEPTH: usize = 2;

/// A reusable snapshot buffer travelling between solver and writer.
struct Snapshot {
    grid_id: usize,
    step: u64,
    level: LevelPair,
    values: Vec<f64>,
}

/// Shared solver/writer state: in-flight count and writer-side errors.
struct Shared {
    pending: Mutex<usize>,
    all_done: Condvar,
    errors: Mutex<Vec<String>>,
}

/// Lock with poison recovery. The data under both mutexes (a gauge and an
/// error list) is valid after any partial update, so a panic on either
/// side of the pipeline must not cascade into every later lock: a
/// poisoned checkpointer would otherwise take down a whole service worker
/// along with every unrelated job that later touches the same rank state.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A background checkpoint writer bound to one [`CheckpointStore`].
///
/// Owned by a group root; dropped (joining the writer thread) when the
/// rank finishes or dies. Dropping without draining is safe: the writer
/// finishes every queued snapshot first, and file atomicity guarantees no
/// partial state either way.
pub struct AsyncCheckpointer {
    job_tx: Option<SyncSender<Snapshot>>,
    free_rx: Receiver<Snapshot>,
    free_count: usize,
    shared: Arc<Shared>,
    writer: Option<JoinHandle<()>>,
}

impl AsyncCheckpointer {
    /// Spawn the writer thread for `store`.
    pub fn new(store: CheckpointStore) -> Self {
        let (job_tx, job_rx) = sync_channel::<Snapshot>(QUEUE_DEPTH);
        let (free_tx, free_rx) = sync_channel::<Snapshot>(QUEUE_DEPTH);
        let shared = Arc::new(Shared {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            errors: Mutex::new(Vec::new()),
        });
        let shared2 = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("ckpt-writer".into())
            .spawn(move || {
                while let Ok(snap) = job_rx.recv() {
                    if let Err(e) =
                        store.write_raw(snap.grid_id, snap.step, snap.level, &snap.values)
                    {
                        lock_recover(&shared2.errors)
                            .push(format!("grid {} step {}: {e}", snap.grid_id, snap.step));
                    }
                    {
                        let mut n = lock_recover(&shared2.pending);
                        *n -= 1;
                        if *n == 0 {
                            shared2.all_done.notify_all();
                        }
                    }
                    // Hand the buffer back for reuse; the solver may
                    // already be gone (rank death) — that's fine.
                    let _ = free_tx.send(snap);
                }
            })
            .expect("failed to spawn checkpoint writer thread");
        AsyncCheckpointer {
            job_tx: Some(job_tx),
            free_rx,
            free_count: QUEUE_DEPTH,
            shared,
            writer: Some(writer),
        }
    }

    /// Snapshot `grid` and hand it to the writer; returns the encoded
    /// byte size (header + payload + checksum), as `write` would.
    ///
    /// Blocks — real backpressure, not virtual — when both snapshot
    /// buffers are still in the writer's hands. Virtual disk cost is
    /// charged as deferred I/O on `ctx`.
    pub fn enqueue(&mut self, ctx: &Ctx, grid_id: usize, step: u64, grid: &Grid2) -> Result<usize> {
        ctx.fault_op(OpClass::CkptSnapshot);
        let mut snap = self.take_buffer()?;
        snap.grid_id = grid_id;
        snap.step = step;
        snap.level = grid.level();
        snap.values.clear();
        snap.values.extend_from_slice(grid.values());
        ctx.fault_op(OpClass::CkptEnqueue);
        // A shut-down writer stage is a recoverable condition, not a
        // protocol bug: the caller degrades to the synchronous write path
        // (see the CR checkpoint arm in `app`), so the error return must
        // never panic the rank.
        let Some(tx) = self.job_tx.as_ref() else {
            return Err(Error::InvalidArg("checkpoint writer already shut down".into()));
        };
        let bytes = crate::checkpoint::OVERHEAD + grid.byte_size();
        ctx.disk_write_async(bytes);
        {
            let mut n = lock_recover(&self.shared.pending);
            *n += 1;
        }
        if tx.send(snap).is_err() {
            // Writer thread is gone; roll the gauge back so a later drain
            // cannot wait forever on a job that will never complete.
            *lock_recover(&self.shared.pending) -= 1;
            return Err(Error::InvalidArg("checkpoint writer thread is gone".into()));
        }
        Ok(bytes)
    }

    /// Obtain a snapshot buffer: one of the initial `QUEUE_DEPTH` fresh
    /// ones, else block until the writer returns one.
    fn take_buffer(&mut self) -> Result<Snapshot> {
        if self.free_count > 0 {
            self.free_count -= 1;
            return Ok(Snapshot {
                grid_id: 0,
                step: 0,
                level: LevelPair::new(1, 1),
                values: Vec::new(),
            });
        }
        self.free_rx
            .recv()
            .map_err(|_| Error::InvalidArg("checkpoint writer thread is gone".into()))
    }

    /// Checkpoints handed to the writer and not yet landed on disk.
    pub fn in_flight(&self) -> usize {
        *lock_recover(&self.shared.pending)
    }

    /// Block until every enqueued checkpoint has landed, settle the
    /// deferred virtual disk cost on `ctx`, and surface any writer-side
    /// I/O error. A fault site ([`OpClass::CkptDrain`]) fires first, so a
    /// chaos victim can die with writes still in flight.
    pub fn drain(&self, ctx: &Ctx) -> Result<()> {
        ctx.fault_op(OpClass::CkptDrain);
        {
            let mut n = lock_recover(&self.shared.pending);
            while *n > 0 {
                n = self.shared.all_done.wait(n).unwrap_or_else(|e| e.into_inner());
            }
        }
        ctx.disk_drain();
        let errors = std::mem::take(&mut *lock_recover(&self.shared.errors));
        if errors.is_empty() {
            Ok(())
        } else {
            Err(Error::InvalidArg(format!("checkpoint write failed: {}", errors.join("; "))))
        }
    }
}

impl Drop for AsyncCheckpointer {
    fn drop(&mut self) {
        // Closing the job channel stops the writer after it finishes the
        // queued snapshots; rename-atomicity makes whatever is still in
        // flight land completely or not at all.
        self.job_tx.take();
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulfm_sim::{run, RunConfig};

    fn store() -> CheckpointStore {
        CheckpointStore::new(crate::config::default_ckpt_dir()).unwrap()
    }

    #[test]
    fn enqueued_checkpoints_land_and_validate() {
        let s = store();
        let dir = s.dir().to_path_buf();
        run(RunConfig::local(1), move |ctx| {
            let mut ck = AsyncCheckpointer::new(CheckpointStore::new(&dir).unwrap());
            let g = Grid2::from_fn(LevelPair::new(4, 3), |x, y| x * y + 0.5);
            for step in [10u64, 20, 30] {
                ck.enqueue(ctx, 0, step, &g).unwrap();
                ctx.advance(1.0);
            }
            ck.drain(ctx).unwrap();
            assert_eq!(ck.in_flight(), 0);
            assert!(ctx.io_hidden() > 0.0, "compute must hide some disk time");
        })
        .assert_no_app_errors();
        let (restored, skipped) = s.read_latest_valid(0).unwrap();
        let (step, _, _) = restored.expect("newest checkpoint");
        assert_eq!(step, 30);
        assert_eq!(skipped, 0);
        s.clear().unwrap();
    }

    #[test]
    fn drop_without_drain_still_lands_queued_writes() {
        let s = store();
        let dir = s.dir().to_path_buf();
        run(RunConfig::local(1), move |ctx| {
            let mut ck = AsyncCheckpointer::new(CheckpointStore::new(&dir).unwrap());
            let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x - y);
            ck.enqueue(ctx, 2, 7, &g).unwrap();
            // Dropped here: the writer must finish the queued job first.
        })
        .assert_no_app_errors();
        let (step, _, _) = s.read(2).unwrap().expect("write must have landed");
        assert_eq!(step, 7);
        s.clear().unwrap();
    }

    #[test]
    fn enqueue_after_writer_shutdown_errors_instead_of_panicking() {
        let s = store();
        let dir = s.dir().to_path_buf();
        run(RunConfig::local(1), move |ctx| {
            let mut ck = AsyncCheckpointer::new(CheckpointStore::new(&dir).unwrap());
            let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x + y);
            ck.enqueue(ctx, 0, 1, &g).unwrap();
            ck.drain(ctx).unwrap();
            // Simulate the writer stage going away mid-run (the Drop path
            // with the checkpointer still referenced): enqueue must turn
            // into an error the caller can degrade on, never a panic.
            ck.job_tx.take();
            if let Some(h) = ck.writer.take() {
                h.join().unwrap();
            }
            let err = ck.enqueue(ctx, 0, 2, &g).unwrap_err();
            assert!(err.to_string().contains("writer"), "got: {err}");
            // The gauge was not bumped for the refused snapshot, so a
            // later drain still returns instead of waiting forever.
            assert_eq!(ck.in_flight(), 0);
            ck.drain(ctx).unwrap();
        })
        .assert_no_app_errors();
        s.clear().unwrap();
    }

    #[test]
    fn poisoned_lock_leaves_enqueue_and_drain_functional() {
        let s = store();
        let dir = s.dir().to_path_buf();
        run(RunConfig::local(1), move |ctx| {
            let mut ck = AsyncCheckpointer::new(CheckpointStore::new(&dir).unwrap());
            // Poison both shared mutexes the way a panicking write-side
            // thread would: panic while holding each guard.
            let shared = Arc::clone(&ck.shared);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = shared.pending.lock().unwrap();
                panic!("simulated writer-side panic");
            }));
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = shared.errors.lock().unwrap();
                panic!("simulated writer-side panic");
            }));
            assert!(ck.shared.pending.is_poisoned());
            // The pipeline keeps working: enqueue, observe, drain — no
            // poison cascade into this rank (or, under the campaign
            // service, into sibling jobs sharing the worker).
            let g = Grid2::from_fn(LevelPair::new(4, 4), |x, y| x * y);
            ck.enqueue(ctx, 1, 9, &g).unwrap();
            ck.drain(ctx).unwrap();
            assert_eq!(ck.in_flight(), 0);
        })
        .assert_no_app_errors();
        let (step, _, _) = s.read(1).unwrap().expect("write landed despite poisoned locks");
        assert_eq!(step, 9);
        s.clear().unwrap();
    }

    #[test]
    fn writer_errors_surface_at_drain() {
        let s = store();
        let dir = s.dir().to_path_buf();
        run(RunConfig::local(1), move |ctx| {
            let inner = CheckpointStore::new(&dir).unwrap();
            let mut ck = AsyncCheckpointer::new(inner);
            // Nuke the directory so the writer's tmp-file creation fails.
            std::fs::remove_dir_all(&dir).unwrap();
            let g = Grid2::from_fn(LevelPair::new(2, 2), |x, _| x);
            ck.enqueue(ctx, 0, 1, &g).unwrap();
            let err = ck.drain(ctx).unwrap_err();
            assert!(err.to_string().contains("checkpoint write failed"), "got: {err}");
            // A second drain reports clean — errors are consumed.
            ck.drain(ctx).unwrap();
        })
        .assert_no_app_errors();
    }
}
