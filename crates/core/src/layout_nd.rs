//! Process layout for d-dimensional grid systems.
//!
//! The d-dimensional sibling of [`crate::layout`]. Each sub-grid's group
//! uses a **slab decomposition along the last axis** instead of the 2D
//! process grid: slabs are contiguous runs of hyperplanes, so every halo
//! message is one contiguous plane of `∏_{i<d-1} 2^{l_i}` values and the
//! exchange protocol stays a two-neighbour ring regardless of dimension.
//!
//! Load balancing follows the paper's §II-A rule generalized by layer
//! depth: the top combining layer (the 2D "diagonal") gets `2s`
//! processes, each layer below it half as many (floor 1), duplicates
//! mirror the top layer, and the extra layers get `⌈s/2⌉` and `⌈s/4⌉` —
//! at d = 2 these are exactly the 2D sizes. A group can never have more
//! slabs than its grid has fundamental planes along the last axis, so
//! small grids shrink their groups rather than own empty slabs.

use sparsegrid::{GridRoleN, GridSystemN, Layout};

/// Per-sub-grid process group description (slab decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupInfoN {
    /// Sub-grid ID this group solves.
    pub grid: usize,
    /// First world rank of the group.
    pub first: usize,
    /// Number of processes = number of slabs along the last axis.
    pub size: usize,
}

impl GroupInfoN {
    /// World rank of the group's root (local rank 0).
    pub fn root(&self) -> usize {
        self.first
    }

    /// Does this group contain the given world rank?
    pub fn contains(&self, world_rank: usize) -> bool {
        world_rank >= self.first && world_rank < self.first + self.size
    }
}

/// One rank's place in the layout: its sub-grid and slab index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignmentN {
    /// Sub-grid ID.
    pub grid: usize,
    /// Rank within the group = slab index along the last axis.
    pub local: usize,
}

/// The full world → sub-grid mapping of a d-dimensional run.
#[derive(Debug, Clone)]
pub struct ProcLayoutN {
    system: GridSystemN,
    scale: usize,
    groups: Vec<GroupInfoN>,
    total: usize,
}

impl ProcLayoutN {
    /// Build the layout for a d-dimensional grid system at scale `s ≥ 1`.
    pub fn new(dim: usize, n: u32, l: u32, layout: Layout, scale: usize) -> Self {
        assert!(scale >= 1, "scale must be ≥ 1");
        let system = GridSystemN::new(dim, n, l, layout);
        let mut groups = Vec::with_capacity(system.n_grids());
        let mut next = 0usize;
        for g in system.grids() {
            let size = match g.role {
                GridRoleN::Combining { q, .. } => ((2 * scale) >> q).max(1),
                GridRoleN::Duplicate(_) => 2 * scale,
                GridRoleN::ExtraLayer { t: 1, .. } => scale.div_ceil(2),
                GridRoleN::ExtraLayer { .. } => scale.div_ceil(4),
            };
            // Fundamental planes along the last axis (periodic: plane 2^l
            // duplicates 0); a slab must own at least one plane.
            let planes = 1usize << *g.level.last().expect("non-empty level vector");
            let size = size.min(planes);
            groups.push(GroupInfoN { grid: g.id, first: next, size });
            next += size;
        }
        ProcLayoutN { system, scale, groups, total: next }
    }

    /// Total number of processes (the world size).
    pub fn world_size(&self) -> usize {
        self.total
    }

    /// The process scale `s`.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The grid system being solved.
    pub fn system(&self) -> &GridSystemN {
        &self.system
    }

    /// Group info for one sub-grid.
    pub fn group(&self, grid: usize) -> &GroupInfoN {
        &self.groups[grid]
    }

    /// All groups, by grid ID.
    pub fn groups(&self) -> &[GroupInfoN] {
        &self.groups
    }

    /// The assignment of a world rank.
    pub fn assignment(&self, world_rank: usize) -> AssignmentN {
        let g = self
            .groups
            .iter()
            .find(|g| g.contains(world_rank))
            .unwrap_or_else(|| panic!("rank {world_rank} beyond world size {}", self.total));
        AssignmentN { grid: g.grid, local: world_rank - g.first }
    }

    /// The assignment of a world rank, or `None` beyond the layout —
    /// spare ranks under `SpareSubstitute` sit past `world_size()` and
    /// own no sub-grid.
    pub fn try_assignment(&self, world_rank: usize) -> Option<AssignmentN> {
        if world_rank < self.total {
            Some(self.assignment(world_rank))
        } else {
            None
        }
    }

    /// Which sub-grid a world rank works on.
    pub fn grid_of(&self, world_rank: usize) -> usize {
        self.assignment(world_rank).grid
    }

    /// World rank of a sub-grid's group root.
    pub fn root_of(&self, grid: usize) -> usize {
        self.groups[grid].root()
    }

    /// Map a set of failed world ranks to the set of broken sub-grids.
    pub fn broken_grids(&self, failed_ranks: &[usize]) -> Vec<usize> {
        let mut grids: Vec<usize> = failed_ranks.iter().map(|&r| self.grid_of(r)).collect();
        grids.sort_unstable();
        grids.dedup();
        grids
    }

    /// The shrink-and-redistribute re-layout (identical semantics to the
    /// 2D [`crate::layout::ProcLayout::shrink_members`]).
    pub fn shrink_members(total: usize, dead: &[usize]) -> Vec<usize> {
        (0..total).filter(|r| !dead.contains(r)).collect()
    }

    /// The grids dropped by shrink-and-redistribute for a cumulative dead
    /// set: every grid that lost at least one member.
    pub fn dropped_grids(&self, dead: &[usize]) -> Vec<usize> {
        self.broken_grids(dead)
    }

    /// World ranks whose failure would violate the Resampling-and-Copying
    /// constraint *given* ranks already chosen: no two conflicting grids
    /// may fail together.
    pub fn rc_forbidden_ranks(&self, already_failed: &[usize]) -> Vec<usize> {
        let broken = self.broken_grids(already_failed);
        let mut forbidden = Vec::new();
        for (a, b) in self.system.rc_conflicts() {
            for (hit, partner) in [(a, b), (b, a)] {
                if broken.contains(&hit) {
                    let g = self.group(partner);
                    forbidden.extend(g.first..g.first + g.size);
                }
            }
        }
        forbidden.sort_unstable();
        forbidden.dedup();
        forbidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3D chaos shape: d=3, n=4, l=4 → m=1, τ=6; combining layers
    /// |l| ∈ {6,5,4} hold 10 + 6 + 3 = 19 grids.
    fn chaos_layout(layout: Layout, scale: usize) -> ProcLayoutN {
        ProcLayoutN::new(3, 4, 4, layout, scale)
    }

    #[test]
    fn group_sizes_follow_layered_balancing() {
        let lay = chaos_layout(Layout::Plain, 4);
        for g in lay.system().grids() {
            let planes = 1usize << *g.level.last().unwrap();
            let want = match g.role {
                GridRoleN::Combining { q, .. } => (8usize >> q).max(1),
                GridRoleN::Duplicate(_) => 8,
                GridRoleN::ExtraLayer { t: 1, .. } => 2,
                GridRoleN::ExtraLayer { .. } => 1,
            }
            .min(planes);
            assert_eq!(lay.group(g.id).size, want, "grid {} level {:?}", g.id, g.level);
        }
    }

    #[test]
    fn slabs_never_outnumber_planes() {
        for layout in [Layout::Plain, Layout::Duplicates, Layout::ExtraLayers] {
            for scale in [1, 4, 16] {
                let lay = chaos_layout(layout, scale);
                for g in lay.system().grids() {
                    let planes = 1usize << *g.level.last().unwrap();
                    assert!(lay.group(g.id).size <= planes, "grid {:?}", g.level);
                    assert!(lay.group(g.id).size >= 1);
                }
            }
        }
    }

    #[test]
    fn groups_partition_the_world() {
        let lay = chaos_layout(Layout::Duplicates, 2);
        let mut covered = vec![false; lay.world_size()];
        for g in lay.groups() {
            for (r, c) in covered.iter_mut().enumerate().skip(g.first).take(g.size) {
                assert!(!*c, "rank {r} in two groups");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn assignment_roundtrip() {
        let lay = chaos_layout(Layout::ExtraLayers, 2);
        for r in 0..lay.world_size() {
            let a = lay.assignment(r);
            let g = lay.group(a.grid);
            assert_eq!(g.first + a.local, r);
            assert!(a.local < g.size);
        }
        assert_eq!(lay.root_of(0), 0);
        assert!(lay.try_assignment(lay.world_size()).is_none());
    }

    #[test]
    fn chaos_shape_world_size_at_scale_one() {
        // Combining sizes at s=1: q=0 → 2 (capped by planes where the
        // last level is 1), q=1 → 1, q=2 → 1.
        let lay = chaos_layout(Layout::Plain, 1);
        let total: usize = lay.groups().iter().map(|g| g.size).sum();
        assert_eq!(lay.world_size(), total);
        assert_eq!(lay.system().n_grids(), 19);
        // Small enough for a simulator world, big enough to be a real run.
        assert!(lay.world_size() >= 19 && lay.world_size() <= 40, "{}", lay.world_size());
    }

    #[test]
    fn broken_grid_mapping_and_shrink_members() {
        let lay = chaos_layout(Layout::Plain, 1);
        let g1 = *lay.group(1);
        let g4 = *lay.group(4);
        let broken = lay.broken_grids(&[g1.first, g1.first + g1.size - 1, g4.first]);
        assert_eq!(broken, vec![1, 4]);
        let members = ProcLayoutN::shrink_members(6, &[2, 4]);
        assert_eq!(members, vec![0, 1, 3, 5]);
    }

    #[test]
    fn rc_forbidden_ranks_cover_partners() {
        let lay = chaos_layout(Layout::Duplicates, 1);
        let sys = lay.system();
        // Find a top-layer grid with a duplicate partner.
        let (a, b) = sys.rc_conflicts()[0];
        let forbidden = lay.rc_forbidden_ranks(&[lay.group(a).first]);
        let gb = lay.group(b);
        for r in gb.first..gb.first + gb.size {
            assert!(forbidden.contains(&r), "partner rank {r} must be forbidden");
        }
    }
}
