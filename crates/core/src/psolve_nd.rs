//! The distributed d-dimensional solver: one process group per sub-grid,
//! slab decomposition along the last axis, plane halo exchange over the
//! simulated MPI runtime.
//!
//! The periodic fundamental domain of sub-grid `l` has `∏ 2^{l_i}`
//! distinct nodes. Each group member owns a contiguous run of hyperplanes
//! along the last axis inside a one-cell halo-padded buffer; a step wraps
//! the transverse axes periodically (the slab owns them entirely), then
//! exchanges the two boundary planes with the ring neighbours — each one
//! contiguous slice of the padded buffer — and applies the point kernel.
//! Like the 2D [`crate::psolve::DistributedSolver`], the overlapped
//! [`step`](DistributedSolverN::step) computes the deep interior while
//! the planes fly and is **bitwise equal** to the blocking reference
//! [`step_blocking`](DistributedSolverN::step_blocking), which in turn is
//! bitwise equal to the single-owner [`advect2d::ndsolve::SolverN`].

use advect2d::ndfield::PaddedFieldN;
use advect2d::ndproblem::ProblemN;
use advect2d::ndsolve::{jacobi_kernel, upwind_diffusion_kernel, UpwindDiffusionCoefN};
use sparsegrid::ndgrid::advance;
use sparsegrid::LevelVecN;
use ulfm_sim::{waitall, Comm, Ctx, Result};

use crate::layout_nd::GroupInfoN;
use crate::psolve::block_range;

/// Halo-plane message tags (distinct from the 2D solver's 101–104 only
/// for readability; the comms never share a communicator).
const TAG_UP: i32 = 111;
const TAG_DOWN: i32 = 112;

/// The boxed point-update kernel a slab applies at each padded offset
/// (upwind–diffusion or Jacobi, chosen by the problem class).
type PointKernel = Box<dyn Fn(&[f64], usize) -> f64 + Send>;

/// One rank's share of a distributed d-dimensional sub-grid solve.
pub struct DistributedSolverN {
    problem: ProblemN,
    level: LevelVecN,
    dt: f64,
    size: usize,
    slab: usize,
    z0: usize,
    lnz: usize,
    field: PaddedFieldN,
    kernel: PointKernel,
    recv_lo: Vec<f64>,
    recv_hi: Vec<f64>,
    steps_done: u64,
}

/// Sample the problem's right-hand side into the padded offset space of
/// a slab field whose last axis starts at global plane `z0`. At `z0 = 0`
/// with a full-extent slab this reproduces
/// [`advect2d::ndsolve::padded_rhs`] exactly.
fn padded_rhs_slab(problem: &ProblemN, field: &PaddedFieldN, z0: usize, np: &[usize]) -> Vec<f64> {
    let d = field.dim();
    let shape = field.shape().to_vec();
    let mut rhs = vec![0.0; field.padded().len()];
    let mut idx = vec![0usize; d];
    loop {
        let off: usize = idx.iter().zip(field.pstrides()).map(|(&k, &s)| (k + 1) * s).sum();
        let x: Vec<f64> = idx
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let g = if i == d - 1 { k + z0 } else { k };
                g as f64 / np[i] as f64
            })
            .collect();
        rhs[off] = problem.rhs(&x);
        if !advance(&mut idx, &shape) {
            return rhs;
        }
    }
}

impl DistributedSolverN {
    /// Initialize this rank's slab from the problem's initial condition.
    pub fn new(
        problem: ProblemN,
        level: &[u32],
        dt: f64,
        info: &GroupInfoN,
        local_rank: usize,
    ) -> Self {
        assert!(local_rank < info.size, "local rank {local_rank} beyond group {info:?}");
        assert_eq!(problem.dim(), level.len(), "problem/level dimension mismatch");
        let d = level.len();
        let np: Vec<usize> = level.iter().map(|&l| 1usize << l).collect();
        let (z0, lnz) = block_range(np[d - 1], info.size, local_rank);
        assert!(lnz >= 1, "empty slab: {info:?} rank {local_rank}");
        let mut shape = np.clone();
        shape[d - 1] = lnz;
        let field = PaddedFieldN::new(&shape);
        let pstride = field.pstrides().to_vec();
        let h: Vec<f64> = np.iter().map(|&n| 1.0 / n as f64).collect();
        let kernel: PointKernel = if problem.is_elliptic() {
            let inv_h2: Vec<f64> = h.iter().map(|hi| 1.0 / (hi * hi)).collect();
            let rhs = padded_rhs_slab(&problem, &field, z0, &np);
            Box::new(jacobi_kernel(inv_h2, pstride, rhs))
        } else {
            let coef = UpwindDiffusionCoefN::new(&problem, &h, dt);
            Box::new(upwind_diffusion_kernel(coef, pstride))
        };
        let mut s = DistributedSolverN {
            problem,
            level: level.to_vec(),
            dt,
            size: info.size,
            slab: local_rank,
            z0,
            lnz,
            field,
            kernel,
            recv_lo: Vec::new(),
            recv_hi: Vec::new(),
            steps_done: 0,
        };
        s.reset_to_initial();
        s
    }

    /// Refill the slab from the initial condition and rewind the step
    /// counter.
    pub fn reset_to_initial(&mut self) {
        let d = self.level.len();
        let np: Vec<f64> = self.level.iter().map(|&l| (1usize << l) as f64).collect();
        let z0 = self.z0;
        let shape = self.field.shape().to_vec();
        let pstride = self.field.pstrides().to_vec();
        let mut idx = vec![0usize; d];
        let mut x = vec![0.0f64; d];
        loop {
            for i in 0..d {
                let g = if i == d - 1 { idx[i] + z0 } else { idx[i] };
                x[i] = g as f64 / np[i];
            }
            let off: usize = idx.iter().zip(&pstride).map(|(&k, &s)| (k + 1) * s).sum();
            self.field.padded_mut()[off] = self.problem.initial(&x);
            if !advance(&mut idx, &shape) {
                break;
            }
        }
        self.steps_done = 0;
    }

    /// Interior cells of one hyperplane (the transverse extent).
    fn plane_cells(&self) -> usize {
        self.field.shape()[..self.field.dim() - 1].iter().product()
    }

    /// Advance one timestep with communication–computation overlap: wrap
    /// the transverse halo, post the two boundary-plane sends and halo
    /// receives nonblocking, compute the deep interior planes while they
    /// fly, complete and install the halo planes, then compute the two
    /// boundary planes. Every cell evaluates the exact expression of
    /// [`step_blocking`](Self::step_blocking) in a different order of
    /// disjoint plane ranges, so the result is **bitwise equal**.
    ///
    /// Errors with `ProcFailed` if a ring partner has died — all posted
    /// requests are driven to completion by `waitall` first, so a
    /// mid-step death surfaces uniformly and never wedges a survivor.
    pub fn step(&mut self, ctx: &Ctx, group: &Comm) -> Result<()> {
        let lnz = self.lnz;
        let plane_cells = self.plane_cells();
        let up = (self.slab + 1) % self.size;
        let down = (self.slab + self.size - 1) % self.size;
        self.field.wrap_transverse_halo();
        let DistributedSolverN { field, kernel, recv_lo, recv_hi, .. } = self;
        // Eager sends copy at post time, so the field stays free for the
        // stencil while the requests are in flight.
        let mut reqs = [
            group.isend(ctx, up, TAG_UP, field.plane(lnz))?,
            group.isend(ctx, down, TAG_DOWN, field.plane(1))?,
            group.irecv_into(ctx, down, TAG_UP, recv_lo)?,
            group.irecv_into(ctx, up, TAG_DOWN, recv_hi)?,
        ];
        // Deep interior planes need no external halo.
        if lnz > 2 {
            field.step_planes(1, lnz - 1, &**kernel);
        }
        ctx.compute_step_cells((plane_cells * lnz.saturating_sub(2)) as u64);
        waitall(ctx, &mut reqs)?;
        debug_assert_eq!(recv_lo.len(), field.plane_len());
        debug_assert_eq!(recv_hi.len(), field.plane_len());
        let lo = std::mem::take(recv_lo);
        let hi = std::mem::take(recv_hi);
        field.set_plane(0, &lo);
        field.set_plane(lnz + 1, &hi);
        *recv_lo = lo;
        *recv_hi = hi;
        // Boundary planes complete the cover.
        field.step_planes(0, 1, &**kernel);
        if lnz > 1 {
            field.step_planes(lnz - 1, lnz, &**kernel);
        }
        ctx.compute_step_cells((plane_cells * lnz.min(2)) as u64);
        field.commit_step();
        self.steps_done += 1;
        Ok(())
    }

    /// The blocking reference step (halo exchange, then the whole
    /// stencil): kept in-tree as the bitwise oracle for
    /// [`step`](Self::step).
    pub fn step_blocking(&mut self, ctx: &Ctx, group: &Comm) -> Result<()> {
        let lnz = self.lnz;
        let up = (self.slab + 1) % self.size;
        let down = (self.slab + self.size - 1) % self.size;
        self.field.wrap_transverse_halo();
        let DistributedSolverN { field, kernel, recv_lo, recv_hi, .. } = self;
        let n = group.sendrecv_into(ctx, up, TAG_UP, field.plane(lnz), down, TAG_UP, recv_lo)?;
        debug_assert_eq!(n, field.plane_len());
        let n = group.sendrecv_into(ctx, down, TAG_DOWN, field.plane(1), up, TAG_DOWN, recv_hi)?;
        debug_assert_eq!(n, field.plane_len());
        let lo = std::mem::take(recv_lo);
        let hi = std::mem::take(recv_hi);
        field.set_plane(0, &lo);
        field.set_plane(lnz + 1, &hi);
        *recv_lo = lo;
        *recv_hi = hi;
        field.step_planes(0, lnz, &**kernel);
        field.commit_step();
        ctx.compute_step_cells((self.plane_cells() * lnz) as u64);
        self.steps_done += 1;
        Ok(())
    }

    /// Run `n` steps.
    pub fn run(&mut self, ctx: &Ctx, group: &Comm, n: u64) -> Result<()> {
        for _ in 0..n {
            self.step(ctx, group)?;
        }
        Ok(())
    }

    /// The owned interior slab, row-major with axis 0 fastest.
    pub fn local_block(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.local_block_into(&mut out);
        out
    }

    /// Copy the owned interior slab into a reused buffer (cleared first).
    pub fn local_block_into(&self, out: &mut Vec<f64>) {
        let shape = self.field.shape();
        let d = shape.len();
        let pstride = self.field.pstrides();
        let n0 = shape[0];
        out.clear();
        out.reserve(shape.iter().product());
        // Axis-0 runs are contiguous in the padded buffer.
        let mut rows = shape[1..].to_vec();
        if rows.is_empty() {
            rows.push(1);
        }
        let mut idx = vec![0usize; rows.len()];
        let padded = self.field.padded();
        loop {
            let mut off = pstride[0]; // interior start on axis 0
            for i in 0..idx.len().min(d - 1) {
                off += (idx[i] + 1) * pstride[i + 1];
            }
            out.extend_from_slice(&padded[off..off + n0]);
            if !advance(&mut idx, &rows) {
                return;
            }
        }
    }

    /// Overwrite the owned slab (data recovery path) and set the step
    /// counter to `steps_done`.
    pub fn load_block(&mut self, values: &[f64], steps_done: u64) {
        let shape = self.field.shape().to_vec();
        let d = shape.len();
        let total: usize = shape.iter().product();
        assert_eq!(values.len(), total, "slab size mismatch");
        let pstride = self.field.pstrides().to_vec();
        let n0 = shape[0];
        let mut rows = shape[1..].to_vec();
        if rows.is_empty() {
            rows.push(1);
        }
        let mut idx = vec![0usize; rows.len()];
        let mut src = 0usize;
        let padded = self.field.padded_mut();
        loop {
            let mut off = pstride[0];
            for i in 0..idx.len().min(d - 1) {
                off += (idx[i] + 1) * pstride[i + 1];
            }
            padded[off..off + n0].copy_from_slice(&values[src..src + n0]);
            src += n0;
            if !advance(&mut idx, &rows) {
                break;
            }
        }
        self.steps_done = steps_done;
    }

    /// Slab geometry: `(z0, lnz)` in fundamental-domain planes along the
    /// last axis.
    pub fn block_geometry(&self) -> (usize, usize) {
        (self.z0, self.lnz)
    }

    /// Steps taken so far.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// The sub-grid level vector.
    pub fn level(&self) -> &[u32] {
        &self.level
    }

    /// The fixed timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The PDE.
    pub fn problem(&self) -> &ProblemN {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advect2d::ndsolve::SolverN;
    use ulfm_sim::{run, RunConfig};

    /// Fundamental-domain values of a single-owner solve, row-major with
    /// axis 0 fastest (seam nodes excluded) — the oracle layout
    /// [`DistributedSolverN::local_block`] uses.
    fn fundamental(s: &SolverN) -> Vec<f64> {
        let g = s.grid();
        let shape: Vec<usize> = g.shape().iter().map(|&n| n - 1).collect();
        let mut out = Vec::with_capacity(shape.iter().product());
        let mut idx = vec![0usize; shape.len()];
        loop {
            out.push(g.at(&idx));
            if !advance(&mut idx, &shape) {
                return out;
            }
        }
    }

    fn distributed_matches_serial(problem: ProblemN, level: Vec<u32>, world: usize, steps: u64) {
        let report = run(RunConfig::local(world), move |ctx| {
            let w = ctx.initial_world().unwrap();
            let info = GroupInfoN { grid: 0, first: 0, size: world };
            let mut ds = DistributedSolverN::new(problem.clone(), &level, 0.002, &info, w.rank());
            ds.run(ctx, &w, steps).unwrap();
            // Blocking reference runs beside it in the same group (tags
            // are quiescent between steps, so reuse is safe).
            let mut db = DistributedSolverN::new(problem.clone(), &level, 0.002, &info, w.rank());
            for _ in 0..steps {
                db.step_blocking(ctx, &w).unwrap();
            }
            assert_eq!(
                ds.local_block(),
                db.local_block(),
                "overlapped step must equal the blocking reference bitwise"
            );
            // Serial single-owner oracle.
            let mut serial = SolverN::new(problem.clone(), &level, 0.002);
            serial.run(steps);
            let all = fundamental(&serial);
            let (z0, lnz) = ds.block_geometry();
            let plane: usize = level[..level.len() - 1].iter().map(|&l| 1usize << l).product();
            let want = &all[z0 * plane..(z0 + lnz) * plane];
            assert_eq!(
                ds.local_block(),
                want,
                "rank {} slab must equal the serial oracle bitwise",
                w.rank()
            );
            ctx.report_add("ok", 1.0);
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(world as f64));
    }

    #[test]
    fn single_rank_advection_matches_serial_bitwise() {
        distributed_matches_serial(ProblemN::standard_advection(3), vec![3, 2, 3], 1, 5);
    }

    #[test]
    fn multi_rank_advection_matches_serial_bitwise() {
        distributed_matches_serial(ProblemN::standard_advection(3), vec![2, 2, 3], 4, 6);
    }

    #[test]
    fn uneven_slabs_match_serial_bitwise() {
        // nz = 8 over 3 slabs → sizes 2/3/3.
        distributed_matches_serial(ProblemN::standard_advection(3), vec![2, 1, 3], 3, 4);
    }

    #[test]
    fn elliptic_jacobi_matches_serial_bitwise() {
        distributed_matches_serial(ProblemN::standard_elliptic(3), vec![2, 2, 2], 2, 8);
    }

    #[test]
    fn local_block_roundtrip() {
        let info = GroupInfoN { grid: 0, first: 0, size: 1 };
        let p = ProblemN::standard_advection(3);
        let mut s = DistributedSolverN::new(p, &[2, 2, 2], 0.01, &info, 0);
        let block = s.local_block();
        assert_eq!(block.len(), 64);
        let mut modified = block.clone();
        modified[10] = 99.0;
        s.load_block(&modified, 7);
        assert_eq!(s.local_block()[10], 99.0);
        assert_eq!(s.steps_done(), 7);
    }

    #[test]
    fn initial_slab_matches_ic() {
        let info = GroupInfoN { grid: 0, first: 0, size: 4 };
        let p = ProblemN::standard_advection(3);
        let s = DistributedSolverN::new(p.clone(), &[2, 2, 4], 0.01, &info, 3);
        let (z0, lnz) = s.block_geometry();
        assert_eq!((z0, lnz), (12, 4));
        let block = s.local_block();
        let mut i = 0;
        for z in 0..lnz {
            for y in 0..4 {
                for x in 0..4 {
                    let pt = [x as f64 / 4.0, y as f64 / 4.0, (z0 + z) as f64 / 16.0];
                    assert!((block[i] - p.initial(&pt)).abs() < 1e-15, "at {pt:?}");
                    i += 1;
                }
            }
        }
    }
}
