//! The data recovery techniques: the paper's three (§II-D) plus the
//! diskless buddy-checkpointing extension.
//!
//! Data recovery always restores the **whole sub-grid** that experienced
//! failures: "data recovery only for the failed processes on a sub-grid is
//! not sufficient as the data of the surviving processes on a communicator
//! can be updated locally by the solver before the failure is detected."
//!
//! * **Checkpoint/Restart** — the broken group's root reads the recent
//!   on-disk checkpoint (or falls back to the initial condition), scatters
//!   it, and the group recomputes the timesteps between the checkpoint and
//!   the detection point.
//! * **Resampling and Copying** — a lost diagonal grid is copied from its
//!   duplicate (and vice versa); a lost lower-diagonal grid is re-sampled
//!   (exact injection) from the finer diagonal grid above it. Constraint:
//!   a grid and its recovery partner must not fail together.
//! * **Alternate Combination** — new (robust) combination coefficients are
//!   computed over the surviving grids — including the two extra layers —
//!   and the lost grid's data is a sample of that combined solution.
//!   Only the coefficient computation counts as recovery overhead; the
//!   gather/combine work "happens as a compulsory stage later" (§III-B).
//! * **Buddy Checkpoint** *(extension, not in the paper)* — periodic
//!   in-memory copies on a partner group's root; restore + recompute like
//!   Checkpoint/Restart, no disk involved, initial-condition fallback if
//!   the buddy's copies died with their holder.

use sparsegrid::{combine_onto, robust_coefficients, CombinationTerm, Grid2, LevelPair, LevelSet};
use ulfm_sim::{Comm, Ctx, Error, Result};

use crate::checkpoint::CheckpointStore;
use crate::config::{AppConfig, Technique};
use crate::gather::{gather_grid, recv_grid, scatter_grid, send_grid};
use crate::layout::{Assignment, ProcLayout};
use crate::psolve::DistributedSolver;
use crate::tags::TagSpace;
use sparsegrid::scheme::RcSource;

/// In-memory buddy checkpoints held *by this rank* for partner grids:
/// grid id → (checkpointed step, grid data). Only group roots hold
/// entries; a respawned root starts empty (its copies died with it).
pub type BuddyStore = std::collections::HashMap<usize, (u64, Grid2)>;

/// The buddy of a combining grid: the next combining grid, cyclically.
/// Deterministic and never the grid itself (there are ≥ 3 combining
/// grids for every `l ≥ 2`).
///
/// A grid id outside the combining set is an error, not a panic: this is
/// called inside the recovery path with grid ids derived from the failed
/// rank list, and a rank whose grid does not combine (e.g. a bogus
/// simulated-loss id) must surface as a recoverable [`Error`] rather
/// than unwind mid-recovery.
pub fn buddy_of(layout: &ProcLayout, grid: usize) -> Result<usize> {
    let ids = layout.system().combination_ids();
    let pos = ids.iter().position(|&g| g == grid).ok_or_else(|| {
        Error::InvalidArg(format!("grid {grid} is not in the combining set {ids:?}"))
    })?;
    Ok(ids[(pos + 1) % ids.len()])
}

/// Periodic buddy exchange (the Buddy Checkpoint protection point): every
/// combining group gathers its grid; the root ships it to the buddy
/// group's root, which stores it in memory. Collective over the world.
#[allow(clippy::too_many_arguments)]
pub fn buddy_exchange(
    ctx: &Ctx,
    layout: &ProcLayout,
    world: &Comm,
    group: &Comm,
    my: Assignment,
    solver: &DistributedSolver,
    at_step: u64,
    store: &mut BuddyStore,
) -> Result<()> {
    let ids = layout.system().combination_ids();
    let tags = TagSpace::for_layout(layout);
    // Phase 1: every group gathers and its root sends to the buddy root.
    let full =
        gather_grid(ctx, group, layout.group(my.grid), solver.level(), &solver.local_block())?;
    if let Some(grid) = &full {
        let buddy = buddy_of(layout, my.grid)?;
        send_grid(ctx, world, layout.root_of(buddy), tags.buddy + my.grid as i32, grid)?;
    }
    // Phase 2: buddy roots collect the copies addressed to them.
    for &g in &ids {
        let buddy = buddy_of(layout, g)?;
        if world.rank() == layout.root_of(buddy) {
            let grid = recv_grid(ctx, world, layout.root_of(g), tags.buddy + g as i32)?;
            store.insert(g, (at_step, grid));
        }
    }
    Ok(())
}

/// Sentinel broadcast when no checkpoint exists yet (restart from the
/// initial condition).
const NO_CHECKPOINT: u64 = u64::MAX;

/// What one recovery accomplished on this rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Virtual time this rank spent in the technique's accountable
    /// recovery work (the paper's Fig. 9a quantity; aggregate with a max
    /// across the world).
    pub t_recovery: f64,
    /// Sub-grids that were restored.
    pub recovered_grids: Vec<usize>,
}

/// Run the configured technique's data recovery after a reconstruction.
/// Collective over the world (every rank calls it; ranks not involved in
/// a given transfer fall through). `at_step` is the detection point; all
/// broken grids come back with their state at `at_step`.
///
/// Policy note: data recovery presumes the failed slots were *refilled*
/// (respawn, spare substitution, or the deferred epoch batch).
/// `ShrinkRedistribute` never calls this — its broken grids are dropped
/// and the final combination handles them with robust coefficients.
#[allow(clippy::too_many_arguments)]
pub fn recover(
    ctx: &Ctx,
    cfg: &AppConfig,
    layout: &ProcLayout,
    world: &Comm,
    group: &Comm,
    my: Assignment,
    solver: &mut DistributedSolver,
    store: &CheckpointStore,
    buddy_store: &mut BuddyStore,
    failed_ranks: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let broken = layout.broken_grids(failed_ranks);
    if broken.is_empty() {
        return Ok(RecoveryStats::default());
    }
    let t0 = ctx.now();
    let stats = match cfg.technique {
        Technique::CheckpointRestart => {
            recover_checkpoint(ctx, layout, group, my, solver, store, &broken, at_step)
        }
        Technique::ResamplingCopying => {
            recover_resample_copy(ctx, layout, world, group, my, solver, &broken, at_step)
        }
        Technique::AlternateCombination => {
            recover_alt_combination(ctx, layout, world, group, my, solver, &broken, at_step)
        }
        Technique::BuddyCheckpoint => {
            recover_buddy(ctx, layout, world, group, my, solver, buddy_store, &broken, at_step)
        }
    }?;
    ctx.trace_phase("data_restore", t0);
    Ok(stats)
}

/// Buddy-checkpoint recovery: the broken grid's last in-memory copy lives
/// on its buddy group's root; restore from there (or restart from the
/// initial condition if the buddy root died too and its copies with it),
/// then recompute to the detection point.
#[allow(clippy::too_many_arguments)]
fn recover_buddy(
    ctx: &Ctx,
    layout: &ProcLayout,
    world: &Comm,
    group: &Comm,
    my: Assignment,
    solver: &mut DistributedSolver,
    store: &mut BuddyStore,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let t0 = ctx.now();
    let tags = TagSpace::for_layout(layout);
    let mut touched = false;
    for &b in broken {
        let buddy = buddy_of(layout, b)?;
        // The buddy root answers with [has, step] and then maybe the grid.
        if world.rank() == layout.root_of(buddy) {
            touched = true;
            match store.get(&b) {
                Some((step, grid)) => {
                    world.send(
                        ctx,
                        layout.root_of(b),
                        tags.buddy_hdr + b as i32,
                        &[1u64, *step],
                    )?;
                    send_grid(ctx, world, layout.root_of(b), tags.buddy + b as i32, grid)?;
                }
                None => {
                    world.send(ctx, layout.root_of(b), tags.buddy_hdr + b as i32, &[0u64, 0u64])?;
                }
            }
        }
        if my.grid == b {
            touched = true;
            let payload: Option<(u64, Grid2)> = if group.rank() == 0 {
                let hdr: Vec<u64> =
                    world.recv(ctx, layout.root_of(buddy), tags.buddy_hdr + b as i32)?;
                if hdr[0] == 1 {
                    let grid = recv_grid(ctx, world, layout.root_of(buddy), tags.buddy + b as i32)?;
                    Some((hdr[1], grid))
                } else {
                    None
                }
            } else {
                None
            };
            // Everyone in the group learns the restored step.
            let step_msg: Option<Vec<u64>> = if group.rank() == 0 {
                Some(vec![payload.as_ref().map_or(NO_CHECKPOINT, |(s, _)| *s)])
            } else {
                None
            };
            let restored = group.bcast(ctx, 0, step_msg.as_deref())?[0];
            if restored == NO_CHECKPOINT {
                solver.reset_to_initial();
            } else {
                let grid = payload.map(|(_, g)| g);
                let block = scatter_grid(ctx, group, layout.group(b), grid.as_ref())?;
                solver.load_block(&block, restored);
            }
            let behind = at_step - solver.steps_done();
            solver.run(ctx, group, behind)?;
            // This group's own buddy copies of *other* grids are stale but
            // intact; its copy OF this grid lives elsewhere and stays valid.
        }
    }
    let t = if touched { ctx.now() - t0 } else { 0.0 };
    Ok(RecoveryStats { t_recovery: t, recovered_grids: broken.to_vec() })
}

#[allow(clippy::too_many_arguments)]
fn recover_checkpoint(
    ctx: &Ctx,
    layout: &ProcLayout,
    group: &Comm,
    my: Assignment,
    solver: &mut DistributedSolver,
    store: &CheckpointStore,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    if !broken.contains(&my.grid) {
        return Ok(RecoveryStats { t_recovery: 0.0, recovered_grids: broken.to_vec() });
    }
    let t0 = ctx.now();
    let info = layout.group(my.grid);
    // Root reads the newest *valid* checkpoint from disk, falling back
    // past corrupt or torn files (a restart must never consume a corrupt
    // checkpoint; with none left it restarts from the initial condition).
    let payload: Option<(u64, Grid2)> = if group.rank() == 0 {
        let (restored, skipped) = store
            .read_latest_valid(my.grid)
            .map_err(|e| Error::InvalidArg(format!("checkpoint read: {e}")))?;
        if skipped > 0 {
            ctx.report_add(crate::app::keys::CKPT_SKIPPED, skipped as f64);
        }
        match restored {
            Some((step, grid, bytes)) => {
                ctx.disk_read(bytes);
                Some((step, grid))
            }
            None => None,
        }
    } else {
        None
    };
    // Everyone learns the restored step.
    let step_msg: Option<Vec<u64>> = if group.rank() == 0 {
        Some(vec![payload.as_ref().map_or(NO_CHECKPOINT, |(s, _)| *s)])
    } else {
        None
    };
    let restored = group.bcast(ctx, 0, step_msg.as_deref())?[0];
    if restored == NO_CHECKPOINT {
        // No checkpoint yet: restart from the initial condition.
        solver.reset_to_initial();
    } else {
        let grid = payload.map(|(_, g)| g);
        let block = scatter_grid(ctx, group, info, grid.as_ref())?;
        solver.load_block(&block, restored);
    }
    // Recompute up to the detection point ("performs a recomputation for a
    // number of timesteps by which the checkpoint is behind").
    let behind = at_step - solver.steps_done();
    solver.run(ctx, group, behind)?;
    Ok(RecoveryStats { t_recovery: ctx.now() - t0, recovered_grids: broken.to_vec() })
}

#[allow(clippy::too_many_arguments)]
fn recover_resample_copy(
    ctx: &Ctx,
    layout: &ProcLayout,
    world: &Comm,
    group: &Comm,
    my: Assignment,
    solver: &mut DistributedSolver,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let sys = layout.system();
    let tags = TagSpace::for_layout(layout);
    let t0 = ctx.now();
    let mut touched = false;
    for &b in broken {
        let src = sys.rc_source(b).ok_or_else(|| {
            Error::InvalidArg(format!("grid {b} has no Resampling-and-Copying source"))
        })?;
        let (src_id, resample) = match src {
            RcSource::Copy(s) => (s, false),
            RcSource::Resample(s) => (s, true),
        };
        if broken.contains(&src_id) {
            return Err(Error::InvalidArg(format!(
                "RC constraint violated: grids {b} and {src_id} failed together"
            )));
        }
        let b_level = sys.grid(b).level;
        if my.grid == src_id {
            touched = true;
            // Source group: gather and ship (restricted if resampling).
            let full = gather_grid(
                ctx,
                group,
                layout.group(src_id),
                solver.level(),
                &solver.local_block(),
            )?;
            if let Some(full) = full {
                let out = if resample { full.restrict_to(b_level) } else { full };
                send_grid(ctx, world, layout.root_of(b), tags.rc + b as i32, &out)?;
            }
        }
        if my.grid == b {
            touched = true;
            let grid: Option<Grid2> = if group.rank() == 0 {
                Some(recv_grid(ctx, world, layout.root_of(src_id), tags.rc + b as i32)?)
            } else {
                None
            };
            let block = scatter_grid(ctx, group, layout.group(b), grid.as_ref())?;
            solver.load_block(&block, at_step);
        }
    }
    let t = if touched { ctx.now() - t0 } else { 0.0 };
    Ok(RecoveryStats { t_recovery: t, recovered_grids: broken.to_vec() })
}

#[allow(clippy::too_many_arguments)]
fn recover_alt_combination(
    ctx: &Ctx,
    layout: &ProcLayout,
    world: &Comm,
    group: &Comm,
    my: Assignment,
    solver: &mut DistributedSolver,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let sys = layout.system();
    let tags = TagSpace::for_layout(layout);

    // --- 1. New combination coefficients over the survivors (this is the
    //        technique's accountable recovery cost). Deterministic, so
    //        every rank computes them locally. ---
    let t_coeff0 = ctx.now();
    let lost_levels: Vec<LevelPair> = broken.iter().map(|&b| sys.grid(b).level).collect();
    let surviving: LevelSet =
        sys.grids().iter().filter(|g| !broken.contains(&g.id)).map(|g| g.level).collect();
    let downset = sys.classical_downset();
    let coeffs = robust_coefficients(&downset, &lost_levels, &surviving);
    // Virtual cost of solving the small coefficient problem.
    ctx.advance(1.0e-4 + 4.0e-6 * downset.len() as f64);
    let t_recovery = ctx.now() - t_coeff0;

    // --- 2. Gather the needed surviving grids to world rank 0. ---
    let needed: Vec<usize> = sys
        .grids()
        .iter()
        .filter(|g| !broken.contains(&g.id) && coeffs.get(&g.level).copied().unwrap_or(0) != 0)
        .map(|g| g.id)
        .collect();
    if needed.is_empty() {
        return Err(Error::InvalidArg(
            "alternate combination: no surviving grids can cover the losses".into(),
        ));
    }
    if needed.contains(&my.grid) {
        let full =
            gather_grid(ctx, group, layout.group(my.grid), solver.level(), &solver.local_block())?;
        if let Some(full) = full {
            // Root ships to the controller (self-sends are fine).
            send_grid(ctx, world, 0, tags.ac_gather + my.grid as i32, &full)?;
        }
    }

    // --- 3. The controller combines onto each lost level and ships the
    //        recovered grids back. ---
    if world.rank() == 0 {
        let mut sources: Vec<(f64, Grid2)> = Vec::with_capacity(needed.len());
        for &gid in &needed {
            let g = recv_grid(ctx, world, layout.root_of(gid), tags.ac_gather + gid as i32)?;
            let c = coeffs[&sys.grid(gid).level] as f64;
            sources.push((c, g));
        }
        let terms: Vec<CombinationTerm> =
            sources.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
        for &b in broken {
            let lvl = sys.grid(b).level;
            let recovered = combine_onto(lvl, &terms);
            ctx.compute_cells((terms.len() * lvl.points()) as u64);
            send_grid(ctx, world, layout.root_of(b), tags.ac_result + b as i32, &recovered)?;
        }
    }

    // --- 4. Broken groups load the recovered data. ---
    if broken.contains(&my.grid) {
        let grid: Option<Grid2> = if group.rank() == 0 {
            Some(recv_grid(ctx, world, 0, tags.ac_result + my.grid as i32)?)
        } else {
            None
        };
        let block = scatter_grid(ctx, group, layout.group(my.grid), grid.as_ref())?;
        solver.load_block(&block, at_step);
    }

    Ok(RecoveryStats { t_recovery, recovered_grids: broken.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegrid::Layout;

    #[test]
    fn buddy_of_cycles_within_the_combining_set() {
        let layout = ProcLayout::new(6, 3, Layout::Plain, 1);
        let ids = layout.system().combination_ids();
        for &g in &ids {
            let b = buddy_of(&layout, g).unwrap();
            assert!(ids.contains(&b));
            assert_ne!(b, g, "a grid must never buddy itself");
        }
    }

    #[test]
    fn buddy_of_non_combining_grid_is_an_error_not_a_panic() {
        // Regression: a failed rank's grid id outside the combining set
        // used to unwind mid-recovery via `.expect("combining grid")`.
        let layout = ProcLayout::new(6, 3, Layout::ExtraLayers, 1);
        let ids = layout.system().combination_ids();
        // The extra-layer grids exist in the system but take no part in
        // the classical combination — exactly the miss the recovery path
        // can feed in.
        let outsider = layout
            .system()
            .grids()
            .iter()
            .map(|g| g.id)
            .find(|id| !ids.contains(id))
            .expect("ExtraLayers layout must have non-combining grids");
        let err = buddy_of(&layout, outsider).unwrap_err();
        assert!(err.to_string().contains("not in the combining set"), "got: {err}");
        // And an id that is in no layout at all.
        assert!(buddy_of(&layout, 9999).is_err());
    }
}
