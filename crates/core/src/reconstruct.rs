//! Communicator reconstruction — ports of the paper's Fig. 3
//! (`communicatorReconstruct`), Fig. 5 (`repairComm`) and Fig. 7
//! (`selectRankKey`).
//!
//! The recovery restores the communicator to its **original size and rank
//! distribution**: failed ranks are re-spawned *on the hosts they occupied
//! before the failure* (hostfile index `failedRank / SLOTS`), attached via
//! `MPI_Intercomm_merge`, told their old ranks over `MERGE_TAG`, and the
//! final `MPI_Comm_split` with carefully chosen keys (Fig. 7) re-orders
//! everyone so ranks match the pre-failure communicator (the paper's
//! Fig. 2 walk-through).
//!
//! One documented deviation: the paper's listings have the parents merge
//! *before* agreeing (Fig. 5 lines 14–15) while the children agree
//! *before* merging (Fig. 3 lines 21–22). That opposite interleaving
//! relies on Open MPI's internal progress engine; our rendezvous-based
//! collectives require a consistent order, so both sides merge first and
//! agree second.

use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use ulfm_sim::{comm_spawn_multiple, Comm, Ctx, Error, InterComm, Result, SpawnSpec};

use crate::detect::{failed_procs_list, mpi_error_handler};
use crate::policy::RecoveryPolicy;

/// Tag used to hand each child its pre-failure rank (the paper's
/// `MERGE_TAG`).
pub const MERGE_TAG: i32 = 999;

/// Where replacement processes are placed.
///
/// [`RespawnPolicy::SameHost`] is the paper's published approach: each
/// failed rank comes back on the hostfile line `failedRank / SLOTS`.
/// [`RespawnPolicy::SpareNode`] implements the paper's §V *future work*:
/// "the use of spare nodes in the case of node failure, in which case all
/// the processes on that node will fail and be restarted on the new node.
/// This will have the same load balancing characteristics as our current
/// approach." Individual (non-node) failures still respawn on the same
/// host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RespawnPolicy {
    /// Respawn every failed rank on the node it occupied (paper §II-C).
    #[default]
    SameHost,
    /// If *every* rank of a node failed (node failure), respawn that
    /// node's ranks together on an unused spare node; isolated failures
    /// still go back to their original host.
    SpareNode,
    /// Naive placement: dump every replacement on the hostfile's first
    /// node, like a launcher that ignores placement. Oversubscribes that
    /// node and destroys the load balance — the ablation baseline that
    /// motivates the paper's same-host policy.
    FirstHost,
}

/// Compute the spawn placement for the failed ranks under a policy.
///
/// Deterministic across survivors: it depends only on the failed-rank
/// list, the hostfile, and the broken communicator's membership (used to
/// find spare nodes that currently host none of its processes).
pub fn respawn_specs(
    ctx: &Ctx,
    broken: &Comm,
    failed_ranks: &[usize],
    policy: RespawnPolicy,
) -> Vec<SpawnSpec> {
    let hostfile = ctx.hostfile();
    let slots = ctx.profile().slots_per_host;
    let same_host = |rank: usize| SpawnSpec::on_host(hostfile.hosts()[rank / slots].name.clone());
    match policy {
        RespawnPolicy::SameHost => failed_ranks.iter().map(|&r| same_host(r)).collect(),
        RespawnPolicy::FirstHost => failed_ranks
            .iter()
            .map(|_| SpawnSpec::on_host(hostfile.hosts()[0].name.clone()))
            .collect(),
        RespawnPolicy::SpareNode => {
            let total = broken.size();
            // Hosts whose entire rank block failed.
            let mut dead_hosts: Vec<usize> = Vec::new();
            for &r in failed_ranks {
                let host = r / slots;
                let block = (host * slots)..(((host + 1) * slots).min(total));
                if block.clone().all(|q| failed_ranks.contains(&q)) && !dead_hosts.contains(&host) {
                    dead_hosts.push(host);
                }
            }
            dead_hosts.sort_unstable();
            // Spare nodes: beyond the original allocation and not hosting
            // any current member of the broken communicator.
            let first_beyond = total.div_ceil(slots.max(1));
            let occupied: Vec<usize> = (0..total).filter_map(|r| broken.host_index_of(r)).collect();
            let mut spares: Vec<usize> =
                (first_beyond..hostfile.len()).filter(|h| !occupied.contains(h)).collect();
            let mut dead_to_spare = std::collections::HashMap::new();
            for h in dead_hosts {
                if let Some(spare) = spares.first().copied() {
                    spares.remove(0);
                    dead_to_spare.insert(h, spare);
                }
                // No spare left: fall through to same-host respawn.
            }
            failed_ranks
                .iter()
                .map(|&r| {
                    let host = r / slots;
                    match dead_to_spare.get(&host) {
                        Some(&spare) => SpawnSpec::on_host(hostfile.hosts()[spare].name.clone()),
                        None => same_host(r),
                    }
                })
                .collect()
        }
    }
}

/// Virtual-time breakdown of one reconstruction (what Fig. 8 and Table I
/// report).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconstructTimings {
    /// Creating the failed-process list: revoke + shrink + the Fig. 6
    /// group algebra (Fig. 8a).
    pub t_list: f64,
    /// The erroring detection collective (the failed barrier of Fig. 3
    /// line 13), net of error-handler acknowledgement time.
    pub t_detect: f64,
    /// `OMPI_Comm_failure_ack` time, both explicit calls and those run by
    /// the attached error handler inside other timed segments (which are
    /// recorded net of it, keeping all phases disjoint).
    pub t_ack: f64,
    /// `MPI_Comm_revoke` on the broken communicator.
    pub t_revoke: f64,
    /// The Fig. 6 group algebra alone (subset of [`Self::t_list`]).
    pub t_flist: f64,
    /// `OMPI_Comm_shrink` alone (Table I).
    pub t_shrink: f64,
    /// `MPI_Comm_spawn_multiple` (Table I).
    pub t_spawn: f64,
    /// `MPI_Intercomm_merge` (Table I).
    pub t_merge: f64,
    /// `OMPI_Comm_agree` calls, cumulative (Table I), net of handler
    /// acknowledgement time.
    pub t_agree: f64,
    /// The rank-reordering `MPI_Comm_split`.
    pub t_split: f64,
    /// Technique data recovery (checkpoint read / resample / alternate
    /// combination / buddy fetch, including any recompute), cumulative
    /// over commit retries.
    pub t_restore: f64,
    /// The whole `communicatorReconstruct` call (Fig. 8b).
    pub t_total: f64,
    /// Number of do-while iterations (> 2 means failures struck during
    /// recovery itself).
    pub rounds: u32,
    /// Ranks that were repaired (union over rounds, original numbering).
    pub failed_ranks: Vec<usize>,
}

/// Port of Fig. 7 (`selectRankKey`): the split key a *survivor* uses so
/// that, together with the children keyed by their old ranks, the split
/// restores the original rank order. `my_rank` is the survivor's rank in
/// the merged (unordered) intracommunicator, which equals its rank in the
/// shrunken communicator.
pub fn select_rank_key(
    my_rank: usize,
    shrinked_group_size: usize,
    failed_ranks: &[usize],
    total_procs: usize,
) -> i64 {
    // shrinkMergeList: the old ranks of the survivors, ascending.
    let shrink_merge_list: Vec<usize> =
        (0..total_procs).filter(|i| !failed_ranks.contains(i)).collect();
    debug_assert_eq!(shrink_merge_list.len(), shrinked_group_size);
    debug_assert!(my_rank < shrinked_group_size, "only survivors call selectRankKey");
    shrink_merge_list[my_rank] as i64
}

/// Port of Fig. 5 (`repairComm`) with the paper's same-host placement.
/// Called by the survivors; returns the repaired communicator (original
/// size, original ranks).
pub fn repair_comm(ctx: &Ctx, broken: &Comm, timings: &mut ReconstructTimings) -> Result<Comm> {
    repair_comm_with(ctx, broken, RespawnPolicy::SameHost, timings)
}

/// Port of Fig. 5 (`repairComm`): revoke and shrink the broken
/// communicator, build the failed-rank list, re-spawn the failed ranks
/// per the [`RespawnPolicy`], merge, hand out old ranks, and re-order.
///
/// Nested failures are survived here, not just in the caller's do-while:
/// if a *further* rank dies while the survivors are mid-`spawn_multiple`,
/// mid-`merge`, or mid-`split`, the failing round is abandoned (its
/// children — if any were created — observe the same uniform error and
/// exit as [`Error::Orphaned`]), the shrunken communicator is re-shrunk to
/// drop the new casualty, and the spawn/merge/split protocol restarts with
/// the enlarged failed-rank list. The whole call runs inside a
/// [`Ctx::recovery_scope`], so `DuringRecovery` fault sites can strike any
/// of these operations.
pub fn repair_comm_with(
    ctx: &Ctx,
    broken: &Comm,
    policy: RespawnPolicy,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let _scope = ctx.recovery_scope();
    // --- failed-process list (timed as Fig. 8a's "creating the list"). ---
    let t0 = ctx.now();
    broken.revoke(ctx);
    timings.t_revoke += ctx.now() - t0;
    let t_shrink0 = ctx.now();
    let mut shrinked = broken.shrink(ctx)?;
    timings.t_shrink += ctx.now() - t_shrink0;
    ctx.trace_phase("revoke_shrink", t0);
    let t_flist0 = ctx.now();
    let mut failed_ranks = failed_procs_list(broken, &shrinked);
    timings.t_flist += ctx.now() - t_flist0;
    ctx.trace_phase("failed_list", t_flist0);
    timings.t_list += ctx.now() - t0;

    // Drop the current round's survivors communicator and re-shrink after
    // a mid-repair casualty. The failed list is rebuilt by comparing the
    // *original* broken group against the latest shrink, so it is
    // cumulative across rounds.
    macro_rules! reshrink {
        () => {{
            timings.rounds += 1;
            let t = ctx.now();
            shrinked = shrinked.shrink(ctx)?;
            timings.t_shrink += ctx.now() - t;
            ctx.trace_phase("revoke_shrink", t);
            let tf = ctx.now();
            failed_ranks = failed_procs_list(broken, &shrinked);
            timings.t_flist += ctx.now() - tf;
        }};
    }

    loop {
        for &r in &failed_ranks {
            if !timings.failed_ranks.contains(&r) {
                timings.failed_ranks.push(r);
            }
        }
        // A revoked-but-intact communicator (collateral revocation, no
        // deaths) needs no respawn; hand back the full-membership shrink.
        if failed_ranks.is_empty() {
            return Ok(shrinked);
        }

        // --- spawn replacements per the placement policy. ---
        // Paper (same-host): hostfileLineIndex ← failedRank / SLOTS; read
        // the host name from that hostfile line and put it in the MPI_Info.
        let specs = respawn_specs(ctx, broken, &failed_ranks, policy);
        let t_spawn0 = ctx.now();
        let inter: InterComm = match comm_spawn_multiple(ctx, &shrinked, &specs) {
            Ok(i) => i,
            // A survivor died at the spawn rendezvous: no children were
            // created; enlarge the failed list and retry.
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                reshrink!();
                continue;
            }
            Err(e) => return Err(e),
        };
        timings.t_spawn += ctx.now() - t_spawn0;
        ctx.trace_phase("spawn", t_spawn0);

        // --- merge (parent part), then synchronize. ---
        let t_merge0 = ctx.now();
        let unordered = match inter.merge(ctx, false) {
            Ok(u) => u,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                // This round's children saw the same uniform merge error
                // and exit orphaned; make the abandonment explicit on the
                // intercomm and retry without them.
                inter.revoke(ctx);
                reshrink!();
                continue;
            }
            Err(e) => return Err(e),
        };
        timings.t_merge += ctx.now() - t_merge0;
        ctx.trace_phase("merge", t_merge0);
        let t_agree0 = ctx.now();
        let mut flag = true;
        // Fault-tolerant agreement: completes over survivors either way;
        // a casualty between merge and split is caught by the split below.
        let _ = inter.agree(ctx, &mut flag);
        timings.t_agree += ctx.now() - t_agree0;
        ctx.trace_phase("agree", t_agree0);

        // --- hand every child its old rank. ---
        // Rank 0 never fails (application invariant), so when the merge
        // succeeded the children are always told their old ranks before
        // entering the split.
        let shrinked_group_size = shrinked.size();
        let total_procs = unordered.size();
        if unordered.rank() == 0 {
            let mut send_failed = false;
            for (i, &fr) in failed_ranks.iter().enumerate() {
                let child = shrinked_group_size + i;
                if unordered.send_one(ctx, child, MERGE_TAG, fr as u64).is_err() {
                    send_failed = true;
                    break;
                }
            }
            if send_failed {
                unordered.revoke(ctx);
                inter.revoke(ctx);
                reshrink!();
                continue;
            }
        }

        // --- re-order so ranks match the pre-failure communicator. ---
        let key =
            select_rank_key(unordered.rank(), shrinked_group_size, &failed_ranks, total_procs);
        let t_split0 = ctx.now();
        match unordered.split(ctx, Some(0), key) {
            Ok(repaired) => {
                timings.t_split += ctx.now() - t_split0;
                ctx.trace_phase("rank_reorder", t_split0);
                return Ok(repaired.expect("repair split uses a single colour"));
            }
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                timings.t_split += ctx.now() - t_split0;
                // A casualty inside the final reorder: abandon this round's
                // children (they saw the same split error) and restart.
                unordered.revoke(ctx);
                inter.revoke(ctx);
                reshrink!();
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Port of Fig. 3 (`communicatorReconstruct`): the detection/repair
/// do-while loop. Survivors pass `Some(world)` and `None`; respawned
/// children pass `None` and `Some(parent)` (what `MPI_Comm_get_parent`
/// returned). Returns the reconstructed communicator, on which every rank
/// holds its pre-failure rank and a final agree+barrier round has
/// succeeded.
pub fn communicator_reconstruct(
    ctx: &Ctx,
    my_world: Option<Comm>,
    parent: Option<InterComm>,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    communicator_reconstruct_with(ctx, my_world, parent, RespawnPolicy::SameHost, timings)
}

/// [`communicator_reconstruct`] with an explicit [`RespawnPolicy`].
pub fn communicator_reconstruct_with(
    ctx: &Ctx,
    my_world: Option<Comm>,
    parent: Option<InterComm>,
    policy: RespawnPolicy,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let t_start = ctx.now();
    let mut reconstructed = my_world;
    let mut parent = parent;
    loop {
        timings.rounds += 1;
        let mut failure = false;
        if let Some(p) = parent.take() {
            // ---- child part (Fig. 3 lines 19–26). ----
            // Any recoverable error here means a *further* failure struck
            // while the survivors were attaching us: they abandon this
            // round, re-shrink, and spawn fresh replacements. We hold no
            // usable communicator, so we exit as orphaned — a clean
            // termination, not an application error.
            let orphan = |e: Error| match e {
                Error::ProcFailed { .. } | Error::Revoked => Error::Orphaned,
                other => other,
            };
            let t_merge0 = ctx.now();
            let unordered = p.merge(ctx, true).map_err(orphan)?;
            timings.t_merge += ctx.now() - t_merge0;
            let t_agree0 = ctx.now();
            let mut flag = true;
            let _ = p.agree(ctx, &mut flag); // fault-tolerant; advisory
            timings.t_agree += ctx.now() - t_agree0;
            let old_rank: u64 = unordered.recv_one(ctx, 0, MERGE_TAG).map_err(orphan)?;
            let t_split0 = ctx.now();
            let ordered = unordered
                .split(ctx, Some(0), old_rank as i64)
                .map_err(orphan)?
                .expect("child split uses a single colour");
            timings.t_split += ctx.now() - t_split0;
            reconstructed = Some(ordered);
            // Like the paper's `returnValue ← MPI_ERR_COMM`: force another
            // round, now on the parent path, to verify the repaired
            // communicator with everyone.
            failure = true;
        } else {
            // ---- parent part (Fig. 3 lines 6–18). ----
            let comm = reconstructed.take().expect("parent path requires a communicator");
            // Fig. 3 line 11: attach the Fig. 4 error handler; it
            // acknowledges observed failures whenever an operation on
            // this handle errors, so the subsequent agreement returns
            // uniformly. The handler's acknowledgement time is
            // accumulated separately so the agree/detect segments it
            // runs inside can be reported net of it — keeping every
            // timeline phase disjoint.
            let ack_time = Arc::new(StdMutex::new(0.0f64));
            let acc = Arc::clone(&ack_time);
            comm.set_errhandler(move |ctx, comm, _err| {
                let a0 = ctx.now();
                mpi_error_handler(ctx, comm);
                *acc.lock().unwrap() += ctx.now() - a0;
            });
            let ack_of = |since: f64| (*ack_time.lock().unwrap() - since).max(0.0);
            let ack0 = *ack_time.lock().unwrap();
            let t_agree0 = ctx.now();
            let mut flag = true;
            let _ = comm.agree(ctx, &mut flag); // handler acks on error
            let ack_in_agree = ack_of(ack0);
            timings.t_agree += (ctx.now() - t_agree0 - ack_in_agree).max(0.0);
            timings.t_ack += ack_in_agree;
            let ack1 = *ack_time.lock().unwrap();
            let t_detect0 = ctx.now();
            match comm.barrier(ctx) {
                Ok(()) => {
                    reconstructed = Some(comm);
                }
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                    // The erroring barrier *is* the failure detector
                    // (Fig. 3 line 13): its time is the detection phase.
                    let ack_in_detect = ack_of(ack1);
                    timings.t_detect += (ctx.now() - t_detect0 - ack_in_detect).max(0.0);
                    timings.t_ack += ack_in_detect;
                    ctx.trace_phase("detect", t_detect0);
                    let repaired = repair_comm_with(ctx, &comm, policy, timings)?;
                    reconstructed = Some(repaired);
                    failure = true;
                }
                Err(e) => return Err(e),
            }
        }
        if !failure {
            break;
        }
    }
    timings.t_total += ctx.now() - t_start;
    Ok(reconstructed.expect("loop exits with a communicator"))
}

/// Shrink-only repair (`ShrinkRedistribute` / `DeferRepair` mid-run): the
/// survivors revoke + shrink and simply continue smaller — no spawn, no
/// merge, no reorder split (the shrink preserves relative rank order).
///
/// `members` maps each *current* world rank to its original rank; it is
/// lazily initialised to the identity on the first failure and compacted
/// here, identically on every survivor (the failed list is deterministic),
/// so no communication is needed to keep it consistent. Failed ranks are
/// recorded in `timings.failed_ranks` in **original** numbering.
pub fn repair_shrink(
    ctx: &Ctx,
    broken: &Comm,
    members: &mut Option<Vec<usize>>,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let _scope = ctx.recovery_scope();
    let m = members.get_or_insert_with(|| (0..broken.size()).collect());
    debug_assert_eq!(m.len(), broken.size(), "members map tracks the current world");
    let t0 = ctx.now();
    broken.revoke(ctx);
    timings.t_revoke += ctx.now() - t0;
    let t_shrink0 = ctx.now();
    let shrinked = broken.shrink(ctx)?;
    timings.t_shrink += ctx.now() - t_shrink0;
    ctx.trace_phase("revoke_shrink", t0);
    let t_flist0 = ctx.now();
    let failed = failed_procs_list(broken, &shrinked);
    timings.t_flist += ctx.now() - t_flist0;
    ctx.trace_phase("failed_list", t_flist0);
    timings.t_list += ctx.now() - t0;
    for &r in &failed {
        let orig = m[r];
        if !timings.failed_ranks.contains(&orig) {
            timings.failed_ranks.push(orig);
        }
    }
    let mut idx = 0usize;
    m.retain(|_| {
        let keep = !failed.contains(&idx);
        idx += 1;
        keep
    });
    debug_assert_eq!(m.len(), shrinked.size());
    Ok(shrinked)
}

/// The Fig. 3 detection do-while specialised to shrink-only repair:
/// agree + barrier detect the failure, [`repair_shrink`] drops the dead,
/// and another round verifies the survivors. There is never a child path —
/// nothing is spawned.
pub fn communicator_reconstruct_shrink(
    ctx: &Ctx,
    my_world: Comm,
    members: &mut Option<Vec<usize>>,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let t_start = ctx.now();
    let mut comm = my_world;
    loop {
        timings.rounds += 1;
        let ack_time = Arc::new(StdMutex::new(0.0f64));
        let acc = Arc::clone(&ack_time);
        comm.set_errhandler(move |ctx, comm, _err| {
            let a0 = ctx.now();
            mpi_error_handler(ctx, comm);
            *acc.lock().unwrap() += ctx.now() - a0;
        });
        let ack_of = |since: f64| (*ack_time.lock().unwrap() - since).max(0.0);
        let ack0 = *ack_time.lock().unwrap();
        let t_agree0 = ctx.now();
        let mut flag = true;
        let _ = comm.agree(ctx, &mut flag);
        let ack_in_agree = ack_of(ack0);
        timings.t_agree += (ctx.now() - t_agree0 - ack_in_agree).max(0.0);
        timings.t_ack += ack_in_agree;
        let ack1 = *ack_time.lock().unwrap();
        let t_detect0 = ctx.now();
        match comm.barrier(ctx) {
            Ok(()) => break,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                let ack_in_detect = ack_of(ack1);
                timings.t_detect += (ctx.now() - t_detect0 - ack_in_detect).max(0.0);
                timings.t_ack += ack_in_detect;
                ctx.trace_phase("detect", t_detect0);
                comm = repair_shrink(ctx, &comm, members, timings)?;
            }
            Err(e) => return Err(e),
        }
    }
    timings.t_total += ctx.now() - t_start;
    Ok(comm)
}

/// Spare-substitution repair: revoke + shrink, then — if enough idle
/// spares survive — a single rank-reordering split that promotes spares
/// into the failed grid slots. No spawn round-trip, no intercomm merge:
/// the repair cost is one shrink plus one split.
///
/// `active_slots` is the grid-owning world prefix `W`; ranks `>= W` are
/// idle spares. Survivor keys come from [`select_rank_key`] (their
/// pre-failure rank); a surviving spare additionally *takes over* the
/// j-th failed active slot if it is the j-th surviving spare. Keys stay
/// unique (promoted spares use dead slots, everyone else keeps their own
/// old rank), so after the split world rank `i < W` owns grid slot `i`
/// again and the remaining spares sit at the tail.
///
/// If a burst kills more actives than there are surviving spares, the
/// repair falls back to the full respawn protocol
/// ([`repair_comm_with`]), which restores the *entire* pre-failure world
/// — failed actives and failed spares alike — so the slot invariant holds
/// on that path too.
pub fn repair_substitute(
    ctx: &Ctx,
    broken: &Comm,
    active_slots: usize,
    respawn: RespawnPolicy,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let _scope = ctx.recovery_scope();
    let t0 = ctx.now();
    broken.revoke(ctx);
    timings.t_revoke += ctx.now() - t0;
    let t_shrink0 = ctx.now();
    let mut shrinked = broken.shrink(ctx)?;
    timings.t_shrink += ctx.now() - t_shrink0;
    ctx.trace_phase("revoke_shrink", t0);
    let t_flist0 = ctx.now();
    let mut failed = failed_procs_list(broken, &shrinked);
    timings.t_flist += ctx.now() - t_flist0;
    ctx.trace_phase("failed_list", t_flist0);
    timings.t_list += ctx.now() - t0;

    let total_procs = broken.size();
    loop {
        failed.sort_unstable();
        for &r in &failed {
            if !timings.failed_ranks.contains(&r) {
                timings.failed_ranks.push(r);
            }
        }
        if failed.is_empty() {
            return Ok(shrinked);
        }
        let dead_active: Vec<usize> =
            failed.iter().copied().filter(|&r| r < active_slots).collect();
        let surviving_spares = shrinked.size() - (active_slots - dead_active.len());
        if dead_active.len() > surviving_spares {
            // Spares exhausted: restore everything (actives and spares)
            // via the spawn protocol. `repair_comm_with` re-revokes and
            // re-shrinks the broken communicator, which is idempotent.
            return repair_comm_with(ctx, broken, respawn, timings);
        }

        // --- single promote split over the survivors. ---
        let old_rank = select_rank_key(shrinked.rank(), shrinked.size(), &failed, total_procs);
        let key = if (old_rank as usize) < active_slots {
            old_rank // surviving active keeps its slot
        } else {
            // My position among the surviving spares, by old rank.
            let j = (active_slots..old_rank as usize).filter(|r| !failed.contains(r)).count();
            if j < dead_active.len() {
                dead_active[j] as i64 // promoted into the j-th failed slot
            } else {
                old_rank // stay at the tail
            }
        };
        let t_split0 = ctx.now();
        match shrinked.split(ctx, Some(0), key) {
            Ok(repaired) => {
                timings.t_split += ctx.now() - t_split0;
                ctx.trace_phase("rank_reorder", t_split0);
                return Ok(repaired.expect("promote split uses a single colour"));
            }
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                timings.t_split += ctx.now() - t_split0;
                // A further casualty mid-promote: re-shrink and retry with
                // the enlarged failed list (cumulative vs the original
                // broken membership).
                timings.rounds += 1;
                let t = ctx.now();
                shrinked = shrinked.shrink(ctx)?;
                timings.t_shrink += ctx.now() - t;
                ctx.trace_phase("revoke_shrink", t);
                let tf = ctx.now();
                failed = failed_procs_list(broken, &shrinked);
                timings.t_flist += ctx.now() - tf;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The Fig. 3 detection do-while specialised to spare substitution. The
/// parent path is identical to [`communicator_reconstruct_with`]; repair
/// promotes spares via [`repair_substitute`]. Only when a burst exhausts
/// the spares does the fallback spawn children — those children join
/// through the ordinary child path of [`communicator_reconstruct_with`]
/// and meet the survivors in this loop's verification round.
pub fn communicator_reconstruct_substitute(
    ctx: &Ctx,
    my_world: Comm,
    active_slots: usize,
    respawn: RespawnPolicy,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let t_start = ctx.now();
    let mut comm = my_world;
    loop {
        timings.rounds += 1;
        let ack_time = Arc::new(StdMutex::new(0.0f64));
        let acc = Arc::clone(&ack_time);
        comm.set_errhandler(move |ctx, comm, _err| {
            let a0 = ctx.now();
            mpi_error_handler(ctx, comm);
            *acc.lock().unwrap() += ctx.now() - a0;
        });
        let ack_of = |since: f64| (*ack_time.lock().unwrap() - since).max(0.0);
        let ack0 = *ack_time.lock().unwrap();
        let t_agree0 = ctx.now();
        let mut flag = true;
        let _ = comm.agree(ctx, &mut flag);
        let ack_in_agree = ack_of(ack0);
        timings.t_agree += (ctx.now() - t_agree0 - ack_in_agree).max(0.0);
        timings.t_ack += ack_in_agree;
        let ack1 = *ack_time.lock().unwrap();
        let t_detect0 = ctx.now();
        match comm.barrier(ctx) {
            Ok(()) => break,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                let ack_in_detect = ack_of(ack1);
                timings.t_detect += (ctx.now() - t_detect0 - ack_in_detect).max(0.0);
                timings.t_ack += ack_in_detect;
                ctx.trace_phase("detect", t_detect0);
                comm = repair_substitute(ctx, &comm, active_slots, respawn, timings)?;
            }
            Err(e) => return Err(e),
        }
    }
    timings.t_total += ctx.now() - t_start;
    Ok(comm)
}

/// The `DeferRepair` epoch repair: respawn **all** accumulated dead (in
/// original numbering) in one batch, restoring the original world size and
/// rank order, then verify with a standard detection round (which also
/// repairs any casualty that strikes during the batch itself, via the
/// ordinary respawn protocol — at this point the numbering is original
/// again).
///
/// `alive` is the shrunken survivor world, `members` its current→original
/// rank map, `deferred` the accumulated dead (original ranks). On success
/// the returned communicator has the original size with every rank at its
/// original position; all repaired ranks (deferred plus any epoch
/// casualties) are recorded in `timings.failed_ranks`.
pub fn deferred_epoch_repair(
    ctx: &Ctx,
    alive: Comm,
    members: Vec<usize>,
    deferred: &mut Vec<usize>,
    respawn: RespawnPolicy,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let repaired = repair_deferred(ctx, alive, members, deferred, respawn, timings)?;
    // Verification round with the children; epoch casualties are repaired
    // by the standard Fig. 3/5 protocol.
    communicator_reconstruct_with(ctx, Some(repaired), None, respawn, timings)
}

/// The spawn/merge/split batch of [`deferred_epoch_repair`]: like
/// [`repair_comm_with`] but the failed list is the *accumulated* deferred
/// set rather than one derived from a revoke+shrink (the survivor world is
/// already shrunken and healthy), and survivor split keys come from the
/// `members` map instead of Fig. 7 (which assumes the dead were members of
/// the broken communicator being repaired).
fn repair_deferred(
    ctx: &Ctx,
    alive: Comm,
    mut members: Vec<usize>,
    deferred: &mut Vec<usize>,
    respawn: RespawnPolicy,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    let _scope = ctx.recovery_scope();
    debug_assert_eq!(members.len(), alive.size());
    let mut cur = alive;

    // A casualty during the batch: shrink the survivor world, move the new
    // dead (translated to original numbering) into the deferred set, and
    // restart the batch.
    macro_rules! reshrink_deferred {
        () => {{
            timings.rounds += 1;
            let t = ctx.now();
            let shr = cur.shrink(ctx)?;
            timings.t_shrink += ctx.now() - t;
            ctx.trace_phase("revoke_shrink", t);
            let tf = ctx.now();
            let newly = failed_procs_list(&cur, &shr);
            timings.t_flist += ctx.now() - tf;
            for &r in &newly {
                let orig = members[r];
                if !deferred.contains(&orig) {
                    deferred.push(orig);
                }
            }
            let mut idx = 0usize;
            members.retain(|_| {
                let keep = !newly.contains(&idx);
                idx += 1;
                keep
            });
            cur = shr;
        }};
    }

    loop {
        deferred.sort_unstable();
        for &r in deferred.iter() {
            if !timings.failed_ranks.contains(&r) {
                timings.failed_ranks.push(r);
            }
        }
        if deferred.is_empty() {
            return Ok(cur);
        }

        let specs = respawn_specs(ctx, &cur, deferred, respawn);
        let t_spawn0 = ctx.now();
        let inter: InterComm = match comm_spawn_multiple(ctx, &cur, &specs) {
            Ok(i) => i,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                reshrink_deferred!();
                continue;
            }
            Err(e) => return Err(e),
        };
        timings.t_spawn += ctx.now() - t_spawn0;
        ctx.trace_phase("spawn", t_spawn0);

        let t_merge0 = ctx.now();
        let unordered = match inter.merge(ctx, false) {
            Ok(u) => u,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                inter.revoke(ctx);
                reshrink_deferred!();
                continue;
            }
            Err(e) => return Err(e),
        };
        timings.t_merge += ctx.now() - t_merge0;
        ctx.trace_phase("merge", t_merge0);
        let t_agree0 = ctx.now();
        let mut flag = true;
        let _ = inter.agree(ctx, &mut flag);
        timings.t_agree += ctx.now() - t_agree0;
        ctx.trace_phase("agree", t_agree0);

        // Hand each child its original rank (rank 0 never fails, and it is
        // always original rank 0 — the members map never drops it).
        let alive_count = cur.size();
        if unordered.rank() == 0 {
            let mut send_failed = false;
            for (i, &fr) in deferred.iter().enumerate() {
                if unordered.send_one(ctx, alive_count + i, MERGE_TAG, fr as u64).is_err() {
                    send_failed = true;
                    break;
                }
            }
            if send_failed {
                unordered.revoke(ctx);
                inter.revoke(ctx);
                reshrink_deferred!();
                continue;
            }
        }

        // Survivors key by their original rank; children key by the rank
        // they were just handed. Together that restores original order.
        let key = members[unordered.rank()] as i64;
        let t_split0 = ctx.now();
        match unordered.split(ctx, Some(0), key) {
            Ok(repaired) => {
                timings.t_split += ctx.now() - t_split0;
                ctx.trace_phase("rank_reorder", t_split0);
                return Ok(repaired.expect("deferred repair split uses a single colour"));
            }
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                timings.t_split += ctx.now() - t_split0;
                unordered.revoke(ctx);
                inter.revoke(ctx);
                reshrink_deferred!();
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Policy dispatcher for the mid-run detection/repair round. `Respawn`
/// takes the paper's Fig. 3 protocol; `ShrinkRedistribute` and
/// `DeferRepair` shrink only (updating the `members` current→original
/// map); `SpareSubstitute` promotes spares (`active_slots` = grid-owning
/// prefix `W`).
pub fn detect_and_repair(
    ctx: &Ctx,
    world: Comm,
    policy: RecoveryPolicy,
    respawn: RespawnPolicy,
    active_slots: usize,
    members: &mut Option<Vec<usize>>,
    timings: &mut ReconstructTimings,
) -> Result<Comm> {
    match policy {
        RecoveryPolicy::Respawn => {
            communicator_reconstruct_with(ctx, Some(world), None, respawn, timings)
        }
        RecoveryPolicy::ShrinkRedistribute | RecoveryPolicy::DeferRepair => {
            communicator_reconstruct_shrink(ctx, world, members, timings)
        }
        RecoveryPolicy::SpareSubstitute => {
            communicator_reconstruct_substitute(ctx, world, active_slots, respawn, timings)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_rank_key_reproduces_paper_example() {
        // 7 ranks, 3 and 5 failed (the paper's Fig. 2). Survivors (merged
        // ranks 0..5) must be keyed 0,1,2,4,6.
        let failed = vec![3, 5];
        let keys: Vec<i64> = (0..5).map(|r| select_rank_key(r, 5, &failed, 7)).collect();
        assert_eq!(keys, vec![0, 1, 2, 4, 6]);
    }

    #[test]
    fn select_rank_key_no_failures_is_identity() {
        let keys: Vec<i64> = (0..4).map(|r| select_rank_key(r, 4, &[], 4)).collect();
        assert_eq!(keys, vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_rank_key_first_rank_failed() {
        // Rank 0 failing is forbidden at app level, but the key math must
        // still be correct.
        let keys: Vec<i64> = (0..3).map(|r| select_rank_key(r, 3, &[1], 4)).collect();
        assert_eq!(keys, vec![0, 2, 3]);
    }
}
