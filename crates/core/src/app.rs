//! The end-to-end fault-tolerant application (§II): solve the 2D advection
//! equation on every sub-grid for `2^k` timesteps, suffer injected
//! process failures, detect them, reconstruct the world communicator at
//! its original size and rank order, recover the lost sub-grid data with
//! the configured technique, combine, and measure the error against the
//! analytic solution.
//!
//! Every rank — original or respawned — executes [`run_app`]; respawned
//! children are routed through the child branch of the reconstruction
//! protocol exactly as a re-executed `main()` would be in the paper's MPI
//! code.

use advect2d::TimeGrid;
use sparsegrid::{
    combine_onto, l1_error_vs, robust_coefficients, CombinationTerm, Grid2, LevelPair, LevelSet,
};
use ulfm_sim::{Comm, Ctx, Error, Result};

use crate::checkpoint::CheckpointStore;
use crate::ckpt_async::AsyncCheckpointer;
use crate::config::{AppConfig, AppEvent, CombineMode, Technique};
use crate::gather::{
    binomial_combine, current_rank_of, gather_grid, recv_grid_into, send_grid, GridScratch,
};
use crate::layout::{Assignment, ProcLayout};
use crate::policy::RecoveryPolicy;
use crate::psolve::DistributedSolver;
use crate::reconstruct::{
    communicator_reconstruct_shrink, communicator_reconstruct_substitute,
    communicator_reconstruct_with, deferred_epoch_repair, detect_and_repair, ReconstructTimings,
};
use crate::recovery;
use crate::tags::TagSpace;
use crate::timeline::build_timeline;

/// Report keys the application deposits (see [`AppOutcome`]).
pub mod keys {
    /// Virtual makespan of the whole run (max over ranks), seconds.
    pub const T_TOTAL: &str = "t_total";
    /// Data recovery overhead (paper Fig. 9a component), max over ranks.
    pub const T_RECOVERY: &str = "t_recovery";
    /// Total checkpoint-writing time (CR; part of Fig. 9a's CR bar).
    pub const T_CKPT: &str = "t_ckpt_total";
    /// Failed-list creation time, cumulative over repairs (Fig. 8a).
    pub const T_LIST: &str = "t_list";
    /// Whole communicator-reconstruction time (Fig. 8b).
    pub const T_RECONSTRUCT: &str = "t_reconstruct";
    /// `OMPI_Comm_shrink` time (Table I).
    pub const T_SHRINK: &str = "t_shrink";
    /// `MPI_Comm_spawn_multiple` time (Table I).
    pub const T_SPAWN: &str = "t_spawn";
    /// `MPI_Intercomm_merge` time (Table I).
    pub const T_MERGE: &str = "t_merge";
    /// `OMPI_Comm_agree` time during repair (Table I).
    pub const T_AGREE: &str = "t_agree";
    /// Average l1 error of the combined solution vs the analytic solution
    /// (Fig. 10).
    pub const ERR_L1: &str = "err_l1";
    /// Number of process failures repaired.
    pub const N_FAILED: &str = "n_failed";
    /// World size of the run.
    pub const WORLD: &str = "world";
    /// Solve-phase time (max over ranks), excluding recovery/combination.
    pub const T_SOLVE: &str = "t_solve";
    /// Final rank→host map (hostfile index per world rank, in rank
    /// order) — the chaos oracles compare it against the no-failure run to
    /// prove recovery restored the paper's load balance.
    pub const RANK_HOSTS: &str = "rank_hosts";
    /// Final rank→grid map (grid id per world rank, in rank order).
    pub const RANK_GRIDS: &str = "rank_grids";
    /// Corrupt/torn checkpoint files skipped by restart fallback,
    /// summed over all checkpoint restores of the run. Healthy stores
    /// never set this key; the chaos O6 oracle checks it both ways.
    pub const CKPT_SKIPPED: &str = "ckpt_skipped_corrupt";
    /// Fault-injection corruption strikes that actually landed on a
    /// completed checkpoint file, summed over ranks. Failure detection
    /// races the planned write in real time (kills behave like real
    /// SIGKILLs), so a planned strike may be preempted by an early
    /// repair; the O6 oracle only demands a reported skip when this
    /// key shows the damage truly reached the disk.
    pub const CKPT_CORRUPT_APPLIED: &str = "ckpt_corrupt_applied";
    /// Original rank per final world rank, gathered only under the
    /// `ShrinkRedistribute` and `SpareSubstitute` policies (the O7
    /// policy-invariant oracle checks the membership contract with it;
    /// the respawn-family policies restore the identity map and skip the
    /// gather to keep the no-failure path bitwise-identical).
    pub const RANK_ORIG: &str = "rank_orig";
    /// Grid ids dropped for good under `ShrinkRedistribute` (rank-0
    /// list; the final combination excluded them via robust
    /// coefficients).
    pub const DROPPED_GRIDS: &str = "dropped_grids";
    /// Set to 1 by rank 0 when the run exited through cooperative
    /// cancellation (the campaign service reads it to classify the job
    /// as cancelled rather than failed).
    pub const CANCELLED: &str = "cancelled";
}

/// Marker type documenting the report-key contract of [`run_app`]: results
/// are deposited on the run blackboard under [`keys`].
#[derive(Debug, Clone, Copy)]
pub struct AppOutcome;

/// Detection points: for Checkpoint/Restart, every checkpoint period and
/// the end; otherwise just the end ("the 2D-advection solver is run for
/// 2^13 timesteps at which point failure detection is tested", §III).
pub(crate) fn detection_points(cfg: &AppConfig) -> Vec<u64> {
    let steps = cfg.steps();
    let mut v = Vec::new();
    if cfg.technique.has_periodic_protection() {
        let p = cfg.ckpt_period();
        let mut s = p;
        while s < steps {
            v.push(s);
            s += p;
        }
    }
    v.push(steps);
    v
}

/// Gather this rank's sub-grid to its group root: the owned block is
/// staged through the shared `block_buf` (no per-call allocation), then
/// group-gathered. One helper serves the periodic checkpoint write and
/// the final combination identically. Returns `Some(grid)` on the group
/// root, `None` elsewhere.
fn gather_own_grid(
    ctx: &Ctx,
    group: &Comm,
    layout: &ProcLayout,
    my: Assignment,
    solver: &DistributedSolver,
    block_buf: &mut Vec<f64>,
) -> Result<Option<Grid2>> {
    solver.local_block_into(block_buf);
    gather_grid(ctx, group, layout.group(my.grid), solver.level(), block_buf)
}

/// Drain the async checkpoint queue if this rank runs one (group roots
/// under CR with `ckpt_async`); a no-op everywhere else. Called before
/// every checkpoint restore and at end of run, so a restart only ever
/// sees fully landed files and the store can be cleared safely.
fn drain_ckpt(ctx: &Ctx, ck: &Option<AsyncCheckpointer>) -> Result<()> {
    match ck {
        Some(ck) => ck.drain(ctx).map_err(|e| Error::InvalidArg(format!("checkpoint drain: {e}"))),
        None => Ok(()),
    }
}

/// Split the world into per-grid groups. Idle spare ranks (`my` is
/// `None`, `SpareSubstitute` only) take the colour one past the last grid
/// so they land in a group of their own and the split stays collective.
pub(crate) fn build_group_by_color(
    ctx: &Ctx,
    world: &Comm,
    grid: Option<usize>,
    n_grids: usize,
) -> Result<Comm> {
    let color = grid.map_or(n_grids as i64, |g| g as i64);
    world
        .split(ctx, Some(color), world.rank() as i64)?
        .ok_or_else(|| Error::InvalidArg("every rank belongs to a grid group".into()))
}

/// [`build_group_by_color`] keyed by the 2D assignment.
fn build_group(ctx: &Ctx, world: &Comm, my: Option<Assignment>, n_grids: usize) -> Result<Comm> {
    build_group_by_color(ctx, world, my.map(|m| m.grid), n_grids)
}

/// After a `SpareSubstitute` repair, the promote split may have moved this
/// rank into a grid slot it did not own before (a spare taking over a
/// failed active slot, or — on the spawn fallback — back to its own).
/// Re-derive the assignment from the *current* world rank and rebuild the
/// solver if the owned block changed; the subsequent data recovery
/// restores its state. Other policies never move a surviving rank, so
/// this is a no-op for them.
fn refresh_slot(
    ctx: &Ctx,
    cfg: &AppConfig,
    layout: &ProcLayout,
    world: &Comm,
    dt: f64,
    my: &mut Option<Assignment>,
    solver: &mut Option<DistributedSolver>,
) {
    if cfg.recovery_policy != RecoveryPolicy::SpareSubstitute {
        return;
    }
    let _ = ctx;
    let new = layout.try_assignment(world.rank());
    if new != *my {
        *my = new;
        *solver = new.map(|m| {
            DistributedSolver::new(
                cfg.problem,
                layout.system().grid(m.grid).level,
                dt,
                layout.group(m.grid),
                m.local,
            )
            .with_kernel(cfg.kernel)
        });
    }
}

/// Post-reconstruction phase with a **commit protocol** that survives
/// failures striking *during the data recovery itself*. One attempt is:
/// broadcast the failure metadata (rank 0 never fails, by the paper's
/// constraint), rebuild the per-grid group communicators, and run the
/// technique's data recovery. The attempt's outcome is then put to a
/// fault-tolerant `OMPI_Comm_agree` vote; any rank that observed a
/// recoverable error revokes the world (and its attempt group, releasing
/// peers blocked in group collectives or cross-group point-to-point) and
/// votes no, in which case the world is reconstructed again — absorbing
/// the new casualty — and the recovery is retried from the top with the
/// enlarged failed-rank list. Recovery (restore + recompute) is
/// idempotent, so re-running it is safe.
///
/// Returns the (possibly re-reconstructed) world, the detection step, the
/// new group communicator, this rank's recovery time, and the bcast
/// failed-rank list the recovery actually used.
#[allow(clippy::too_many_arguments)]
fn recover_with_commit(
    ctx: &Ctx,
    cfg: &AppConfig,
    layout: &ProcLayout,
    mut world: Comm,
    my: &mut Option<Assignment>,
    solver: &mut Option<DistributedSolver>,
    dt: f64,
    store: &CheckpointStore,
    buddy_store: &mut recovery::BuddyStore,
    mut known: Option<(u64, Vec<usize>)>,
    timings: &mut ReconstructTimings,
) -> Result<(Comm, u64, Comm, f64, Vec<usize>)> {
    let n_grids = layout.system().grids().len();
    loop {
        let _scope = ctx.recovery_scope();
        let mut group_attempt: Option<Comm> = None;
        let attempt: Result<(u64, f64, Vec<usize>)> = (|| {
            let meta: Option<Vec<u64>> = if world.rank() == 0 {
                // Cross-rank protocol assumption, not a local invariant:
                // slot 0 holds metadata because the controller never
                // fails (the paper's standing constraint) and children
                // are never spawned into slot 0. If adversarial fault
                // timing ever violates that — the exact regime the chaos
                // engine probes — fail this rank's attempt with an error
                // (recorded and isolated) instead of panicking: a retry
                // cannot manufacture the missing metadata, so this is a
                // hard error, not a vote-no.
                let Some((d, failed)) = known.clone() else {
                    return Err(Error::InvalidArg(
                        "recovery metadata missing on the controller rank".into(),
                    ));
                };
                let mut v = vec![d];
                v.extend(failed.iter().map(|&r| r as u64));
                Some(v)
            } else {
                None
            };
            let meta = world.bcast(ctx, 0, meta.as_deref())?;
            let at_step = meta[0];
            let failed: Vec<usize> = meta[1..].iter().map(|&r| r as usize).collect();
            let group = &*group_attempt.insert(build_group(ctx, &world, *my, n_grids)?);
            // Even a failed attempt spent restore time — attribute it.
            // Idle spares hold no grid data; they skip the technique's
            // recovery (which is group collectives plus point-to-point
            // between grid owners) and just keep the world collectives
            // above/below company.
            let t_res0 = ctx.now();
            let recovered = match (*my, solver.as_mut()) {
                (Some(m), Some(sv)) => recovery::recover(
                    ctx,
                    cfg,
                    layout,
                    &world,
                    group,
                    m,
                    sv,
                    store,
                    buddy_store,
                    &failed,
                    at_step,
                ),
                _ => Ok(recovery::RecoveryStats::default()),
            };
            timings.t_restore += ctx.now() - t_res0;
            let stats = recovered?;
            Ok((at_step, stats.t_recovery, failed))
        })();
        let ok = match &attempt {
            Ok(_) => true,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => false,
            Err(e) => return Err(e.clone()),
        };
        if !ok {
            // Release every peer still blocked in this attempt's
            // collectives or cross-group transfers, then vote no.
            world.revoke(ctx);
            if let Some(g) = &group_attempt {
                g.revoke(ctx);
            }
        }
        let t_ack0 = ctx.now();
        world.failure_ack(ctx);
        timings.t_ack += ctx.now() - t_ack0;
        let mut flag = ok;
        let t_agree0 = ctx.now();
        let _ = world.agree(ctx, &mut flag); // fault-tolerant; flag = AND
        timings.t_agree += ctx.now() - t_agree0;
        if flag {
            // A true vote normally implies our own attempt succeeded: the
            // agree is the AND over the survivors and we contributed
            // `ok`. The exception is adversarial timing — a failure
            // disrupting the agree op itself can leave `flag` holding the
            // local vote instead of the deposited agreement — so a
            // commit with a locally failed attempt falls through to the
            // repair-and-retry tail (recovery is idempotent; one more
            // round is always safe) rather than asserting. When the
            // attempt really did succeed its group exists by
            // construction: the closure inserts `group_attempt` before
            // it can return Ok.
            if let (Ok((at_step, trec, failed)), Some(group)) = (attempt, group_attempt) {
                return Ok((world, at_step, group, trec, failed));
            }
        }
        // Someone failed mid-recovery: repair the world, fold the new
        // casualties into the metadata, and retry. Only the respawn-family
        // repairs apply here — `ShrinkRedistribute` never reaches this
        // function, and a `DeferRepair` epoch has already restored the
        // original numbering, so its mid-recovery casualties are repaired
        // by the ordinary respawn protocol.
        let mut round = ReconstructTimings::default();
        world = match cfg.recovery_policy {
            RecoveryPolicy::SpareSubstitute => communicator_reconstruct_substitute(
                ctx,
                world,
                layout.world_size(),
                cfg.respawn_policy,
                &mut round,
            )?,
            _ => communicator_reconstruct_with(
                ctx,
                Some(world),
                None,
                cfg.respawn_policy,
                &mut round,
            )?,
        };
        refresh_slot(ctx, cfg, layout, &world, dt, my, solver);
        if let Some((_, failed)) = known.as_mut() {
            for &r in &round.failed_ranks {
                if !failed.contains(&r) {
                    failed.push(r);
                }
            }
            failed.sort_unstable();
        }
        merge_timings(timings, &round);
    }
}

/// Execute the fault-tolerant application on this rank. Panics (recording
/// an app error in the run report) on unrecoverable protocol failures;
/// deposits results under [`keys`] via the rank-0 controller.
pub fn run_app(cfg: &AppConfig, ctx: &mut Ctx) {
    if cfg.dim >= 3 {
        return crate::app_nd::run_app_nd(cfg, ctx);
    }
    match run_app_inner(cfg, ctx) {
        Ok(()) => {}
        // A respawned child whose repair round was abandoned by a further
        // failure: its successor is already being spawned by the
        // survivors' restarted recovery loop; exiting quietly is the
        // correct behaviour, not an error.
        Err(Error::Orphaned) => {}
        // Cooperative cancellation: every rank exits together at an epoch
        // boundary after agreeing on the cancel flag; rank 0 has already
        // reported `keys::CANCELLED`, so this is a quiet non-error exit.
        Err(Error::Cancelled) => {}
        Err(e) => panic!("ftsg application failed: {e}"),
    }
}

/// Emit a live observer event from rank 0 (a no-op on other ranks and
/// without an observer configured).
pub(crate) fn notify(cfg: &AppConfig, world: &Comm, ev: AppEvent) {
    if world.rank() == 0 {
        if let Some(obs) = &cfg.observer {
            obs.emit(ev);
        }
    }
}

/// Attach a protocol-stage label to an error so an unrecoverable failure
/// reports *where* in the application flow it happened.
pub(crate) fn stage<T>(r: Result<T>, which: &str, _ctx: &Ctx) -> Result<T> {
    r.map_err(|e| match e {
        Error::InvalidArg(msg) => Error::InvalidArg(format!("[{which}] {msg}")),
        other => Error::InvalidArg(format!("[{which}] {other}")),
    })
}

fn run_app_inner(cfg: &AppConfig, ctx: &mut Ctx) -> Result<()> {
    let layout = ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
    let steps = cfg.steps();
    let tg = TimeGrid::for_system(&cfg.problem, cfg.n, steps, 0.4);
    let store = CheckpointStore::new(&cfg.ckpt_dir)
        .map_err(|e| Error::InvalidArg(format!("checkpoint dir: {e}")))?
        .with_corruption(cfg.ckpt_corruption.clone());

    // Background checkpoint writer, created lazily by the first healthy
    // CR checkpoint on a group root (async mode only). If the writer
    // stage ever becomes unusable, `ckpt_degraded` pins this rank to the
    // synchronous write path for the rest of the run.
    let mut async_ckpt: Option<AsyncCheckpointer> = None;
    let mut ckpt_degraded = false;

    let child = ctx.is_spawned();
    let mut repair_timings = ReconstructTimings::default();
    // In-memory buddy checkpoints this rank holds for partner grids
    // (Buddy Checkpoint technique only; respawned ranks start empty).
    let mut buddy_store: recovery::BuddyStore = Default::default();
    // Grids that lost data at the *final* detection point; the Alternate
    // Combination's final solution is the robust combination over the
    // survivors ("all the surviving sub-grids, including those on the
    // extra layers, are assigned new coefficients for the combination").
    let mut final_lost: Vec<usize> = Vec::new();
    // Ranks that failed at the *final* detection step (or later, during
    // the combination), accumulated across recovery rounds: rank 0 folds
    // them into the metadata broadcast of every subsequent recovery so
    // that late-spawned children derive the same `final_lost` set.
    let mut end_failed: Vec<usize> = Vec::new();
    let mut t_rec_local = 0.0_f64;
    let mut t_ckpt_local = 0.0_f64;
    let mut t_solve_local = 0.0_f64;

    // ---- policy state. ----
    let pol = cfg.recovery_policy;
    // Grid-owning world prefix `W`; ranks `>= active_slots` are idle
    // spares (`SpareSubstitute` only).
    let active_slots = layout.world_size();
    let n_grids = layout.system().grids().len();
    // Current world rank → original rank. `None` means the identity (the
    // world was never shrunk); set only by the shrink-family repairs.
    let mut members: Option<Vec<usize>> = None;
    // Cumulative dead under the shrink-family policies, original ranks.
    let mut deferred: Vec<usize> = Vec::new();
    // Grids dropped for good under `ShrinkRedistribute` (= the grids
    // broken by `deferred`).
    let mut dropped: Vec<usize> = Vec::new();

    // ---- world acquisition (original vs respawned child). ----
    let mut world: Comm;
    let mut current_step: u64;
    let mut my: Option<Assignment>;
    let mut solver: Option<DistributedSolver>;
    let mut group: Comm;

    if child {
        let parent = ctx.parent().expect("spawned process has a parent intercommunicator");
        // NOTE: children never arm fault sites — a replacement re-arming
        // its predecessor's operation counters would strike again at the
        // same index, killing every successive replacement forever.
        world = match communicator_reconstruct_with(
            ctx,
            None,
            Some(parent),
            cfg.respawn_policy,
            &mut repair_timings,
        ) {
            Ok(w) => w,
            // Our repair round was abandoned mid-flight; exit cleanly.
            Err(Error::Orphaned) => return Err(Error::Orphaned),
            Err(e) => return Err(Error::InvalidArg(format!("[child-reconstruct] {e}"))),
        };
        // Children are only spawned into grid slots (respawn, the defer
        // epoch batch, or the substitute fallback) — never as spares.
        my = Some(layout.assignment(world.rank()));
        solver = my.map(|m| {
            DistributedSolver::new(
                cfg.problem,
                layout.system().grid(m.grid).level,
                tg.dt,
                layout.group(m.grid),
                m.local,
            )
            .with_kernel(cfg.kernel)
        });
        let (w, d, g, trec, failed) = stage(
            recover_with_commit(
                ctx,
                cfg,
                &layout,
                world,
                &mut my,
                &mut solver,
                tg.dt,
                &store,
                &mut buddy_store,
                None,
                &mut repair_timings,
            ),
            "child-post-recovery",
            ctx,
        )?;
        world = w;
        group = g;
        current_step = d;
        t_rec_local += trec;
        if d == steps {
            extend_lost(&mut final_lost, &layout, &failed);
            end_failed = failed;
        }
    } else {
        world = ctx.initial_world().expect("original process has a world");
        let expected = cfg.world_size(layout.world_size());
        if world.size() != expected {
            return Err(Error::InvalidArg(format!(
                "world size {} does not match layout size {} (+ {} spares)",
                world.size(),
                layout.world_size(),
                cfg.spares
            )));
        }
        // `None` on the idle spare tail under `SpareSubstitute`.
        my = layout.try_assignment(world.rank());
        // Arm this rank's operation-site and during-recovery fault
        // triggers (step-boundary strikes stay polled in the main loop).
        // Only original ranks arm — see the child branch.
        ctx.arm_fault_sites(&cfg.plan, world.rank());
        solver = my.map(|m| {
            DistributedSolver::new(
                cfg.problem,
                layout.system().grid(m.grid).level,
                tg.dt,
                layout.group(m.grid),
                m.local,
            )
            .with_kernel(cfg.kernel)
        });
        group = stage(build_group(ctx, &world, my, n_grids), "initial-split", ctx)?;
        current_step = 0;
    }

    // This rank's original identity: fixed for the whole run, used for
    // step-strike polling (world ranks shift under the shrink-family
    // policies; under respawn it equals the world rank throughout).
    let orig_rank = world.rank();

    // ---- main loop over detection segments. ----
    let dpoints = detection_points(cfg);
    let mut group_broken = false;
    // Failure events this run repaired, as seen from rank 0 (the only
    // rank guaranteed to survive every event end-to-end); indexes the
    // per-event recovery timelines.
    let mut event_idx = 0usize;
    // Reused across every gather below — the owned block is copied into
    // this buffer instead of a fresh Vec per checkpoint/combine.
    let mut block_buf: Vec<f64> = Vec::new();
    while current_step < steps {
        // ---- epoch boundary: observer tick + cooperative cancellation
        // poll. Every rank arrives here together (children join at the
        // loop top after their post-recovery hand-off; survivors finish
        // the repair arm of the previous iteration first), so both the
        // poll broadcast and the agree below are collective. ----
        notify(cfg, &world, AppEvent::Epoch { step: current_step, steps });
        if let Some(flag) = &cfg.cancel {
            let mine = if world.rank() == 0 {
                Some(vec![flag.load(std::sync::atomic::Ordering::Relaxed) as u64])
            } else {
                None
            };
            // A failure can strike the poll broadcast itself; treat a
            // disrupted poll as "no cancel seen" and let the
            // fault-tolerant agree make the verdict uniform. The flag is
            // monotonic, so a cancel masked by a failure this epoch is
            // simply observed at the next one.
            let seen = match world.bcast(ctx, 0, mine.as_deref()) {
                Ok(v) => v[0] != 0,
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => false,
                Err(e) => return Err(Error::InvalidArg(format!("[cancel-poll] {e}"))),
            };
            let mut cancel = seen;
            let _ = world.agree(ctx, &mut cancel); // fault-tolerant; AND
            if cancel {
                if world.rank() == 0 {
                    ctx.report_f64(keys::CANCELLED, 1.0);
                }
                return Err(Error::Cancelled);
            }
        }
        let dp = dpoints
            .iter()
            .copied()
            .find(|&d| d > current_step)
            .expect("detection points end at `steps`");

        // Solve this segment. A broken group sits the stepping out (its
        // data will be recovered wholesale — or, under the shrink-family
        // policies, its grid is already dropped), but the failure
        // generator keeps firing: a planned kill strikes at its step
        // regardless of what the rank is doing, like a real SIGKILL.
        // Strikes are planned by *original* rank — world ranks shift
        // under the shrink-family policies.
        let t_solve0 = ctx.now();
        for s in current_step..dp {
            if cfg.plan.strikes(orig_rank, s) {
                ctx.die();
            }
            if group_broken {
                continue;
            }
            let Some(sv) = solver.as_mut() else {
                continue; // idle spare
            };
            match sv.step(ctx, &group) {
                Ok(()) => {}
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                    // Propagate the failure to the rest of the group:
                    // members whose halo partners are alive would
                    // otherwise wait forever on neighbours that have
                    // stopped stepping. This is exactly what
                    // `OMPI_Comm_revoke` exists for.
                    group.revoke(ctx);
                    group_broken = true;
                }
                Err(e) => return Err(e),
            }
        }
        t_solve_local += ctx.now() - t_solve0;
        current_step = dp;
        // Failures injected "at some point before the combination": a plan
        // entry at `steps` strikes right before the final detection.
        if dp == steps && cfg.plan.strikes(orig_rank, steps) {
            ctx.die();
        }

        // Detection + (if needed) reconstruction — the Fig. 3 protocol,
        // with the repair action chosen by the recovery policy.
        // `round` accumulates this event's timings only (detection,
        // reconstruction, and the commit-protocol recovery below), so the
        // window starting here can be broken into per-phase durations.
        let t_event0 = ctx.now();
        let mut round = ReconstructTimings::default();
        world = stage(
            detect_and_repair(
                ctx,
                world,
                pol,
                cfg.respawn_policy,
                active_slots,
                &mut members,
                &mut round,
            ),
            "detect-reconstruct",
            ctx,
        )?;
        let repaired = !round.failed_ranks.is_empty();
        if repaired && pol.shrinks_mid_run() {
            // Shrink-family mid-run repair: nothing was spawned. Fold the
            // new dead (original numbering) into the cumulative set, drop
            // their grids, and keep going on the survivors. Survivors of
            // a broken grid sit out — for good under shrink, until the
            // epoch batch under defer. Healthy groups keep their old
            // group communicator (its membership is untouched).
            for &r in &round.failed_ranks {
                if !deferred.contains(&r) {
                    deferred.push(r);
                }
            }
            deferred.sort_unstable();
            dropped = layout.broken_grids(&deferred);
            group_broken = my.is_some_and(|m| dropped.contains(&m.grid));
            if world.rank() == 0 {
                ctx.report_timeline(build_timeline(event_idx, dp, t_event0, ctx.now(), &round));
            }
            event_idx += 1;
            merge_timings(&mut repair_timings, &round);
            notify(cfg, &world, AppEvent::Recovered { step: dp, ranks: round.failed_ranks.len() });
        } else if repaired {
            let mut known_failed = round.failed_ranks.clone();
            if world.rank() == 0 && dp == steps {
                // End-of-run failures accumulate across recovery rounds so
                // late-spawned children compute the same lost-grid set as
                // the survivors.
                for &r in &end_failed {
                    if !known_failed.contains(&r) {
                        known_failed.push(r);
                    }
                }
                known_failed.sort_unstable();
            }
            // Recovery barrier: every in-flight async checkpoint must
            // land before any restore reads the store (counted as
            // checkpoint time — it is the write's exposed tail).
            let t_drain0 = ctx.now();
            stage(drain_ckpt(ctx, &async_ckpt), "ckpt-drain", ctx)?;
            t_ckpt_local += ctx.now() - t_drain0;
            // A promote split may have moved this rank into a failed slot.
            refresh_slot(ctx, cfg, &layout, &world, tg.dt, &mut my, &mut solver);
            let known = Some((dp, known_failed));
            let (w, d, g, trec, failed) = stage(
                recover_with_commit(
                    ctx,
                    cfg,
                    &layout,
                    world,
                    &mut my,
                    &mut solver,
                    tg.dt,
                    &store,
                    &mut buddy_store,
                    known,
                    &mut round,
                ),
                "post-recovery",
                ctx,
            )?;
            debug_assert_eq!(d, dp);
            world = w;
            group = g;
            t_rec_local += trec;
            group_broken = false;
            if world.rank() == 0 {
                ctx.report_timeline(build_timeline(event_idx, dp, t_event0, ctx.now(), &round));
            }
            event_idx += 1;
            merge_timings(&mut repair_timings, &round);
            notify(cfg, &world, AppEvent::Recovered { step: dp, ranks: round.failed_ranks.len() });
            if d == steps {
                extend_lost(&mut final_lost, &layout, &failed);
                end_failed = failed;
            }
        } else if cfg.technique == Technique::CheckpointRestart && dp < steps && !group_broken {
            // Healthy checkpoint write ("failure detection is tested prior
            // to initiating the checkpoint write"). A rank sitting out
            // (broken grid under a shrink-family policy) and the idle
            // spares skip the write.
            if let (Some(m), Some(sv)) = (my, solver.as_ref()) {
                let t0 = ctx.now();
                match gather_own_grid(ctx, &group, &layout, m, sv, &mut block_buf) {
                    Ok(full) => {
                        if let Some(g) = full {
                            let mut queued = false;
                            if cfg.ckpt_async && !ckpt_degraded {
                                // Snapshot + hand-off; T_IO is charged as
                                // deferred cost and settled at the drains.
                                let ck = async_ckpt
                                    .get_or_insert_with(|| AsyncCheckpointer::new(store.clone()));
                                match ck.enqueue(ctx, m.grid, current_step, &g) {
                                    Ok(_) => queued = true,
                                    Err(_) => {
                                        // The writer stage is unusable (its
                                        // thread is gone). Degrade to the
                                        // synchronous critical-path write for
                                        // the rest of the run instead of
                                        // failing the rank: slower, still
                                        // correct. Dropping the checkpointer
                                        // joins the dead thread.
                                        ckpt_degraded = true;
                                        async_ckpt = None;
                                    }
                                }
                            }
                            if !queued {
                                let bytes = store.write(m.grid, current_step, &g).map_err(|e| {
                                    Error::InvalidArg(format!("checkpoint write: {e}"))
                                })?;
                                ctx.disk_write(bytes);
                            }
                        }
                    }
                    Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                        // A group member died mid-checkpoint. This checkpoint
                        // is lost (recovery will fall back to an older one and
                        // recompute further); mark the group broken and let
                        // the next detection point repair.
                        group.revoke(ctx);
                        world.revoke(ctx);
                        group_broken = true;
                    }
                    Err(e) => return Err(e),
                }
                t_ckpt_local += ctx.now() - t0;
            }
        } else if cfg.technique == Technique::BuddyCheckpoint && dp < steps && members.is_none() {
            // Healthy buddy exchange: the in-memory, diskless analogue.
            // Suspended for the rest of the run once a shrink-family
            // repair removed ranks (`members` set): the exchange is a
            // world-wide protocol keyed by original roots, and a dropped
            // grid's root may simply be gone. `members` flips identically
            // on every survivor, so the suspension is collective.
            if !group_broken {
                if let (Some(m), Some(sv)) = (my, solver.as_ref()) {
                    let t0 = ctx.now();
                    match recovery::buddy_exchange(
                        ctx,
                        &layout,
                        &world,
                        &group,
                        m,
                        sv,
                        current_step,
                        &mut buddy_store,
                    ) {
                        Ok(()) => {}
                        Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                            // Release any peer blocked on the dead/errored ranks.
                            world.revoke(ctx);
                            if !group.failed_ranks().is_empty() || group.is_revoked() {
                                // Our own group lost someone: sit the next segment
                                // out and let the detection point repair us.
                                group.revoke(ctx);
                                group_broken = true;
                            }
                            // Otherwise a *cross-group* buddy failed mid-exchange:
                            // our grid is intact, so skip this protection round
                            // (the buddy store keeps its previous copy) and keep
                            // stepping.
                        }
                        Err(e) => return Err(e),
                    }
                    t_ckpt_local += ctx.now() - t0;
                }
            }
        }

        // ---- the `DeferRepair` lazy batch: at the combination epoch,
        // respawn every accumulated dead in one round and run the
        // technique's data recovery with the full failed set. From here
        // on the run is indistinguishable from `Respawn`. ----
        if pol == RecoveryPolicy::DeferRepair && dp == steps && !deferred.is_empty() {
            let t_event0 = ctx.now();
            let mut round = ReconstructTimings::default();
            let t_drain0 = ctx.now();
            stage(drain_ckpt(ctx, &async_ckpt), "ckpt-drain", ctx)?;
            t_ckpt_local += ctx.now() - t_drain0;
            let m = members.take().unwrap_or_else(|| (0..world.size()).collect());
            world = stage(
                deferred_epoch_repair(ctx, world, m, &mut deferred, cfg.respawn_policy, &mut round),
                "defer-epoch-repair",
                ctx,
            )?;
            // Everyone repaired this epoch: the deferred set plus any
            // casualty of the batch itself, plus earlier end-of-run
            // rounds — children must derive the same lost-grid set.
            let mut known_failed = round.failed_ranks.clone();
            if world.rank() == 0 {
                for &r in &end_failed {
                    if !known_failed.contains(&r) {
                        known_failed.push(r);
                    }
                }
                known_failed.sort_unstable();
            }
            let (w, d, g, trec, failed) = stage(
                recover_with_commit(
                    ctx,
                    cfg,
                    &layout,
                    world,
                    &mut my,
                    &mut solver,
                    tg.dt,
                    &store,
                    &mut buddy_store,
                    Some((steps, known_failed)),
                    &mut round,
                ),
                "defer-epoch-recovery",
                ctx,
            )?;
            debug_assert_eq!(d, steps);
            world = w;
            group = g;
            t_rec_local += trec;
            group_broken = false;
            deferred.clear();
            dropped.clear();
            if world.rank() == 0 {
                ctx.report_timeline(build_timeline(event_idx, steps, t_event0, ctx.now(), &round));
            }
            event_idx += 1;
            merge_timings(&mut repair_timings, &round);
            notify(
                cfg,
                &world,
                AppEvent::Recovered { step: steps, ranks: round.failed_ranks.len() },
            );
            extend_lost(&mut final_lost, &layout, &failed);
            end_failed = failed;
        }
    }

    // ---- end-of-run drain barrier: the last checkpoint may still be in
    // flight; it must land (and its un-hidden disk time must be paid)
    // before any simulated-loss restore reads the store and before the
    // store is cleared. ----
    {
        let t_drain0 = ctx.now();
        stage(drain_ckpt(ctx, &async_ckpt), "ckpt-drain-final", ctx)?;
        t_ckpt_local += ctx.now() - t_drain0;
    }
    // Every write (and any fault-injected strike on it) has landed by
    // now; tell the restart-integrity oracle which strikes really did.
    let corrupt_applied = store.corruptions_applied();
    if corrupt_applied > 0 {
        ctx.report_add(keys::CKPT_CORRUPT_APPLIED, corrupt_applied as f64);
    }

    // ---- simulated grid losses (paper Figs. 9 and 10): run the data
    // recovery path as if each listed grid had lost a process — no real
    // kill, no communicator reconstruction ("non-real (simulated)",
    // §III). ----
    if !cfg.simulated_lost_grids.is_empty() {
        let fabricated: Vec<usize> = cfg
            .simulated_lost_grids
            .iter()
            .map(|&g| {
                let info = layout.group(g);
                // Never fabricate rank 0 as failed (controller constraint).
                info.first + info.size - 1
            })
            .collect();
        debug_assert!(!fabricated.contains(&0), "rank 0 cannot be a (simulated) victim");
        // The recovery protocol is group collectives plus point-to-point
        // between grid owners; idle spares have nothing to do.
        if let (Some(m), Some(sv)) = (my, solver.as_mut()) {
            let stats = recovery::recover(
                ctx,
                cfg,
                &layout,
                &world,
                &group,
                m,
                sv,
                &store,
                &mut buddy_store,
                &fabricated,
                steps,
            )?;
            t_rec_local += stats.t_recovery;
        }
        for g in layout.broken_grids(&fabricated) {
            if !final_lost.contains(&g) {
                final_lost.push(g);
            }
        }
        final_lost.sort_unstable();
    }

    // ---- combination & measurement. ----
    // Under Alternate Combination with end-of-run losses, the final
    // combination *is* the robust combination over the survivors (the
    // "compulsory stage" whose sample also served as recovered data);
    // otherwise it is the classical Eq.-1 combination, using recovered
    // data where grids were restored.
    //
    // The whole phase runs inside a retry loop: a failure striking during
    // the combination or the final reductions revokes the comms, repairs
    // the world, re-runs data recovery for the new casualties, and
    // restarts the phase from scratch on the fresh communicators (the
    // combination is pure, so re-running it is safe).
    // (err, t_rec_max, t_ckpt_max, t_solve_max, t_end, rank_hosts, rank_grids, rank_orig)
    type CombineOutcome = (f64, f64, f64, f64, f64, Vec<f64>, Vec<f64>, Vec<f64>);
    // Under `ShrinkRedistribute` the dropped grids are lost for good:
    // fold them into the final lost set so the combination recomputes its
    // coefficients over the survivors (for *every* technique — there is
    // no restored data to combine classically).
    if pol == RecoveryPolicy::ShrinkRedistribute {
        for &g in &dropped {
            if !final_lost.contains(&g) {
                final_lost.push(g);
            }
        }
        final_lost.sort_unstable();
    }
    let sys = layout.system();
    let tags = TagSpace::for_layout(&layout);
    let (err, t_rec_max, t_ckpt_max, t_solve_max, t_end, rank_hosts, rank_grids, rank_orig) = loop {
        let attempt: Result<CombineOutcome> = (|| {
            let use_robust = match pol {
                // Dropped grids were never repaired: robust coefficients
                // are the only way to a solution, whatever the technique.
                RecoveryPolicy::ShrinkRedistribute => !final_lost.is_empty(),
                // Repaired-slot policies restored exact (CR/BC) or
                // near-exact (RC) data; only Alternate Combination's
                // end-of-run losses combine robustly.
                _ => cfg.technique == Technique::AlternateCombination && !final_lost.is_empty(),
            };
            let (combine_ids, combine_coeffs): (Vec<usize>, Vec<f64>) = if use_robust {
                // A level only counts as lost when *no* surviving grid
                // holds it: under the Duplicates layout a dropped
                // diagonal whose duplicate survives is still covered.
                let surviving: LevelSet = sys
                    .grids()
                    .iter()
                    .filter(|g| !final_lost.contains(&g.id))
                    .map(|g| g.level)
                    .collect();
                let lost_levels: Vec<LevelPair> = final_lost
                    .iter()
                    .map(|&b| sys.grid(b).level)
                    .filter(|lv| !surviving.contains(lv))
                    .collect();
                let cmap = robust_coefficients(&sys.classical_downset(), &lost_levels, &surviving);
                // One combining grid per level, in grid-id order (the
                // diagonal precedes its duplicate, so the duplicate only
                // stands in when the diagonal is gone) — a duplicate pair
                // must not be double-counted.
                let mut ids: Vec<usize> = Vec::new();
                let mut covered: Vec<LevelPair> = Vec::new();
                for g in sys.grids() {
                    if final_lost.contains(&g.id)
                        || cmap.get(&g.level).copied().unwrap_or(0) == 0
                        || covered.contains(&g.level)
                    {
                        continue;
                    }
                    covered.push(g.level);
                    ids.push(g.id);
                }
                let coeffs = ids.iter().map(|&i| cmap[&sys.grid(i).level] as f64).collect();
                (ids, coeffs)
            } else {
                let ids = sys.combination_ids();
                let coeffs = ids.iter().map(|&i| sys.classical_coefficient(i) as f64).collect();
                (ids, coeffs)
            };
            // A dropped grid never combines (it is in `final_lost`), so a
            // sitting-out survivor is excluded via `combine_ids` already;
            // `group_broken` and the spare guard make the exclusion
            // explicit.
            let combining = !group_broken && my.is_some_and(|m| combine_ids.contains(&m.grid));
            let mut my_full: Option<Grid2> = None;
            if combining {
                let m = my.expect("combining rank owns a grid");
                let sv = solver.as_ref().expect("combining rank runs a solver");
                my_full = gather_own_grid(ctx, &group, &layout, m, sv, &mut block_buf)?;
            }
            let target = sys.min_level();
            let combined: Option<Grid2> = match cfg.combine_mode {
                CombineMode::Central => {
                    // Reference path: every leader ships its whole grid to
                    // the controller, which left-folds the combination.
                    // (Rank 0 is always original rank 0 — the members map
                    // never drops it.)
                    if let Some(g) = &my_full {
                        if world.rank() != 0 {
                            let gid = my.expect("combining rank owns a grid").grid;
                            send_grid(ctx, &world, 0, tags.combine + gid as i32, g)?;
                        }
                    }
                    if world.rank() == 0 {
                        let mut scratch = GridScratch::default();
                        let mut sources: Vec<(f64, Grid2)> = Vec::new();
                        for (&gid, &coeff) in combine_ids.iter().zip(&combine_coeffs) {
                            // Layout roots are original ranks; translate to
                            // the current world (a surviving grid's root is
                            // alive, or the grid would be in the lost set).
                            let src = current_rank_of(layout.root_of(gid), members.as_deref())
                                .ok_or_else(|| {
                                    Error::InvalidArg(format!(
                                        "combining grid {gid}'s root is not in the shrunken world"
                                    ))
                                })?;
                            let grid = if src == world.rank() {
                                // Each grid id is combined exactly once, so
                                // the gathered grid can be moved, not cloned.
                                my_full.take().expect("controller gathered its own grid")
                            } else {
                                recv_grid_into(
                                    ctx,
                                    &world,
                                    src,
                                    tags.combine + gid as i32,
                                    &mut scratch,
                                )?
                            };
                            sources.push((coeff, grid));
                        }
                        let terms: Vec<CombinationTerm> = sources
                            .iter()
                            .map(|(c, g)| CombinationTerm { coeff: *c, grid: g })
                            .collect();
                        let combined = combine_onto(target, &terms);
                        ctx.compute_cells((terms.len() * target.points()) as u64);
                        Some(combined)
                    } else {
                        None
                    }
                }
                CombineMode::Tree => {
                    // Binomial reduction tree over the group leaders, in
                    // combination-term order: each leader materializes its
                    // own term on the target level, then partially combined
                    // grids flow down a log-depth tree (bitwise equal to
                    // `combine_binomial` of the same ordered term list).
                    // Layout roots are original ranks; translate each to
                    // the current (possibly shrunken) world.
                    let leaders: Vec<usize> = combine_ids
                        .iter()
                        .map(|&gid| {
                            current_rank_of(layout.root_of(gid), members.as_deref()).ok_or_else(
                                || {
                                    Error::InvalidArg(format!(
                                        "combining grid {gid}'s leader is not in the shrunken world"
                                    ))
                                },
                            )
                        })
                        .collect::<Result<_>>()?;
                    let part = match my_full.take() {
                        Some(g) => {
                            let mg = my.expect("combining rank owns a grid").grid;
                            let k = combine_ids
                                .iter()
                                .position(|&gid| gid == mg)
                                .expect("leader's grid is a combination term");
                            let term = CombinationTerm { coeff: combine_coeffs[k], grid: &g };
                            let p = combine_onto(target, std::slice::from_ref(&term));
                            ctx.compute_cells(target.points() as u64);
                            Some(p)
                        }
                        None => None,
                    };
                    binomial_combine(
                        ctx,
                        &world,
                        &leaders,
                        0,
                        target,
                        part,
                        &mut block_buf,
                        tags.tree,
                    )?
                }
            };
            let mut err = f64::NAN;
            if world.rank() == 0 {
                let combined = combined.unwrap_or_else(|| Grid2::zeros(target));
                let t_final = tg.dt * steps as f64;
                err = l1_error_vs(&combined, cfg.problem.exact_at(t_final));
                if let Some(prefix) = &cfg.output_prefix {
                    let base = prefix.display();
                    crate::output::write_csv(&combined, format!("{base}.csv"))
                        .map_err(|e| Error::InvalidArg(format!("solution csv: {e}")))?;
                    crate::output::write_pgm(&combined, format!("{base}.pgm"))
                        .map_err(|e| Error::InvalidArg(format!("solution pgm: {e}")))?;
                }
            }
            let t_rec_max = world.allreduce_max(ctx, t_rec_local)?;
            let t_ckpt_max = world.allreduce_max(ctx, t_ckpt_local)?;
            let t_solve_max = world.allreduce_max(ctx, t_solve_local)?;
            let t_end = world.allreduce_max(ctx, ctx.now())?;
            // Final rank→host and rank→grid maps, gathered over the live
            // world so the chaos oracles can compare them with the
            // no-failure run's.
            let flatten = |o: Option<Vec<Vec<f64>>>| -> Vec<f64> {
                o.map(|v| v.into_iter().flatten().collect()).unwrap_or_default()
            };
            let hosts = flatten(world.gather(ctx, 0, &[ctx.my_host() as f64])?);
            // Idle spares report grid −1.
            let grids = flatten(world.gather(ctx, 0, &[my.map_or(-1.0, |m| m.grid as f64)])?);
            // The membership map, only under the policies whose contract
            // O7 checks through it — the respawn-family policies skip the
            // extra gather so their no-failure path stays bitwise
            // identical to the pre-policy code.
            let origs = if matches!(
                pol,
                RecoveryPolicy::ShrinkRedistribute | RecoveryPolicy::SpareSubstitute
            ) {
                flatten(world.gather(ctx, 0, &[orig_rank as f64])?)
            } else {
                Vec::new()
            };
            Ok((err, t_rec_max, t_ckpt_max, t_solve_max, t_end, hosts, grids, origs))
        })();
        match attempt {
            Ok(v) => break v,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) | Err(Error::Protocol(_))
                if pol == RecoveryPolicy::ShrinkRedistribute =>
            {
                // A casualty mid-combination under shrink: drop the new
                // dead and their grids and retry over the smaller
                // survivor set — no repair, no data recovery. Healthy
                // groups keep their comms (their membership is intact;
                // the world revoke releases any rank blocked on a dead
                // peer's point-to-point).
                let t_event0 = ctx.now();
                world.revoke(ctx);
                let mut round = ReconstructTimings::default();
                world = stage(
                    communicator_reconstruct_shrink(ctx, world, &mut members, &mut round),
                    "combine-shrink",
                    ctx,
                )?;
                for &r in &round.failed_ranks {
                    if !deferred.contains(&r) {
                        deferred.push(r);
                    }
                }
                deferred.sort_unstable();
                dropped = layout.broken_grids(&deferred);
                for &g in &dropped {
                    if !final_lost.contains(&g) {
                        final_lost.push(g);
                    }
                }
                final_lost.sort_unstable();
                group_broken = my.is_some_and(|m| dropped.contains(&m.grid));
                if world.rank() == 0 {
                    ctx.report_timeline(build_timeline(
                        event_idx,
                        steps,
                        t_event0,
                        ctx.now(),
                        &round,
                    ));
                }
                event_idx += 1;
                merge_timings(&mut repair_timings, &round);
                notify(
                    cfg,
                    &world,
                    AppEvent::Recovered { step: steps, ranks: round.failed_ranks.len() },
                );
            }
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) | Err(Error::Protocol(_)) => {
                // Release peers still blocked in this attempt, repair,
                // recover the new casualties, and go again. This is a
                // failure event of its own: window and timings start here.
                let t_event0 = ctx.now();
                world.revoke(ctx);
                group.revoke(ctx);
                let mut round = ReconstructTimings::default();
                world = stage(
                    match pol {
                        RecoveryPolicy::SpareSubstitute => communicator_reconstruct_substitute(
                            ctx,
                            world,
                            active_slots,
                            cfg.respawn_policy,
                            &mut round,
                        ),
                        _ => communicator_reconstruct_with(
                            ctx,
                            Some(world),
                            None,
                            cfg.respawn_policy,
                            &mut round,
                        ),
                    },
                    "combine-reconstruct",
                    ctx,
                )?;
                refresh_slot(ctx, cfg, &layout, &world, tg.dt, &mut my, &mut solver);
                let mut known_failed = round.failed_ranks.clone();
                for &r in &end_failed {
                    if !known_failed.contains(&r) {
                        known_failed.push(r);
                    }
                }
                known_failed.sort_unstable();
                let (w, d, g, trec, failed) = stage(
                    recover_with_commit(
                        ctx,
                        cfg,
                        &layout,
                        world,
                        &mut my,
                        &mut solver,
                        tg.dt,
                        &store,
                        &mut buddy_store,
                        Some((steps, known_failed)),
                        &mut round,
                    ),
                    "combine-recovery",
                    ctx,
                )?;
                debug_assert_eq!(d, steps);
                world = w;
                group = g;
                t_rec_local += trec;
                if world.rank() == 0 {
                    ctx.report_timeline(build_timeline(
                        event_idx,
                        steps,
                        t_event0,
                        ctx.now(),
                        &round,
                    ));
                }
                event_idx += 1;
                merge_timings(&mut repair_timings, &round);
                notify(
                    cfg,
                    &world,
                    AppEvent::Recovered { step: steps, ranks: round.failed_ranks.len() },
                );
                extend_lost(&mut final_lost, &layout, &failed);
                end_failed = failed;
            }
            Err(e) => return Err(e),
        }
    };

    // ---- report (controller writes the blackboard). ----
    if world.rank() == 0 {
        ctx.report_f64(keys::T_TOTAL, t_end);
        ctx.report_f64(keys::T_RECOVERY, t_rec_max);
        ctx.report_f64(keys::T_CKPT, t_ckpt_max);
        ctx.report_f64(keys::T_SOLVE, t_solve_max);
        ctx.report_f64(keys::ERR_L1, err);
        ctx.report_f64(keys::T_LIST, repair_timings.t_list);
        ctx.report_f64(keys::T_RECONSTRUCT, repair_timings.t_total);
        ctx.report_f64(keys::T_SHRINK, repair_timings.t_shrink);
        ctx.report_f64(keys::T_SPAWN, repair_timings.t_spawn);
        ctx.report_f64(keys::T_MERGE, repair_timings.t_merge);
        ctx.report_f64(keys::T_AGREE, repair_timings.t_agree);
        ctx.report_f64(keys::N_FAILED, repair_timings.failed_ranks.len() as f64);
        ctx.report_f64(keys::WORLD, world.size() as f64);
        ctx.report_list(keys::RANK_HOSTS, &rank_hosts);
        ctx.report_list(keys::RANK_GRIDS, &rank_grids);
        if !rank_orig.is_empty() {
            ctx.report_list(keys::RANK_ORIG, &rank_orig);
        }
        if pol == RecoveryPolicy::ShrinkRedistribute {
            let d: Vec<f64> = dropped.iter().map(|&g| g as f64).collect();
            ctx.report_list(keys::DROPPED_GRIDS, &d);
        }
        // Best-effort cleanup of the checkpoint directory.
        let _ = store.clear();
    }
    Ok(())
}

/// Fold the grids broken by `failed` into the end-of-run lost-grid set.
fn extend_lost(final_lost: &mut Vec<usize>, layout: &ProcLayout, failed: &[usize]) {
    for g in layout.broken_grids(failed) {
        if !final_lost.contains(&g) {
            final_lost.push(g);
        }
    }
    final_lost.sort_unstable();
}

pub(crate) fn merge_timings(acc: &mut ReconstructTimings, round: &ReconstructTimings) {
    acc.t_list += round.t_list;
    acc.t_detect += round.t_detect;
    acc.t_ack += round.t_ack;
    acc.t_revoke += round.t_revoke;
    acc.t_flist += round.t_flist;
    acc.t_restore += round.t_restore;
    acc.t_shrink += round.t_shrink;
    acc.t_spawn += round.t_spawn;
    acc.t_merge += round.t_merge;
    acc.t_agree += round.t_agree;
    acc.t_split += round.t_split;
    acc.t_total += round.t_total;
    acc.rounds += round.rounds;
    for &r in &round.failed_ranks {
        if !acc.failed_ranks.contains(&r) {
            acc.failed_ranks.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_points_cr_vs_others() {
        let mut cfg = AppConfig::small(Technique::CheckpointRestart); // 32 steps, C=2
        assert_eq!(detection_points(&cfg), vec![10, 20, 30, 32]);
        cfg.technique = Technique::AlternateCombination;
        assert_eq!(detection_points(&cfg), vec![32]);
        cfg.technique = Technique::ResamplingCopying;
        assert_eq!(detection_points(&cfg), vec![32]);
    }

    #[test]
    fn detection_points_period_divides_steps() {
        let cfg = AppConfig::small(Technique::CheckpointRestart).with_checkpoints(3);
        // period = 32 / 4 = 8 → checkpoints at 8, 16, 24; end at 32.
        assert_eq!(detection_points(&cfg), vec![8, 16, 24, 32]);
    }
}
