//! The end-to-end fault-tolerant application in d dimensions — the nd
//! sibling of [`crate::app`], protocol step for protocol step.
//!
//! Solves a d-dimensional advection–diffusion (or elliptic Jacobi) problem
//! on every sub-grid of the truncated-simplex combination, suffers
//! injected process failures, detects, reconstructs, recovers with the
//! configured technique under any of the four recovery policies, combines
//! (tree or central), and measures the error against the analytic
//! solution. Results land under the same report [`crate::app::keys`] as
//! the 2D driver, so every chaos oracle and experiment harness reads both
//! paths identically.
//!
//! Differences from the 2D driver, all deliberate:
//!
//! * checkpoints are **synchronous** (the format-v3 write path has no
//!   async writer stage yet — the 2D A/B comparison already covers that
//!   axis);
//! * no CSV/PGM solution dump (`output_prefix` is 2D-only);
//! * groups decompose into slabs along the last axis, so the solver is
//!   [`DistributedSolverN`] and halo traffic is 2 sends + 2 receives per
//!   step instead of the 2D solver's 4 + 4.

use advect2d::ndproblem::{ProblemN, TimeGridN};
use sparsegrid::{
    combine_onto_nd, robust_coefficients_nd, CombinationTermN, GridN, LevelSetN, LevelVecN,
};
use ulfm_sim::{Comm, Ctx, Error, Result};

use crate::app::{build_group_by_color, detection_points, keys, merge_timings, notify, stage};
use crate::checkpoint::CheckpointStore;
use crate::config::{AppConfig, AppEvent, CombineMode, Technique};
use crate::gather::current_rank_of;
use crate::gather_nd::{
    binomial_combine_n, gather_grid_n, recv_grid_n_into, send_grid_n, GridScratchN,
};
use crate::layout_nd::{AssignmentN, ProcLayoutN};
use crate::policy::RecoveryPolicy;
use crate::psolve_nd::DistributedSolverN;
use crate::reconstruct::{
    communicator_reconstruct_shrink, communicator_reconstruct_substitute,
    communicator_reconstruct_with, deferred_epoch_repair, detect_and_repair, ReconstructTimings,
};
use crate::recovery_nd;
use crate::tags::TagSpace;
use crate::timeline::build_timeline;

/// Gather this rank's sub-grid to its group root (staging the owned slab
/// through the shared buffer).
fn gather_own_grid_n(
    ctx: &Ctx,
    group: &Comm,
    layout: &ProcLayoutN,
    my: AssignmentN,
    solver: &DistributedSolverN,
    block_buf: &mut Vec<f64>,
) -> Result<Option<GridN>> {
    solver.local_block_into(block_buf);
    gather_grid_n(ctx, group, layout.group(my.grid), solver.level(), block_buf)
}

/// Split the world into per-grid groups (spares take the overflow colour).
fn build_group_n(ctx: &Ctx, world: &Comm, my: Option<AssignmentN>, n_grids: usize) -> Result<Comm> {
    build_group_by_color(ctx, world, my.map(|m| m.grid), n_grids)
}

/// Re-derive this rank's slot after a `SpareSubstitute` promote split.
fn refresh_slot_n(
    cfg: &AppConfig,
    layout: &ProcLayoutN,
    world: &Comm,
    problem: &ProblemN,
    dt: f64,
    my: &mut Option<AssignmentN>,
    solver: &mut Option<DistributedSolverN>,
) {
    if cfg.recovery_policy != RecoveryPolicy::SpareSubstitute {
        return;
    }
    let new = layout.try_assignment(world.rank());
    if new != *my {
        *my = new;
        *solver = new.map(|m| {
            DistributedSolverN::new(
                problem.clone(),
                &layout.system().grid(m.grid).level,
                dt,
                layout.group(m.grid),
                m.local,
            )
        });
    }
}

/// Post-reconstruction recovery with the commit protocol of
/// [`crate::app`]: attempt → fault-tolerant agree → on failure repair and
/// retry with the enlarged failed-rank list. Recovery is idempotent.
#[allow(clippy::too_many_arguments)]
fn recover_with_commit_n(
    ctx: &Ctx,
    cfg: &AppConfig,
    layout: &ProcLayoutN,
    mut world: Comm,
    my: &mut Option<AssignmentN>,
    solver: &mut Option<DistributedSolverN>,
    problem: &ProblemN,
    dt: f64,
    store: &CheckpointStore,
    buddy_store: &mut recovery_nd::BuddyStoreN,
    mut known: Option<(u64, Vec<usize>)>,
    timings: &mut ReconstructTimings,
) -> Result<(Comm, u64, Comm, f64, Vec<usize>)> {
    let n_grids = layout.system().grids().len();
    loop {
        let _scope = ctx.recovery_scope();
        let mut group_attempt: Option<Comm> = None;
        let attempt: Result<(u64, f64, Vec<usize>)> = (|| {
            let meta: Option<Vec<u64>> = if world.rank() == 0 {
                let Some((d, failed)) = known.clone() else {
                    return Err(Error::InvalidArg(
                        "recovery metadata missing on the controller rank".into(),
                    ));
                };
                let mut v = vec![d];
                v.extend(failed.iter().map(|&r| r as u64));
                Some(v)
            } else {
                None
            };
            let meta = world.bcast(ctx, 0, meta.as_deref())?;
            let at_step = meta[0];
            let failed: Vec<usize> = meta[1..].iter().map(|&r| r as usize).collect();
            let group = &*group_attempt.insert(build_group_n(ctx, &world, *my, n_grids)?);
            let t_res0 = ctx.now();
            let recovered = match (*my, solver.as_mut()) {
                (Some(m), Some(sv)) => recovery_nd::recover_n(
                    ctx,
                    cfg,
                    layout,
                    &world,
                    group,
                    m,
                    sv,
                    store,
                    buddy_store,
                    &failed,
                    at_step,
                ),
                _ => Ok(crate::recovery::RecoveryStats::default()),
            };
            timings.t_restore += ctx.now() - t_res0;
            let stats = recovered?;
            Ok((at_step, stats.t_recovery, failed))
        })();
        let ok = match &attempt {
            Ok(_) => true,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => false,
            Err(e) => return Err(e.clone()),
        };
        if !ok {
            world.revoke(ctx);
            if let Some(g) = &group_attempt {
                g.revoke(ctx);
            }
        }
        let t_ack0 = ctx.now();
        world.failure_ack(ctx);
        timings.t_ack += ctx.now() - t_ack0;
        let mut flag = ok;
        let t_agree0 = ctx.now();
        let _ = world.agree(ctx, &mut flag);
        timings.t_agree += ctx.now() - t_agree0;
        if flag {
            if let (Ok((at_step, trec, failed)), Some(group)) = (attempt, group_attempt) {
                return Ok((world, at_step, group, trec, failed));
            }
        }
        let mut round = ReconstructTimings::default();
        world = match cfg.recovery_policy {
            RecoveryPolicy::SpareSubstitute => communicator_reconstruct_substitute(
                ctx,
                world,
                layout.world_size(),
                cfg.respawn_policy,
                &mut round,
            )?,
            _ => communicator_reconstruct_with(
                ctx,
                Some(world),
                None,
                cfg.respawn_policy,
                &mut round,
            )?,
        };
        refresh_slot_n(cfg, layout, &world, problem, dt, my, solver);
        if let Some((_, failed)) = known.as_mut() {
            for &r in &round.failed_ranks {
                if !failed.contains(&r) {
                    failed.push(r);
                }
            }
            failed.sort_unstable();
        }
        merge_timings(timings, &round);
    }
}

/// Execute the d-dimensional fault-tolerant application on this rank.
/// Same entry contract as [`crate::app::run_app`]; dispatched from there
/// when `cfg.dim >= 3`.
pub fn run_app_nd(cfg: &AppConfig, ctx: &mut Ctx) {
    match run_app_nd_inner(cfg, ctx) {
        Ok(()) => {}
        Err(Error::Orphaned) => {}
        Err(Error::Cancelled) => {}
        Err(e) => panic!("ftsg nd application failed: {e}"),
    }
}

fn run_app_nd_inner(cfg: &AppConfig, ctx: &mut Ctx) -> Result<()> {
    // Satellite bugfix boundary: user-supplied (dim, n, l) triples that
    // would panic inside `truncated_simplex` surface as config errors.
    cfg.validate().map_err(Error::InvalidArg)?;
    let problem = cfg.resolved_problem_nd();
    let layout = ProcLayoutN::new(cfg.dim, cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
    let steps = cfg.steps();
    let tg = TimeGridN::for_system(&problem, cfg.n, steps, 0.4);
    let store = CheckpointStore::new(&cfg.ckpt_dir)
        .map_err(|e| Error::InvalidArg(format!("checkpoint dir: {e}")))?
        .with_corruption(cfg.ckpt_corruption.clone());

    let child = ctx.is_spawned();
    let mut repair_timings = ReconstructTimings::default();
    let mut buddy_store: recovery_nd::BuddyStoreN = Default::default();
    let mut final_lost: Vec<usize> = Vec::new();
    let mut end_failed: Vec<usize> = Vec::new();
    let mut t_rec_local = 0.0_f64;
    let mut t_ckpt_local = 0.0_f64;
    let mut t_solve_local = 0.0_f64;

    // ---- policy state. ----
    let pol = cfg.recovery_policy;
    let active_slots = layout.world_size();
    let n_grids = layout.system().grids().len();
    let mut members: Option<Vec<usize>> = None;
    let mut deferred: Vec<usize> = Vec::new();
    let mut dropped: Vec<usize> = Vec::new();

    // ---- world acquisition (original vs respawned child). ----
    let mut world: Comm;
    let mut current_step: u64;
    let mut my: Option<AssignmentN>;
    let mut solver: Option<DistributedSolverN>;
    let mut group: Comm;

    let new_solver = |m: AssignmentN| {
        DistributedSolverN::new(
            problem.clone(),
            &layout.system().grid(m.grid).level,
            tg.dt,
            layout.group(m.grid),
            m.local,
        )
    };

    if child {
        let parent = ctx.parent().expect("spawned process has a parent intercommunicator");
        world = match communicator_reconstruct_with(
            ctx,
            None,
            Some(parent),
            cfg.respawn_policy,
            &mut repair_timings,
        ) {
            Ok(w) => w,
            Err(Error::Orphaned) => return Err(Error::Orphaned),
            Err(e) => return Err(Error::InvalidArg(format!("[child-reconstruct] {e}"))),
        };
        my = Some(layout.assignment(world.rank()));
        solver = my.map(new_solver);
        let (w, d, g, trec, failed) = stage(
            recover_with_commit_n(
                ctx,
                cfg,
                &layout,
                world,
                &mut my,
                &mut solver,
                &problem,
                tg.dt,
                &store,
                &mut buddy_store,
                None,
                &mut repair_timings,
            ),
            "child-post-recovery",
            ctx,
        )?;
        world = w;
        group = g;
        current_step = d;
        t_rec_local += trec;
        if d == steps {
            extend_lost_n(&mut final_lost, &layout, &failed);
            end_failed = failed;
        }
    } else {
        world = ctx.initial_world().expect("original process has a world");
        let expected = cfg.world_size(layout.world_size());
        if world.size() != expected {
            return Err(Error::InvalidArg(format!(
                "world size {} does not match layout size {} (+ {} spares)",
                world.size(),
                layout.world_size(),
                cfg.spares
            )));
        }
        my = layout.try_assignment(world.rank());
        ctx.arm_fault_sites(&cfg.plan, world.rank());
        solver = my.map(new_solver);
        group = stage(build_group_n(ctx, &world, my, n_grids), "initial-split", ctx)?;
        current_step = 0;
    }

    let orig_rank = world.rank();

    // ---- main loop over detection segments. ----
    let dpoints = detection_points(cfg);
    let mut group_broken = false;
    let mut event_idx = 0usize;
    let mut block_buf: Vec<f64> = Vec::new();
    while current_step < steps {
        notify(cfg, &world, AppEvent::Epoch { step: current_step, steps });
        if let Some(flag) = &cfg.cancel {
            let mine = if world.rank() == 0 {
                Some(vec![flag.load(std::sync::atomic::Ordering::Relaxed) as u64])
            } else {
                None
            };
            let seen = match world.bcast(ctx, 0, mine.as_deref()) {
                Ok(v) => v[0] != 0,
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => false,
                Err(e) => return Err(Error::InvalidArg(format!("[cancel-poll] {e}"))),
            };
            let mut cancel = seen;
            let _ = world.agree(ctx, &mut cancel);
            if cancel {
                if world.rank() == 0 {
                    ctx.report_f64(keys::CANCELLED, 1.0);
                }
                return Err(Error::Cancelled);
            }
        }
        let dp = dpoints
            .iter()
            .copied()
            .find(|&d| d > current_step)
            .expect("detection points end at `steps`");

        // Solve this segment; planned kills strike by original rank.
        let t_solve0 = ctx.now();
        for s in current_step..dp {
            if cfg.plan.strikes(orig_rank, s) {
                ctx.die();
            }
            if group_broken {
                continue;
            }
            let Some(sv) = solver.as_mut() else {
                continue; // idle spare
            };
            match sv.step(ctx, &group) {
                Ok(()) => {}
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                    group.revoke(ctx);
                    group_broken = true;
                }
                Err(e) => return Err(e),
            }
        }
        t_solve_local += ctx.now() - t_solve0;
        current_step = dp;
        if dp == steps && cfg.plan.strikes(orig_rank, steps) {
            ctx.die();
        }

        // Detection + reconstruction (Fig. 3 protocol, policy-directed).
        let t_event0 = ctx.now();
        let mut round = ReconstructTimings::default();
        world = stage(
            detect_and_repair(
                ctx,
                world,
                pol,
                cfg.respawn_policy,
                active_slots,
                &mut members,
                &mut round,
            ),
            "detect-reconstruct",
            ctx,
        )?;
        let repaired = !round.failed_ranks.is_empty();
        if repaired && pol.shrinks_mid_run() {
            for &r in &round.failed_ranks {
                if !deferred.contains(&r) {
                    deferred.push(r);
                }
            }
            deferred.sort_unstable();
            dropped = layout.broken_grids(&deferred);
            group_broken = my.is_some_and(|m| dropped.contains(&m.grid));
            if world.rank() == 0 {
                ctx.report_timeline(build_timeline(event_idx, dp, t_event0, ctx.now(), &round));
            }
            event_idx += 1;
            merge_timings(&mut repair_timings, &round);
            notify(cfg, &world, AppEvent::Recovered { step: dp, ranks: round.failed_ranks.len() });
        } else if repaired {
            let mut known_failed = round.failed_ranks.clone();
            if world.rank() == 0 && dp == steps {
                for &r in &end_failed {
                    if !known_failed.contains(&r) {
                        known_failed.push(r);
                    }
                }
                known_failed.sort_unstable();
            }
            refresh_slot_n(cfg, &layout, &world, &problem, tg.dt, &mut my, &mut solver);
            let known = Some((dp, known_failed));
            let (w, d, g, trec, failed) = stage(
                recover_with_commit_n(
                    ctx,
                    cfg,
                    &layout,
                    world,
                    &mut my,
                    &mut solver,
                    &problem,
                    tg.dt,
                    &store,
                    &mut buddy_store,
                    known,
                    &mut round,
                ),
                "post-recovery",
                ctx,
            )?;
            debug_assert_eq!(d, dp);
            world = w;
            group = g;
            t_rec_local += trec;
            group_broken = false;
            if world.rank() == 0 {
                ctx.report_timeline(build_timeline(event_idx, dp, t_event0, ctx.now(), &round));
            }
            event_idx += 1;
            merge_timings(&mut repair_timings, &round);
            notify(cfg, &world, AppEvent::Recovered { step: dp, ranks: round.failed_ranks.len() });
            if d == steps {
                extend_lost_n(&mut final_lost, &layout, &failed);
                end_failed = failed;
            }
        } else if cfg.technique == Technique::CheckpointRestart && dp < steps && !group_broken {
            // Healthy synchronous checkpoint write (v3 format).
            if let (Some(m), Some(sv)) = (my, solver.as_ref()) {
                let t0 = ctx.now();
                match gather_own_grid_n(ctx, &group, &layout, m, sv, &mut block_buf) {
                    Ok(full) => {
                        if let Some(g) = full {
                            let bytes = store
                                .write_nd(m.grid, current_step, &g)
                                .map_err(|e| Error::InvalidArg(format!("checkpoint write: {e}")))?;
                            ctx.disk_write(bytes);
                        }
                    }
                    Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                        group.revoke(ctx);
                        world.revoke(ctx);
                        group_broken = true;
                    }
                    Err(e) => return Err(e),
                }
                t_ckpt_local += ctx.now() - t0;
            }
        } else if cfg.technique == Technique::BuddyCheckpoint && dp < steps && members.is_none() {
            // Healthy buddy exchange (suspended after any shrink repair).
            if !group_broken {
                if let (Some(m), Some(sv)) = (my, solver.as_ref()) {
                    let t0 = ctx.now();
                    match recovery_nd::buddy_exchange_n(
                        ctx,
                        &layout,
                        &world,
                        &group,
                        m,
                        sv,
                        current_step,
                        &mut buddy_store,
                    ) {
                        Ok(()) => {}
                        Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                            world.revoke(ctx);
                            if !group.failed_ranks().is_empty() || group.is_revoked() {
                                group.revoke(ctx);
                                group_broken = true;
                            }
                        }
                        Err(e) => return Err(e),
                    }
                    t_ckpt_local += ctx.now() - t0;
                }
            }
        }

        // ---- the `DeferRepair` epoch batch. ----
        if pol == RecoveryPolicy::DeferRepair && dp == steps && !deferred.is_empty() {
            let t_event0 = ctx.now();
            let mut round = ReconstructTimings::default();
            let m = members.take().unwrap_or_else(|| (0..world.size()).collect());
            world = stage(
                deferred_epoch_repair(ctx, world, m, &mut deferred, cfg.respawn_policy, &mut round),
                "defer-epoch-repair",
                ctx,
            )?;
            let mut known_failed = round.failed_ranks.clone();
            if world.rank() == 0 {
                for &r in &end_failed {
                    if !known_failed.contains(&r) {
                        known_failed.push(r);
                    }
                }
                known_failed.sort_unstable();
            }
            let (w, d, g, trec, failed) = stage(
                recover_with_commit_n(
                    ctx,
                    cfg,
                    &layout,
                    world,
                    &mut my,
                    &mut solver,
                    &problem,
                    tg.dt,
                    &store,
                    &mut buddy_store,
                    Some((steps, known_failed)),
                    &mut round,
                ),
                "defer-epoch-recovery",
                ctx,
            )?;
            debug_assert_eq!(d, steps);
            world = w;
            group = g;
            t_rec_local += trec;
            group_broken = false;
            deferred.clear();
            dropped.clear();
            if world.rank() == 0 {
                ctx.report_timeline(build_timeline(event_idx, steps, t_event0, ctx.now(), &round));
            }
            event_idx += 1;
            merge_timings(&mut repair_timings, &round);
            notify(
                cfg,
                &world,
                AppEvent::Recovered { step: steps, ranks: round.failed_ranks.len() },
            );
            extend_lost_n(&mut final_lost, &layout, &failed);
            end_failed = failed;
        }
    }

    // Synchronous writes all landed inline; report applied strikes.
    let corrupt_applied = store.corruptions_applied();
    if corrupt_applied > 0 {
        ctx.report_add(keys::CKPT_CORRUPT_APPLIED, corrupt_applied as f64);
    }

    // ---- simulated grid losses (paper Figs. 9 and 10, now in 3D). ----
    if !cfg.simulated_lost_grids.is_empty() {
        let fabricated: Vec<usize> = cfg
            .simulated_lost_grids
            .iter()
            .map(|&g| {
                let info = layout.group(g);
                info.first + info.size - 1
            })
            .collect();
        debug_assert!(!fabricated.contains(&0), "rank 0 cannot be a (simulated) victim");
        if let (Some(m), Some(sv)) = (my, solver.as_mut()) {
            let stats = recovery_nd::recover_n(
                ctx,
                cfg,
                &layout,
                &world,
                &group,
                m,
                sv,
                &store,
                &mut buddy_store,
                &fabricated,
                steps,
            )?;
            t_rec_local += stats.t_recovery;
        }
        for g in layout.broken_grids(&fabricated) {
            if !final_lost.contains(&g) {
                final_lost.push(g);
            }
        }
        final_lost.sort_unstable();
    }

    // ---- combination & measurement (retry loop, same commit discipline
    // as the 2D driver). ----
    type CombineOutcome = (f64, f64, f64, f64, f64, Vec<f64>, Vec<f64>, Vec<f64>);
    if pol == RecoveryPolicy::ShrinkRedistribute {
        for &g in &dropped {
            if !final_lost.contains(&g) {
                final_lost.push(g);
            }
        }
        final_lost.sort_unstable();
    }
    let sys = layout.system();
    let tags = TagSpace::for_layout_nd(&layout);
    let (err, t_rec_max, t_ckpt_max, t_solve_max, t_end, rank_hosts, rank_grids, rank_orig) = loop {
        let attempt: Result<CombineOutcome> = (|| {
            let use_robust = match pol {
                RecoveryPolicy::ShrinkRedistribute => !final_lost.is_empty(),
                _ => cfg.technique == Technique::AlternateCombination && !final_lost.is_empty(),
            };
            let (combine_ids, combine_coeffs): (Vec<usize>, Vec<f64>) = if use_robust {
                let mut surviving = LevelSetN::new(sys.dim());
                for g in sys.grids().iter().filter(|g| !final_lost.contains(&g.id)) {
                    surviving.insert(g.level.clone());
                }
                let lost_levels: Vec<LevelVecN> = final_lost
                    .iter()
                    .map(|&b| sys.grid(b).level.clone())
                    .filter(|lv| !surviving.contains(lv))
                    .collect();
                let cmap =
                    robust_coefficients_nd(&sys.classical_downset(), &lost_levels, &surviving);
                let mut ids: Vec<usize> = Vec::new();
                let mut covered: Vec<LevelVecN> = Vec::new();
                for g in sys.grids() {
                    if final_lost.contains(&g.id)
                        || cmap.get(&g.level).copied().unwrap_or(0) == 0
                        || covered.contains(&g.level)
                    {
                        continue;
                    }
                    covered.push(g.level.clone());
                    ids.push(g.id);
                }
                let coeffs = ids.iter().map(|&i| cmap[&sys.grid(i).level] as f64).collect();
                (ids, coeffs)
            } else {
                let ids = sys.combination_ids();
                let coeffs = ids.iter().map(|&i| sys.classical_coefficient(i) as f64).collect();
                (ids, coeffs)
            };
            let combining = !group_broken && my.is_some_and(|m| combine_ids.contains(&m.grid));
            let mut my_full: Option<GridN> = None;
            if combining {
                let m = my.expect("combining rank owns a grid");
                let sv = solver.as_ref().expect("combining rank runs a solver");
                my_full = gather_own_grid_n(ctx, &group, &layout, m, sv, &mut block_buf)?;
            }
            let target = sys.min_level();
            let combined: Option<GridN> = match cfg.combine_mode {
                CombineMode::Central => {
                    if let Some(g) = &my_full {
                        if world.rank() != 0 {
                            let gid = my.expect("combining rank owns a grid").grid;
                            send_grid_n(ctx, &world, 0, tags.combine + gid as i32, g)?;
                        }
                    }
                    if world.rank() == 0 {
                        let mut scratch = GridScratchN::default();
                        let mut sources: Vec<(f64, GridN)> = Vec::new();
                        for (&gid, &coeff) in combine_ids.iter().zip(&combine_coeffs) {
                            let src = current_rank_of(layout.root_of(gid), members.as_deref())
                                .ok_or_else(|| {
                                    Error::InvalidArg(format!(
                                        "combining grid {gid}'s root is not in the shrunken world"
                                    ))
                                })?;
                            let grid = if src == world.rank() {
                                my_full.take().expect("controller gathered its own grid")
                            } else {
                                recv_grid_n_into(
                                    ctx,
                                    &world,
                                    src,
                                    tags.combine + gid as i32,
                                    &mut scratch,
                                )?
                            };
                            sources.push((coeff, grid));
                        }
                        let terms: Vec<CombinationTermN> = sources
                            .iter()
                            .map(|(c, g)| CombinationTermN { coeff: *c, grid: g })
                            .collect();
                        let combined = combine_onto_nd(&target, &terms);
                        ctx.compute_cells((terms.len() * combined.values().len()) as u64);
                        Some(combined)
                    } else {
                        None
                    }
                }
                CombineMode::Tree => {
                    let leaders: Vec<usize> = combine_ids
                        .iter()
                        .map(|&gid| {
                            current_rank_of(layout.root_of(gid), members.as_deref()).ok_or_else(
                                || {
                                    Error::InvalidArg(format!(
                                        "combining grid {gid}'s leader is not in the shrunken world"
                                    ))
                                },
                            )
                        })
                        .collect::<Result<_>>()?;
                    let part = match my_full.take() {
                        Some(g) => {
                            let mg = my.expect("combining rank owns a grid").grid;
                            let k = combine_ids
                                .iter()
                                .position(|&gid| gid == mg)
                                .expect("leader's grid is a combination term");
                            let term = CombinationTermN { coeff: combine_coeffs[k], grid: &g };
                            let p = combine_onto_nd(&target, std::slice::from_ref(&term));
                            ctx.compute_cells(p.values().len() as u64);
                            Some(p)
                        }
                        None => None,
                    };
                    binomial_combine_n(
                        ctx,
                        &world,
                        &leaders,
                        0,
                        &target,
                        part,
                        &mut block_buf,
                        tags.tree,
                    )?
                }
            };
            let mut err = f64::NAN;
            if world.rank() == 0 {
                let combined = combined.unwrap_or_else(|| GridN::zeros(&target));
                let t_final = tg.dt * steps as f64;
                let p = problem.clone();
                err = combined.l1_error_vs(move |x| p.exact(x, t_final));
            }
            let t_rec_max = world.allreduce_max(ctx, t_rec_local)?;
            let t_ckpt_max = world.allreduce_max(ctx, t_ckpt_local)?;
            let t_solve_max = world.allreduce_max(ctx, t_solve_local)?;
            let t_end = world.allreduce_max(ctx, ctx.now())?;
            let flatten = |o: Option<Vec<Vec<f64>>>| -> Vec<f64> {
                o.map(|v| v.into_iter().flatten().collect()).unwrap_or_default()
            };
            let hosts = flatten(world.gather(ctx, 0, &[ctx.my_host() as f64])?);
            let grids = flatten(world.gather(ctx, 0, &[my.map_or(-1.0, |m| m.grid as f64)])?);
            let origs = if matches!(
                pol,
                RecoveryPolicy::ShrinkRedistribute | RecoveryPolicy::SpareSubstitute
            ) {
                flatten(world.gather(ctx, 0, &[orig_rank as f64])?)
            } else {
                Vec::new()
            };
            Ok((err, t_rec_max, t_ckpt_max, t_solve_max, t_end, hosts, grids, origs))
        })();
        match attempt {
            Ok(v) => break v,
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) | Err(Error::Protocol(_))
                if pol == RecoveryPolicy::ShrinkRedistribute =>
            {
                let t_event0 = ctx.now();
                world.revoke(ctx);
                let mut round = ReconstructTimings::default();
                world = stage(
                    communicator_reconstruct_shrink(ctx, world, &mut members, &mut round),
                    "combine-shrink",
                    ctx,
                )?;
                for &r in &round.failed_ranks {
                    if !deferred.contains(&r) {
                        deferred.push(r);
                    }
                }
                deferred.sort_unstable();
                dropped = layout.broken_grids(&deferred);
                for &g in &dropped {
                    if !final_lost.contains(&g) {
                        final_lost.push(g);
                    }
                }
                final_lost.sort_unstable();
                group_broken = my.is_some_and(|m| dropped.contains(&m.grid));
                if world.rank() == 0 {
                    ctx.report_timeline(build_timeline(
                        event_idx,
                        steps,
                        t_event0,
                        ctx.now(),
                        &round,
                    ));
                }
                event_idx += 1;
                merge_timings(&mut repair_timings, &round);
                notify(
                    cfg,
                    &world,
                    AppEvent::Recovered { step: steps, ranks: round.failed_ranks.len() },
                );
            }
            Err(Error::ProcFailed { .. }) | Err(Error::Revoked) | Err(Error::Protocol(_)) => {
                let t_event0 = ctx.now();
                world.revoke(ctx);
                group.revoke(ctx);
                let mut round = ReconstructTimings::default();
                world = stage(
                    match pol {
                        RecoveryPolicy::SpareSubstitute => communicator_reconstruct_substitute(
                            ctx,
                            world,
                            active_slots,
                            cfg.respawn_policy,
                            &mut round,
                        ),
                        _ => communicator_reconstruct_with(
                            ctx,
                            Some(world),
                            None,
                            cfg.respawn_policy,
                            &mut round,
                        ),
                    },
                    "combine-reconstruct",
                    ctx,
                )?;
                refresh_slot_n(cfg, &layout, &world, &problem, tg.dt, &mut my, &mut solver);
                let mut known_failed = round.failed_ranks.clone();
                for &r in &end_failed {
                    if !known_failed.contains(&r) {
                        known_failed.push(r);
                    }
                }
                known_failed.sort_unstable();
                let (w, d, g, trec, failed) = stage(
                    recover_with_commit_n(
                        ctx,
                        cfg,
                        &layout,
                        world,
                        &mut my,
                        &mut solver,
                        &problem,
                        tg.dt,
                        &store,
                        &mut buddy_store,
                        Some((steps, known_failed)),
                        &mut round,
                    ),
                    "combine-recovery",
                    ctx,
                )?;
                debug_assert_eq!(d, steps);
                world = w;
                group = g;
                t_rec_local += trec;
                if world.rank() == 0 {
                    ctx.report_timeline(build_timeline(
                        event_idx,
                        steps,
                        t_event0,
                        ctx.now(),
                        &round,
                    ));
                }
                event_idx += 1;
                merge_timings(&mut repair_timings, &round);
                notify(
                    cfg,
                    &world,
                    AppEvent::Recovered { step: steps, ranks: round.failed_ranks.len() },
                );
                extend_lost_n(&mut final_lost, &layout, &failed);
                end_failed = failed;
            }
            Err(e) => return Err(e),
        }
    };

    // ---- report (controller writes the blackboard). ----
    if world.rank() == 0 {
        ctx.report_f64(keys::T_TOTAL, t_end);
        ctx.report_f64(keys::T_RECOVERY, t_rec_max);
        ctx.report_f64(keys::T_CKPT, t_ckpt_max);
        ctx.report_f64(keys::T_SOLVE, t_solve_max);
        ctx.report_f64(keys::ERR_L1, err);
        ctx.report_f64(keys::T_LIST, repair_timings.t_list);
        ctx.report_f64(keys::T_RECONSTRUCT, repair_timings.t_total);
        ctx.report_f64(keys::T_SHRINK, repair_timings.t_shrink);
        ctx.report_f64(keys::T_SPAWN, repair_timings.t_spawn);
        ctx.report_f64(keys::T_MERGE, repair_timings.t_merge);
        ctx.report_f64(keys::T_AGREE, repair_timings.t_agree);
        ctx.report_f64(keys::N_FAILED, repair_timings.failed_ranks.len() as f64);
        ctx.report_f64(keys::WORLD, world.size() as f64);
        ctx.report_list(keys::RANK_HOSTS, &rank_hosts);
        ctx.report_list(keys::RANK_GRIDS, &rank_grids);
        if !rank_orig.is_empty() {
            ctx.report_list(keys::RANK_ORIG, &rank_orig);
        }
        if pol == RecoveryPolicy::ShrinkRedistribute {
            let d: Vec<f64> = dropped.iter().map(|&g| g as f64).collect();
            ctx.report_list(keys::DROPPED_GRIDS, &d);
        }
        let _ = store.clear();
    }
    Ok(())
}

/// Fold the grids broken by `failed` into the end-of-run lost-grid set.
fn extend_lost_n(final_lost: &mut Vec<usize>, layout: &ProcLayoutN, failed: &[usize]) {
    for g in layout.broken_grids(failed) {
        if !final_lost.contains(&g) {
            final_lost.push(g);
        }
    }
    final_lost.sort_unstable();
}
