//! The distributed Lax–Wendroff solver: one process group per sub-grid,
//! 2D block domain decomposition, halo exchange over the simulated MPI
//! runtime.
//!
//! The periodic fundamental domain of sub-grid `(i, j)` has `2^i × 2^j`
//! distinct nodes (node `2^i` duplicates node 0). Each group member owns a
//! contiguous block and keeps it inside a one-cell halo-padded buffer; a
//! step is a two-phase halo exchange (y edges first, then x edges carrying
//! the freshly filled y-halos so corners arrive for the cross term) and
//! one stencil application via [`advect2d::laxwendroff::lax_wendroff_kernel`].

use advect2d::laxwendroff::{lax_wendroff_row, lw_row_fn, LwCoef};
use advect2d::stepper::PaddedField;
use advect2d::{AdvectionProblem, BandPool, KernelConfig};
use sparsegrid::{ensure_len, LevelPair};
use ulfm_sim::{waitall, Comm, Ctx, Result};

use crate::layout::GroupInfo;

/// Halo-exchange message tags (runtime-reserved range is negative, so any
/// positive values work; these only need to be distinct per direction).
const TAG_N: i32 = 101;
const TAG_S: i32 = 102;
const TAG_E: i32 = 103;
const TAG_W: i32 = 104;

/// The contiguous index range owned by block `b` of `parts` over `n`
/// items: standard balanced split.
pub fn block_range(n: usize, parts: usize, b: usize) -> (usize, usize) {
    debug_assert!(b < parts);
    let start = b * n / parts;
    let end = (b + 1) * n / parts;
    (start, end - start)
}

/// One rank's share of a distributed sub-grid solve.
#[derive(Debug, Clone)]
pub struct DistributedSolver {
    problem: AdvectionProblem,
    level: LevelPair,
    dt: f64,
    coef: LwCoef,
    px: usize,
    py: usize,
    pi: usize,
    pj: usize,
    x0: usize,
    y0: usize,
    lnx: usize,
    lny: usize,
    field: PaddedField,
    send_buf: Vec<f64>,
    recv_buf: Vec<f64>,
    /// Second receive buffer so both directions of a halo axis can have
    /// nonblocking receives posted at once.
    recv_buf2: Vec<f64>,
    steps_done: u64,
    /// Kernel formulation + banding for the stencil sweeps. All
    /// configurations are bitwise-identical; see `advect2d::simd`.
    kernel: KernelConfig,
}

impl DistributedSolver {
    /// Initialize this rank's block from the problem's initial condition.
    pub fn new(
        problem: AdvectionProblem,
        level: LevelPair,
        dt: f64,
        info: &GroupInfo,
        local_rank: usize,
    ) -> Self {
        assert!(local_rank < info.size);
        let nx_glob = 1usize << level.i;
        let ny_glob = 1usize << level.j;
        let pi = local_rank % info.px;
        let pj = local_rank / info.px;
        let (x0, lnx) = block_range(nx_glob, info.px, pi);
        let (y0, lny) = block_range(ny_glob, info.py, pj);
        assert!(lnx >= 1 && lny >= 1, "empty block: {info:?} rank {local_rank}");
        let hx = 1.0 / nx_glob as f64;
        let hy = 1.0 / ny_glob as f64;
        let coef = LwCoef::new(&problem, hx, hy, dt);
        let mut s = DistributedSolver {
            problem,
            level,
            dt,
            coef,
            px: info.px,
            py: info.py,
            pi,
            pj,
            x0,
            y0,
            lnx,
            lny,
            field: PaddedField::new(lnx, lny),
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
            recv_buf2: Vec::new(),
            steps_done: 0,
            kernel: KernelConfig::global(),
        };
        s.reset_to_initial();
        s
    }

    /// Replace the kernel configuration (formulation + banding); results
    /// are bitwise-identical in every configuration, only speed changes.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Refill the block from the initial condition and rewind the step
    /// counter.
    pub fn reset_to_initial(&mut self) {
        let nx_glob = (1usize << self.level.i) as f64;
        let ny_glob = (1usize << self.level.j) as f64;
        let ic = self.problem.initial();
        let pnx = self.lnx + 2;
        let padded = self.field.padded_mut();
        for m in 0..self.lny {
            let y = (self.y0 + m) as f64 / ny_glob;
            for k in 0..self.lnx {
                let x = (self.x0 + k) as f64 / nx_glob;
                padded[(m + 1) * pnx + k + 1] = ic(x, y);
            }
        }
        self.steps_done = 0;
    }

    /// Group rank of the process-grid neighbour at offset `(dx, dy)`,
    /// wrapping periodically (domain periodicity = process-grid wrap,
    /// since the blocks tile the fundamental domain).
    fn neighbor(&self, dx: isize, dy: isize) -> usize {
        let ni = (self.pi as isize + dx).rem_euclid(self.px as isize) as usize;
        let nj = (self.pj as isize + dy).rem_euclid(self.py as isize) as usize;
        nj * self.px + ni
    }

    /// Two-phase halo exchange over the group communicator.
    ///
    /// Allocation-free: interior rows are sent straight from the padded
    /// buffer (they are contiguous), columns are packed into a reused
    /// scratch vector, and all four receives land in a reused buffer via
    /// [`Comm::sendrecv_into`].
    fn halo_exchange(&mut self, ctx: &Ctx, group: &Comm) -> Result<()> {
        let pnx = self.lnx + 2;
        let (lnx, lny) = (self.lnx, self.lny);
        // Phase 1: y direction (interior rows only). Rows are contiguous
        // slices of the padded buffer — no packing needed.
        let north = self.neighbor(0, 1);
        let south = self.neighbor(0, -1);
        // Send up, receive from below (both tagged N for the northward
        // stream), and vice versa.
        let n = group.sendrecv_into(
            ctx,
            north,
            TAG_N,
            self.field.interior_row(lny - 1),
            south,
            TAG_N,
            &mut self.recv_buf,
        )?;
        debug_assert_eq!(n, lnx);
        self.field.padded_mut()[1..1 + lnx].copy_from_slice(&self.recv_buf[..lnx]);
        let n = group.sendrecv_into(
            ctx,
            south,
            TAG_S,
            self.field.interior_row(0),
            north,
            TAG_S,
            &mut self.recv_buf,
        )?;
        debug_assert_eq!(n, lnx);
        self.field.padded_mut()[(lny + 1) * pnx + 1..][..lnx]
            .copy_from_slice(&self.recv_buf[..lnx]);
        // Phase 2: x direction, full padded height so corners propagate.
        let east = self.neighbor(1, 0);
        let west = self.neighbor(-1, 0);
        ensure_len(&mut self.send_buf, lny + 2);
        for m in 0..lny + 2 {
            self.send_buf[m] = self.field.padded()[m * pnx + lnx];
        }
        let n = group.sendrecv_into(
            ctx,
            east,
            TAG_E,
            &self.send_buf,
            west,
            TAG_E,
            &mut self.recv_buf,
        )?;
        debug_assert_eq!(n, lny + 2);
        {
            let padded = self.field.padded_mut();
            for m in 0..lny + 2 {
                padded[m * pnx] = self.recv_buf[m];
            }
        }
        for m in 0..lny + 2 {
            self.send_buf[m] = self.field.padded()[m * pnx + 1];
        }
        let n = group.sendrecv_into(
            ctx,
            west,
            TAG_W,
            &self.send_buf,
            east,
            TAG_W,
            &mut self.recv_buf,
        )?;
        debug_assert_eq!(n, lny + 2);
        {
            let padded = self.field.padded_mut();
            for m in 0..lny + 2 {
                padded[m * pnx + lnx + 1] = self.recv_buf[m];
            }
        }
        Ok(())
    }

    /// Advance one timestep with communication–computation overlap:
    /// post the y-direction halo ring nonblocking, compute the deep
    /// interior (no halo dependence) while the rows fly, complete and
    /// install them, post the x-direction ring (full padded height — the
    /// packed columns carry the freshly installed y-halos so corners
    /// propagate), compute the north/south boundary rows, complete, and
    /// finish the east/west boundary columns. Every cell evaluates the
    /// exact expression of [`step_blocking`], just in a different order of
    /// disjoint regions, so the result is **bitwise equal** to the
    /// blocking reference — while the halo flight time is hidden behind
    /// the interior stencil (`max(compute, exposed_comm)` instead of
    /// their sum on the virtual clock).
    ///
    /// Errors with `ProcFailed` if a halo partner has died — all posted
    /// requests are still driven to completion by `waitall` first, so a
    /// mid-step death surfaces uniformly and never wedges a survivor. The
    /// group is then *broken* and must be data-recovered as a whole
    /// (§II-D).
    ///
    /// [`step_blocking`]: DistributedSolver::step_blocking
    pub fn step(&mut self, ctx: &Ctx, group: &Comm) -> Result<()> {
        let (lnx, lny) = (self.lnx, self.lny);
        let pnx = lnx + 2;
        let coef = self.coef;
        let north = self.neighbor(0, 1);
        let south = self.neighbor(0, -1);
        let east = self.neighbor(1, 0);
        let west = self.neighbor(-1, 0);
        let kcfg = self.kernel;
        let row = lw_row_fn(kcfg.kind);
        let DistributedSolver { field, send_buf, recv_buf, recv_buf2, .. } = self;
        let kernel =
            move |s: &[f64], c: &[f64], n: &[f64], out: &mut [f64]| row(s, c, n, &coef, out);

        // Phase 1: y direction (interior rows, contiguous — no packing).
        // Eager sends copy at post time, so the field stays free for the
        // stencil while the requests are in flight.
        let mut ry = [
            group.isend(ctx, north, TAG_N, field.interior_row(lny - 1))?,
            group.isend(ctx, south, TAG_S, field.interior_row(0))?,
            group.irecv_into(ctx, south, TAG_N, recv_buf)?,
            group.irecv_into(ctx, north, TAG_S, recv_buf2)?,
        ];
        // Deep interior: needs no halo at all. This is the bulk of the
        // compute that hides the halo flight time, so it is also where
        // the optional row-band pool splits the work.
        let bands = kcfg.bands_for(lnx * lny, lny.saturating_sub(2).max(1));
        if bands > 1 {
            field.step_region_banded(
                BandPool::global(),
                bands,
                1,
                lny.saturating_sub(1),
                1,
                lnx.saturating_sub(1),
                kernel,
            );
        } else {
            field.step_region(1, lny.saturating_sub(1), 1, lnx.saturating_sub(1), kernel);
        }
        ctx.compute_step_cells((lny.saturating_sub(2) * lnx.saturating_sub(2)) as u64);
        waitall(ctx, &mut ry)?;
        debug_assert_eq!(recv_buf.len(), lnx);
        field.padded_mut()[1..1 + lnx].copy_from_slice(&recv_buf[..lnx]);
        field.padded_mut()[(lny + 1) * pnx + 1..][..lnx].copy_from_slice(&recv_buf2[..lnx]);

        // Phase 2: x direction, full padded height so corners propagate.
        // One scratch buffer serves both packs: the eager isend has
        // copied the first column before the second overwrites it.
        ensure_len(send_buf, lny + 2);
        for (m, v) in send_buf.iter_mut().enumerate() {
            *v = field.padded()[m * pnx + lnx];
        }
        let re = group.isend(ctx, east, TAG_E, send_buf)?;
        for (m, v) in send_buf.iter_mut().enumerate() {
            *v = field.padded()[m * pnx + 1];
        }
        let rw = group.isend(ctx, west, TAG_W, send_buf)?;
        let mut rx = [
            re,
            rw,
            group.irecv_into(ctx, west, TAG_E, recv_buf)?,
            group.irecv_into(ctx, east, TAG_W, recv_buf2)?,
        ];
        // North/south boundary rows need only the y-halos just installed.
        field.step_region(0, 1, 1, lnx.saturating_sub(1), kernel);
        if lny > 1 {
            field.step_region(lny - 1, lny, 1, lnx.saturating_sub(1), kernel);
        }
        let edge_rows = if lny > 1 { 2 } else { 1 };
        ctx.compute_step_cells((edge_rows * lnx.saturating_sub(2)) as u64);
        waitall(ctx, &mut rx)?;
        debug_assert_eq!(recv_buf.len(), lny + 2);
        {
            let padded = field.padded_mut();
            for m in 0..lny + 2 {
                padded[m * pnx] = recv_buf[m];
                padded[m * pnx + lnx + 1] = recv_buf2[m];
            }
        }
        // East/west boundary columns complete the ring.
        field.step_region(0, lny, 0, 1, kernel);
        if lnx > 1 {
            field.step_region(0, lny, lnx - 1, lnx, kernel);
        }
        let edge_cols = if lnx > 1 { 2 } else { 1 };
        ctx.compute_step_cells((edge_cols * lny) as u64);
        field.commit_step();
        self.steps_done += 1;
        Ok(())
    }

    /// The blocking reference step (halo exchange, then the whole
    /// stencil): kept in-tree as the bitwise oracle for [`step`] and as
    /// the serial baseline the overlap benchmarks compare against.
    ///
    /// [`step`]: DistributedSolver::step
    pub fn step_blocking(&mut self, ctx: &Ctx, group: &Comm) -> Result<()> {
        self.halo_exchange(ctx, group)?;
        let coef = self.coef;
        self.field.step(|s, c, n, out| lax_wendroff_row(s, c, n, &coef, out));
        ctx.compute_step_cells((self.lnx * self.lny) as u64);
        self.steps_done += 1;
        Ok(())
    }

    /// Run `n` steps.
    pub fn run(&mut self, ctx: &Ctx, group: &Comm, n: u64) -> Result<()> {
        for _ in 0..n {
            self.step(ctx, group)?;
        }
        Ok(())
    }

    /// The owned interior block, row-major `lnx × lny`.
    pub fn local_block(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.local_block_into(&mut out);
        out
    }

    /// Copy the owned interior block into a reused buffer (cleared
    /// first) — the allocation-free form of [`local_block`].
    ///
    /// [`local_block`]: DistributedSolver::local_block
    pub fn local_block_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.lnx * self.lny);
        for m in 0..self.lny {
            out.extend_from_slice(self.field.interior_row(m));
        }
    }

    /// Overwrite the owned block (data recovery path) and set the step
    /// counter to `steps_done`.
    pub fn load_block(&mut self, values: &[f64], steps_done: u64) {
        assert_eq!(values.len(), self.lnx * self.lny, "block size mismatch");
        let pnx = self.lnx + 2;
        let padded = self.field.padded_mut();
        for m in 0..self.lny {
            padded[(m + 1) * pnx + 1..(m + 1) * pnx + 1 + self.lnx]
                .copy_from_slice(&values[m * self.lnx..(m + 1) * self.lnx]);
        }
        self.steps_done = steps_done;
    }

    /// Block geometry: `(x0, y0, lnx, lny)` in fundamental-domain nodes.
    pub fn block_geometry(&self) -> (usize, usize, usize, usize) {
        (self.x0, self.y0, self.lnx, self.lny)
    }

    /// Steps taken so far.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// The sub-grid level.
    pub fn level(&self) -> LevelPair {
        self.level
    }

    /// The fixed timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The PDE.
    pub fn problem(&self) -> &AdvectionProblem {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_partitions_exactly() {
        for (n, parts) in [(16, 4), (17, 4), (8, 3), (1024, 8), (5, 5)] {
            let mut total = 0;
            let mut next = 0;
            for b in 0..parts {
                let (s, len) = block_range(n, parts, b);
                assert_eq!(s, next);
                assert!(len >= 1, "empty block n={n} parts={parts} b={b}");
                next = s + len;
                total += len;
            }
            assert_eq!(total, n);
        }
    }

    #[test]
    fn local_block_roundtrip() {
        let info = GroupInfo { grid: 0, first: 0, size: 1, px: 1, py: 1 };
        let p = AdvectionProblem::standard();
        let mut s = DistributedSolver::new(p, LevelPair::new(3, 3), 0.01, &info, 0);
        let block = s.local_block();
        assert_eq!(block.len(), 64);
        let mut modified = block.clone();
        modified[10] = 99.0;
        s.load_block(&modified, 7);
        assert_eq!(s.local_block()[10], 99.0);
        assert_eq!(s.steps_done(), 7);
    }

    #[test]
    fn initial_block_matches_ic() {
        let info = GroupInfo { grid: 0, first: 0, size: 4, px: 2, py: 2 };
        let p = AdvectionProblem::standard();
        let s = DistributedSolver::new(p, LevelPair::new(4, 4), 0.01, &info, 3);
        let (x0, y0, lnx, lny) = s.block_geometry();
        assert_eq!((x0, y0), (8, 8)); // rank 3 = (pi=1, pj=1)
        let block = s.local_block();
        let ic = p.initial();
        for m in 0..lny {
            for k in 0..lnx {
                let x = (x0 + k) as f64 / 16.0;
                let y = (y0 + m) as f64 / 16.0;
                assert!((block[m * lnx + k] - ic(x, y)).abs() < 1e-15);
            }
        }
    }
}
