//! Per-failure-event recovery timelines (the paper's Figs. 8–11 lens).
//!
//! Every detected failure event yields one [`RecoveryTimeline`]: the
//! event's wall-clock window on rank 0 broken into the protocol's named
//! phases, measured from the [`ReconstructTimings`] the reconstruction
//! accumulated for that event. The named phases are disjoint segments of
//! the window; whatever the instrumented segments do not cover (commit
//! checkpointing, combination retries, plain compute between detection
//! points) lands in the `"other"` residual, so the phase durations always
//! sum — exactly, within float round-off — to the event's measured
//! recovery time. That invariant is what the chaos campaign's timeline
//! oracle checks on every injected failure.
//!
//! Being a *per-rank* view, synchronization waits land in the phase rank
//! 0 waits in: when another group restores its data, rank 0 blocks in
//! the commit protocol's agree vote, so that restore shows up under
//! `"agree"` rather than `"data_restore"` (exactly as an MPI profiler
//! attributes wait time to the operation waited in).

use ulfm_sim::RecoveryTimeline;

use crate::reconstruct::ReconstructTimings;

/// Phase names of a recovery timeline, in protocol order. `"other"` is
/// the residual that makes the phases sum to the event window.
pub const PHASES: [&str; 10] = [
    "detect",
    "ack",
    "revoke_shrink",
    "failed_list",
    "spawn",
    "merge",
    "agree",
    "rank_reorder",
    "data_restore",
    "other",
];

/// Build the timeline of one failure event from the reconstruction
/// timings accumulated over the event's window `[t_start, t_end]`.
///
/// `event` is the 0-based failure-event index on this run; `detect_step`
/// the solver step at which the failure was detected. Every phase
/// duration is clamped non-negative and the residual absorbs the
/// remainder, so `phases` sums to `t_end - t_start` within `1e-9`.
pub fn build_timeline(
    event: usize,
    detect_step: u64,
    t_start: f64,
    t_end: f64,
    tm: &ReconstructTimings,
) -> RecoveryTimeline {
    let named = [
        ("detect", tm.t_detect),
        ("ack", tm.t_ack),
        ("revoke_shrink", tm.t_revoke + tm.t_shrink),
        ("failed_list", tm.t_flist),
        ("spawn", tm.t_spawn),
        ("merge", tm.t_merge),
        ("agree", tm.t_agree),
        ("rank_reorder", tm.t_split),
        ("data_restore", tm.t_restore),
    ];
    let total = t_end - t_start;
    let mut phases: Vec<(&'static str, f64)> = Vec::with_capacity(PHASES.len());
    let mut sum = 0.0;
    for (name, dur) in named {
        let dur = dur.max(0.0);
        sum += dur;
        phases.push((name, dur));
    }
    // The instrumented segments are disjoint sub-intervals of the window,
    // so the residual is non-negative up to accumulated round-off.
    debug_assert!(total - sum > -1e-9, "phases ({sum}) exceed the event window ({total})");
    phases.push(("other", (total - sum).max(0.0)));
    RecoveryTimeline {
        event,
        detect_step,
        t_start,
        t_end,
        failed_ranks: tm.failed_ranks.clone(),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_sum_exactly_to_the_event_window() {
        let tm = ReconstructTimings {
            t_detect: 0.010,
            t_ack: 0.002,
            t_revoke: 0.001,
            t_shrink: 0.015,
            t_flist: 0.003,
            t_spawn: 0.040,
            t_merge: 0.005,
            t_agree: 0.004,
            t_split: 0.006,
            t_restore: 0.080,
            failed_ranks: vec![3],
            ..Default::default()
        };
        let tl = build_timeline(0, 16, 1.0, 1.25, &tm);
        assert_eq!(tl.phases.len(), PHASES.len());
        for (i, (name, dur)) in tl.phases.iter().enumerate() {
            assert_eq!(*name, PHASES[i]);
            assert!(*dur >= 0.0);
        }
        assert!((tl.phase_sum() - tl.total()).abs() < 1e-9);
        assert!((tl.phase("revoke_shrink") - 0.016).abs() < 1e-15);
        assert!(tl.phase("other") > 0.0);
        assert_eq!(tl.failed_ranks, vec![3]);
    }

    #[test]
    fn tiny_overshoot_clamps_other_to_zero() {
        // Round-off can push the named sum a hair past the window; the
        // residual clamps instead of going negative.
        let tm = ReconstructTimings { t_spawn: 0.1 + 1e-12, ..Default::default() };
        let tl = build_timeline(1, 32, 0.0, 0.1, &tm);
        assert_eq!(tl.phase("other"), 0.0);
        assert!((tl.phase_sum() - tl.total()).abs() < 1e-9);
    }
}
