//! # ftsg-core — the fault-tolerant sparse-grid PDE application
//!
//! The paper's primary contribution, rebuilt end-to-end on the simulated
//! ULFM runtime:
//!
//! * [`layout`] — process groups per sub-grid with the paper's load
//!   balancing (half the processes on the half-size lower-diagonal grids),
//! * [`psolve`] — distributed Lax–Wendroff with 2D domain decomposition
//!   and halo exchange inside each group,
//! * [`detect`] / [`reconstruct`] — line-by-line ports of the paper's
//!   Figs. 3–7: failure detection via a failed barrier, the globally
//!   consistent failed-rank list through group algebra, communicator
//!   reconstruction by re-spawning the failed ranks *on their original
//!   hosts* and re-ordering ranks with a keyed `comm_split`,
//! * [`recovery`] — the three data recovery techniques:
//!   **Checkpoint/Restart** (exact, disk), **Resampling and Copying**
//!   (near-exact, duplicate grids in memory), **Alternate Combination**
//!   (approximate, robust combination coefficients over the survivors),
//! * [`app`] — the driver that runs the full story: solve `2^k` timesteps,
//!   suffer injected failures, detect, reconstruct, recover, combine, and
//!   measure the error against the analytic solution.

pub mod app;
pub mod app_nd;
pub mod checkpoint;
pub mod ckpt_async;
pub mod config;
pub mod detect;
pub mod gather;
pub mod gather_nd;
pub mod layout;
pub mod layout_nd;
pub mod output;
pub mod policy;
pub mod psolve;
pub mod psolve_nd;
pub mod reconstruct;
pub mod recovery;
pub mod recovery_nd;
pub mod tags;
pub mod timeline;

pub use app::{run_app, AppOutcome};
pub use checkpoint::{CheckpointStore, CorruptKind, CorruptionPlan, CorruptionStrike};
pub use ckpt_async::AsyncCheckpointer;
pub use config::{AppConfig, CombineMode, Technique};
pub use layout::{Assignment, GroupInfo, ProcLayout};
pub use layout_nd::{AssignmentN, GroupInfoN, ProcLayoutN};
pub use policy::RecoveryPolicy;
pub use psolve_nd::DistributedSolverN;
pub use reconstruct::{
    communicator_reconstruct, communicator_reconstruct_with, deferred_epoch_repair,
    detect_and_repair, repair_comm, repair_comm_with, ReconstructTimings, RespawnPolicy,
};
pub use tags::TagSpace;
pub use timeline::{build_timeline, PHASES};
