//! Data recovery for the d-dimensional application — the nd sibling of
//! [`crate::recovery`], technique for technique.
//!
//! The protocols are structurally identical to the 2D ones (whole-sub-grid
//! restore, same message choreography, same accounting): only the types
//! change — [`GridN`] payloads, [`ProcLayoutN`] slab groups, the v3
//! checkpoint format, and [`robust_coefficients_nd`] over the truncated
//! simplex for Alternate Combination. Keeping the two paths separate (not
//! generic) preserves the 2D path's bitwise fingerprints.

use sparsegrid::{
    combine_onto_nd, robust_coefficients_nd, CombinationTermN, GridN, LevelSetN, LevelVecN,
    RcSourceN,
};
use ulfm_sim::{Comm, Ctx, Error, Result};

use crate::checkpoint::CheckpointStore;
use crate::config::{AppConfig, Technique};
use crate::gather_nd::{gather_grid_n, recv_grid_n, scatter_grid_n, send_grid_n};
use crate::layout_nd::{AssignmentN, ProcLayoutN};
use crate::psolve_nd::DistributedSolverN;
use crate::recovery::RecoveryStats;
use crate::tags::TagSpace;

/// In-memory buddy checkpoints of d-dimensional partner grids held *by
/// this rank*: grid id → (checkpointed step, grid data).
pub type BuddyStoreN = std::collections::HashMap<usize, (u64, GridN)>;

/// The buddy of a combining grid: the next combining grid, cyclically —
/// same contract (and same non-panicking error surface) as
/// [`crate::recovery::buddy_of`].
pub fn buddy_of_n(layout: &ProcLayoutN, grid: usize) -> Result<usize> {
    let ids = layout.system().combination_ids();
    let pos = ids.iter().position(|&g| g == grid).ok_or_else(|| {
        Error::InvalidArg(format!("grid {grid} is not in the combining set {ids:?}"))
    })?;
    Ok(ids[(pos + 1) % ids.len()])
}

/// Periodic buddy exchange over d-dimensional groups. Collective over the
/// world.
#[allow(clippy::too_many_arguments)]
pub fn buddy_exchange_n(
    ctx: &Ctx,
    layout: &ProcLayoutN,
    world: &Comm,
    group: &Comm,
    my: AssignmentN,
    solver: &DistributedSolverN,
    at_step: u64,
    store: &mut BuddyStoreN,
) -> Result<()> {
    let ids = layout.system().combination_ids();
    let tags = TagSpace::for_layout_nd(layout);
    // Phase 1: every group gathers and its root sends to the buddy root.
    let full =
        gather_grid_n(ctx, group, layout.group(my.grid), solver.level(), &solver.local_block())?;
    if let Some(grid) = &full {
        let buddy = buddy_of_n(layout, my.grid)?;
        send_grid_n(ctx, world, layout.root_of(buddy), tags.buddy + my.grid as i32, grid)?;
    }
    // Phase 2: buddy roots collect the copies addressed to them.
    for &g in &ids {
        let buddy = buddy_of_n(layout, g)?;
        if world.rank() == layout.root_of(buddy) {
            let grid = recv_grid_n(ctx, world, layout.root_of(g), tags.buddy + g as i32)?;
            store.insert(g, (at_step, grid));
        }
    }
    Ok(())
}

/// Sentinel broadcast when no checkpoint exists yet.
const NO_CHECKPOINT: u64 = u64::MAX;

/// Run the configured technique's d-dimensional data recovery after a
/// reconstruction. Collective over the world; same contract as
/// [`crate::recovery::recover`].
#[allow(clippy::too_many_arguments)]
pub fn recover_n(
    ctx: &Ctx,
    cfg: &AppConfig,
    layout: &ProcLayoutN,
    world: &Comm,
    group: &Comm,
    my: AssignmentN,
    solver: &mut DistributedSolverN,
    store: &CheckpointStore,
    buddy_store: &mut BuddyStoreN,
    failed_ranks: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let broken = layout.broken_grids(failed_ranks);
    if broken.is_empty() {
        return Ok(RecoveryStats::default());
    }
    let t0 = ctx.now();
    let stats = match cfg.technique {
        Technique::CheckpointRestart => {
            recover_checkpoint_n(ctx, layout, group, my, solver, store, &broken, at_step)
        }
        Technique::ResamplingCopying => {
            recover_resample_copy_n(ctx, layout, world, group, my, solver, &broken, at_step)
        }
        Technique::AlternateCombination => {
            recover_alt_combination_n(ctx, layout, world, group, my, solver, &broken, at_step)
        }
        Technique::BuddyCheckpoint => {
            recover_buddy_n(ctx, layout, world, group, my, solver, buddy_store, &broken, at_step)
        }
    }?;
    ctx.trace_phase("data_restore", t0);
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn recover_buddy_n(
    ctx: &Ctx,
    layout: &ProcLayoutN,
    world: &Comm,
    group: &Comm,
    my: AssignmentN,
    solver: &mut DistributedSolverN,
    store: &mut BuddyStoreN,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let t0 = ctx.now();
    let tags = TagSpace::for_layout_nd(layout);
    let mut touched = false;
    for &b in broken {
        let buddy = buddy_of_n(layout, b)?;
        // The buddy root answers with [has, step] and then maybe the grid.
        if world.rank() == layout.root_of(buddy) {
            touched = true;
            match store.get(&b) {
                Some((step, grid)) => {
                    world.send(
                        ctx,
                        layout.root_of(b),
                        tags.buddy_hdr + b as i32,
                        &[1u64, *step],
                    )?;
                    send_grid_n(ctx, world, layout.root_of(b), tags.buddy + b as i32, grid)?;
                }
                None => {
                    world.send(ctx, layout.root_of(b), tags.buddy_hdr + b as i32, &[0u64, 0u64])?;
                }
            }
        }
        if my.grid == b {
            touched = true;
            let payload: Option<(u64, GridN)> = if group.rank() == 0 {
                let hdr: Vec<u64> =
                    world.recv(ctx, layout.root_of(buddy), tags.buddy_hdr + b as i32)?;
                if hdr[0] == 1 {
                    let grid =
                        recv_grid_n(ctx, world, layout.root_of(buddy), tags.buddy + b as i32)?;
                    Some((hdr[1], grid))
                } else {
                    None
                }
            } else {
                None
            };
            let step_msg: Option<Vec<u64>> = if group.rank() == 0 {
                Some(vec![payload.as_ref().map_or(NO_CHECKPOINT, |(s, _)| *s)])
            } else {
                None
            };
            let restored = group.bcast(ctx, 0, step_msg.as_deref())?[0];
            if restored == NO_CHECKPOINT {
                solver.reset_to_initial();
            } else {
                let grid = payload.map(|(_, g)| g);
                let block = scatter_grid_n(ctx, group, layout.group(b), grid.as_ref())?;
                solver.load_block(&block, restored);
            }
            let behind = at_step - solver.steps_done();
            solver.run(ctx, group, behind)?;
        }
    }
    let t = if touched { ctx.now() - t0 } else { 0.0 };
    Ok(RecoveryStats { t_recovery: t, recovered_grids: broken.to_vec() })
}

#[allow(clippy::too_many_arguments)]
fn recover_checkpoint_n(
    ctx: &Ctx,
    layout: &ProcLayoutN,
    group: &Comm,
    my: AssignmentN,
    solver: &mut DistributedSolverN,
    store: &CheckpointStore,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    if !broken.contains(&my.grid) {
        return Ok(RecoveryStats { t_recovery: 0.0, recovered_grids: broken.to_vec() });
    }
    let t0 = ctx.now();
    let info = layout.group(my.grid);
    // Root reads the newest *valid* v3 checkpoint, falling back past
    // corrupt, torn, or wrong-format files.
    let payload: Option<(u64, GridN)> = if group.rank() == 0 {
        let (restored, skipped) = store
            .read_latest_valid_nd(my.grid)
            .map_err(|e| Error::InvalidArg(format!("checkpoint read: {e}")))?;
        if skipped > 0 {
            ctx.report_add(crate::app::keys::CKPT_SKIPPED, skipped as f64);
        }
        match restored {
            Some((step, grid, bytes)) => {
                ctx.disk_read(bytes);
                Some((step, grid))
            }
            None => None,
        }
    } else {
        None
    };
    let step_msg: Option<Vec<u64>> = if group.rank() == 0 {
        Some(vec![payload.as_ref().map_or(NO_CHECKPOINT, |(s, _)| *s)])
    } else {
        None
    };
    let restored = group.bcast(ctx, 0, step_msg.as_deref())?[0];
    if restored == NO_CHECKPOINT {
        solver.reset_to_initial();
    } else {
        let grid = payload.map(|(_, g)| g);
        let block = scatter_grid_n(ctx, group, info, grid.as_ref())?;
        solver.load_block(&block, restored);
    }
    let behind = at_step - solver.steps_done();
    solver.run(ctx, group, behind)?;
    Ok(RecoveryStats { t_recovery: ctx.now() - t0, recovered_grids: broken.to_vec() })
}

#[allow(clippy::too_many_arguments)]
fn recover_resample_copy_n(
    ctx: &Ctx,
    layout: &ProcLayoutN,
    world: &Comm,
    group: &Comm,
    my: AssignmentN,
    solver: &mut DistributedSolverN,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let sys = layout.system();
    let tags = TagSpace::for_layout_nd(layout);
    let t0 = ctx.now();
    let mut touched = false;
    for &b in broken {
        let src = sys.rc_source(b).ok_or_else(|| {
            Error::InvalidArg(format!("grid {b} has no Resampling-and-Copying source"))
        })?;
        let (src_id, resample) = match src {
            RcSourceN::Copy(s) => (s, false),
            RcSourceN::Resample(s) => (s, true),
        };
        if broken.contains(&src_id) {
            return Err(Error::InvalidArg(format!(
                "RC constraint violated: grids {b} and {src_id} failed together"
            )));
        }
        let b_level = sys.grid(b).level.clone();
        if my.grid == src_id {
            touched = true;
            // Source group: gather and ship (restricted if resampling).
            let full = gather_grid_n(
                ctx,
                group,
                layout.group(src_id),
                solver.level(),
                &solver.local_block(),
            )?;
            if let Some(full) = full {
                let out = if resample { full.restrict_to(&b_level) } else { full };
                send_grid_n(ctx, world, layout.root_of(b), tags.rc + b as i32, &out)?;
            }
        }
        if my.grid == b {
            touched = true;
            let grid: Option<GridN> = if group.rank() == 0 {
                Some(recv_grid_n(ctx, world, layout.root_of(src_id), tags.rc + b as i32)?)
            } else {
                None
            };
            let block = scatter_grid_n(ctx, group, layout.group(b), grid.as_ref())?;
            solver.load_block(&block, at_step);
        }
    }
    let t = if touched { ctx.now() - t0 } else { 0.0 };
    Ok(RecoveryStats { t_recovery: t, recovered_grids: broken.to_vec() })
}

#[allow(clippy::too_many_arguments)]
fn recover_alt_combination_n(
    ctx: &Ctx,
    layout: &ProcLayoutN,
    world: &Comm,
    group: &Comm,
    my: AssignmentN,
    solver: &mut DistributedSolverN,
    broken: &[usize],
    at_step: u64,
) -> Result<RecoveryStats> {
    let sys = layout.system();
    let tags = TagSpace::for_layout_nd(layout);

    // --- 1. Robust coefficients over the survivors (the technique's
    //        accountable recovery cost; deterministic, computed locally). ---
    let t_coeff0 = ctx.now();
    let lost_levels: Vec<LevelVecN> = broken.iter().map(|&b| sys.grid(b).level.clone()).collect();
    let mut surviving = LevelSetN::new(sys.dim());
    for g in sys.grids().iter().filter(|g| !broken.contains(&g.id)) {
        surviving.insert(g.level.clone());
    }
    let downset = sys.classical_downset();
    let coeffs = robust_coefficients_nd(&downset, &lost_levels, &surviving);
    // Virtual cost of solving the small coefficient problem.
    ctx.advance(1.0e-4 + 4.0e-6 * downset.len() as f64);
    let t_recovery = ctx.now() - t_coeff0;

    // --- 2. Gather the needed surviving grids to world rank 0. ---
    let needed: Vec<usize> = sys
        .grids()
        .iter()
        .filter(|g| !broken.contains(&g.id) && coeffs.get(&g.level).copied().unwrap_or(0) != 0)
        .map(|g| g.id)
        .collect();
    if needed.is_empty() {
        return Err(Error::InvalidArg(
            "alternate combination: no surviving grids can cover the losses".into(),
        ));
    }
    if needed.contains(&my.grid) {
        let full = gather_grid_n(
            ctx,
            group,
            layout.group(my.grid),
            solver.level(),
            &solver.local_block(),
        )?;
        if let Some(full) = full {
            send_grid_n(ctx, world, 0, tags.ac_gather + my.grid as i32, &full)?;
        }
    }

    // --- 3. The controller combines onto each lost level and ships the
    //        recovered grids back. ---
    if world.rank() == 0 {
        let mut sources: Vec<(f64, GridN)> = Vec::with_capacity(needed.len());
        for &gid in &needed {
            let g = recv_grid_n(ctx, world, layout.root_of(gid), tags.ac_gather + gid as i32)?;
            let c = coeffs[&sys.grid(gid).level] as f64;
            sources.push((c, g));
        }
        let terms: Vec<CombinationTermN> =
            sources.iter().map(|(c, g)| CombinationTermN { coeff: *c, grid: g }).collect();
        for &b in broken {
            let lvl = &sys.grid(b).level;
            let recovered = combine_onto_nd(lvl, &terms);
            ctx.compute_cells((terms.len() * recovered.values().len()) as u64);
            send_grid_n(ctx, world, layout.root_of(b), tags.ac_result + b as i32, &recovered)?;
        }
    }

    // --- 4. Broken groups load the recovered data. ---
    if broken.contains(&my.grid) {
        let grid: Option<GridN> = if group.rank() == 0 {
            Some(recv_grid_n(ctx, world, 0, tags.ac_result + my.grid as i32)?)
        } else {
            None
        };
        let block = scatter_grid_n(ctx, group, layout.group(my.grid), grid.as_ref())?;
        solver.load_block(&block, at_step);
    }

    Ok(RecoveryStats { t_recovery, recovered_grids: broken.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegrid::Layout;

    #[test]
    fn buddy_of_n_cycles_within_the_combining_set() {
        let layout = ProcLayoutN::new(3, 4, 4, Layout::Plain, 1);
        let ids = layout.system().combination_ids();
        for &g in &ids {
            let b = buddy_of_n(&layout, g).unwrap();
            assert!(ids.contains(&b));
            assert_ne!(b, g, "a grid must never buddy itself");
        }
    }

    #[test]
    fn buddy_of_n_non_combining_grid_is_an_error_not_a_panic() {
        let layout = ProcLayoutN::new(3, 4, 4, Layout::ExtraLayers, 1);
        let ids = layout.system().combination_ids();
        let outsider = layout
            .system()
            .grids()
            .iter()
            .map(|g| g.id)
            .find(|id| !ids.contains(id))
            .expect("ExtraLayers layout must have non-combining grids");
        let err = buddy_of_n(&layout, outsider).unwrap_err();
        assert!(err.to_string().contains("not in the combining set"), "got: {err}");
        assert!(buddy_of_n(&layout, 9999).is_err());
    }
}
