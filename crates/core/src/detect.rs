//! Failure detection and the globally consistent failed-rank list — the
//! paper's Figs. 4 and 6.

use ulfm_sim::group::GroupCompare;
use ulfm_sim::{Comm, Ctx};

/// Port of the paper's Fig. 4 (`mpiErrorHandler`): on a communicator
/// error, acknowledge the locally observed failures so the subsequent
/// `agree` can return uniformly. (The paper notes a ≥ 10 ms delay is
/// sometimes needed here; the runtime's cost model charges it inside
/// `failure_ack`.)
pub fn mpi_error_handler(ctx: &Ctx, comm: &Comm) {
    comm.failure_ack(ctx);
    let _failed_group = comm.failure_get_acked();
}

/// Port of the paper's Fig. 6 (`failedProcsList`): derive the ranks (in
/// `broken`) of the processes that are missing from `shrinked`, via
/// `MPI_Group_compare` / `MPI_Group_difference` /
/// `MPI_Group_translate_ranks`.
pub fn failed_procs_list(broken: &Comm, shrinked: &Comm) -> Vec<usize> {
    let old_group = broken.group();
    let shrink_group = shrinked.group();
    if old_group.compare(&shrink_group) == GroupCompare::Ident {
        return Vec::new();
    }
    let failed_group = old_group.difference(&shrink_group);
    let temp_ranks: Vec<usize> = (0..failed_group.size()).collect();
    failed_group.translate_ranks(&temp_ranks, &old_group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulfm_sim::{run, Error, RunConfig};

    #[test]
    fn failed_list_identifies_paper_example() {
        // The paper's running example (its Fig. 2): ranks 3 and 5 of a
        // 7-process communicator fail.
        let report = run(RunConfig::local(7), |ctx| {
            let w = ctx.initial_world().unwrap();
            if w.rank() == 3 || w.rank() == 5 {
                ctx.die();
            }
            match w.barrier(ctx) {
                Err(Error::ProcFailed { .. }) => {
                    mpi_error_handler(ctx, &w);
                    let shrinked = w.shrink(ctx).unwrap();
                    let failed = failed_procs_list(&w, &shrinked);
                    assert_eq!(failed, vec![3, 5]);
                    ctx.report_add("ok", 1.0);
                }
                other => panic!("expected failure, got {other:?}"),
            }
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(5.0));
    }

    #[test]
    fn no_failures_gives_empty_list() {
        let report = run(RunConfig::local(4), |ctx| {
            let w = ctx.initial_world().unwrap();
            let s = w.shrink(ctx).unwrap();
            assert!(failed_procs_list(&w, &s).is_empty());
            ctx.report_add("ok", 1.0);
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(4.0));
    }
}
