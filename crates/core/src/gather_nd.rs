//! Gather–scatter between distributed slabs and whole d-dimensional
//! sub-grids — the nd sibling of [`crate::gather`].
//!
//! Each group's root gathers the member slabs into a full [`GridN`], the
//! roots exchange grids (for combination or data recovery), and recovered
//! grids are scattered back into member slabs. The tree combination
//! mirrors [`crate::gather::binomial_combine`] hop for hop, including the
//! recoverable [`ulfm_sim::Error::Protocol`] surface at the final-ship
//! hop.

use sparsegrid::ndgrid::advance;
use sparsegrid::GridN;
use ulfm_sim::{Comm, Ctx, Error, Result};

use crate::layout_nd::GroupInfoN;
use crate::psolve::block_range;

/// Assemble a full periodic grid (with its duplicated seam planes) from
/// per-member fundamental-domain slabs, ordered by group rank.
pub fn assemble_grid_n(level: &[u32], info: &GroupInfoN, blocks: &[Vec<f64>]) -> Result<GridN> {
    let d = level.len();
    let np: Vec<usize> = level.iter().map(|&l| 1usize << l).collect();
    if blocks.len() != info.size {
        return Err(Error::InvalidArg(format!(
            "assemble_grid_n: {} blocks for group of {}",
            blocks.len(),
            info.size
        )));
    }
    let plane: usize = np[..d - 1].iter().product();
    let mut grid = GridN::zeros(level);
    for (local, block) in blocks.iter().enumerate() {
        let (z0, lnz) = block_range(np[d - 1], info.size, local);
        if block.len() != plane * lnz {
            return Err(Error::InvalidArg(format!(
                "assemble_grid_n: block {local} has {} values, expected {}",
                block.len(),
                plane * lnz
            )));
        }
        // Slab values are row-major over the fundamental domain; copy
        // node by node (the grid rows carry seam nodes, so runs differ).
        let mut shape = np.clone();
        shape[d - 1] = lnz;
        let mut idx = vec![0usize; d];
        let mut src = 0usize;
        let mut dst = vec![0usize; d];
        loop {
            dst.copy_from_slice(&idx);
            dst[d - 1] += z0;
            *grid.at_mut(&dst) = block[src];
            src += 1;
            if !advance(&mut idx, &shape) {
                break;
            }
        }
    }
    // Periodic seam pass per axis, mirroring `PaddedFieldN::store`:
    // already-seamed axes range over the full extent, later axes stay
    // below their seam, so corners come out consistent.
    let gshape = grid.shape().to_vec();
    for a in 0..d {
        let mut span = gshape.clone();
        span[a] = 1;
        for s in span.iter_mut().skip(a + 1) {
            *s -= 1;
        }
        let mut it = vec![0usize; d];
        loop {
            let mut dst = it.clone();
            dst[a] = gshape[a] - 1;
            let mut srcv = dst.clone();
            srcv[a] = 0;
            *grid.at_mut(&dst) = grid.at(&srcv);
            if !advance(&mut it, &span) {
                break;
            }
        }
    }
    Ok(grid)
}

/// Cut a full grid into the per-member slabs of a group (inverse of
/// [`assemble_grid_n`]; the seams are dropped).
pub fn split_grid_n(grid: &GridN, info: &GroupInfoN) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    split_grid_n_into(grid, info, &mut out);
    out
}

/// [`split_grid_n`] into reused storage.
pub fn split_grid_n_into(grid: &GridN, info: &GroupInfoN, out: &mut Vec<Vec<f64>>) {
    let level = grid.level();
    let d = level.len();
    let np: Vec<usize> = level.iter().map(|&l| 1usize << l).collect();
    out.resize_with(info.size, Vec::new);
    out.truncate(info.size);
    for (local, block) in out.iter_mut().enumerate() {
        let (z0, lnz) = block_range(np[d - 1], info.size, local);
        let mut shape = np.clone();
        shape[d - 1] = lnz;
        block.clear();
        block.reserve(shape.iter().product());
        let mut idx = vec![0usize; d];
        let mut src = vec![0usize; d];
        loop {
            src.copy_from_slice(&idx);
            src[d - 1] += z0;
            block.push(grid.at(&src));
            if !advance(&mut idx, &shape) {
                break;
            }
        }
    }
}

/// Collective over the group: gather member slabs to the group root.
/// Returns `Some(grid)` on the root, `None` elsewhere.
pub fn gather_grid_n(
    ctx: &Ctx,
    group: &Comm,
    info: &GroupInfoN,
    level: &[u32],
    my_block: &[f64],
) -> Result<Option<GridN>> {
    match group.gather(ctx, 0, my_block)? {
        Some(blocks) => Ok(Some(assemble_grid_n(level, info, &blocks)?)),
        None => Ok(None),
    }
}

/// Collective over the group: the root splits `grid` and scatters; every
/// member receives its slab.
pub fn scatter_grid_n(
    ctx: &Ctx,
    group: &Comm,
    info: &GroupInfoN,
    grid: Option<&GridN>,
) -> Result<Vec<f64>> {
    let parts = grid.map(|g| split_grid_n(g, info));
    group.scatter(ctx, 0, parts.as_deref())
}

/// Send a whole grid over a communicator as two messages (level-vector
/// header + payload). The dimension travels as the header length, so the
/// pair works for any `d`. Pairs with [`recv_grid_n`].
pub fn send_grid_n(ctx: &Ctx, comm: &Comm, dest: usize, tag: i32, grid: &GridN) -> Result<()> {
    let header: Vec<u64> = grid.level().iter().map(|&l| l as u64).collect();
    comm.send(ctx, dest, tag, &header)?;
    comm.send(ctx, dest, tag, grid.values())
}

/// Receive a whole grid sent by [`send_grid_n`].
pub fn recv_grid_n(ctx: &Ctx, comm: &Comm, src: usize, tag: i32) -> Result<GridN> {
    let mut scratch = GridScratchN::default();
    recv_grid_n_into(ctx, comm, src, tag, &mut scratch)
}

/// Reused receive buffers for [`recv_grid_n_into`].
#[derive(Debug, Default)]
pub struct GridScratchN {
    header: Vec<u64>,
    values: Vec<f64>,
}

/// [`recv_grid_n`] into reused scratch storage; the returned [`GridN`]
/// takes the scratch value buffer.
pub fn recv_grid_n_into(
    ctx: &Ctx,
    comm: &Comm,
    src: usize,
    tag: i32,
    scratch: &mut GridScratchN,
) -> Result<GridN> {
    comm.recv_into(ctx, src, tag, &mut scratch.header)?;
    if scratch.header.is_empty() {
        return Err(Error::InvalidArg("recv_grid_n: empty level header".into()));
    }
    let level: Vec<u32> = scratch.header.iter().map(|&l| l as u32).collect();
    comm.recv_into(ctx, src, tag, &mut scratch.values)?;
    GridN::from_raw(&level, std::mem::take(&mut scratch.values)).map_err(Error::InvalidArg)
}

/// Binomial-tree reduction of per-leader partial grids, ending at world
/// rank `root` — the d-dimensional twin of
/// [`crate::gather::binomial_combine`], with the identical pairing,
/// per-receiver addition order, and recoverable `Error::Protocol` at the
/// final-ship hop. The reduced grid is **bitwise equal** to
/// [`sparsegrid::combine_binomial_nd`] for the same ordered term list.
#[allow(clippy::too_many_arguments)]
pub fn binomial_combine_n(
    ctx: &Ctx,
    comm: &Comm,
    leaders: &[usize],
    root: usize,
    target: &[u32],
    mine: Option<GridN>,
    scratch: &mut Vec<f64>,
    tag: i32,
) -> Result<Option<GridN>> {
    let me = comm.rank();
    let my_idx = leaders.iter().position(|&r| r == me);
    debug_assert!(my_idx.is_some() || mine.is_none(), "partial only on a leader");
    let n = leaders.len();
    let mut part = mine;
    if let (Some(i), Some(grid)) = (my_idx, part.as_mut()) {
        let mut stride = 1;
        while stride < n {
            if i % (2 * stride) == stride {
                comm.isend(ctx, leaders[i - stride], tag, grid.values())?.wait(ctx)?;
                part = None;
                break;
            }
            if i % (2 * stride) == 0 && i + stride < n {
                comm.irecv_into(ctx, leaders[i + stride], tag, scratch)?.wait(ctx)?;
                let vals = grid.values_mut();
                if scratch.len() != vals.len() {
                    return Err(Error::InvalidArg(format!(
                        "tree combine: hop payload of {} values, expected {}",
                        scratch.len(),
                        vals.len()
                    )));
                }
                for (a, b) in vals.iter_mut().zip(scratch.iter()) {
                    *a += *b;
                }
                ctx.compute_cells(vals.len() as u64);
            }
            stride *= 2;
        }
    }
    if n == 0 {
        return Ok(None);
    }
    if leaders[0] == root {
        return Ok(if me == root { part } else { None });
    }
    if me == leaders[0] {
        let grid = part.take().ok_or_else(|| {
            Error::Protocol("reduction root's combined grid was consumed mid-round".into())
        })?;
        comm.isend(ctx, root, tag, grid.values())?.wait(ctx)?;
        Ok(None)
    } else if me == root {
        comm.irecv_into(ctx, leaders[0], tag, scratch)?.wait(ctx)?;
        GridN::from_raw(target, std::mem::take(scratch)).map(Some).map_err(Error::InvalidArg)
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegrid::{combine_binomial_nd, combine_onto_nd, CombinationTermN};

    fn info(size: usize) -> GroupInfoN {
        GroupInfoN { grid: 0, first: 0, size }
    }

    /// A periodic-consistent grid (seams equal node 0 of each axis).
    fn periodic_grid(level: &[u32]) -> GridN {
        let np: Vec<usize> = level.iter().map(|&l| 1usize << l).collect();
        GridN::from_fn(level, move |x| {
            let mut v = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                // Wrap the seam coordinate back to 0 so the sample is
                // exactly periodic on the nodal lattice.
                let w = if (xi - 1.0).abs() < 1e-12 { 0.0 } else { xi };
                v += (w * np[i] as f64) * (i + 1) as f64;
            }
            (v * 0.37).sin()
        })
    }

    #[test]
    fn assemble_split_roundtrip() {
        let level = [3u32, 2, 3];
        let grid = periodic_grid(&level);
        for size in [1, 2, 3, 5] {
            let g = info(size);
            let blocks = split_grid_n(&grid, &g);
            assert_eq!(blocks.len(), size);
            let back = assemble_grid_n(&level, &g, &blocks).unwrap();
            assert_eq!(back, grid, "roundtrip at {size} slabs");
        }
    }

    #[test]
    fn assemble_validates_shapes() {
        let level = [2u32, 2, 2];
        let g = info(2);
        assert!(assemble_grid_n(&level, &g, &[vec![0.0; 32]]).is_err()); // too few blocks
        let bad = vec![vec![0.0; 31], vec![0.0; 32]];
        assert!(assemble_grid_n(&level, &g, &bad).is_err()); // wrong block size
    }

    #[test]
    fn gather_scatter_over_runtime() {
        use ulfm_sim::{run, RunConfig};
        let level = [2u32, 2, 3];
        let grid = periodic_grid(&level);
        let report = run(RunConfig::local(4), move |ctx| {
            let w = ctx.initial_world().unwrap();
            let g = info(4);
            let block = split_grid_n(&grid, &g)[w.rank()].clone();
            let gathered = gather_grid_n(ctx, &w, &g, &level, &block).unwrap();
            if w.rank() == 0 {
                let full = gathered.unwrap();
                assert_eq!(full, grid);
                let mine = scatter_grid_n(ctx, &w, &g, Some(&full)).unwrap();
                assert_eq!(mine, block);
            } else {
                assert!(gathered.is_none());
                let mine = scatter_grid_n(ctx, &w, &g, None).unwrap();
                assert_eq!(mine, block);
            }
            ctx.report_add("ok", 1.0);
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(4.0));
    }

    #[test]
    fn send_recv_grid_over_runtime() {
        use ulfm_sim::{run, RunConfig};
        let report = run(RunConfig::local(2), |ctx| {
            let w = ctx.initial_world().unwrap();
            if w.rank() == 0 {
                let g = GridN::from_fn(&[3, 2, 2], |x| x[0] - x[1] + 2.0 * x[2]);
                send_grid_n(ctx, &w, 1, 55, &g).unwrap();
            } else {
                let g = recv_grid_n(ctx, &w, 0, 55).unwrap();
                assert_eq!(g.level(), &[3, 2, 2]);
                assert!((g.eval(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
                ctx.report_f64("ok", 1.0);
            }
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("ok"), Some(1.0));
    }

    #[test]
    fn tree_combine_matches_serial_reference_bitwise() {
        use ulfm_sim::{run, RunConfig};
        const WORLD: usize = 5;
        let target = vec![2u32, 2, 2];
        let report = run(RunConfig::local(WORLD), move |ctx| {
            let w = ctx.initial_world().unwrap();
            let myval = (w.rank() + 1) as f64;
            let src = GridN::from_fn(&target, |x| myval * (1.0 + x[0] + 2.0 * x[1] - x[2]));
            let term = CombinationTermN { coeff: 1.0, grid: &src };
            let part = combine_onto_nd(&target, std::slice::from_ref(&term));
            let leaders: Vec<usize> = (0..WORLD).collect();
            let mut scratch = Vec::new();
            let combined =
                binomial_combine_n(ctx, &w, &leaders, 0, &target, Some(part), &mut scratch, 42)
                    .unwrap();
            if w.rank() == 0 {
                let srcs: Vec<GridN> = (0..WORLD)
                    .map(|r| {
                        let v = (r + 1) as f64;
                        GridN::from_fn(&target, move |x| v * (1.0 + x[0] + 2.0 * x[1] - x[2]))
                    })
                    .collect();
                let terms: Vec<CombinationTermN> =
                    srcs.iter().map(|g| CombinationTermN { coeff: 1.0, grid: g }).collect();
                let oracle = combine_binomial_nd(&target, &terms);
                assert_eq!(combined.unwrap(), oracle, "tree must match serial bitwise");
                ctx.report_add("verified", 1.0);
            } else {
                assert!(combined.is_none());
            }
        });
        report.assert_no_app_errors();
        assert_eq!(report.get_f64("verified"), Some(1.0));
    }
}
