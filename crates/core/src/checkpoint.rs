//! On-disk checkpoints for the Checkpoint/Restart technique.
//!
//! Group roots write their sub-grid to a per-grid file ("taking periodic
//! checkpoints onto disks while the computation for each sub-grid is in
//! progress", §II-D). Writes are real file I/O — restart correctness is
//! genuinely exercised — and go through a temp-file + rename so a failure
//! mid-write can never corrupt the *recent* checkpoint the paper restarts
//! from. The cluster's virtual disk cost (the paper's `T_IO`) is charged
//! separately by the caller via `Ctx::disk_write`.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use sparsegrid::{Grid2, LevelPair};

const MAGIC: &[u8; 8] = b"FTSGCKP1";

/// A directory of per-grid checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore { dir: dir.as_ref().to_path_buf() })
    }

    fn path(&self, grid_id: usize) -> PathBuf {
        self.dir.join(format!("grid_{grid_id:04}.ckpt"))
    }

    /// Write the recent checkpoint of a grid (overwrites the previous
    /// one). Returns the byte size written, for disk-cost accounting.
    pub fn write(&self, grid_id: usize, step: u64, grid: &Grid2) -> io::Result<usize> {
        let mut buf = Vec::with_capacity(24 + grid.byte_size());
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&grid.level().i.to_le_bytes());
        buf.extend_from_slice(&grid.level().j.to_le_bytes());
        buf.extend_from_slice(&step.to_le_bytes());
        for v in grid.values() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let tmp = self.dir.join(format!(".grid_{grid_id:04}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(grid_id))?;
        Ok(buf.len())
    }

    /// Read the recent checkpoint of a grid, if one exists. Returns the
    /// checkpointed step, the grid, and the byte size read.
    pub fn read(&self, grid_id: usize) -> io::Result<Option<(u64, Grid2, usize)>> {
        let path = self.path(grid_id);
        let mut raw = Vec::new();
        match fs::File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if raw.len() < 24 || &raw[..8] != MAGIC {
            return Err(bad("corrupt checkpoint header"));
        }
        let i = u32::from_le_bytes(raw[8..12].try_into().unwrap());
        let j = u32::from_le_bytes(raw[12..16].try_into().unwrap());
        let step = u64::from_le_bytes(raw[16..24].try_into().unwrap());
        let level = LevelPair::new(i, j);
        let expect = level.points() * 8;
        if raw.len() != 24 + expect {
            return Err(bad("checkpoint payload size mismatch"));
        }
        let mut values = Vec::with_capacity(level.points());
        for chunk in raw[24..].chunks_exact(8) {
            values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let grid = Grid2::from_raw(level, values)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let bytes = raw.len();
        Ok(Some((step, grid, bytes)))
    }

    /// Remove every checkpoint file (end-of-run cleanup).
    pub fn clear(&self) -> io::Result<()> {
        if self.dir.exists() {
            fs::remove_dir_all(&self.dir)?;
        }
        Ok(())
    }

    /// The directory behind this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> CheckpointStore {
        CheckpointStore::new(crate::config::default_ckpt_dir()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_grid_and_step() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(4, 3), |x, y| (x * 3.0).sin() - y);
        let wrote = s.write(2, 1234, &g).unwrap();
        assert_eq!(wrote, 24 + g.byte_size());
        let (step, back, read_bytes) = s.read(2).unwrap().unwrap();
        assert_eq!(step, 1234);
        assert_eq!(back, g);
        assert_eq!(read_bytes, wrote);
        s.clear().unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let s = store();
        assert!(s.read(7).unwrap().is_none());
        s.clear().unwrap();
    }

    #[test]
    fn overwrite_keeps_latest() {
        let s = store();
        let g1 = Grid2::from_fn(LevelPair::new(2, 2), |x, _| x);
        let g2 = Grid2::from_fn(LevelPair::new(2, 2), |_, y| y);
        s.write(0, 10, &g1).unwrap();
        s.write(0, 20, &g2).unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert_eq!(step, 20);
        assert_eq!(back, g2);
        s.clear().unwrap();
    }

    #[test]
    fn corrupt_file_is_an_error_not_garbage() {
        let s = store();
        std::fs::write(s.dir().join("grid_0003.ckpt"), b"not a checkpoint").unwrap();
        assert!(s.read(3).is_err());
        s.clear().unwrap();
    }

    #[test]
    fn grids_are_isolated_by_id() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, y| x + y);
        s.write(1, 5, &g).unwrap();
        assert!(s.read(0).unwrap().is_none());
        assert!(s.read(1).unwrap().is_some());
        s.clear().unwrap();
    }
}
