//! On-disk checkpoints for the Checkpoint/Restart technique.
//!
//! Group roots write their sub-grid to per-grid files ("taking periodic
//! checkpoints onto disks while the computation for each sub-grid is in
//! progress", §II-D). Writes are real file I/O — restart correctness is
//! genuinely exercised — and go through a temp-file + rename so a failure
//! mid-write can never corrupt a *completed* checkpoint. The cluster's
//! virtual disk cost (the paper's `T_IO`) is charged separately by the
//! caller via `Ctx::disk_write` / `Ctx::disk_write_async`.
//!
//! # Format v2
//!
//! Version 1 trusted its header and had no integrity check at all: a
//! length-preserving bit flip in the payload passed `read()` and CR
//! silently restarted from garbage, and a corrupt header with huge levels
//! drove `level.points()` into shift overflow *before* any validation.
//! Version 2 closes both holes:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FTSGCKP2"
//! 8       1     format version byte (2)
//! 9       4     level i   (u32 LE, bounds-checked before any size math)
//! 13      4     level j   (u32 LE, bounds-checked before any size math)
//! 17      8     step      (u64 LE)
//! 25      8*n   payload   (f64 LE, n = (2^i+1)(2^j+1))
//! 25+8n   8     CRC-64/XZ (u64 LE, over all preceding bytes)
//! ```
//!
//! Files are *versioned*: each write lands in `grid_NNNN.sSSSSSSSSSSSS.ckpt`
//! (step-stamped, so newest = highest step) and the store retains the last
//! `retain` checkpoints per grid. [`CheckpointStore::read_latest_valid`]
//! walks candidates newest-first and falls back past a corrupt or torn file
//! instead of erroring the whole restart — a restart must never consume a
//! corrupt checkpoint, and a single bad file must not cost more than one
//! checkpoint period of recomputation.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sparsegrid::{Grid2, GridN, LevelPair};

const MAGIC: &[u8; 8] = b"FTSGCKP2";
const FORMAT_VERSION: u8 = 2;
/// Magic of the d-dimensional v3 format (see [`CheckpointStore::encode_nd`]).
const MAGIC3: &[u8; 8] = b"FTSGCKP3";
const FORMAT_VERSION3: u8 = 3;
/// v3 header bytes before the level vector: magic + version + dim + step.
const HEADER3_FIXED: usize = 8 + 1 + 4 + 8;
/// Largest dimension a v3 header may claim — far beyond anything this
/// code runs, and small enough that the level bound keeps the payload
/// size math inside u64.
const MAX_DIM: usize = 8;
/// Header bytes before the payload: magic + version + i + j + step.
const HEADER_LEN: usize = 8 + 1 + 4 + 4 + 8;
/// Fixed overhead of a v2 file: header + trailing CRC-64.
pub const OVERHEAD: usize = HEADER_LEN + 8;
/// Largest per-dimension level a checkpoint header may claim. `2^26 + 1`
/// points per dimension is already far beyond anything this code runs;
/// everything above is treated as a corrupt header, *before* any size
/// computation can overflow.
const MAX_LEVEL: u32 = 26;
/// Default number of checkpoints retained per grid. Two is the minimum
/// that lets a restart fall back past one corrupt/torn file.
const DEFAULT_RETAIN: usize = 2;

/// Per-writer tmp-file discriminator: two roots checkpointing the same
/// grid id concurrently (e.g. during a repair retry) must never clobber
/// each other's in-flight tmp file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A successfully restored checkpoint: `(step, grid, bytes on disk)`.
pub type Restored = (u64, Grid2, usize);

/// A successfully restored d-dimensional checkpoint.
pub type RestoredN = (u64, GridN, usize);

// ---------------------------------------------------------------------------
// CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout = !0)
// ---------------------------------------------------------------------------

const CRC64_POLY_REFLECTED: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut n = 0;
    while n < 256 {
        let mut crc = n as u64;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC64_POLY_REFLECTED } else { crc >> 1 };
            k += 1;
        }
        table[n] = crc;
        n += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64/XZ of `data` (the widely used check is
/// `crc64(b"123456789") == 0x995D_C9BB_DF19_39FA`).
pub fn crc64(data: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in data {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Fault-injection: deliberate corruption of just-written checkpoints
// ---------------------------------------------------------------------------

/// How to damage a checkpoint file (chaos-campaign corruption injector).
///
/// Real writes go through tmp + rename, so a torn `*.ckpt` cannot occur
/// naturally here; the injector simulates a filesystem or device that lied
/// about durability (the failure mode the CRC + fallback exist for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Flip bit `bit % 8` of byte `offset % len` — a silent media error.
    BitFlip { offset: u64, bit: u8 },
    /// Truncate the file to `max(1, len * keep_pct / 100)` bytes — a torn
    /// write.
    Torn { keep_pct: u8 },
    /// Overwrite the first 16 bytes with `0xFF` — a trashed header with
    /// absurd levels (exercises the bounds check, satellite bugfix).
    GarbageHeader,
}

/// Damage the checkpoint of `grid_id` taken at `step`, once it lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionStrike {
    pub grid_id: usize,
    pub step: u64,
    pub kind: CorruptKind,
}

/// A set of corruption strikes to apply as checkpoints are written.
/// Empty by default (no corruption).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionPlan {
    pub strikes: Vec<CorruptionStrike>,
}

impl CorruptionPlan {
    /// A plan with no strikes.
    pub fn none() -> Self {
        CorruptionPlan::default()
    }

    /// A plan with a single strike.
    pub fn one(strike: CorruptionStrike) -> Self {
        CorruptionPlan { strikes: vec![strike] }
    }

    fn matching(&self, grid_id: usize, step: u64) -> Option<&CorruptionStrike> {
        self.strikes.iter().find(|s| s.grid_id == grid_id && s.step == step)
    }
}

fn apply_strike(path: &Path, kind: CorruptKind) -> io::Result<()> {
    let mut buf = fs::read(path)?;
    if buf.is_empty() {
        return Ok(());
    }
    match kind {
        CorruptKind::BitFlip { offset, bit } => {
            let idx = (offset % buf.len() as u64) as usize;
            buf[idx] ^= 1 << (bit % 8);
        }
        CorruptKind::Torn { keep_pct } => {
            let keep = ((buf.len() as u64 * u64::from(keep_pct.min(99)) / 100).max(1)) as usize;
            buf.truncate(keep);
        }
        CorruptKind::GarbageHeader => {
            let n = buf.len().min(16);
            buf[..n].fill(0xFF);
        }
    }
    fs::write(path, &buf)
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// A directory of per-grid, step-versioned checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    corruption: CorruptionPlan,
    /// Strikes actually applied to landed files, shared across clones
    /// (the async writer thread holds a clone of the store). Failure
    /// detection can preempt a planned write — kills race detection in
    /// real time, like real SIGKILLs — so restart-integrity oracles must
    /// key off "the corruption landed", not "a strike was planned".
    applied: std::sync::Arc<AtomicU64>,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore {
            dir: dir.as_ref().to_path_buf(),
            retain: DEFAULT_RETAIN,
            corruption: CorruptionPlan::none(),
            applied: std::sync::Arc::new(AtomicU64::new(0)),
        })
    }

    /// How many corruption strikes have landed on completed checkpoint
    /// files (shared across clones of this store, including the async
    /// writer thread's).
    pub fn corruptions_applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Keep the last `k` checkpoints per grid (minimum 1; default 2).
    pub fn with_retention(mut self, k: usize) -> Self {
        self.retain = k.max(1);
        self
    }

    /// Attach a fault-injection corruption plan: each strike damages the
    /// matching checkpoint file immediately after its write completes.
    pub fn with_corruption(mut self, plan: CorruptionPlan) -> Self {
        self.corruption = plan;
        self
    }

    fn path(&self, grid_id: usize, step: u64) -> PathBuf {
        self.dir.join(format!("grid_{grid_id:04}.s{step:012}.ckpt"))
    }

    /// Step-stamped checkpoint files of one grid, newest (highest step)
    /// first.
    fn candidates(&self, grid_id: usize) -> io::Result<Vec<(u64, PathBuf)>> {
        let prefix = format!("grid_{grid_id:04}.s");
        let entries = match fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut found = Vec::new();
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(step) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".ckpt"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                found.push((step, entry.path()));
            }
        }
        found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        Ok(found)
    }

    /// Serialize a checkpoint into the v2 wire format.
    pub fn encode(step: u64, level: LevelPair, values: &[f64]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(OVERHEAD + values.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.push(FORMAT_VERSION);
        buf.extend_from_slice(&level.i.to_le_bytes());
        buf.extend_from_slice(&level.j.to_le_bytes());
        buf.extend_from_slice(&step.to_le_bytes());
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc64(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parse and validate a v2 checkpoint buffer. Every field is checked
    /// *before* it is used: level bounds before any size computation (a
    /// corrupt header must not drive `points()` into overflow), declared
    /// size before reading the payload, CRC before trusting any of it.
    pub fn decode(raw: &[u8]) -> Result<(u64, Grid2), String> {
        if raw.len() < OVERHEAD {
            return Err(format!("truncated checkpoint ({} bytes; torn write?)", raw.len()));
        }
        if &raw[..8] != MAGIC {
            return Err("bad checkpoint magic".to_string());
        }
        if raw[8] != FORMAT_VERSION {
            return Err(format!("unsupported checkpoint format version {}", raw[8]));
        }
        let i = u32::from_le_bytes(raw[9..13].try_into().unwrap());
        let j = u32::from_le_bytes(raw[13..17].try_into().unwrap());
        if i > MAX_LEVEL || j > MAX_LEVEL {
            return Err(format!("absurd level pair ({i}, {j}) in checkpoint header"));
        }
        let step = u64::from_le_bytes(raw[17..25].try_into().unwrap());
        // Levels are bounded, so this cannot overflow u64.
        let points = ((1u64 << i) + 1) * ((1u64 << j) + 1);
        let expect = OVERHEAD as u64 + 8 * points;
        if raw.len() as u64 != expect {
            return Err(format!(
                "checkpoint payload size mismatch (have {}, header implies {expect})",
                raw.len()
            ));
        }
        let stored = u64::from_le_bytes(raw[raw.len() - 8..].try_into().unwrap());
        let computed = crc64(&raw[..raw.len() - 8]);
        if stored != computed {
            return Err(format!(
                "checkpoint checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ));
        }
        let level = LevelPair::new(i, j);
        let mut values = Vec::with_capacity(points as usize);
        for chunk in raw[HEADER_LEN..raw.len() - 8].chunks_exact(8) {
            values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        Grid2::from_raw(level, values).map(|grid| (step, grid))
    }

    /// Write a checkpoint of a grid. Returns the byte size written, for
    /// disk-cost accounting.
    pub fn write(&self, grid_id: usize, step: u64, grid: &Grid2) -> io::Result<usize> {
        self.write_raw(grid_id, step, grid.level(), grid.values())
    }

    /// Write a checkpoint from raw parts (the async writer thread hands
    /// over a reusable snapshot buffer, not a `Grid2`). The file lands
    /// atomically via tmp + rename, the parent directory is fsynced, any
    /// matching corruption strike is applied, and retention pruning keeps
    /// the newest `retain` files for the grid.
    pub fn write_raw(
        &self,
        grid_id: usize,
        step: u64,
        level: LevelPair,
        values: &[f64],
    ) -> io::Result<usize> {
        self.land(grid_id, step, Self::encode(step, level, values))
    }

    /// Land an encoded checkpoint buffer on disk: tmp + rename + dir
    /// fsync, then corruption strikes and retention pruning. Shared by
    /// the v2 (2D) and v3 (d-dimensional) write paths.
    fn land(&self, grid_id: usize, step: u64, buf: Vec<u8>) -> io::Result<usize> {
        let tmp = self.dir.join(format!(
            ".grid_{grid_id:04}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        let dst = self.path(grid_id, step);
        fs::rename(&tmp, &dst)?;
        // The rename itself lives in the directory: without fsyncing it,
        // a crash can roll the directory entry back to the *old*
        // checkpoint-or-nothing state, breaking the durability the
        // restart path relies on.
        self.sync_dir()?;
        if let Some(strike) = self.corruption.matching(grid_id, step) {
            apply_strike(&dst, strike.kind)?;
            self.applied.fetch_add(1, Ordering::SeqCst);
        }
        self.prune(grid_id)?;
        Ok(buf.len())
    }

    fn prune(&self, grid_id: usize) -> io::Result<()> {
        for (_, path) in self.candidates(grid_id)?.into_iter().skip(self.retain) {
            match fs::remove_file(&path) {
                Ok(()) => {}
                // Another root may have pruned it concurrently.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn sync_dir(&self) -> io::Result<()> {
        #[cfg(unix)]
        fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    fn read_file(path: &Path) -> io::Result<Vec<u8>> {
        let mut raw = Vec::new();
        fs::File::open(path)?.read_to_end(&mut raw)?;
        Ok(raw)
    }

    /// Strictly read the newest checkpoint of a grid, if one exists: a
    /// corrupt newest file is an *error* here, not a fallback. Restart
    /// paths should use [`CheckpointStore::read_latest_valid`] instead;
    /// this is for tests and tooling that must see corruption.
    pub fn read(&self, grid_id: usize) -> io::Result<Option<(u64, Grid2, usize)>> {
        let candidates = self.candidates(grid_id)?;
        let Some((_, path)) = candidates.first() else {
            return Ok(None);
        };
        let raw = match Self::read_file(path) {
            Ok(raw) => raw,
            // Lost a race with a concurrent prune: the next-newest file
            // is someone else's fresher write landing, not corruption.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return self.read(grid_id),
            Err(e) => return Err(e),
        };
        let (step, grid) =
            Self::decode(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(Some((step, grid, raw.len())))
    }

    /// Read the newest *valid* checkpoint of a grid, falling back past
    /// corrupt or torn files. Returns the restored `(step, grid, bytes)`
    /// (or `None` when no valid checkpoint survives — the restart then
    /// recomputes from the initial condition) together with the number of
    /// corrupt candidates skipped, for restart-integrity reporting.
    pub fn read_latest_valid(&self, grid_id: usize) -> io::Result<(Option<Restored>, usize)> {
        let mut skipped = 0usize;
        for (_, path) in self.candidates(grid_id)? {
            let raw = match Self::read_file(&path) {
                Ok(raw) => raw,
                // Pruned from under us by a concurrent writer; not corrupt.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            match Self::decode(&raw) {
                Ok((step, grid)) => return Ok((Some((step, grid, raw.len())), skipped)),
                Err(_) => skipped += 1,
            }
        }
        Ok((None, skipped))
    }

    // -----------------------------------------------------------------------
    // Format v3: d-dimensional checkpoints
    // -----------------------------------------------------------------------

    /// Serialize a d-dimensional checkpoint into the v3 wire format:
    ///
    /// ```text
    /// offset    size  field
    /// 0         8     magic  b"FTSGCKP3"
    /// 8         1     format version byte (3)
    /// 9         4     dim d     (u32 LE, bounds-checked first)
    /// 13        8     step      (u64 LE)
    /// 21        4*d   levels    (u32 LE each, bounds-checked before size math)
    /// 21+4d     8*n   payload   (f64 LE, n = ∏(2^l_i + 1))
    /// ...       8     CRC-64/XZ (u64 LE, over all preceding bytes)
    /// ```
    ///
    /// Same integrity discipline as v2: bounded header fields before any
    /// size computation, exact-length check, CRC over everything.
    pub fn encode_nd(step: u64, level: &[u32], values: &[f64]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER3_FIXED + 4 * level.len() + 8 * values.len() + 8);
        buf.extend_from_slice(MAGIC3);
        buf.push(FORMAT_VERSION3);
        buf.extend_from_slice(&(level.len() as u32).to_le_bytes());
        buf.extend_from_slice(&step.to_le_bytes());
        for &l in level {
            buf.extend_from_slice(&l.to_le_bytes());
        }
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc64(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parse and validate a v3 checkpoint buffer, with the same
    /// check-before-use discipline as [`CheckpointStore::decode`]: the
    /// dimension is bounded before the level vector is read, every level
    /// is bounded before the point count is computed (`d ≤ 8` levels of
    /// `≤ 2^26 + 1` points stay far inside `u64` via a u128 product), the
    /// declared size must match exactly, and the CRC gates everything.
    pub fn decode_nd(raw: &[u8]) -> Result<(u64, GridN), String> {
        if raw.len() < HEADER3_FIXED + 4 + 8 {
            return Err(format!("truncated checkpoint ({} bytes; torn write?)", raw.len()));
        }
        if &raw[..8] != MAGIC3 {
            return Err("bad checkpoint magic (not a v3 d-dimensional file)".to_string());
        }
        if raw[8] != FORMAT_VERSION3 {
            return Err(format!("unsupported checkpoint format version {}", raw[8]));
        }
        let dim = u32::from_le_bytes(raw[9..13].try_into().unwrap()) as usize;
        if dim == 0 || dim > MAX_DIM {
            return Err(format!("absurd dimension {dim} in checkpoint header"));
        }
        let step = u64::from_le_bytes(raw[13..21].try_into().unwrap());
        let header_len = HEADER3_FIXED + 4 * dim;
        if raw.len() < header_len + 8 {
            return Err(format!("truncated checkpoint ({} bytes; torn write?)", raw.len()));
        }
        let mut level = Vec::with_capacity(dim);
        let mut points = 1u128;
        for a in 0..dim {
            let l = u32::from_le_bytes(raw[HEADER3_FIXED + 4 * a..][..4].try_into().unwrap());
            if l > MAX_LEVEL {
                return Err(format!("absurd level {l} on axis {a} in checkpoint header"));
            }
            points *= (1u128 << l) + 1;
            level.push(l);
        }
        let expect = (header_len + 8) as u128 + 8 * points;
        if raw.len() as u128 != expect {
            return Err(format!(
                "checkpoint payload size mismatch (have {}, header implies {expect})",
                raw.len()
            ));
        }
        let stored = u64::from_le_bytes(raw[raw.len() - 8..].try_into().unwrap());
        let computed = crc64(&raw[..raw.len() - 8]);
        if stored != computed {
            return Err(format!(
                "checkpoint checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ));
        }
        let mut values = Vec::with_capacity(points as usize);
        for chunk in raw[header_len..raw.len() - 8].chunks_exact(8) {
            values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        GridN::from_raw(&level, values).map(|grid| (step, grid))
    }

    /// Write a d-dimensional checkpoint. Same atomicity, corruption-strike
    /// and retention semantics as [`CheckpointStore::write`]; v2 and v3
    /// files share the per-grid filename namespace and are told apart by
    /// magic at decode time.
    pub fn write_nd(&self, grid_id: usize, step: u64, grid: &GridN) -> io::Result<usize> {
        self.write_raw_nd(grid_id, step, grid.level(), grid.values())
    }

    /// Write a d-dimensional checkpoint from raw parts.
    pub fn write_raw_nd(
        &self,
        grid_id: usize,
        step: u64,
        level: &[u32],
        values: &[f64],
    ) -> io::Result<usize> {
        self.land(grid_id, step, Self::encode_nd(step, level, values))
    }

    /// Read the newest *valid* d-dimensional checkpoint of a grid,
    /// falling back past corrupt, torn, or wrong-format files. The v3
    /// sibling of [`CheckpointStore::read_latest_valid`].
    pub fn read_latest_valid_nd(&self, grid_id: usize) -> io::Result<(Option<RestoredN>, usize)> {
        let mut skipped = 0usize;
        for (_, path) in self.candidates(grid_id)? {
            let raw = match Self::read_file(&path) {
                Ok(raw) => raw,
                // Pruned from under us by a concurrent writer; not corrupt.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            match Self::decode_nd(&raw) {
                Ok((step, grid)) => return Ok((Some((step, grid, raw.len())), skipped)),
                Err(_) => skipped += 1,
            }
        }
        Ok((None, skipped))
    }

    /// Remove every checkpoint file (end-of-run cleanup). Only this
    /// store's `*.ckpt` and in-flight `.*.tmp` files are removed; the
    /// directory itself is kept so the store stays usable — a subsequent
    /// [`CheckpointStore::write`] must not fail for want of a tmp-file
    /// parent.
    pub fn clear(&self) -> io::Result<()> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ours = name.ends_with(".ckpt") || (name.starts_with('.') && name.ends_with(".tmp"));
            if ours {
                match fs::remove_file(entry.path()) {
                    Ok(()) => {}
                    // Another root may have cleaned it up concurrently.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// The directory behind this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> CheckpointStore {
        CheckpointStore::new(crate::config::default_ckpt_dir()).unwrap()
    }

    #[test]
    fn crc64_known_answer() {
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_grid_and_step() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(4, 3), |x, y| (x * 3.0).sin() - y);
        let wrote = s.write(2, 1234, &g).unwrap();
        assert_eq!(wrote, OVERHEAD + g.byte_size());
        let (step, back, read_bytes) = s.read(2).unwrap().unwrap();
        assert_eq!(step, 1234);
        assert_eq!(back, g);
        assert_eq!(read_bytes, wrote);
        s.clear().unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let s = store();
        assert!(s.read(7).unwrap().is_none());
        let (restored, skipped) = s.read_latest_valid(7).unwrap();
        assert!(restored.is_none());
        assert_eq!(skipped, 0);
        s.clear().unwrap();
    }

    #[test]
    fn newest_step_wins() {
        let s = store();
        let g1 = Grid2::from_fn(LevelPair::new(2, 2), |x, _| x);
        let g2 = Grid2::from_fn(LevelPair::new(2, 2), |_, y| y);
        s.write(0, 10, &g1).unwrap();
        s.write(0, 20, &g2).unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert_eq!(step, 20);
        assert_eq!(back, g2);
        s.clear().unwrap();
    }

    #[test]
    fn retention_keeps_last_k_per_grid() {
        let s = store().with_retention(2);
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, y| x * y);
        for step in [5, 10, 15, 20] {
            s.write(0, step, &g).unwrap();
        }
        let steps: Vec<u64> = s.candidates(0).unwrap().into_iter().map(|(st, _)| st).collect();
        assert_eq!(steps, vec![20, 15]);
        s.clear().unwrap();
    }

    #[test]
    fn garbage_file_is_an_error_not_garbage() {
        let s = store();
        std::fs::write(s.dir().join("grid_0003.s000000000007.ckpt"), b"not a checkpoint").unwrap();
        assert!(s.read(3).is_err());
        let (restored, skipped) = s.read_latest_valid(3).unwrap();
        assert!(restored.is_none(), "no valid fallback exists");
        assert_eq!(skipped, 1);
        s.clear().unwrap();
    }

    #[test]
    fn payload_bit_flip_is_detected() {
        // Regression for the v1 hole: a length-preserving corruption used
        // to pass read() and CR restarted from garbage.
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x + y);
        s.write(1, 40, &g).unwrap();
        let path = s.path(1, 40);
        let mut raw = std::fs::read(&path).unwrap();
        raw[HEADER_LEN + 11] ^= 0x10; // one bit, mid-payload, length preserved
        std::fs::write(&path, &raw).unwrap();
        let err = s.read(1).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
        s.clear().unwrap();
    }

    #[test]
    fn torn_write_is_detected() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(3, 2), |x, y| x - y);
        s.write(1, 8, &g).unwrap();
        let path = s.path(1, 8);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert!(s.read(1).is_err());
        s.clear().unwrap();
    }

    #[test]
    fn absurd_header_levels_are_rejected_before_size_math() {
        // Regression (satellite bugfix): v1 computed level.points() from
        // the untrusted header, so i = 0xFFFFFFFF overflowed the shift.
        // A v2 header is bounds-checked first — even with a *valid* CRC.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(FORMAT_VERSION);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&7u64.to_le_bytes());
        let crc = crc64(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let err = CheckpointStore::decode(&buf).unwrap_err();
        assert!(err.contains("absurd level pair"), "got: {err}");

        let s = store();
        std::fs::write(s.dir().join("grid_0002.s000000000003.ckpt"), &buf).unwrap();
        assert!(s.read(2).is_err(), "store read must error, not panic");
        let (restored, skipped) = s.read_latest_valid(2).unwrap();
        assert!(restored.is_none());
        assert_eq!(skipped, 1);
        s.clear().unwrap();
    }

    // --- v3: d-dimensional checkpoints --------------------------------------

    fn grid3() -> GridN {
        GridN::from_fn(&[3, 2, 3], |x| (x[0] * 3.0).sin() - x[1] + 0.5 * x[2])
    }

    #[test]
    fn nd_roundtrip_preserves_grid_and_step() {
        let s = store();
        let g = grid3();
        let wrote = s.write_nd(2, 1234, &g).unwrap();
        assert_eq!(wrote, HEADER3_FIXED + 4 * 3 + 8 + g.byte_size());
        let (restored, skipped) = s.read_latest_valid_nd(2).unwrap();
        let (step, back, read_bytes) = restored.unwrap();
        assert_eq!(step, 1234);
        assert_eq!(back.level(), g.level());
        assert_eq!(back.values(), g.values());
        assert_eq!(read_bytes, wrote);
        assert_eq!(skipped, 0);
        s.clear().unwrap();
    }

    #[test]
    fn nd_bit_flip_detected_and_fallback_past_it() {
        let s = store();
        let g = grid3();
        s.write_nd(1, 10, &g).unwrap();
        s.write_nd(1, 20, &g).unwrap();
        let path = s.path(1, 20);
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x04; // one bit, length preserved
        std::fs::write(&path, &raw).unwrap();
        let (restored, skipped) = s.read_latest_valid_nd(1).unwrap();
        let (step, _, _) = restored.expect("older valid checkpoint must be found");
        assert_eq!(step, 10, "fallback must land on the older valid file");
        assert_eq!(skipped, 1);
        s.clear().unwrap();
    }

    #[test]
    fn nd_absurd_header_rejected_before_size_math() {
        // A corrupt v3 header with a huge dim or level must be rejected
        // before any point-count computation can overflow.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC3);
        buf.push(FORMAT_VERSION3);
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd dim
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        let crc = crc64(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let err = CheckpointStore::decode_nd(&buf).unwrap_err();
        assert!(err.contains("absurd dimension"), "got: {err}");

        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC3);
        buf.push(FORMAT_VERSION3);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&7u64.to_le_bytes());
        for l in [2u32, u32::MAX, 2u32] {
            buf.extend_from_slice(&l.to_le_bytes());
        }
        let crc = crc64(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let err = CheckpointStore::decode_nd(&buf).unwrap_err();
        assert!(err.contains("absurd level"), "got: {err}");
    }

    #[test]
    fn nd_and_v2_formats_are_mutually_invalid() {
        let v2 = CheckpointStore::encode(5, LevelPair::new(2, 2), &[0.0; 25]);
        let err = CheckpointStore::decode_nd(&v2).unwrap_err();
        assert!(err.contains("magic"), "got: {err}");
        let g = GridN::from_fn(&[2, 2], |x| x[0] + x[1]);
        let v3 = CheckpointStore::encode_nd(5, g.level(), g.values());
        let err = CheckpointStore::decode(&v3).unwrap_err();
        assert!(err.contains("magic"), "got: {err}");
    }

    #[test]
    fn read_latest_valid_falls_back_past_corruption() {
        let s = store().with_retention(3);
        let good = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x * 2.0 + y);
        let newer = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x - y);
        s.write(0, 10, &good).unwrap();
        s.write(0, 20, &newer).unwrap();
        let path = s.path(0, 20);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 20] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let (restored, skipped) = s.read_latest_valid(0).unwrap();
        let (step, back, _) = restored.expect("older checkpoint must survive");
        assert_eq!(step, 10);
        assert_eq!(back, good);
        assert_eq!(skipped, 1);
        s.clear().unwrap();
    }

    #[test]
    fn corruption_plan_strikes_the_matching_write() {
        let s = store().with_corruption(CorruptionPlan::one(CorruptionStrike {
            grid_id: 0,
            step: 20,
            kind: CorruptKind::BitFlip { offset: 1000, bit: 3 },
        }));
        let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x + 3.0 * y);
        s.write(0, 10, &g).unwrap();
        s.write(0, 20, &g).unwrap();
        assert!(s.read(0).is_err(), "strike must corrupt the step-20 file");
        let (restored, skipped) = s.read_latest_valid(0).unwrap();
        assert_eq!(restored.expect("fallback").0, 10);
        assert_eq!(skipped, 1);
        s.clear().unwrap();
    }

    #[test]
    fn torn_and_garbage_strikes_are_detected() {
        for kind in [CorruptKind::Torn { keep_pct: 60 }, CorruptKind::GarbageHeader] {
            let s = store().with_corruption(CorruptionPlan::one(CorruptionStrike {
                grid_id: 4,
                step: 6,
                kind,
            }));
            let g = Grid2::from_fn(LevelPair::new(2, 3), |x, y| x * y + 1.0);
            s.write(4, 6, &g).unwrap();
            assert!(s.read(4).is_err(), "{kind:?} must be detected");
            s.clear().unwrap();
        }
    }

    #[test]
    fn grids_are_isolated_by_id() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, y| x + y);
        s.write(1, 5, &g).unwrap();
        assert!(s.read(0).unwrap().is_none());
        assert!(s.read(1).unwrap().is_some());
        s.clear().unwrap();
    }

    #[test]
    fn store_stays_usable_after_clear() {
        // Regression: clear() used to remove_dir_all the store directory,
        // so the next write failed with NotFound on the tmp file.
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x - 2.0 * y);
        s.write(0, 1, &g).unwrap();
        s.clear().unwrap();
        assert!(s.dir().is_dir(), "clear must keep the directory");
        assert!(s.read(0).unwrap().is_none(), "clear must remove the files");
        s.write(0, 2, &g).unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert_eq!(step, 2);
        assert_eq!(back, g);
        // Idempotent, including on a directory someone else removed.
        s.clear().unwrap();
        std::fs::remove_dir_all(s.dir()).unwrap();
        s.clear().unwrap();
    }

    #[test]
    fn clear_leaves_foreign_files_alone() {
        let s = store();
        let foreign = s.dir().join("notes.txt");
        std::fs::write(&foreign, b"keep me").unwrap();
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, _| x);
        s.write(4, 9, &g).unwrap();
        s.clear().unwrap();
        assert!(foreign.is_file());
        assert!(s.read(4).unwrap().is_none());
        std::fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn concurrent_writers_to_one_grid_never_corrupt() {
        // Two roots may checkpoint the same grid id concurrently during a
        // repair retry; per-writer tmp names keep every rename atomic, so
        // every surviving file is a complete, checksummed write and the
        // newest step wins.
        let s = store();
        let s2 = s.clone();
        let ga = Grid2::from_fn(LevelPair::new(4, 4), |x, y| x + y);
        let gb = Grid2::from_fn(LevelPair::new(4, 4), |x, y| x * y);
        let (ga2, gb2) = (ga.clone(), gb.clone());
        let t = std::thread::spawn(move || {
            for k in 0..50 {
                s2.write(0, 1000 + k, &gb2).unwrap();
            }
        });
        for k in 0..50 {
            s.write(0, k, &ga2).unwrap();
        }
        t.join().unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert_eq!(step, 1049, "newest step must win");
        assert_eq!(back, gb);
        let (restored, skipped) = s.read_latest_valid(0).unwrap();
        assert!(restored.is_some());
        assert_eq!(skipped, 0);
        s.clear().unwrap();
    }
}
