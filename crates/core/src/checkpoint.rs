//! On-disk checkpoints for the Checkpoint/Restart technique.
//!
//! Group roots write their sub-grid to a per-grid file ("taking periodic
//! checkpoints onto disks while the computation for each sub-grid is in
//! progress", §II-D). Writes are real file I/O — restart correctness is
//! genuinely exercised — and go through a temp-file + rename so a failure
//! mid-write can never corrupt the *recent* checkpoint the paper restarts
//! from. The cluster's virtual disk cost (the paper's `T_IO`) is charged
//! separately by the caller via `Ctx::disk_write`.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sparsegrid::{Grid2, LevelPair};

const MAGIC: &[u8; 8] = b"FTSGCKP1";

/// Per-writer tmp-file discriminator: two roots checkpointing the same
/// grid id concurrently (e.g. during a repair retry) must never clobber
/// each other's in-flight tmp file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of per-grid checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(CheckpointStore { dir: dir.as_ref().to_path_buf() })
    }

    fn path(&self, grid_id: usize) -> PathBuf {
        self.dir.join(format!("grid_{grid_id:04}.ckpt"))
    }

    /// Write the recent checkpoint of a grid (overwrites the previous
    /// one). Returns the byte size written, for disk-cost accounting.
    pub fn write(&self, grid_id: usize, step: u64, grid: &Grid2) -> io::Result<usize> {
        let mut buf = Vec::with_capacity(24 + grid.byte_size());
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&grid.level().i.to_le_bytes());
        buf.extend_from_slice(&grid.level().j.to_le_bytes());
        buf.extend_from_slice(&step.to_le_bytes());
        for v in grid.values() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let tmp = self.dir.join(format!(
            ".grid_{grid_id:04}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(grid_id))?;
        // The rename itself lives in the directory: without fsyncing it,
        // a crash can roll the directory entry back to the *old*
        // checkpoint-or-nothing state, breaking the durability the
        // restart path relies on.
        self.sync_dir()?;
        Ok(buf.len())
    }

    fn sync_dir(&self) -> io::Result<()> {
        #[cfg(unix)]
        fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// Read the recent checkpoint of a grid, if one exists. Returns the
    /// checkpointed step, the grid, and the byte size read.
    pub fn read(&self, grid_id: usize) -> io::Result<Option<(u64, Grid2, usize)>> {
        let path = self.path(grid_id);
        let mut raw = Vec::new();
        match fs::File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if raw.len() < 24 || &raw[..8] != MAGIC {
            return Err(bad("corrupt checkpoint header"));
        }
        let i = u32::from_le_bytes(raw[8..12].try_into().unwrap());
        let j = u32::from_le_bytes(raw[12..16].try_into().unwrap());
        let step = u64::from_le_bytes(raw[16..24].try_into().unwrap());
        let level = LevelPair::new(i, j);
        let expect = level.points() * 8;
        if raw.len() != 24 + expect {
            return Err(bad("checkpoint payload size mismatch"));
        }
        let mut values = Vec::with_capacity(level.points());
        for chunk in raw[24..].chunks_exact(8) {
            values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let grid = Grid2::from_raw(level, values)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let bytes = raw.len();
        Ok(Some((step, grid, bytes)))
    }

    /// Remove every checkpoint file (end-of-run cleanup). Only this
    /// store's `*.ckpt` and in-flight `.*.tmp` files are removed; the
    /// directory itself is kept so the store stays usable — a subsequent
    /// [`CheckpointStore::write`] must not fail for want of a tmp-file
    /// parent.
    pub fn clear(&self) -> io::Result<()> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ours = name.ends_with(".ckpt") || (name.starts_with('.') && name.ends_with(".tmp"));
            if ours {
                match fs::remove_file(entry.path()) {
                    Ok(()) => {}
                    // Another root may have cleaned it up concurrently.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// The directory behind this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> CheckpointStore {
        CheckpointStore::new(crate::config::default_ckpt_dir()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_grid_and_step() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(4, 3), |x, y| (x * 3.0).sin() - y);
        let wrote = s.write(2, 1234, &g).unwrap();
        assert_eq!(wrote, 24 + g.byte_size());
        let (step, back, read_bytes) = s.read(2).unwrap().unwrap();
        assert_eq!(step, 1234);
        assert_eq!(back, g);
        assert_eq!(read_bytes, wrote);
        s.clear().unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let s = store();
        assert!(s.read(7).unwrap().is_none());
        s.clear().unwrap();
    }

    #[test]
    fn overwrite_keeps_latest() {
        let s = store();
        let g1 = Grid2::from_fn(LevelPair::new(2, 2), |x, _| x);
        let g2 = Grid2::from_fn(LevelPair::new(2, 2), |_, y| y);
        s.write(0, 10, &g1).unwrap();
        s.write(0, 20, &g2).unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert_eq!(step, 20);
        assert_eq!(back, g2);
        s.clear().unwrap();
    }

    #[test]
    fn corrupt_file_is_an_error_not_garbage() {
        let s = store();
        std::fs::write(s.dir().join("grid_0003.ckpt"), b"not a checkpoint").unwrap();
        assert!(s.read(3).is_err());
        s.clear().unwrap();
    }

    #[test]
    fn grids_are_isolated_by_id() {
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, y| x + y);
        s.write(1, 5, &g).unwrap();
        assert!(s.read(0).unwrap().is_none());
        assert!(s.read(1).unwrap().is_some());
        s.clear().unwrap();
    }

    #[test]
    fn store_stays_usable_after_clear() {
        // Regression: clear() used to remove_dir_all the store directory,
        // so the next write failed with NotFound on the tmp file.
        let s = store();
        let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| x - 2.0 * y);
        s.write(0, 1, &g).unwrap();
        s.clear().unwrap();
        assert!(s.dir().is_dir(), "clear must keep the directory");
        assert!(s.read(0).unwrap().is_none(), "clear must remove the files");
        s.write(0, 2, &g).unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert_eq!(step, 2);
        assert_eq!(back, g);
        // Idempotent, including on a directory someone else removed.
        s.clear().unwrap();
        std::fs::remove_dir_all(s.dir()).unwrap();
        s.clear().unwrap();
    }

    #[test]
    fn clear_leaves_foreign_files_alone() {
        let s = store();
        let foreign = s.dir().join("notes.txt");
        std::fs::write(&foreign, b"keep me").unwrap();
        let g = Grid2::from_fn(LevelPair::new(2, 2), |x, _| x);
        s.write(4, 9, &g).unwrap();
        s.clear().unwrap();
        assert!(foreign.is_file());
        assert!(s.read(4).unwrap().is_none());
        std::fs::remove_dir_all(s.dir()).unwrap();
    }

    #[test]
    fn concurrent_writers_to_one_grid_never_corrupt() {
        // Two roots may checkpoint the same grid id concurrently during a
        // repair retry; per-writer tmp names keep every rename atomic, so
        // the surviving file is always one of the two complete writes.
        let s = store();
        let s2 = s.clone();
        let ga = Grid2::from_fn(LevelPair::new(4, 4), |x, y| x + y);
        let gb = Grid2::from_fn(LevelPair::new(4, 4), |x, y| x * y);
        let (ga2, gb2) = (ga.clone(), gb.clone());
        let t = std::thread::spawn(move || {
            for k in 0..50 {
                s2.write(0, 1000 + k, &gb2).unwrap();
            }
        });
        for k in 0..50 {
            s.write(0, k, &ga2).unwrap();
        }
        t.join().unwrap();
        let (step, back, _) = s.read(0).unwrap().unwrap();
        assert!(back == ga || back == gb, "file must be one complete checkpoint");
        assert!(step < 50 || (1000..1050).contains(&step));
        s.clear().unwrap();
    }
}
