//! Process layout: mapping world ranks to sub-grids and positions inside
//! each sub-grid's process grid.
//!
//! "The computation of solutions on different sub-grids is embarrassingly
//! parallel and each sub-grid is assigned to a different process group.
//! Each process group then uses a domain decomposition... The number of
//! unknowns on the lower diagonal sub-grids is half that of the other...
//! our load balancing strategy is to use half of the number of processes
//! on these grids" (§II-A). The scale `s` reproduces the paper's counts:
//! diagonal (and duplicate) grids get `2s` processes, lower diagonals `s`,
//! extra layers `⌈s/2⌉` and `⌈s/4⌉` — at `s = 4` that is the 8/4/2/1 of
//! the Fig. 9 caption, and the Resampling-and-Copying world size is the
//! `19s ∈ {19, 38, 76, 152, 304}` sweep of Table I.

use sparsegrid::{GridRole, GridSystem, Layout};

/// Per-sub-grid process group description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupInfo {
    /// Sub-grid ID this group solves.
    pub grid: usize,
    /// First world rank of the group.
    pub first: usize,
    /// Number of processes.
    pub size: usize,
    /// Process-grid extent along x.
    pub px: usize,
    /// Process-grid extent along y.
    pub py: usize,
}

impl GroupInfo {
    /// World rank of the group's root (local rank 0).
    pub fn root(&self) -> usize {
        self.first
    }

    /// Does this group contain the given world rank?
    pub fn contains(&self, world_rank: usize) -> bool {
        world_rank >= self.first && world_rank < self.first + self.size
    }
}

/// One rank's place in the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Sub-grid ID.
    pub grid: usize,
    /// Rank within the group (0 = group root).
    pub local: usize,
    /// Position in the group's process grid, x index.
    pub pi: usize,
    /// Position in the group's process grid, y index.
    pub pj: usize,
}

/// The full world → sub-grid mapping of a run.
#[derive(Debug, Clone)]
pub struct ProcLayout {
    system: GridSystem,
    scale: usize,
    groups: Vec<GroupInfo>,
    total: usize,
}

/// Pick a process-grid factorization `px · py ≤ p` whose block aspect best
/// matches the domain aspect `nx : ny` (minimizing halo perimeter). When
/// `p` itself has no factorization fitting inside the domain (a tiny grid
/// asked to host a big group), the group shrinks to the largest process
/// count that does fit — every block must own at least one node.
fn process_grid_shape(p: usize, nx: usize, ny: usize) -> (usize, usize) {
    for q in (1..=p.min(nx * ny)).rev() {
        let mut best: Option<(usize, usize)> = None;
        let mut best_cost = f64::INFINITY;
        for px in 1..=q.min(nx) {
            if q % px != 0 {
                continue;
            }
            let py = q / px;
            if py > ny {
                continue;
            }
            // Per-block halo perimeter.
            let cost = nx as f64 / px as f64 + ny as f64 / py as f64;
            if cost < best_cost {
                best_cost = cost;
                best = Some((px, py));
            }
        }
        if let Some(shape) = best {
            return shape;
        }
    }
    (1, 1)
}

impl ProcLayout {
    /// Build the layout for a grid system at process scale `s ≥ 1`.
    pub fn new(n: u32, l: u32, layout: Layout, scale: usize) -> Self {
        assert!(scale >= 1, "scale must be ≥ 1");
        let system = GridSystem::new(n, l, layout);
        let mut groups = Vec::with_capacity(system.n_grids());
        let mut next = 0usize;
        for g in system.grids() {
            let size = match g.role {
                GridRole::Diagonal(_) | GridRole::Duplicate(_) => 2 * scale,
                GridRole::LowerDiagonal(_) => scale,
                GridRole::ExtraLayer { layer: 1, .. } => scale.div_ceil(2),
                GridRole::ExtraLayer { .. } => scale.div_ceil(4),
            };
            // Fundamental domain cells (periodic: node 2^i duplicates 0).
            let nx = 1usize << g.level.i;
            let ny = 1usize << g.level.j;
            let (px, py) = process_grid_shape(size, nx, ny);
            let size = px * py; // may shrink if the factorization was capped
            groups.push(GroupInfo { grid: g.id, first: next, size, px, py });
            next += size;
        }
        ProcLayout { system, scale, groups, total: next }
    }

    /// Total number of processes (the world size).
    pub fn world_size(&self) -> usize {
        self.total
    }

    /// The process scale `s`.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The grid system being solved.
    pub fn system(&self) -> &GridSystem {
        &self.system
    }

    /// Group info for one sub-grid.
    pub fn group(&self, grid: usize) -> &GroupInfo {
        &self.groups[grid]
    }

    /// All groups, by grid ID.
    pub fn groups(&self) -> &[GroupInfo] {
        &self.groups
    }

    /// The assignment of a world rank.
    pub fn assignment(&self, world_rank: usize) -> Assignment {
        let g = self
            .groups
            .iter()
            .find(|g| g.contains(world_rank))
            .unwrap_or_else(|| panic!("rank {world_rank} beyond world size {}", self.total));
        let local = world_rank - g.first;
        Assignment { grid: g.grid, local, pi: local % g.px, pj: local / g.px }
    }

    /// The assignment of a world rank, or `None` beyond the layout —
    /// spare ranks under `SpareSubstitute` sit past `world_size()` and
    /// own no sub-grid.
    pub fn try_assignment(&self, world_rank: usize) -> Option<Assignment> {
        if world_rank < self.total {
            Some(self.assignment(world_rank))
        } else {
            None
        }
    }

    /// Which sub-grid a world rank works on.
    pub fn grid_of(&self, world_rank: usize) -> usize {
        self.assignment(world_rank).grid
    }

    /// World rank of a sub-grid's group root.
    pub fn root_of(&self, grid: usize) -> usize {
        self.groups[grid].root()
    }

    /// Map a set of failed world ranks to the set of broken sub-grids.
    pub fn broken_grids(&self, failed_ranks: &[usize]) -> Vec<usize> {
        let mut grids: Vec<usize> = failed_ranks.iter().map(|&r| self.grid_of(r)).collect();
        grids.sort_unstable();
        grids.dedup();
        grids
    }

    /// The shrink-and-redistribute re-layout: given the cumulative dead
    /// set (original numbering), the surviving world is the original
    /// ranks minus the dead, in ascending order — `members[i]` is the
    /// original rank of post-shrink world rank `i` (ULFM's
    /// `MPI_Comm_shrink` preserves relative rank order, so this *is* the
    /// compaction the runtime performs). A pure function of the dead set
    /// alone: the chaos O7 oracle and the determinism proptest both
    /// recompute it independently of the run.
    pub fn shrink_members(total: usize, dead: &[usize]) -> Vec<usize> {
        (0..total).filter(|r| !dead.contains(r)).collect()
    }

    /// The grids dropped by shrink-and-redistribute for a cumulative dead
    /// set: every grid that lost at least one member. Survivors of a
    /// dropped grid keep their ranks but sit out stepping and the final
    /// combination (their group communicator died with the grid).
    pub fn dropped_grids(&self, dead: &[usize]) -> Vec<usize> {
        self.broken_grids(dead)
    }

    /// World ranks whose failure would violate the Resampling-and-Copying
    /// constraint *given* ranks already chosen (used by experiment
    /// drivers to build admissible failure plans): no two conflicting
    /// grids may fail together.
    pub fn rc_forbidden_ranks(&self, already_failed: &[usize]) -> Vec<usize> {
        let broken = self.broken_grids(already_failed);
        let mut forbidden = Vec::new();
        for (a, b) in self.system.rc_conflicts() {
            for (hit, partner) in [(a, b), (b, a)] {
                if broken.contains(&hit) {
                    let g = self.group(partner);
                    forbidden.extend(g.first..g.first + g.size);
                }
            }
        }
        forbidden.sort_unstable();
        forbidden.dedup();
        forbidden
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::config::Technique;

    #[test]
    fn paper_world_sizes_for_rc_sweep() {
        // RC with l = 4: world = 19 s → the Table I core counts.
        for (s, expect) in [(1, 19), (2, 38), (4, 76), (8, 152), (16, 304)] {
            let lay = ProcLayout::new(13, 4, Technique::ResamplingCopying.layout(), s);
            assert_eq!(lay.world_size(), expect, "scale {s}");
        }
    }

    #[test]
    fn paper_world_sizes_at_scale_4() {
        // Fig. 9 caption: 8/4/2/1 procs per diagonal/lower/upper-extra/
        // lower-extra grid → P_c = 44, P_r = 76, P_a = 49.
        let pc = ProcLayout::new(13, 4, Technique::CheckpointRestart.layout(), 4);
        let pr = ProcLayout::new(13, 4, Technique::ResamplingCopying.layout(), 4);
        let pa = ProcLayout::new(13, 4, Technique::AlternateCombination.layout(), 4);
        assert_eq!(pc.world_size(), 44);
        assert_eq!(pr.world_size(), 76);
        assert_eq!(pa.world_size(), 49);
    }

    #[test]
    fn group_sizes_follow_load_balancing() {
        let lay = ProcLayout::new(13, 4, Technique::AlternateCombination.layout(), 4);
        for g in lay.system().grids() {
            let info = lay.group(g.id);
            let expect = match g.role {
                GridRole::Diagonal(_) | GridRole::Duplicate(_) => 8,
                GridRole::LowerDiagonal(_) => 4,
                GridRole::ExtraLayer { layer: 1, .. } => 2,
                GridRole::ExtraLayer { .. } => 1,
            };
            assert_eq!(info.size, expect, "grid {}", g.id);
        }
    }

    #[test]
    fn groups_partition_the_world() {
        let lay = ProcLayout::new(9, 4, Technique::ResamplingCopying.layout(), 2);
        let mut covered = vec![false; lay.world_size()];
        for g in lay.groups() {
            for r in g.first..g.first + g.size {
                assert!(!covered[r], "rank {r} in two groups");
                covered[r] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn assignment_roundtrip() {
        let lay = ProcLayout::new(9, 4, Technique::AlternateCombination.layout(), 4);
        for r in 0..lay.world_size() {
            let a = lay.assignment(r);
            let g = lay.group(a.grid);
            assert_eq!(g.first + a.local, r);
            assert_eq!(a.pj * g.px + a.pi, a.local);
            assert!(a.pi < g.px && a.pj < g.py);
        }
        assert_eq!(lay.root_of(0), 0);
    }

    #[test]
    fn process_grid_shapes_match_domain_aspect() {
        // 8 procs on a 2^10 × 2^13 domain → 1 × 8 or 2 × 4? Perimeter
        // cost: 1×8: 1024+1024=2048; 2×4: 512+2048=2560 → 1×8.
        assert_eq!(process_grid_shape(8, 1 << 10, 1 << 13), (1, 8));
        // Square domain prefers square-ish factorization.
        assert_eq!(process_grid_shape(4, 256, 256), (2, 2));
        assert_eq!(process_grid_shape(1, 8, 8), (1, 1));
        // Never exceeds the domain.
        let (px, py) = process_grid_shape(16, 4, 1024);
        assert!(px <= 4);
        assert_eq!(px * py, 16);
    }

    #[test]
    fn broken_grid_mapping() {
        let lay = ProcLayout::new(13, 4, Technique::ResamplingCopying.layout(), 1);
        // Groups: 0..2 (diag0), 2..4 (diag1), ..., lower diags of size 1...
        let g1 = lay.group(1);
        let g4 = lay.group(4);
        let broken = lay.broken_grids(&[g1.first, g1.first + 1, g4.first]);
        assert_eq!(broken, vec![1, 4]);
    }

    #[test]
    fn rc_forbidden_ranks_cover_partners() {
        let lay = ProcLayout::new(13, 4, Technique::ResamplingCopying.layout(), 1);
        // Grid 1 failed → its partners grid 4 (resample target) and grid 8
        // (duplicate) become forbidden.
        let g1 = lay.group(1);
        let forbidden = lay.rc_forbidden_ranks(&[g1.first]);
        let g4 = lay.group(4);
        let g8 = lay.group(8);
        for r in g4.first..g4.first + g4.size {
            assert!(forbidden.contains(&r));
        }
        for r in g8.first..g8.first + g8.size {
            assert!(forbidden.contains(&r));
        }
        // Unrelated grid 2's ranks are not forbidden.
        let g2 = lay.group(2);
        assert!(!forbidden.contains(&g2.first));
    }

    #[test]
    fn scale_one_extra_layers_get_one_proc() {
        let lay = ProcLayout::new(13, 4, Technique::AlternateCombination.layout(), 1);
        for g in lay.system().grids() {
            if matches!(g.role, GridRole::ExtraLayer { .. }) {
                assert_eq!(lay.group(g.id).size, 1);
            }
        }
    }
}
