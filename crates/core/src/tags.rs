//! Disjoint message-tag regions for recovery and combination traffic.
//!
//! Every recovery technique and the combination step address per-grid
//! messages as `base + grid_id`. The bases used to be hard-coded
//! constants with ad-hoc gaps — `TAG_BUDDY` (8500) and `TAG_BUDDY_HDR`
//! (8700) left only 200 slots, so a level set with ≥ 200 combining grids
//! silently collided buddy payload and header traffic. [`TagSpace`]
//! derives one uniform stride from the layout's grid count instead, so
//! every region is exactly wide enough by construction.

use crate::layout::ProcLayout;

/// First tag of the derived regions (everything below is free for
/// fixed app tags such as [`crate::reconstruct::MERGE_TAG`]).
pub const TAG_BASE: i32 = 7000;

/// Minimum per-region width: keeps the familiar legacy tag numbers for
/// small systems and leaves slack for sweeps over nearby sizes.
pub const MIN_STRIDE: i32 = 500;

/// Base tags of the per-grid message regions, each `stride` wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSpace {
    /// Resampling-and-Copying grid transfers.
    pub rc: i32,
    /// Alternate-combination gather to the controller.
    pub ac_gather: i32,
    /// Alternate-combination result redistribution.
    pub ac_result: i32,
    /// Buddy-checkpoint grid payloads.
    pub buddy: i32,
    /// Buddy-checkpoint `[has, step]` headers.
    pub buddy_hdr: i32,
    /// Central combination gather/scatter.
    pub combine: i32,
    /// Tree-combination partial-grid hops.
    pub tree: i32,
}

impl TagSpace {
    /// The largest grid count the seven regions can hold without the
    /// last region's tags (`TAG_BASE + 6·stride + grid_id`) overflowing
    /// `i32`. Truncated 3D simplices grow grid counts far beyond the 2D
    /// sweeps this module was sized for, so the bound is enforced rather
    /// than assumed: a count above it used to wrap `n_grids as i32` and
    /// silently collide regions.
    pub const MAX_GRIDS: usize = ((i32::MAX - TAG_BASE) / 7) as usize;

    /// Tag regions wide enough for `n_grids` combining grids.
    ///
    /// Panics (loudly, instead of colliding silently) if `n_grids`
    /// exceeds [`TagSpace::MAX_GRIDS`].
    pub fn for_grids(n_grids: usize) -> Self {
        assert!(
            n_grids <= Self::MAX_GRIDS,
            "{n_grids} grids exceed the i32 tag space ({} max)",
            Self::MAX_GRIDS
        );
        let stride = (n_grids as i32).max(MIN_STRIDE);
        let base = |k: i32| TAG_BASE + k * stride;
        TagSpace {
            rc: base(0),
            ac_gather: base(1),
            ac_result: base(2),
            buddy: base(3),
            buddy_hdr: base(4),
            combine: base(5),
            tree: base(6),
        }
    }

    /// Tag regions sized for a concrete process layout.
    pub fn for_layout(layout: &ProcLayout) -> Self {
        Self::for_grids(layout.system().n_grids())
    }

    /// Tag regions sized for a d-dimensional process layout.
    pub fn for_layout_nd(layout: &crate::layout_nd::ProcLayoutN) -> Self {
        Self::for_grids(layout.system().n_grids())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(t: &TagSpace) -> [i32; 7] {
        [t.rc, t.ac_gather, t.ac_result, t.buddy, t.buddy_hdr, t.combine, t.tree]
    }

    #[test]
    fn small_systems_keep_legacy_spacing() {
        let t = TagSpace::for_grids(12);
        assert_eq!(regions(&t), [7000, 7500, 8000, 8500, 9000, 9500, 10000]);
    }

    fn assert_disjoint(t: &TagSpace, n: usize) {
        let r = regions(t);
        for (a, &base_a) in r.iter().enumerate() {
            for &base_b in r.iter().skip(a + 1) {
                let (lo_a, hi_a) = (base_a, base_a.checked_add(n as i32).unwrap());
                let (lo_b, hi_b) = (base_b, base_b.checked_add(n as i32).unwrap());
                assert!(
                    hi_a <= lo_b || hi_b <= lo_a,
                    "regions [{lo_a},{hi_a}) and [{lo_b},{hi_b}) overlap at {n} grids"
                );
            }
        }
    }

    #[test]
    fn regions_stay_disjoint_at_realistic_3d_grid_counts() {
        // Actual truncated-3D-simplex systems, not synthetic counts: the
        // chaos shape, a paper-scale system, and a deep-combination sweep
        // whose RC layout roughly doubles the top layer.
        use sparsegrid::{GridSystemN, Layout};
        for (dim, n, l) in [(3usize, 4u32, 4u32), (3, 8, 6), (3, 13, 10), (4, 9, 7)] {
            for layout in [Layout::Plain, Layout::Duplicates, Layout::ExtraLayers] {
                let sys = GridSystemN::new(dim, n, l, layout);
                let count = sys.n_grids();
                let t = TagSpace::for_grids(count);
                assert_disjoint(&t, count);
            }
        }
    }

    #[test]
    fn grid_counts_beyond_the_tag_space_fail_loudly() {
        // `n_grids as i32` used to wrap for gigantic counts and produce
        // colliding (or negative) strides; now it must panic instead.
        assert!(TagSpace::for_grids(TagSpace::MAX_GRIDS).tree > 0);
        let huge = TagSpace::MAX_GRIDS + 1;
        assert!(std::panic::catch_unwind(|| TagSpace::for_grids(huge)).is_err());
    }

    #[test]
    fn regions_stay_disjoint_for_a_thousand_grids() {
        // The regression scenario: ≥ 200 combining grids used to make
        // buddy payload tags run into the buddy header region.
        let n = 1000;
        let t = TagSpace::for_grids(n);
        let r = regions(&t);
        for (a, &base_a) in r.iter().enumerate() {
            for &base_b in r.iter().skip(a + 1) {
                let (lo_a, hi_a) = (base_a, base_a + n as i32);
                let (lo_b, hi_b) = (base_b, base_b + n as i32);
                assert!(
                    hi_a <= lo_b || hi_b <= lo_a,
                    "regions [{lo_a},{hi_a}) and [{lo_b},{hi_b}) overlap"
                );
            }
        }
    }
}
