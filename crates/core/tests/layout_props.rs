//! Property tests on the process layout and grid-system invariants across
//! randomized configurations.
#![allow(clippy::needless_range_loop)]

use ftsg_core::{ProcLayout, Technique};
use proptest::prelude::*;
use sparsegrid::{GridRole, Layout};

fn technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::CheckpointRestart),
        Just(Technique::ResamplingCopying),
        Just(Technique::AlternateCombination),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Groups tile the world exactly: every rank in exactly one group,
    /// root = first rank, process grid consistent with the group size.
    #[test]
    fn groups_tile_world(
        l in 2u32..=6,
        extra_n in 0u32..=5,
        scale in 1usize..=8,
        tech in technique(),
    ) {
        let n = l + extra_n;
        let lay = ProcLayout::new(n, l, tech.layout(), scale);
        let mut covered = vec![false; lay.world_size()];
        for g in lay.groups() {
            prop_assert_eq!(g.px * g.py, g.size);
            prop_assert_eq!(lay.root_of(g.grid), g.first);
            for r in g.first..g.first + g.size {
                prop_assert!(!covered[r]);
                covered[r] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Assignment is the inverse of the group ranges, and process-grid
    /// coordinates are in range.
    #[test]
    fn assignment_roundtrip(
        l in 2u32..=5,
        extra_n in 0u32..=4,
        scale in 1usize..=8,
        tech in technique(),
    ) {
        let n = l + extra_n;
        let lay = ProcLayout::new(n, l, tech.layout(), scale);
        for r in 0..lay.world_size() {
            let a = lay.assignment(r);
            let g = lay.group(a.grid);
            prop_assert_eq!(g.first + a.local, r);
            prop_assert!(a.pi < g.px && a.pj < g.py);
            prop_assert_eq!(a.pj * g.px + a.pi, a.local);
        }
    }

    /// Load balancing: lower-diagonal groups get half the diagonal's
    /// processes (or as close as the factorization allows), and the
    /// process grid never exceeds the domain.
    #[test]
    fn load_balancing_and_domain_bounds(
        l in 2u32..=6,
        extra_n in 0u32..=5,
        scale in 1usize..=8,
    ) {
        let n = l + extra_n;
        let lay = ProcLayout::new(n, l, Layout::Duplicates, scale);
        for g in lay.system().grids() {
            let info = lay.group(g.id);
            prop_assert!(info.px <= 1 << g.level.i);
            prop_assert!(info.py <= 1 << g.level.j);
            // Nominal sizes, shrunk only when the domain is too small to
            // give every process at least one node.
            let nominal = match g.role {
                GridRole::Diagonal(_) | GridRole::Duplicate(_) => 2 * scale,
                GridRole::LowerDiagonal(_) => scale,
                GridRole::ExtraLayer { layer: 1, .. } => scale.div_ceil(2),
                GridRole::ExtraLayer { .. } => scale.div_ceil(4),
            };
            prop_assert!(info.size <= nominal);
            let min_dim = (1usize << g.level.i).min(1 << g.level.j);
            if nominal <= min_dim {
                prop_assert_eq!(info.size, nominal, "no shrink needed for {:?}", g.role);
            }
        }
        // Duplicates mirror their originals' group size (same level, same
        // nominal count, same shrink rule).
        for g in lay.system().grids() {
            if let GridRole::Duplicate(k) = g.role {
                let orig = lay
                    .system()
                    .grids()
                    .iter()
                    .find(|o| o.role == GridRole::Diagonal(k))
                    .unwrap();
                prop_assert_eq!(lay.group(g.id).size, lay.group(orig.id).size);
            }
        }
    }

    /// Every RC recovery source dominates its target (restriction stays an
    /// exact injection) and is never the target itself.
    #[test]
    fn rc_sources_dominate(
        l in 2u32..=6,
        extra_n in 0u32..=5,
    ) {
        use sparsegrid::scheme::RcSource;
        let n = l + extra_n;
        let lay = ProcLayout::new(n, l, Layout::Duplicates, 1);
        let sys = lay.system();
        for g in sys.grids() {
            if let Some(src) = sys.rc_source(g.id) {
                let (sid, resample) = match src {
                    RcSource::Copy(s) => (s, false),
                    RcSource::Resample(s) => (s, true),
                };
                prop_assert_ne!(sid, g.id);
                let s_level = sys.grid(sid).level;
                if resample {
                    prop_assert!(g.level.leq(&s_level));
                    prop_assert_ne!(g.level, s_level);
                } else {
                    prop_assert_eq!(g.level, s_level);
                }
            }
        }
    }

    /// The broken-grid map inverts group membership for arbitrary victim
    /// sets.
    #[test]
    fn broken_grids_match_membership(
        l in 2u32..=5,
        scale in 1usize..=4,
        seed in any::<u64>(),
        count in 1usize..6,
    ) {
        use rand::{Rng, SeedableRng};
        let n = l + 3;
        let lay = ProcLayout::new(n, l, Layout::ExtraLayers, scale);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let victims: Vec<usize> =
            (0..count).map(|_| rng.gen_range(0..lay.world_size())).collect();
        let broken = lay.broken_grids(&victims);
        // Sorted, deduped, and exactly the grids of the victims.
        prop_assert!(broken.windows(2).all(|w| w[0] < w[1]));
        for &v in &victims {
            prop_assert!(broken.contains(&lay.grid_of(v)));
        }
        for &b in &broken {
            prop_assert!(victims.iter().any(|&v| lay.grid_of(v) == b));
        }
    }
}
