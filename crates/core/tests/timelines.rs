//! Per-failure-event recovery timelines: every repaired failure event
//! must surface in the run report as a `RecoveryTimeline` whose named
//! phase durations are non-negative and sum — exactly, within float
//! round-off — to the event's measured recovery window.

use ftsg_core::{run_app, AppConfig, Technique, PHASES};
use ulfm_sim::{run, FaultPlan, Report, RunConfig};

fn launch(cfg: AppConfig) -> Report {
    let world =
        ftsg_core::ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale).world_size();
    let report = run(RunConfig::local(world), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

fn assert_well_formed(report: &Report) {
    for tl in &report.timelines {
        assert!(tl.t_start < tl.t_end, "empty event window: {tl:?}");
        assert_eq!(
            tl.phases.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            PHASES,
            "phase names and order are fixed"
        );
        for (name, dur) in &tl.phases {
            assert!(*dur >= 0.0, "phase {name} has negative duration {dur}");
        }
        let sum = tl.phase_sum();
        let total = tl.total();
        assert!((sum - total).abs() < 1e-9, "phases sum to {sum} but the event window is {total}");
        assert!(!tl.failed_ranks.is_empty(), "a repair event names its victims");
    }
}

#[test]
fn every_technique_yields_a_timeline_per_failure_event() {
    for technique in [
        Technique::CheckpointRestart,
        Technique::ResamplingCopying,
        Technique::AlternateCombination,
        Technique::BuddyCheckpoint,
    ] {
        let base = AppConfig::small(technique);
        let steps = base.steps();
        let layout = ftsg_core::ProcLayout::new(base.n, base.l, technique.layout(), base.scale);
        // A victim in rank 0's own group: the timeline is rank 0's view,
        // so this makes the data-restore phase visible (for other groups'
        // failures, rank 0 waits out the restore inside the agree vote).
        let victim = layout.group(0).first + 1;
        // CR/BC detect at the next protection point; RC/AC at the end.
        let when = if technique.has_periodic_protection() { 15 } else { steps };
        let report = launch(base.with_plan(FaultPlan::single(victim, when)));
        assert!(report.procs_failed > 0, "{technique:?}: the kill must land");
        assert_eq!(report.timelines.len(), 1, "{technique:?}: one event, one timeline");
        assert_well_formed(&report);
        let tl = &report.timelines[0];
        assert_eq!(tl.event, 0);
        assert!(tl.failed_ranks.contains(&victim), "{technique:?}: victim recorded");
        assert!(tl.detect_step >= when, "{technique:?}: detection at or after the strike");
        // The protocol segments were actually measured, not defaulted.
        assert!(tl.phase("spawn") > 0.0, "{technique:?}: respawn must take time");
        assert!(tl.phase("data_restore") > 0.0, "{technique:?}: restore must take time");
    }
}

#[test]
fn separate_failure_epochs_get_separate_timelines() {
    let base = AppConfig::small(Technique::CheckpointRestart); // ckpts at 10/20/30
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let v1 = layout.group(1).first; // dies at 5 → detected at 10
    let v2 = layout.group(2).first + 1; // dies at 25 → detected at 30
    let report = launch(base.with_plan(FaultPlan::new(vec![(v1, 5), (v2, 25)])));
    assert_eq!(report.timelines.len(), 2);
    assert_well_formed(&report);
    let (a, b) = (&report.timelines[0], &report.timelines[1]);
    assert_eq!((a.event, b.event), (0, 1));
    assert!(a.t_end <= b.t_start + 1e-12, "events are disjoint and ordered");
    assert_eq!((a.detect_step, b.detect_step), (10, 30));
    assert!(a.failed_ranks.contains(&v1));
    assert!(b.failed_ranks.contains(&v2));
}

#[test]
fn healthy_runs_have_no_timelines() {
    let report = launch(AppConfig::small(Technique::ResamplingCopying));
    assert_eq!(report.procs_failed, 0);
    assert!(report.timelines.is_empty());
}
