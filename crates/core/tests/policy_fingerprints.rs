//! Bitwise fingerprints of the healthy (no-failure) application run.
//!
//! The recovery-policy engine's contract is that the no-failure path under
//! the default `Respawn` policy is **bitwise-identical** to the pre-policy
//! code: same `err_l1` bits, same virtual makespan bits, for every
//! technique. These constants were captured from the tree *before* the
//! policy engine landed; any drift in them means the healthy path gained
//! or lost an operation.
//!
//! `DeferRepair` adds no operations until a failure occurs, so its healthy
//! run must match `Respawn` exactly too. `ShrinkRedistribute` and
//! `SpareSubstitute` change the end-of-run gathers / world size (so their
//! makespans legitimately differ), but the *numerics* — the combined
//! solution error — must still be bit-equal on a healthy run.

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayout, RecoveryPolicy, Technique};
use ulfm_sim::{run, Report, RunConfig};

fn healthy_report(cfg: AppConfig) -> Report {
    let layout_world =
        ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale).world_size();
    let world = cfg.world_size(layout_world);
    let report = run(RunConfig::local(world).with_seed(1), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

fn fingerprint(technique: Technique) -> (u64, u64) {
    let report = healthy_report(AppConfig::small(technique));
    let err = report.get_f64(keys::ERR_L1).expect("controller reports err_l1");
    (err.to_bits(), report.makespan.to_bits())
}

/// (technique, err_l1 bits, makespan bits) under `AppConfig::small`,
/// seed 1, captured pre-policy-engine.
const PINNED: &[(Technique, u64, u64)] = &[
    (Technique::CheckpointRestart, 0x3f41f1f292e93597, 0x3f6a2f8709d29a4a),
    (Technique::ResamplingCopying, 0x3f41f1f292e93597, 0x3f38acd2b9ff4857),
    (Technique::AlternateCombination, 0x3f41f1f292e93597, 0x3f38ab7b2111254d),
    (Technique::BuddyCheckpoint, 0x3f41f1f292e93597, 0x3f3dfc953c67ba5c),
];

#[test]
fn healthy_run_is_bitwise_stable_per_technique() {
    let actual: Vec<(Technique, u64, u64)> = PINNED
        .iter()
        .map(|&(t, _, _)| {
            let (e, m) = fingerprint(t);
            (t, e, m)
        })
        .collect();
    for (t, e, m) in &actual {
        println!("    ({:?}, {:#018x}, {:#018x}),", t, e, m);
    }
    for (&(t, err_bits, mk_bits), &(_, e, m)) in PINNED.iter().zip(&actual) {
        assert_eq!(e, err_bits, "{} err_l1 bits drifted", t.label());
        assert_eq!(m, mk_bits, "{} makespan bits drifted", t.label());
    }
}

/// `DeferRepair` adds no operation until a failure happens: its healthy
/// run must be bitwise-identical to `Respawn` — makespan included.
#[test]
fn healthy_defer_is_bitwise_identical_to_respawn() {
    for &(t, err_bits, mk_bits) in PINNED {
        let report =
            healthy_report(AppConfig::small(t).with_recovery_policy(RecoveryPolicy::DeferRepair));
        let err = report.get_f64(keys::ERR_L1).expect("err_l1");
        assert_eq!(err.to_bits(), err_bits, "{} defer err bits", t.label());
        assert_eq!(report.makespan.to_bits(), mk_bits, "{} defer makespan bits", t.label());
    }
}

/// `ShrinkRedistribute` and `SpareSubstitute` change the end-of-run
/// gathers (and, for substitute, the world size), so their makespans
/// legitimately differ — but with no failure the *numerics* take exactly
/// the same path: the combined-solution error must be bit-equal.
#[test]
fn healthy_shrink_and_substitute_keep_error_bits() {
    for &(t, err_bits, _) in PINNED {
        for (policy, spares) in
            [(RecoveryPolicy::ShrinkRedistribute, 0usize), (RecoveryPolicy::SpareSubstitute, 2)]
        {
            let report = healthy_report(
                AppConfig::small(t).with_recovery_policy(policy).with_spares(spares),
            );
            let err = report.get_f64(keys::ERR_L1).expect("err_l1");
            assert_eq!(err.to_bits(), err_bits, "{} {} err bits", t.label(), policy);
            // Contract bookkeeping on the healthy run.
            let world = report.get_f64(keys::WORLD).unwrap() as usize;
            let orig = report.get_list(keys::RANK_ORIG).expect("policy gathers rank_orig");
            assert_eq!(orig.len(), world);
            for (i, &o) in orig.iter().enumerate() {
                assert_eq!(o as usize, i, "healthy {} run is the identity map", policy);
            }
            if policy == RecoveryPolicy::ShrinkRedistribute {
                assert_eq!(
                    report.get_list(keys::DROPPED_GRIDS).unwrap_or_default(),
                    Vec::<f64>::new()
                );
            }
        }
    }
}
