//! Restart-correctness properties (PR 5, satellite S4).
//!
//! 1. **Kill–restart determinism.** A Checkpoint/Restart run killed at an
//!    arbitrary step and restarted from the newest valid checkpoint must
//!    produce the *bitwise-identical* combined-solution error of the
//!    uninterrupted run — under both synchronous and asynchronous
//!    checkpointing (the async arm crosses the recovery drain barrier).
//! 2. **Wire-format integrity.** The v2 checkpoint codec round-trips
//!    exactly, and *any* single-bit flip of an encoded buffer is detected
//!    (magic/version/bounds checks or the CRC-64 trailer) — a decode must
//!    never silently succeed on damaged bytes.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, CheckpointStore, ProcLayout, Technique};
use proptest::prelude::*;
use sparsegrid::{Grid2, LevelPair};
use ulfm_sim::{run, FaultPlan, RunConfig};

const N: u32 = 6;
const L: u32 = 3;
const LOG2_STEPS: u32 = 5;

fn cr_config(checkpoints: u32, ckpt_async: bool) -> AppConfig {
    let mut cfg = AppConfig::small(Technique::CheckpointRestart).with_checkpoints(checkpoints);
    cfg.n = N;
    cfg.l = L;
    cfg.log2_steps = LOG2_STEPS;
    if !ckpt_async {
        cfg = cfg.with_sync_checkpoints();
    }
    cfg
}

fn err_bits(cfg: AppConfig, seed: u64) -> u64 {
    let layout = ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
    let world = layout.world_size();
    let report = run(RunConfig::local(world).with_seed(seed), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report.get_f64(keys::ERR_L1).expect("healthy run reports err_l1").to_bits()
}

/// Uninterrupted-run error bits, memoized per (checkpoints, async, seed).
fn healthy_bits(checkpoints: u32, ckpt_async: bool, seed: u64) -> u64 {
    type Cache = Mutex<HashMap<(u32, bool, u64), u64>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&bits) = cache.lock().unwrap().get(&(checkpoints, ckpt_async, seed)) {
        return bits;
    }
    let bits = err_bits(cr_config(checkpoints, ckpt_async), seed);
    cache.lock().unwrap().insert((checkpoints, ckpt_async, seed), bits);
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill any non-controller rank at any step (including the very last):
    /// the restarted run's combined solution equals the uninterrupted
    /// run's, bit for bit, in both checkpointing modes.
    #[test]
    fn killed_and_restarted_run_is_bitwise_identical(
        victim_ix in 0usize..64,
        kill_step in 1u64..=(1 << LOG2_STEPS),
        checkpoints in 1u32..=3,
        seed in 0u64..4,
    ) {
        let layout = ProcLayout::new(N, L, Technique::CheckpointRestart.layout(), 1);
        let victim = 1 + victim_ix % (layout.world_size() - 1);
        for ckpt_async in [true, false] {
            let reference = healthy_bits(checkpoints, ckpt_async, seed);
            let cfg = cr_config(checkpoints, ckpt_async)
                .with_plan(FaultPlan::new(vec![(victim, kill_step)]));
            let killed = err_bits(cfg, seed);
            prop_assert_eq!(
                killed, reference,
                "rank {} killed at step {} (C={}, async={}) diverged from the uninterrupted run",
                victim, kill_step, checkpoints, ckpt_async
            );
        }
    }

    /// v2 codec round-trip: decode(encode(x)) == x, including the step
    /// and every payload bit.
    #[test]
    fn v2_codec_roundtrips_exactly(
        i in 1u32..=6,
        j in 1u32..=6,
        step in 0u64..1_000_000,
        fx in -8.0f64..8.0,
        fy in -8.0f64..8.0,
    ) {
        let level = LevelPair::new(i, j);
        let grid = Grid2::from_fn(level, |x, y| (fx * x).sin() + (fy * y).cos());
        let raw = CheckpointStore::encode(step, level, grid.values());
        let (got_step, got) = CheckpointStore::decode(&raw).expect("pristine buffer decodes");
        prop_assert_eq!(got_step, step);
        prop_assert_eq!(got.level(), level);
        let same = got
            .values()
            .iter()
            .zip(grid.values())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        prop_assert!(same, "payload changed across the codec round-trip");
    }

    /// Flipping any single bit anywhere in an encoded checkpoint —
    /// header, payload, or CRC trailer — must make decode fail.
    #[test]
    fn any_single_bit_flip_is_detected(
        i in 1u32..=5,
        j in 1u32..=5,
        step in 0u64..1_000_000,
        flip_seed in any::<u64>(),
    ) {
        let level = LevelPair::new(i, j);
        let grid = Grid2::from_fn(level, |x, y| x * 0.7 - y * 1.3);
        let mut raw = CheckpointStore::encode(step, level, grid.values());
        let bit = (flip_seed % (raw.len() as u64 * 8)) as usize;
        raw[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            CheckpointStore::decode(&raw).is_err(),
            "flipped bit {} of {} and decode still succeeded",
            bit,
            raw.len() * 8
        );
    }
}
