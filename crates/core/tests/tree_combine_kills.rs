//! Kill-inside-a-tree-combine-hop stress: victims die at the top of
//! their Nth `isend`/`irecv`/`wait` — all of which are reduction-tree
//! hops in this script — and the survivors' revoke → shrink → retry loop
//! must converge to a combined grid that is **bitwise equal** to
//! [`combine_binomial`] over the surviving terms in leader order.

use ftsg_core::gather::binomial_combine;
use sparsegrid::{combine_binomial, combine_onto, CombinationTerm, Grid2, LevelPair};
use ulfm_sim::{run, Error, FaultPlan, FaultSite, OpClass, Report, RunConfig};

const WORLD: usize = 5;

/// One source grid per original rank, scaled by `v` so every term is
/// distinguishable and the oracle can be rebuilt from gathered scalars.
fn source(target: LevelPair, v: f64) -> Grid2 {
    Grid2::from_fn(target, |x, y| v * (1.0 + x + 2.0 * y))
}

/// Every rank is a leader; the tree reduces to rank 0, which verifies
/// the result bitwise against the serial reference, then a strict gather
/// closes each attempt so survivors agree uniformly on failures.
fn run_script(plan: FaultPlan) -> Report {
    run(RunConfig::local(WORLD), move |ctx| {
        let w0 = ctx.initial_world().unwrap();
        ctx.arm_fault_sites(&plan, w0.rank());
        let myval = (w0.rank() + 1) as f64;
        let target = LevelPair::new(3, 3);
        let mut comm = w0;
        let mut attempts = 0u32;
        let mut scratch: Vec<f64> = Vec::new();
        loop {
            attempts += 1;
            assert!(attempts <= 6, "tree retry did not converge");
            let res = (|| -> ulfm_sim::Result<()> {
                let leaders: Vec<usize> = (0..comm.size()).collect();
                let src = source(target, myval);
                let term = CombinationTerm { coeff: 1.0, grid: &src };
                let part = combine_onto(target, std::slice::from_ref(&term));
                let combined = binomial_combine(
                    ctx,
                    &comm,
                    &leaders,
                    0,
                    target,
                    Some(part),
                    &mut scratch,
                    42,
                )?;
                // Strict collective: survivors uniformly observe any death.
                let vals = comm.gather(ctx, 0, &[myval])?;
                if let Some(vals) = vals {
                    let flat: Vec<f64> = vals.into_iter().flatten().collect();
                    let srcs: Vec<Grid2> = flat.iter().map(|&v| source(target, v)).collect();
                    let terms: Vec<CombinationTerm> =
                        srcs.iter().map(|g| CombinationTerm { coeff: 1.0, grid: g }).collect();
                    let oracle = combine_binomial(target, &terms);
                    let combined = combined.expect("reduction root holds the combined grid");
                    assert_eq!(combined, oracle, "tree combine must match the serial reference");
                    ctx.report_add("verified", 1.0);
                }
                Ok(())
            })();
            match res {
                Ok(()) => break,
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                    comm.revoke(ctx);
                    comm = comm.shrink(ctx).expect("shrink after failure");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        ctx.report_add("done", 1.0);
    })
}

fn check(plan: FaultPlan, expect_failed: usize) {
    let report = run_script(plan);
    report.assert_no_app_errors();
    assert_eq!(report.procs_failed, expect_failed, "wrong number of deaths");
    assert_eq!(report.get_f64("done"), Some((WORLD - expect_failed) as f64));
    assert_eq!(report.get_f64("verified"), Some(1.0), "exactly one verified combination");
}

#[test]
fn healthy_tree_matches_serial_reference() {
    check(FaultPlan::none(), 0);
}

#[test]
fn kill_inside_tree_send_hop() {
    // With 5 leaders: round 1 pairs (0←1), (2←3); round 2 (0←2); round 3
    // (0←4). Every non-root leader sends exactly once.
    for victim in 1..WORLD {
        check(FaultPlan::at_site(victim, FaultSite::Op { kind: OpClass::Isend, nth: 0 }), 1);
    }
}

#[test]
fn kill_inside_tree_recv_hop() {
    // Leader 2 is the only non-root receiver (from 3 in round 1).
    check(FaultPlan::at_site(2, FaultSite::Op { kind: OpClass::Irecv, nth: 0 }), 1);
}

#[test]
fn kill_inside_tree_wait_hops() {
    // Leader 2 waits twice: its recv-hop wait, then its send-hop wait.
    for nth in 0..2 {
        check(FaultPlan::at_site(2, FaultSite::Op { kind: OpClass::Wait, nth }), 1);
    }
}

#[test]
fn two_leaders_die_in_same_tree() {
    let plan = FaultPlan::new_sites(vec![
        (1, FaultSite::Op { kind: OpClass::Isend, nth: 0 }),
        (3, FaultSite::Op { kind: OpClass::Wait, nth: 0 }),
    ]);
    check(plan, 2);
}

/// Variant where `leaders[0] != root`: rank 0 is a pure controller and
/// the leaders are ranks `1..size`, so every attempt exercises the
/// final-ship hop (`leaders[0]` → root) — the hop whose missing-partial
/// case used to abort via `expect` instead of returning a recoverable
/// error.
fn run_ship_script(plan: FaultPlan) -> Report {
    run(RunConfig::local(WORLD), move |ctx| {
        let w0 = ctx.initial_world().unwrap();
        ctx.arm_fault_sites(&plan, w0.rank());
        let myval = (w0.rank() + 1) as f64;
        let target = LevelPair::new(3, 3);
        let mut comm = w0;
        let mut attempts = 0u32;
        let mut scratch: Vec<f64> = Vec::new();
        loop {
            attempts += 1;
            assert!(attempts <= 6, "ship retry did not converge");
            let res = (|| -> ulfm_sim::Result<()> {
                let leaders: Vec<usize> = (1..comm.size()).collect();
                let part = if leaders.contains(&comm.rank()) {
                    let src = source(target, myval);
                    let term = CombinationTerm { coeff: 1.0, grid: &src };
                    Some(combine_onto(target, std::slice::from_ref(&term)))
                } else {
                    None
                };
                let combined =
                    binomial_combine(ctx, &comm, &leaders, 0, target, part, &mut scratch, 42)?;
                let vals = comm.gather(ctx, 0, &[myval])?;
                if let Some(vals) = vals {
                    let flat: Vec<f64> = vals.into_iter().flatten().collect();
                    // Terms in leader order: every rank but the controller.
                    let srcs: Vec<Grid2> = flat[1..].iter().map(|&v| source(target, v)).collect();
                    let terms: Vec<CombinationTerm> =
                        srcs.iter().map(|g| CombinationTerm { coeff: 1.0, grid: g }).collect();
                    let oracle = combine_binomial(target, &terms);
                    let combined = combined.expect("root received the shipped grid");
                    assert_eq!(combined, oracle, "shipped combine must match the reference");
                    ctx.report_add("verified", 1.0);
                }
                Ok(())
            })();
            match res {
                Ok(()) => break,
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) | Err(Error::Protocol(_)) => {
                    comm.revoke(ctx);
                    comm = comm.shrink(ctx).expect("shrink after failure");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        ctx.report_add("done", 1.0);
    })
}

fn check_ship(plan: FaultPlan, expect_failed: usize) {
    let report = run_ship_script(plan);
    report.assert_no_app_errors();
    assert_eq!(report.procs_failed, expect_failed, "wrong number of deaths");
    assert_eq!(report.get_f64("done"), Some((WORLD - expect_failed) as f64));
    assert_eq!(report.get_f64("verified"), Some(1.0), "exactly one verified combination");
}

#[test]
fn healthy_ship_matches_serial_reference() {
    check_ship(FaultPlan::none(), 0);
}

#[test]
fn kill_final_ship_leader_at_every_send_hop() {
    // Leaders [1,2,3,4]: rank 1 receives from 2 (round 1) and 3 (round
    // 2), then ships to root 0 — its only isend IS the final-ship hop.
    check_ship(FaultPlan::at_site(1, FaultSite::Op { kind: OpClass::Isend, nth: 0 }), 1);
}

#[test]
fn kill_final_ship_leader_at_every_wait_hop() {
    // Rank 1 waits three times: two recv-hop waits, then the ship wait.
    for nth in 0..3 {
        check_ship(FaultPlan::at_site(1, FaultSite::Op { kind: OpClass::Wait, nth }), 1);
    }
}

#[test]
fn kill_other_leaders_during_ship_rounds() {
    for victim in 2..WORLD {
        check_ship(FaultPlan::at_site(victim, FaultSite::Op { kind: OpClass::Isend, nth: 0 }), 1);
    }
}

/// Direct regression for the consumed-partial state: the final-ship
/// leader enters a retried round with its partial already gone. The old
/// code aborted the process via `expect`; now it must surface
/// `Error::Protocol` and succeed on the rebuilt retry while the root's
/// posted receive is still in flight.
#[test]
fn consumed_partial_surfaces_protocol_error_not_abort() {
    let report = run(RunConfig::local(2), move |ctx| {
        let w = ctx.initial_world().unwrap();
        let target = LevelPair::new(3, 3);
        let mut scratch: Vec<f64> = Vec::new();
        let leaders = vec![1usize];
        if w.rank() == 1 {
            // First round: the partial was consumed by a previous attempt.
            let res = binomial_combine(ctx, &w, &leaders, 0, target, None, &mut scratch, 7);
            match res {
                Err(Error::Protocol(_)) => ctx.report_add("protocol_err", 1.0),
                other => panic!("expected Error::Protocol, got {other:?}"),
            }
            // Retry with a rebuilt partial — the root's receive completes.
            let src = source(target, 2.0);
            let term = CombinationTerm { coeff: 1.0, grid: &src };
            let part = combine_onto(target, std::slice::from_ref(&term));
            let _ = binomial_combine(ctx, &w, &leaders, 0, target, Some(part), &mut scratch, 7)
                .expect("retried ship succeeds");
        } else {
            let combined = binomial_combine(ctx, &w, &leaders, 0, target, None, &mut scratch, 7)
                .expect("root receives the retried ship")
                .expect("root holds the combined grid");
            let src = source(target, 2.0);
            let term = CombinationTerm { coeff: 1.0, grid: &src };
            let oracle = combine_binomial(target, std::slice::from_ref(&term));
            assert_eq!(combined, oracle, "retried ship is bitwise correct");
            ctx.report_add("verified", 1.0);
        }
    });
    report.assert_no_app_errors();
    assert_eq!(report.procs_failed, 0);
    assert_eq!(report.get_f64("protocol_err"), Some(1.0));
    assert_eq!(report.get_f64("verified"), Some(1.0));
}
