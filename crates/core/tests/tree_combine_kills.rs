//! Kill-inside-a-tree-combine-hop stress: victims die at the top of
//! their Nth `isend`/`irecv`/`wait` — all of which are reduction-tree
//! hops in this script — and the survivors' revoke → shrink → retry loop
//! must converge to a combined grid that is **bitwise equal** to
//! [`combine_binomial`] over the surviving terms in leader order.

use ftsg_core::gather::binomial_combine;
use sparsegrid::{combine_binomial, combine_onto, CombinationTerm, Grid2, LevelPair};
use ulfm_sim::{run, Error, FaultPlan, FaultSite, OpClass, Report, RunConfig};

const WORLD: usize = 5;

/// One source grid per original rank, scaled by `v` so every term is
/// distinguishable and the oracle can be rebuilt from gathered scalars.
fn source(target: LevelPair, v: f64) -> Grid2 {
    Grid2::from_fn(target, |x, y| v * (1.0 + x + 2.0 * y))
}

/// Every rank is a leader; the tree reduces to rank 0, which verifies
/// the result bitwise against the serial reference, then a strict gather
/// closes each attempt so survivors agree uniformly on failures.
fn run_script(plan: FaultPlan) -> Report {
    run(RunConfig::local(WORLD), move |ctx| {
        let w0 = ctx.initial_world().unwrap();
        ctx.arm_fault_sites(&plan, w0.rank());
        let myval = (w0.rank() + 1) as f64;
        let target = LevelPair::new(3, 3);
        let mut comm = w0;
        let mut attempts = 0u32;
        let mut scratch: Vec<f64> = Vec::new();
        loop {
            attempts += 1;
            assert!(attempts <= 6, "tree retry did not converge");
            let res = (|| -> ulfm_sim::Result<()> {
                let leaders: Vec<usize> = (0..comm.size()).collect();
                let src = source(target, myval);
                let term = CombinationTerm { coeff: 1.0, grid: &src };
                let part = combine_onto(target, std::slice::from_ref(&term));
                let combined = binomial_combine(
                    ctx,
                    &comm,
                    &leaders,
                    0,
                    target,
                    Some(part),
                    &mut scratch,
                    42,
                )?;
                // Strict collective: survivors uniformly observe any death.
                let vals = comm.gather(ctx, 0, &[myval])?;
                if let Some(vals) = vals {
                    let flat: Vec<f64> = vals.into_iter().flatten().collect();
                    let srcs: Vec<Grid2> = flat.iter().map(|&v| source(target, v)).collect();
                    let terms: Vec<CombinationTerm> =
                        srcs.iter().map(|g| CombinationTerm { coeff: 1.0, grid: g }).collect();
                    let oracle = combine_binomial(target, &terms);
                    let combined = combined.expect("reduction root holds the combined grid");
                    assert_eq!(combined, oracle, "tree combine must match the serial reference");
                    ctx.report_add("verified", 1.0);
                }
                Ok(())
            })();
            match res {
                Ok(()) => break,
                Err(Error::ProcFailed { .. }) | Err(Error::Revoked) => {
                    comm.revoke(ctx);
                    comm = comm.shrink(ctx).expect("shrink after failure");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        ctx.report_add("done", 1.0);
    })
}

fn check(plan: FaultPlan, expect_failed: usize) {
    let report = run_script(plan);
    report.assert_no_app_errors();
    assert_eq!(report.procs_failed, expect_failed, "wrong number of deaths");
    assert_eq!(report.get_f64("done"), Some((WORLD - expect_failed) as f64));
    assert_eq!(report.get_f64("verified"), Some(1.0), "exactly one verified combination");
}

#[test]
fn healthy_tree_matches_serial_reference() {
    check(FaultPlan::none(), 0);
}

#[test]
fn kill_inside_tree_send_hop() {
    // With 5 leaders: round 1 pairs (0←1), (2←3); round 2 (0←2); round 3
    // (0←4). Every non-root leader sends exactly once.
    for victim in 1..WORLD {
        check(FaultPlan::at_site(victim, FaultSite::Op { kind: OpClass::Isend, nth: 0 }), 1);
    }
}

#[test]
fn kill_inside_tree_recv_hop() {
    // Leader 2 is the only non-root receiver (from 3 in round 1).
    check(FaultPlan::at_site(2, FaultSite::Op { kind: OpClass::Irecv, nth: 0 }), 1);
}

#[test]
fn kill_inside_tree_wait_hops() {
    // Leader 2 waits twice: its recv-hop wait, then its send-hop wait.
    for nth in 0..2 {
        check(FaultPlan::at_site(2, FaultSite::Op { kind: OpClass::Wait, nth }), 1);
    }
}

#[test]
fn two_leaders_die_in_same_tree() {
    let plan = FaultPlan::new_sites(vec![
        (1, FaultSite::Op { kind: OpClass::Isend, nth: 0 }),
        (3, FaultSite::Op { kind: OpClass::Wait, nth: 0 }),
    ]);
    check(plan, 2);
}
