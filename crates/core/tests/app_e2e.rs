//! End-to-end tests of the fault-tolerant application: real distributed
//! solves over the simulated runtime, real fail-stop kills, real
//! communicator reconstruction, and all three data recovery techniques.

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, Technique};
use ulfm_sim::{run, FaultPlan, Report, RunConfig};

fn launch(cfg: AppConfig) -> Report {
    let world =
        ftsg_core::ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale).world_size();
    let rc = RunConfig::local(world);
    let report = run(rc, move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

#[test]
fn healthy_run_cr() {
    let report = launch(AppConfig::small(Technique::CheckpointRestart));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite() && err < 0.05, "combined-solution error {err}");
    assert_eq!(report.get_f64(keys::N_FAILED), Some(0.0));
    assert!(report.get_f64(keys::T_CKPT).unwrap() > 0.0, "CR must checkpoint");
    assert_eq!(report.procs_failed, 0);
}

#[test]
fn healthy_run_rc() {
    let report = launch(AppConfig::small(Technique::ResamplingCopying));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite() && err < 0.05);
    assert_eq!(report.get_f64(keys::T_CKPT), Some(0.0));
}

#[test]
fn healthy_run_ac() {
    let report = launch(AppConfig::small(Technique::AlternateCombination));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite() && err < 0.05);
}

#[test]
fn healthy_error_identical_across_techniques() {
    // Without failures the combined solution is technique-independent:
    // redundancy grids do not enter the classical combination.
    let e_cr =
        launch(AppConfig::small(Technique::CheckpointRestart)).get_f64(keys::ERR_L1).unwrap();
    let e_rc =
        launch(AppConfig::small(Technique::ResamplingCopying)).get_f64(keys::ERR_L1).unwrap();
    let e_ac =
        launch(AppConfig::small(Technique::AlternateCombination)).get_f64(keys::ERR_L1).unwrap();
    assert!((e_cr - e_rc).abs() < 1e-14, "CR {e_cr} vs RC {e_rc}");
    assert!((e_cr - e_ac).abs() < 1e-14, "CR {e_cr} vs AC {e_ac}");
}

/// One failure at the end (the paper's standard injection point for RC and
/// AC), recovered, error stays close to baseline.
#[test]
fn rc_recovers_single_failure_at_end() {
    let base = AppConfig::small(Technique::ResamplingCopying);
    let steps = base.steps();
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();

    // Kill one rank of a diagonal group (grid 1): exact copy recovery.
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(1).first; // root of grid 1 — also exercises root respawn
    let cfg = base.with_plan(FaultPlan::single(victim, steps));
    let report = launch(cfg);
    assert_eq!(report.get_f64(keys::N_FAILED), Some(1.0));
    assert!(report.get_f64(keys::T_RECONSTRUCT).unwrap() > 0.0);
    let err = report.get_f64(keys::ERR_L1).unwrap();
    // Duplicate copy is exact → error equals the baseline.
    assert!(
        (err - baseline).abs() < 1e-12,
        "copy recovery should be exact: {err} vs baseline {baseline}"
    );
}

#[test]
fn rc_resample_recovery_is_approximate_but_close() {
    let base = AppConfig::small(Technique::ResamplingCopying);
    let steps = base.steps();
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    // Kill a rank of a lower-diagonal grid → resampling from the finer
    // diagonal above it.
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let lower_id = base.l as usize; // first lower-diagonal grid
    let victim = layout.group(lower_id).first;
    let report = launch(base.with_plan(FaultPlan::single(victim, steps)));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite());
    // Within a factor of 10 of baseline (the paper's robustness headline).
    assert!(err < 10.0 * baseline, "resample error {err} vs baseline {baseline}");
}

#[test]
fn ac_recovers_single_failure_within_factor_10() {
    let base = AppConfig::small(Technique::AlternateCombination);
    let steps = base.steps();
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(1).first; // middle diagonal grid → recruits extras
    let report = launch(base.with_plan(FaultPlan::single(victim, steps)));
    assert_eq!(report.get_f64(keys::N_FAILED), Some(1.0));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite() && err > 0.0);
    assert!(err < 10.0 * baseline, "AC error {err} vs baseline {baseline}");
}

#[test]
fn cr_recovers_midrun_failure_exactly() {
    let base = AppConfig::small(Technique::CheckpointRestart);
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    // Kill mid-segment: detection at the next checkpoint, restart, exact
    // recompute → error identical to baseline.
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(2).first + 1;
    let report = launch(base.with_plan(FaultPlan::single(victim, 15)));
    assert_eq!(report.get_f64(keys::N_FAILED), Some(1.0));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(
        (err - baseline).abs() < 1e-12,
        "CR recovery must be exact: {err} vs baseline {baseline}"
    );
    assert!(report.get_f64(keys::T_RECOVERY).unwrap() > 0.0);
}

#[test]
fn cr_failure_before_first_checkpoint_restarts_from_ic() {
    let base = AppConfig::small(Technique::CheckpointRestart);
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(1).first;
    // Dies at step 3, before the first checkpoint at step 10.
    let report = launch(base.with_plan(FaultPlan::single(victim, 3)));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!((err - baseline).abs() < 1e-12, "IC restart is exact: {err} vs {baseline}");
}

#[test]
fn multiple_failures_across_grids_all_techniques() {
    for technique in [
        Technique::CheckpointRestart,
        Technique::ResamplingCopying,
        Technique::AlternateCombination,
    ] {
        let base = AppConfig::paper_shaped(technique, 6, 1, 5);
        let steps = base.steps();
        let layout = ftsg_core::ProcLayout::new(base.n, base.l, technique.layout(), base.scale);
        // Two victims on two different, non-conflicting grids.
        let v1 = layout.group(1).first + 1; // diagonal 1 (non-root member)
        let v2 = layout.group(2).first; // diagonal 2 root
        let when = if technique == Technique::CheckpointRestart { 5 } else { steps };
        let report = launch(base.with_plan(FaultPlan::new(vec![(v1, when), (v2, when)])));
        assert_eq!(
            report.get_f64(keys::N_FAILED),
            Some(2.0),
            "{technique:?} must repair both failures"
        );
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 0.1, "{technique:?} error {err}");
        assert_eq!(report.procs_failed, 2);
    }
}

#[test]
fn respawned_ranks_return_to_original_hosts() {
    // The load-balancing property: children are spawned on the host the
    // failed rank occupied (hostfile line failedRank / SLOTS).
    let base = AppConfig::small(Technique::AlternateCombination);
    let steps = base.steps();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(2).first;
    let cfg = base.with_plan(FaultPlan::single(victim, steps));
    let world = layout.world_size();
    let rc = RunConfig::local(world);
    let slots = rc.profile.slots_per_host;
    let report = run(rc, move |ctx| {
        if ctx.is_spawned() {
            ctx.report_f64("child_host", ctx.my_host() as f64);
        }
        run_app(&cfg, ctx);
    });
    report.assert_no_app_errors();
    let expect = (victim / slots) as f64;
    assert_eq!(report.get_f64("child_host"), Some(expect));
}

#[test]
fn total_time_grows_with_failures() {
    let base = AppConfig::small(Technique::ResamplingCopying);
    let steps = base.steps();
    let t0 = launch(base.clone()).get_f64(keys::T_TOTAL).unwrap();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(3).first;
    let t1 =
        launch(base.with_plan(FaultPlan::single(victim, steps))).get_f64(keys::T_TOTAL).unwrap();
    assert!(t1 > t0, "failure run ({t1}) must cost more than healthy ({t0})");
}

#[test]
fn two_separate_failure_epochs_under_cr() {
    // Failures in *different* segments of a Checkpoint/Restart run: the
    // application reconstructs twice, restores from different checkpoints,
    // and still finishes exactly.
    let base = AppConfig::small(Technique::CheckpointRestart); // 32 steps, ckpts at 10/20/30
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let v1 = layout.group(1).first; // dies at step 5 → detected at 10
    let v2 = layout.group(2).first + 1; // dies at step 25 → detected at 30
    let report = launch(base.with_plan(FaultPlan::new(vec![(v1, 5), (v2, 25)])));
    assert_eq!(report.get_f64(keys::N_FAILED), Some(2.0));
    assert_eq!(report.procs_failed, 2);
    assert_eq!(report.procs_created, layout.world_size() + 2);
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(
        (err - baseline).abs() < 1e-12,
        "two-epoch CR recovery must stay exact: {err} vs {baseline}"
    );
}

#[test]
fn same_rank_position_can_fail_twice() {
    // The rank position that failed and was respawned fails AGAIN in a
    // later segment: its replacement's replacement must still come up and
    // the run must finish exactly. (Respawned processes re-enter the same
    // application entry, so the second kill hits the child.)
    let base = AppConfig::small(Technique::CheckpointRestart);
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let v = layout.group(1).first;
    // Dies at step 5 (detected at 10, respawned), then the *replacement*
    // dies at step 25 (detected at 30, respawned again).
    let report = launch(base.with_plan(FaultPlan::new(vec![(v, 5), (v, 25)])));
    assert_eq!(report.get_f64(keys::N_FAILED), Some(1.0), "same rank id both times");
    assert_eq!(report.procs_failed, 2, "two distinct processes died");
    assert_eq!(report.procs_created, layout.world_size() + 2);
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!((err - baseline).abs() < 1e-12);
}

#[test]
fn buddy_checkpoint_healthy_and_exact_recovery() {
    // Healthy run matches the other techniques' baseline error; a mid-run
    // failure restores from the buddy's in-memory copy and recomputes —
    // exact, like CR, but with zero disk traffic.
    let base = AppConfig::small(Technique::BuddyCheckpoint);
    let baseline_cr =
        launch(AppConfig::small(Technique::CheckpointRestart)).get_f64(keys::ERR_L1).unwrap();
    let healthy = launch(base.clone());
    let e0 = healthy.get_f64(keys::ERR_L1).unwrap();
    assert!((e0 - baseline_cr).abs() < 1e-14, "BC healthy == CR healthy");

    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let victim = layout.group(2).first; // group root dies mid-run
    let report = launch(base.with_plan(FaultPlan::single(victim, 15)));
    assert_eq!(report.get_f64(keys::N_FAILED), Some(1.0));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!((err - e0).abs() < 1e-12, "buddy recovery must be exact: {err} vs {e0}");
    assert!(report.get_f64(keys::T_RECOVERY).unwrap() > 0.0);
}

#[test]
fn buddy_checkpoint_falls_back_to_ic_when_buddy_root_dies_too() {
    // Kill a grid's root AND its buddy's root in the same epoch: the
    // in-memory copy dies with the buddy, so recovery restarts the grid
    // from the initial condition and recomputes everything — still exact.
    let base = AppConfig::small(Technique::BuddyCheckpoint);
    let baseline = launch(base.clone()).get_f64(keys::ERR_L1).unwrap();
    let layout = ftsg_core::ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    // Buddy of grid g is the next combining grid; grid 1's buddy is 2.
    let v1 = layout.group(1).first;
    let v2 = layout.group(2).first;
    let report = launch(base.with_plan(FaultPlan::new(vec![(v1, 15), (v2, 15)])));
    assert_eq!(report.get_f64(keys::N_FAILED), Some(2.0));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!((err - baseline).abs() < 1e-12, "IC fallback still exact: {err} vs {baseline}");
}

#[test]
fn buddy_checkpoint_avoids_disk_entirely() {
    // Virtual disk accounting: BC's protection time excludes the disk
    // latency that dominates CR on a slow-disk cluster.
    use ulfm_sim::ClusterProfile;
    let world =
        ftsg_core::ProcLayout::new(6, 3, Technique::BuddyCheckpoint.layout(), 1).world_size();
    let time_of = |technique: Technique| {
        let cfg = AppConfig::small(technique);
        let report =
            run(RunConfig::cluster(ClusterProfile::opl(), world), move |ctx| run_app(&cfg, ctx));
        report.assert_no_app_errors();
        report.get_f64(keys::T_CKPT).unwrap()
    };
    let cr = time_of(Technique::CheckpointRestart);
    let bc = time_of(Technique::BuddyCheckpoint);
    assert!(
        bc < cr / 100.0,
        "diskless protection ({bc}) must be far below disk checkpoints ({cr})"
    );
}
