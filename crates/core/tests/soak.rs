//! Randomized soak test: many configurations × techniques × random
//! admissible failure plans. Every run must terminate (the runtime's
//! deadlock-freedom in practice), repair every failure, and produce a
//! finite combined-solution error. Any stall, protocol mismatch, or
//! unrecovered state fails loudly.

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayout, Technique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ulfm_sim::{run, FaultPlan, RunConfig};

/// Build an admissible random plan: victims never rank 0, never violating
/// the RC conflict constraints when the technique is RC.
fn random_plan(
    layout: &ProcLayout,
    technique: Technique,
    n_failures: usize,
    max_step: u64,
    rng: &mut StdRng,
) -> FaultPlan {
    let conflicts = layout.system().rc_conflicts();
    let mut victims: Vec<(usize, u64)> = Vec::new();
    let mut guard = 0;
    while victims.len() < n_failures && guard < 1000 {
        guard += 1;
        let r = rng.gen_range(1..layout.world_size());
        if victims.iter().any(|&(v, _)| v == r) {
            continue;
        }
        if technique == Technique::ResamplingCopying {
            let mut broken: Vec<usize> = victims.iter().map(|&(v, _)| layout.grid_of(v)).collect();
            broken.push(layout.grid_of(r));
            if conflicts.iter().any(|&(a, b)| broken.contains(&a) && broken.contains(&b)) {
                continue;
            }
        }
        let step = rng.gen_range(0..=max_step);
        victims.push((r, step));
    }
    FaultPlan::new(victims)
}

#[test]
fn soak_random_failures_all_techniques() {
    let mut rng = StdRng::seed_from_u64(0xF1E57);
    let mut runs = 0;
    let mut total_failures = 0;
    for round in 0..18 {
        let technique = match round % 3 {
            0 => Technique::CheckpointRestart,
            1 => Technique::ResamplingCopying,
            _ => Technique::AlternateCombination,
        };
        let n = rng.gen_range(5u32..=7);
        let l = rng.gen_range(3u32..=4).min(n);
        let scale = rng.gen_range(1usize..=2);
        let log2_steps = rng.gen_range(4u32..=5);
        let cfg = AppConfig {
            n,
            l,
            scale,
            technique,
            log2_steps,
            plan: FaultPlan::none(),
            checkpoints: rng.gen_range(1..=3),
            ckpt_dir: ftsg_core::config::default_ckpt_dir(),
            ckpt_async: true,
            ckpt_corruption: Default::default(),
            problem: advect2d::AdvectionProblem::standard(),
            dim: 2,
            problem_nd: None,
            simulated_lost_grids: Vec::new(),
            respawn_policy: Default::default(),
            recovery_policy: Default::default(),
            spares: 0,
            output_prefix: None,
            combine_mode: Default::default(),
            kernel: advect2d::KernelConfig::global(),
            cancel: None,
            observer: None,
        };
        let layout = ProcLayout::new(n, l, technique.layout(), scale);
        let n_failures = rng.gen_range(1usize..=3).min(layout.world_size() / 4);
        // Kills may strike at any step: CR absorbs them mid-run, RC/AC
        // leave the group broken until end-of-run recovery.
        let max_step = cfg.steps();
        let plan = random_plan(&layout, technique, n_failures, max_step, &mut rng);
        let expected_failures = plan.n_failures();
        let cfg = cfg.with_plan(plan);

        let world = layout.world_size();
        let report =
            run(RunConfig::local(world).with_seed(round as u64), move |ctx| run_app(&cfg, ctx));
        report.assert_no_app_errors();
        assert_eq!(
            report.get_f64(keys::N_FAILED),
            Some(expected_failures as f64),
            "round {round} ({technique:?}, n={n}, l={l}, s={scale}): repairs"
        );
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 0.5, "round {round} ({technique:?}): error {err}");
        runs += 1;
        total_failures += expected_failures;
    }
    assert_eq!(runs, 18);
    assert!(total_failures >= 18, "the soak must actually inject failures");
}

#[test]
fn soak_simulated_loss_patterns() {
    // Sweep every single-grid loss and a batch of random multi-losses for
    // AC, checking the robust combination never panics and never exceeds
    // a loose error budget.
    let technique = Technique::AlternateCombination;
    let base = AppConfig::paper_shaped(technique, 7, 1, 4);
    let layout = ProcLayout::new(base.n, base.l, technique.layout(), base.scale);
    let world = layout.world_size();
    let n_grids = layout.system().n_grids();

    for g in 0..n_grids {
        let cfg = base.clone().with_simulated_losses(vec![g]);
        let report = run(RunConfig::local(world), move |ctx| run_app(&cfg, ctx));
        report.assert_no_app_errors();
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 0.5, "single loss of grid {g}: {err}");
    }

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..6 {
        let k = rng.gen_range(2..=4);
        let mut grids: Vec<usize> = Vec::new();
        while grids.len() < k {
            let g = rng.gen_range(0..n_grids);
            if !grids.contains(&g) {
                grids.push(g);
            }
        }
        grids.sort_unstable();
        let cfg = base.clone().with_simulated_losses(grids.clone());
        let report = run(RunConfig::local(world), move |ctx| run_app(&cfg, ctx));
        report.assert_no_app_errors();
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite(), "losses {grids:?}: {err}");
    }
}
