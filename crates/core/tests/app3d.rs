//! End-to-end runs of the d-dimensional application driver: 3D
//! advection–diffusion and elliptic problems under every technique ×
//! recovery policy, healthy and with injected kills. The nd driver
//! reports under the same keys as the 2D one, so the assertions mirror
//! `app_e2e.rs` / `soak.rs`.

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayoutN, RecoveryPolicy, Technique};
use ulfm_sim::{run, FaultPlan, Report, RunConfig};

const TECHNIQUES: [Technique; 4] = [
    Technique::CheckpointRestart,
    Technique::ResamplingCopying,
    Technique::AlternateCombination,
    Technique::BuddyCheckpoint,
];

fn layout_of(cfg: &AppConfig) -> ProcLayoutN {
    ProcLayoutN::new(cfg.dim, cfg.n, cfg.l, cfg.technique.layout(), cfg.scale)
}

fn run_3d(cfg: AppConfig) -> Report {
    let world = cfg.world_size(layout_of(&cfg).world_size());
    let report = run(RunConfig::local(world).with_seed(3), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

/// Healthy 3D runs: every technique converges to the same combined
/// solution (identical classical combination), under every policy.
#[test]
fn healthy_3d_error_is_technique_and_policy_invariant() {
    let mut baseline: Option<u64> = None;
    for technique in TECHNIQUES {
        for (policy, spares) in [
            (RecoveryPolicy::Respawn, 0usize),
            (RecoveryPolicy::DeferRepair, 0),
            (RecoveryPolicy::ShrinkRedistribute, 0),
            (RecoveryPolicy::SpareSubstitute, 2),
        ] {
            let cfg =
                AppConfig::small_nd(technique, 3).with_recovery_policy(policy).with_spares(spares);
            let report = run_3d(cfg);
            let err = report.get_f64(keys::ERR_L1).unwrap();
            assert!(
                err.is_finite() && err < 0.1,
                "{technique:?}/{policy:?}: 3D healthy error {err}"
            );
            // The healthy numerics must not depend on the protection
            // technique or the repair policy.
            match baseline {
                None => baseline = Some(err.to_bits()),
                Some(b) => assert_eq!(
                    err.to_bits(),
                    b,
                    "{technique:?}/{policy:?}: healthy 3D error bits drifted"
                ),
            }
            assert_eq!(report.get_f64(keys::N_FAILED), Some(0.0));
        }
    }
}

/// Tree combination must agree with central combination (it is the same
/// sum, associated differently — tolerance, not bit-equality).
#[test]
fn tree_and_central_combine_agree_in_3d() {
    let central =
        run_3d(AppConfig::small_nd(Technique::AlternateCombination, 3).with_central_combine());
    let tree = run_3d(AppConfig::small_nd(Technique::AlternateCombination, 3));
    let e_c = central.get_f64(keys::ERR_L1).unwrap();
    let e_t = tree.get_f64(keys::ERR_L1).unwrap();
    assert!((e_c - e_t).abs() < 1e-12, "central {e_c} vs tree {e_t}");
}

/// One mid-run kill under every technique × respawn-family policy: the
/// failure is detected, repaired, data recovered, and the final error
/// stays within the loss envelope (AC's robust combination is lossier
/// than exact recovery but must stay bounded).
#[test]
fn killed_3d_runs_recover_under_every_technique() {
    for technique in TECHNIQUES {
        for (policy, spares) in [
            (RecoveryPolicy::Respawn, 0usize),
            (RecoveryPolicy::DeferRepair, 0),
            (RecoveryPolicy::SpareSubstitute, 2),
        ] {
            let base =
                AppConfig::small_nd(technique, 3).with_recovery_policy(policy).with_spares(spares);
            let layout = layout_of(&base);
            // Kill the last active rank mid-run (never rank 0; a single
            // victim cannot violate the RC conflict constraint).
            let victim = layout.world_size() - 1;
            let step = base.steps() / 2;
            let cfg = base.with_plan(FaultPlan::new(vec![(victim, step)]));
            let report = run_3d(cfg);
            assert_eq!(
                report.get_f64(keys::N_FAILED),
                Some(1.0),
                "{technique:?}/{policy:?}: repair count"
            );
            let err = report.get_f64(keys::ERR_L1).unwrap();
            assert!(
                err.is_finite() && err < 0.5,
                "{technique:?}/{policy:?}: post-recovery error {err}"
            );
        }
    }
}

/// `ShrinkRedistribute` in 3D: the victim's grid is dropped and the
/// robust combination of the survivors still produces a bounded error.
#[test]
fn shrink_redistribute_drops_grids_in_3d() {
    for technique in TECHNIQUES {
        let base = AppConfig::small_nd(technique, 3)
            .with_recovery_policy(RecoveryPolicy::ShrinkRedistribute);
        let layout = layout_of(&base);
        let victim = layout.world_size() - 1;
        let step = base.steps() / 2;
        let cfg = base.with_plan(FaultPlan::new(vec![(victim, step)]));
        let report = run_3d(cfg);
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 0.5, "{technique:?}: shrink error {err}");
        let dropped = report.get_list(keys::DROPPED_GRIDS).unwrap_or_default();
        assert_eq!(
            dropped,
            vec![layout.grid_of(victim) as f64],
            "{technique:?}: the victim's grid is dropped"
        );
        let world = report.get_f64(keys::WORLD).unwrap() as usize;
        assert!(world < layout.world_size(), "{technique:?}: the world shrank");
    }
}

/// The 3D elliptic problem (distributed Jacobi relaxation) through the
/// same fault-tolerant driver, healthy and with a kill.
#[test]
fn elliptic_3d_healthy_and_killed() {
    use advect2d::ndproblem::ProblemN;
    let base = AppConfig::small_nd(Technique::CheckpointRestart, 3)
        .with_problem_nd(ProblemN::standard_elliptic(3));
    let healthy = run_3d(base.clone());
    let err = healthy.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite() && err < 0.2, "healthy elliptic error {err}");

    let layout = layout_of(&base);
    let victim = layout.world_size() - 1;
    let step = base.steps() / 2;
    let killed = run_3d(base.with_plan(FaultPlan::new(vec![(victim, step)])));
    assert_eq!(killed.get_f64(keys::N_FAILED), Some(1.0));
    let kerr = killed.get_f64(keys::ERR_L1).unwrap();
    // Checkpoint recovery is exact up to the replayed steps.
    assert!((kerr - err).abs() < 1e-9, "elliptic CR recovery drifted: {kerr} vs {err}");
}

/// Simulated end-of-run grid losses (the paper's Fig. 9/10 experiment,
/// lifted to 3D): AC's robust combination over the survivors stays
/// bounded for every single-grid loss.
#[test]
fn simulated_3d_losses_stay_bounded() {
    let base = AppConfig::small_nd(Technique::AlternateCombination, 3);
    let layout = layout_of(&base);
    let healthy = run_3d(base.clone()).get_f64(keys::ERR_L1).unwrap();
    let n_grids = layout.system().n_grids();
    for g in (0..n_grids).step_by(5) {
        let cfg = base.clone().with_simulated_losses(vec![g]);
        let report = run_3d(cfg);
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 0.5, "loss of grid {g}: error {err}");
        // Losing a duplicated level costs nothing; losing a unique one
        // may move the error but must not blow it up.
        assert!(err < 20.0 * healthy.max(1e-3), "loss of grid {g}: {err} vs healthy {healthy}");
    }
}

/// A bad (dim, n, l) triple must surface as a clean config error at the
/// application boundary, not a panic inside the simplex enumeration.
#[test]
fn invalid_nd_config_is_rejected_before_launch() {
    let mut cfg = AppConfig::small_nd(Technique::CheckpointRestart, 3);
    cfg.n = 2;
    cfg.l = 4;
    assert!(cfg.validate().unwrap_err().contains('l'), "n < l must be a config error");
}
