//! Spare-node recovery (the paper's §V future work): when every rank of a
//! node fails, the replacements are spawned together on a spare node; the
//! load-balancing characteristics match the same-host policy.

use ftsg_core::app::keys;
use ftsg_core::reconstruct::communicator_reconstruct_with;
use ftsg_core::{run_app, AppConfig, ProcLayout, ReconstructTimings, RespawnPolicy, Technique};
use ulfm_sim::{run, ClusterProfile, FaultPlan, RunConfig};

/// A cluster with 2 slots per node so whole-node failures are cheap to
/// stage.
fn small_node_config(world: usize) -> RunConfig {
    let mut rc = RunConfig::local(world);
    rc.profile = ClusterProfile::local(world.div_ceil(2), 2);
    rc.spare_hosts = 3;
    rc
}

#[test]
fn node_failure_respawns_on_spare_node() {
    // World of 6 on 3 nodes of 2 slots; kill both ranks of node 1.
    let world = 6;
    let report = run(small_node_config(world), |ctx| {
        let mut timings = ReconstructTimings::default();
        if ctx.is_spawned() {
            let parent = ctx.parent().unwrap();
            let w = communicator_reconstruct_with(
                ctx,
                None,
                Some(parent),
                RespawnPolicy::SpareNode,
                &mut timings,
            )
            .unwrap();
            ctx.report_push("child_host", ctx.my_host() as f64);
            ctx.report_push("child_rank", w.rank() as f64);
            return;
        }
        let w = ctx.initial_world().unwrap();
        if w.rank() == 2 || w.rank() == 3 {
            ctx.die(); // the whole of node 1
        }
        let w = communicator_reconstruct_with(
            ctx,
            Some(w),
            None,
            RespawnPolicy::SpareNode,
            &mut timings,
        )
        .unwrap();
        assert_eq!(w.size(), 6);
        ctx.report_add("ok", 1.0);
    });
    report.assert_no_app_errors();
    assert_eq!(report.get_f64("ok"), Some(4.0));
    // Both children landed together on the first spare node (index 3:
    // nodes 0..3 hold the original world).
    let hosts = report.get_list("child_host").unwrap();
    assert_eq!(hosts, &[3.0, 3.0], "children must land on the spare node");
    let mut ranks: Vec<f64> = report.get_list("child_rank").unwrap().to_vec();
    ranks.sort_by(f64::total_cmp);
    assert_eq!(ranks, vec![2.0, 3.0], "original ranks restored");
}

#[test]
fn isolated_failure_still_uses_same_host_under_spare_policy() {
    let world = 6;
    let report = run(small_node_config(world), |ctx| {
        let mut timings = ReconstructTimings::default();
        if ctx.is_spawned() {
            let parent = ctx.parent().unwrap();
            let _ = communicator_reconstruct_with(
                ctx,
                None,
                Some(parent),
                RespawnPolicy::SpareNode,
                &mut timings,
            )
            .unwrap();
            ctx.report_f64("child_host", ctx.my_host() as f64);
            return;
        }
        let w = ctx.initial_world().unwrap();
        if w.rank() == 3 {
            ctx.die(); // node 1 keeps rank 2 alive → not a node failure
        }
        let _ = communicator_reconstruct_with(
            ctx,
            Some(w),
            None,
            RespawnPolicy::SpareNode,
            &mut timings,
        )
        .unwrap();
    });
    report.assert_no_app_errors();
    assert_eq!(report.get_f64("child_host"), Some(1.0), "back on its own node");
}

#[test]
fn two_node_failures_get_distinct_spares() {
    let world = 8; // nodes 0..4
    let report = run(small_node_config(world), |ctx| {
        let mut timings = ReconstructTimings::default();
        if ctx.is_spawned() {
            let parent = ctx.parent().unwrap();
            let w = communicator_reconstruct_with(
                ctx,
                None,
                Some(parent),
                RespawnPolicy::SpareNode,
                &mut timings,
            )
            .unwrap();
            ctx.report_push(&format!("host_of_{}", w.rank()), ctx.my_host() as f64);
            return;
        }
        let w = ctx.initial_world().unwrap();
        if matches!(w.rank(), 2 | 3 | 6 | 7) {
            ctx.die(); // nodes 1 and 3 entirely
        }
        let _ = communicator_reconstruct_with(
            ctx,
            Some(w),
            None,
            RespawnPolicy::SpareNode,
            &mut timings,
        )
        .unwrap();
    });
    report.assert_no_app_errors();
    // Node 1's ranks (2,3) share one spare; node 3's (6,7) share another.
    let h2 = report.get_list("host_of_2").unwrap()[0];
    let h3 = report.get_list("host_of_3").unwrap()[0];
    let h6 = report.get_list("host_of_6").unwrap()[0];
    let h7 = report.get_list("host_of_7").unwrap()[0];
    assert_eq!(h2, h3, "node 1's ranks stay together");
    assert_eq!(h6, h7, "node 3's ranks stay together");
    assert_ne!(h2, h6, "distinct dead nodes get distinct spares");
    assert!(h2 >= 4.0 && h6 >= 4.0, "both beyond the original allocation");
}

#[test]
fn full_app_survives_node_failure_with_spare_policy() {
    // End-to-end: a whole node dies under the application; the spare-node
    // policy recovers and the solution stays accurate.
    let base = AppConfig::paper_shaped(Technique::AlternateCombination, 7, 2, 5)
        .with_respawn_policy(RespawnPolicy::SpareNode);
    let steps = base.steps();
    let layout = ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
    let world = layout.world_size();

    let mut rc = RunConfig::local(world);
    rc.profile = ClusterProfile::local(world.div_ceil(2), 2);
    rc.spare_hosts = 2;
    // Node 2 = world ranks 4, 5 (2 slots per node). Neither is rank 0.
    let cfg = base.with_plan(FaultPlan::new(vec![(4, steps), (5, steps)]));
    let report = run(rc, move |ctx| {
        if ctx.is_spawned() {
            ctx.report_push("child_host", ctx.my_host() as f64);
        }
        run_app(&cfg, ctx);
    });
    report.assert_no_app_errors();
    assert_eq!(report.get_f64(keys::N_FAILED), Some(2.0));
    let err = report.get_f64(keys::ERR_L1).unwrap();
    assert!(err.is_finite() && err < 0.05, "error {err}");
    let hosts = report.get_list("child_host").unwrap();
    assert_eq!(hosts.len(), 2);
    assert_eq!(hosts[0], hosts[1], "node's ranks respawn together");
    let spare = world.div_ceil(2) as f64;
    assert!(hosts[0] >= spare, "on a spare node (host {} >= {spare})", hosts[0]);
}
