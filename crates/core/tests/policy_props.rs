//! Property tests for the shrink-and-redistribute re-layout.
//!
//! The policy engine's determinism contract: the survivor membership map,
//! the grids dropped, and the combined solution under
//! `ShrinkRedistribute` are a function of the *victim set* only — never
//! of how many workers the cooperative scheduler pools ranks onto, and
//! never of whether the run uses pooled fibers or a thread per rank.

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayout, RecoveryPolicy, Technique};
use proptest::collection::btree_set;
use proptest::prelude::*;
use ulfm_sim::{run, FaultPlan, Report, RunConfig};

// The re-layout is pure arithmetic on (total, dead): order-preserving,
// complete, and independent of the order the dead set is presented in.
proptest! {
    #[test]
    fn shrink_members_is_the_ordered_complement(
        total in 2usize..64,
        dead_raw in proptest::collection::vec(0usize..64, 0..8),
    ) {
        let dead: Vec<usize> = dead_raw.into_iter().filter(|&r| r < total).collect();
        let members = ProcLayout::shrink_members(total, &dead);
        // Ordered, duplicate-free, and disjoint from the dead set.
        prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(members.iter().all(|r| !dead.contains(r)));
        // Complete: every survivor appears.
        let mut n_dead: Vec<usize> = dead.clone();
        n_dead.sort_unstable();
        n_dead.dedup();
        prop_assert_eq!(members.len(), total - n_dead.len());
        // Presentation order of the dead set is irrelevant.
        let mut reversed = dead.clone();
        reversed.reverse();
        prop_assert_eq!(ProcLayout::shrink_members(total, &reversed), members);
    }
}

fn shrink_outcome(
    cfg: &AppConfig,
    world: usize,
    config: RunConfig,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, u64) {
    let cfg = cfg.clone();
    let report: Report = run(config, move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    let orig = report.get_list(keys::RANK_ORIG).expect("rank_orig").to_vec();
    let grids = report.get_list(keys::RANK_GRIDS).expect("rank_grids").to_vec();
    let dropped = report.get_list(keys::DROPPED_GRIDS).map(<[f64]>::to_vec).unwrap_or_default();
    let err = report.get_f64(keys::ERR_L1).expect("err_l1");
    assert_eq!(orig.len(), world, "shrunken world size");
    (orig, grids, dropped, err.to_bits())
}

// Full-run determinism: identical membership, grid assignment, dropped
// set, and error *bits* across worker counts and both scheduler modes.
proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]
    #[test]
    fn shrink_relayout_is_scheduler_invariant(
        victim_set in btree_set(1usize..13, 1..=2),
        step in 3u64..30,
    ) {
        let base = AppConfig::small(Technique::CheckpointRestart)
            .with_recovery_policy(RecoveryPolicy::ShrinkRedistribute);
        let layout = ProcLayout::new(base.n, base.l, base.technique.layout(), base.scale);
        let w = layout.world_size();
        let victims: Vec<usize> = victim_set.into_iter().filter(|&r| r < w).collect();
        prop_assume!(!victims.is_empty());
        let plan = FaultPlan::new(victims.iter().map(|&r| (r, step)).collect());
        let cfg = base.with_plan(plan);
        let survivors = w - victims.len();

        let reference = shrink_outcome(&cfg, survivors, RunConfig::local(w).with_seed(1).with_workers(2));
        for config in [
            RunConfig::local(w).with_seed(1).with_workers(8),
            RunConfig::local(w).with_seed(1).with_thread_per_rank(),
        ] {
            let other = shrink_outcome(&cfg, survivors, config);
            prop_assert_eq!(&other.0, &reference.0, "rank_orig differs for victims {:?}", &victims);
            prop_assert_eq!(&other.1, &reference.1, "rank_grids differs for victims {:?}", &victims);
            prop_assert_eq!(&other.2, &reference.2, "dropped_grids differs for victims {:?}", &victims);
            prop_assert_eq!(other.3, reference.3, "err bits differ for victims {:?}", &victims);
        }
        // And the membership is exactly the re-layout arithmetic predicts.
        let expected: Vec<f64> =
            ProcLayout::shrink_members(w, &victims).into_iter().map(|r| r as f64).collect();
        prop_assert_eq!(&reference.0, &expected);
        let dropped_expected: Vec<f64> =
            layout.broken_grids(&victims).into_iter().map(|g| g as f64).collect();
        prop_assert_eq!(&reference.2, &dropped_expected);
    }
}
