//! Functional matrix for the recovery-policy engine: real mid-run and
//! end-of-run kills under every `RecoveryPolicy`, checking each policy's
//! membership contract (what O7 enforces in the chaos harness) and the
//! cross-policy numerics equivalences:
//!
//! * `DeferRepair` ends in the same state as `Respawn` — identical error
//!   bits for every technique (restore + deterministic recompute commutes
//!   with *when* the batch repair runs).
//! * `SpareSubstitute` promotes a spare into the failed slot and recovers
//!   the same data a respawned child would — identical error bits.
//! * `ShrinkRedistribute` drops the broken grids and combines robustly
//!   over the survivors: degraded accuracy, but a finite solution, a
//!   `W − dead` world, and exact bookkeeping of who survived.

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayout, RecoveryPolicy, Technique};
use ulfm_sim::{run, FaultPlan, Report, RunConfig};

const TECHNIQUES: [Technique; 4] = [
    Technique::CheckpointRestart,
    Technique::ResamplingCopying,
    Technique::AlternateCombination,
    Technique::BuddyCheckpoint,
];

fn layout_of(cfg: &AppConfig) -> ProcLayout {
    ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale)
}

fn run_cfg(cfg: AppConfig) -> Report {
    let world = cfg.world_size(layout_of(&cfg).world_size());
    let report = run(RunConfig::local(world).with_seed(1), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

/// A victim that is never rank 0 and never shares a grid with rank 0.
fn victim(layout: &ProcLayout) -> usize {
    layout.world_size() - 1
}

#[test]
fn respawn_and_defer_agree_bitwise_after_failures() {
    for t in TECHNIQUES {
        let base = AppConfig::small(t);
        let layout = layout_of(&base);
        let v1 = victim(&layout);
        let v2 = layout.group(layout.assignment(v1).grid).first - 1;
        assert!(v2 != 0 && v2 != v1, "test needs two distinct non-zero victims");
        // One kill mid-run, one right before the final combination.
        let plan = FaultPlan::new(vec![(v1, 7), (v2, base.steps())]);
        let respawn = run_cfg(base.clone().with_plan(plan.clone()));
        let defer =
            run_cfg(base.clone().with_plan(plan).with_recovery_policy(RecoveryPolicy::DeferRepair));
        for rep in [&respawn, &defer] {
            assert_eq!(rep.get_f64(keys::WORLD), Some(layout.world_size() as f64), "{t:?}");
            assert_eq!(rep.get_f64(keys::N_FAILED), Some(2.0), "{t:?}");
            // Full placement restored: every rank back on its grid.
            let grids = rep.get_list(keys::RANK_GRIDS).expect("rank_grids");
            for (i, &g) in grids.iter().enumerate() {
                assert_eq!(g as usize, layout.assignment(i).grid, "{t:?} rank {i}");
            }
        }
        let e_respawn = respawn.get_f64(keys::ERR_L1).unwrap();
        let e_defer = defer.get_f64(keys::ERR_L1).unwrap();
        assert_eq!(
            e_respawn.to_bits(),
            e_defer.to_bits(),
            "{t:?}: defer must end bit-identical to respawn ({e_respawn} vs {e_defer})"
        );
    }
}

#[test]
fn shrink_drops_the_broken_grids_and_still_combines() {
    for t in TECHNIQUES {
        let base = AppConfig::small(t);
        let layout = layout_of(&base);
        let v = victim(&layout);
        let w = layout.world_size();
        let report = run_cfg(
            base.clone()
                .with_plan(FaultPlan::new(vec![(v, 7)]))
                .with_recovery_policy(RecoveryPolicy::ShrinkRedistribute),
        );
        assert_eq!(report.get_f64(keys::WORLD), Some((w - 1) as f64), "{t:?}: shrunken world");
        assert_eq!(report.get_f64(keys::N_FAILED), Some(1.0), "{t:?}");
        // Membership: original ranks minus the victim, in order.
        let orig: Vec<usize> = report
            .get_list(keys::RANK_ORIG)
            .expect("rank_orig")
            .iter()
            .map(|&o| o as usize)
            .collect();
        let expected: Vec<usize> = (0..w).filter(|&r| r != v).collect();
        assert_eq!(orig, expected, "{t:?}: survivors keep relative order");
        // Survivors keep their original grids.
        let grids = report.get_list(keys::RANK_GRIDS).expect("rank_grids");
        for (i, &g) in grids.iter().enumerate() {
            assert_eq!(g as usize, layout.assignment(orig[i]).grid, "{t:?} current rank {i}");
        }
        // The victim's grid — and only it — is dropped.
        let dropped: Vec<usize> = report
            .get_list(keys::DROPPED_GRIDS)
            .expect("dropped_grids")
            .iter()
            .map(|&g| g as usize)
            .collect();
        assert_eq!(dropped, layout.broken_grids(&[v]), "{t:?}");
        // Degraded but real solution.
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 1.0, "{t:?}: robust-combined error {err}");
    }
}

#[test]
fn substitute_promotes_a_spare_and_matches_respawn_numerics() {
    for t in TECHNIQUES {
        let base = AppConfig::small(t);
        let layout = layout_of(&base);
        let v = victim(&layout);
        let w = layout.world_size();
        let plan = FaultPlan::new(vec![(v, 7)]);
        let respawn = run_cfg(base.clone().with_plan(plan.clone()));
        let sub = run_cfg(
            base.clone()
                .with_plan(plan)
                .with_recovery_policy(RecoveryPolicy::SpareSubstitute)
                .with_spares(2),
        );
        // One spare was promoted: W + 2 − 1 ranks remain.
        assert_eq!(sub.get_f64(keys::WORLD), Some((w + 1) as f64), "{t:?}");
        assert_eq!(sub.get_f64(keys::N_FAILED), Some(1.0), "{t:?}");
        let orig: Vec<usize> =
            sub.get_list(keys::RANK_ORIG).expect("rank_orig").iter().map(|&o| o as usize).collect();
        assert_eq!(orig.len(), w + 1);
        let grids = sub.get_list(keys::RANK_GRIDS).expect("rank_grids");
        let mut promoted = 0;
        for i in 0..w {
            // Every grid slot is filled — by its original owner or a spare.
            assert_eq!(grids[i] as usize, layout.assignment(i).grid, "{t:?} slot {i}");
            if orig[i] != i {
                assert!(orig[i] >= w, "{t:?}: slot {i} filled by spare, got orig {}", orig[i]);
                promoted += 1;
            }
        }
        assert_eq!(promoted, 1, "{t:?}: exactly one spare promoted");
        // Remaining tail ranks are idle spares.
        for (i, &g) in grids.iter().enumerate().take(orig.len()).skip(w) {
            assert_eq!(g, -1.0, "{t:?}: tail rank {i} idles");
        }
        // The promoted spare recovered the same data a respawned child
        // would have: identical solution bits.
        let e_respawn = respawn.get_f64(keys::ERR_L1).unwrap();
        let e_sub = sub.get_f64(keys::ERR_L1).unwrap();
        assert_eq!(
            e_respawn.to_bits(),
            e_sub.to_bits(),
            "{t:?}: substitute must match respawn numerics ({e_respawn} vs {e_sub})"
        );
    }
}

#[test]
fn substitute_falls_back_to_respawn_when_spares_run_out() {
    // Two actives die at once with a single spare provisioned: the
    // promote is impossible, so the repair takes the spawn protocol and
    // restores the full W + 1 world.
    let t = Technique::CheckpointRestart;
    let base = AppConfig::small(t);
    let layout = layout_of(&base);
    let w = layout.world_size();
    // Two victims from different groups (never rank 0).
    let v1 = w - 1;
    let v2 = layout.group(layout.assignment(v1).grid).first - 1;
    assert!(v2 != 0 && v2 != v1, "test needs two distinct non-zero victims");
    let plan = FaultPlan::new(vec![(v1, 7), (v2, 7)]);
    let respawn = run_cfg(base.clone().with_plan(plan.clone()));
    let sub = run_cfg(
        base.clone()
            .with_plan(plan)
            .with_recovery_policy(RecoveryPolicy::SpareSubstitute)
            .with_spares(1),
    );
    assert_eq!(sub.get_f64(keys::WORLD), Some((w + 1) as f64), "full world restored");
    assert_eq!(sub.get_f64(keys::N_FAILED), Some(2.0));
    let orig: Vec<usize> =
        sub.get_list(keys::RANK_ORIG).expect("rank_orig").iter().map(|&o| o as usize).collect();
    let grids = sub.get_list(keys::RANK_GRIDS).expect("rank_grids");
    for i in 0..w {
        assert_eq!(orig[i], i, "respawned children take their own slots");
        assert_eq!(grids[i] as usize, layout.assignment(i).grid);
    }
    assert_eq!(grids[w], -1.0, "the idle spare survives at the tail");
    let e_respawn = respawn.get_f64(keys::ERR_L1).unwrap();
    let e_sub = sub.get_f64(keys::ERR_L1).unwrap();
    assert_eq!(e_respawn.to_bits(), e_sub.to_bits(), "fallback matches respawn numerics");
}

#[test]
fn shrink_survives_an_end_of_run_burst() {
    // Kill two ranks right before the combination under shrink: both
    // grids drop, the combination retries over the survivors.
    for t in [Technique::CheckpointRestart, Technique::AlternateCombination] {
        let base = AppConfig::small(t);
        let layout = layout_of(&base);
        let w = layout.world_size();
        let v1 = w - 1;
        let v2 = layout.group(layout.assignment(v1).grid).first - 1;
        let steps = base.steps();
        let report = run_cfg(
            base.clone()
                .with_plan(FaultPlan::new(vec![(v1, steps), (v2, steps)]))
                .with_recovery_policy(RecoveryPolicy::ShrinkRedistribute),
        );
        assert_eq!(report.get_f64(keys::WORLD), Some((w - 2) as f64), "{t:?}");
        let dropped: Vec<usize> = report
            .get_list(keys::DROPPED_GRIDS)
            .expect("dropped_grids")
            .iter()
            .map(|&g| g as usize)
            .collect();
        assert_eq!(dropped, layout.broken_grids(&[v2, v1]), "{t:?}");
        let err = report.get_f64(keys::ERR_L1).unwrap();
        assert!(err.is_finite() && err < 1.0, "{t:?}: error {err}");
    }
}
