//! Property tests pinning the vectorized and banded fast paths to the
//! scalar references with **bit-pattern equality**, across random grid
//! sizes (including ragged widths that exercise the scalar tails),
//! random coefficients, and several band counts — for all three
//! stencils. This is the load-bearing guarantee behind recompute-based
//! fault recovery: any kernel configuration recomputes the exact state
//! a failed rank held.

use advect2d::{
    ftcs_row, ftcs_row_simd, lax_wendroff_row, lax_wendroff_row_simd, upwind_row, upwind_row_simd,
    BandPool, LwCoef, PaddedField, UpwindCoef,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Deterministic pseudo-random fill (splitmix64 → uniform in [-1, 1]):
/// proptest drives the seed, sizes stay independent of the data strategy.
fn fill(seed: u64, buf: &mut [f64]) {
    let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
    for v in buf.iter_mut() {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        *v = (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One shared pool so the suite exercises reuse across many dispatches.
fn pool() -> &'static BandPool {
    static POOL: OnceLock<BandPool> = OnceLock::new();
    POOL.get_or_init(|| BandPool::new(3))
}

proptest! {
    /// SIMD rows match scalar rows to the bit for every stencil, on
    /// ragged widths from 1 (pure tail) past several vector widths.
    #[test]
    fn simd_rows_match_scalar_rows_bitwise(
        nx in 1usize..131,
        seed in any::<u64>(),
        cx in -0.9f64..0.9,
        cy in -0.9f64..0.9,
        cxx in 0.0f64..0.4,
        cyy in 0.0f64..0.4,
        cxy in -0.2f64..0.2,
    ) {
        let mut rows = vec![0.0; 3 * (nx + 2)];
        fill(seed, &mut rows);
        let (s, rest) = rows.split_at(nx + 2);
        let (c, n) = rest.split_at(nx + 2);
        let mut a = vec![0.0; nx];
        let mut b = vec![0.0; nx];

        let lw = LwCoef { cx, cy, cxx, cyy, cxy };
        lax_wendroff_row(s, c, n, &lw, &mut a);
        lax_wendroff_row_simd(s, c, n, &lw, &mut b);
        prop_assert_eq!(bits(&a), bits(&b), "LW nx={}", nx);

        let up = UpwindCoef { cx, cy };
        upwind_row(s, c, n, &up, &mut a);
        upwind_row_simd(s, c, n, &up, &mut b);
        prop_assert_eq!(bits(&a), bits(&b), "upwind nx={} cx={} cy={}", nx, cx, cy);

        ftcs_row(s, c, n, cxx, cyy, &mut a);
        ftcs_row_simd(s, c, n, cxx, cyy, &mut b);
        prop_assert_eq!(bits(&a), bits(&b), "FTCS nx={}", nx);
    }

    /// A banded step equals a monolithic step bitwise, for any grid
    /// shape, any band count (including more bands than rows — clamped),
    /// and each stencil family, in both scalar and SIMD formulations.
    #[test]
    fn banded_step_matches_monolithic_bitwise(
        nx in 1usize..40,
        ny in 1usize..40,
        bands in 2usize..9,
        stencil in 0usize..3,
        simd in any::<bool>(),
        seed in any::<u64>(),
        cx in -0.9f64..0.9,
        cy in -0.9f64..0.9,
    ) {
        let lw = LwCoef { cx, cy, cxx: 0.1, cyy: 0.2, cxy: 0.05 };
        let up = UpwindCoef { cx, cy };
        let kernel = |s: &[f64], c: &[f64], n: &[f64], out: &mut [f64]| match (stencil, simd) {
            (0, false) => lax_wendroff_row(s, c, n, &lw, out),
            (0, true) => lax_wendroff_row_simd(s, c, n, &lw, out),
            (1, false) => upwind_row(s, c, n, &up, out),
            (1, true) => upwind_row_simd(s, c, n, &up, out),
            (_, false) => ftcs_row(s, c, n, 0.2, 0.25, out),
            (_, true) => ftcs_row_simd(s, c, n, 0.2, 0.25, out),
        };

        let mut mono = PaddedField::new(nx, ny);
        fill(seed, mono.padded_mut());
        let mut banded = mono.clone();

        // Three steps with a halo refresh between them, so band
        // boundaries move relative to the data.
        for _ in 0..3 {
            mono.refresh_periodic_halo();
            mono.step(kernel);
            banded.refresh_periodic_halo();
            banded.step_banded(pool(), bands, kernel);
        }
        for m in 0..ny {
            prop_assert_eq!(
                bits(mono.interior_row(m)),
                bits(banded.interior_row(m)),
                "stencil={} simd={} bands={} row {}", stencil, simd, bands, m
            );
        }
    }

    /// A banded region step equals the plain region step bitwise on a
    /// random sub-rectangle (the distributed deep-interior shape).
    #[test]
    fn banded_region_matches_plain_region_bitwise(
        nx in 2usize..40,
        ny in 2usize..40,
        bands in 2usize..9,
        seed in any::<u64>(),
        cx in -0.9f64..0.9,
        cy in -0.9f64..0.9,
    ) {
        let lw = LwCoef { cx, cy, cxx: 0.1, cyy: 0.2, cxy: 0.05 };
        let kernel = |s: &[f64], c: &[f64], n: &[f64], out: &mut [f64]| {
            lax_wendroff_row_simd(s, c, n, &lw, out)
        };
        // The overlapped stepper's deep interior: rows 1..ny-1, cols
        // 1..nx-1 (non-empty here since nx, ny >= 2... may still be
        // empty when nx or ny == 2 — that must be a no-op for both).
        let (m0, m1, k0, k1) = (1, ny - 1, 1, nx - 1);

        let mut plain = PaddedField::new(nx, ny);
        fill(seed, plain.padded_mut());
        let mut banded = plain.clone();

        plain.step_region(m0, m1, k0, k1, kernel);
        plain.commit_step();
        banded.step_region_banded(pool(), bands, m0, m1, k0, k1, kernel);
        banded.commit_step();

        for m in 0..ny {
            prop_assert_eq!(
                bits(plain.interior_row(m)),
                bits(banded.interior_row(m)),
                "bands={} row {}", bands, m
            );
        }
    }
}
