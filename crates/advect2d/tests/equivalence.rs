//! Bitwise-equivalence regression tests for the allocation-free fast
//! paths.
//!
//! The fault-recovery machinery (checkpoint/restart, recompute-from-IC)
//! relies on the solvers being *deterministic to the bit*: a recovered
//! rank must recompute exactly the state the failed rank held. These
//! tests pin the double-buffered [`PaddedField`] stepping against the
//! rebuild-everything reference implementations — not approximately,
//! but with `f64` bit-pattern equality — across isotropic and
//! anisotropic levels.

use advect2d::laxwendroff::{lax_wendroff_step, LwCoef};
use advect2d::upwind::{upwind_step_naive, UpwindCoef};
use advect2d::{
    ftcs_step, AdvectionProblem, DiffusionProblem, DiffusionSolver, InitialCondition, KernelConfig,
    LocalSolver, UpwindSolver,
};
use sparsegrid::{Grid2, LevelPair};

/// Bit-pattern equality over whole grids, with a useful failure message.
fn assert_bits_equal(a: &Grid2, b: &Grid2, what: &str) {
    assert_eq!(a.level(), b.level());
    for m in 0..a.ny() {
        for k in 0..a.nx() {
            let (va, vb) = (a.at(k, m), b.at(k, m));
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: ({k},{m}) fast={va:e} naive={vb:e}");
        }
    }
}

fn assert_seam_bits(g: &Grid2, what: &str) {
    for m in 0..g.ny() {
        assert_eq!(g.at(0, m).to_bits(), g.at(g.nx() - 1, m).to_bits(), "{what}: x-seam row {m}");
    }
    for k in 0..g.nx() {
        assert_eq!(g.at(k, 0).to_bits(), g.at(k, g.ny() - 1).to_bits(), "{what}: y-seam col {k}");
    }
}

const LEVELS: &[(u32, u32)] = &[(4, 4), (6, 6), (6, 3), (3, 6), (7, 2), (2, 7)];

/// Every kernel configuration under test: the scalar reference, the
/// vectorized rows, and banded stepping (threshold forced to 1 so even
/// tiny grids exercise the pool) in both formulations. All must produce
/// the same bits as the rebuild-everything naive references.
fn kernel_configs() -> [(KernelConfig, &'static str); 5] {
    [
        (KernelConfig::scalar(), "scalar"),
        (KernelConfig::simd(), "simd"),
        (KernelConfig::simd().with_bands(2).with_band_min_cells(1), "simd+2bands"),
        (KernelConfig::simd().with_bands(5).with_band_min_cells(1), "simd+5bands"),
        (KernelConfig::scalar().with_bands(3).with_band_min_cells(1), "scalar+3bands"),
    ]
}

#[test]
fn lax_wendroff_fast_path_is_bitwise_identical() {
    let p = AdvectionProblem::standard();
    for &(i, j) in LEVELS {
        let lev = LevelPair::new(i, j);
        let dt = 0.2 / (1u64 << i.max(j)) as f64;
        let steps = 17;

        let mut naive = Grid2::from_fn(lev, p.initial());
        let (hx, hy) = naive.spacing();
        let coef = LwCoef::new(&p, hx, hy, dt);
        let (mut padded, mut out) = (Vec::new(), Vec::new());
        for _ in 0..steps {
            lax_wendroff_step(&mut naive, &coef, &mut padded, &mut out);
        }

        for (kcfg, label) in kernel_configs() {
            let mut fast = LocalSolver::new(p, lev, dt).with_kernel(kcfg);
            fast.run(steps);
            assert_bits_equal(fast.grid(), &naive, &format!("LW level ({i},{j}) {label}"));
            assert_seam_bits(fast.grid(), &format!("LW level ({i},{j}) {label}"));
        }
    }
}

#[test]
fn lax_wendroff_split_runs_equal_one_run() {
    // run(a) then run(b) must equal run(a+b): the load/store round trip
    // through the padded field is value-preserving.
    let p = AdvectionProblem::standard();
    let lev = LevelPair::new(5, 4);
    let dt = 0.2 / 32.0;
    let mut split = LocalSolver::new(p, lev, dt);
    split.run(3);
    split.run(1);
    split.run(9);
    let mut whole = LocalSolver::new(p, lev, dt);
    whole.run(13);
    assert_bits_equal(split.grid(), whole.grid(), "split vs whole run");
}

#[test]
fn upwind_fast_path_is_bitwise_identical() {
    // Negative velocity exercises the other upwind branch.
    let p = AdvectionProblem { ax: -1.0, ay: 0.5, ic: InitialCondition::CosHill };
    for &(i, j) in LEVELS {
        let lev = LevelPair::new(i, j);
        let dt = 0.2 / (1u64 << i.max(j)) as f64;
        let steps = 17;

        let mut naive = Grid2::from_fn(lev, p.initial());
        let (hx, hy) = naive.spacing();
        let coef = UpwindCoef::new(&p, hx, hy, dt);
        let (mut padded, mut out) = (Vec::new(), Vec::new());
        for _ in 0..steps {
            upwind_step_naive(&mut naive, &coef, &mut padded, &mut out);
        }

        for (kcfg, label) in kernel_configs() {
            let mut fast = UpwindSolver::new(p, lev, dt).with_kernel(kcfg);
            fast.run(steps);
            assert_bits_equal(fast.grid(), &naive, &format!("upwind level ({i},{j}) {label}"));
            assert_seam_bits(fast.grid(), &format!("upwind level ({i},{j}) {label}"));
        }
    }
}

#[test]
fn ftcs_fast_path_is_bitwise_identical() {
    let p = DiffusionProblem::standard();
    for &(i, j) in LEVELS {
        let lev = LevelPair::new(i, j);
        let dt = p.stable_dt(i.max(j), 0.5);
        let steps = 17;

        let mut naive = Grid2::from_fn(lev, p.initial());
        let mut scratch = Vec::new();
        for _ in 0..steps {
            ftcs_step(&p, &mut naive, dt, &mut scratch);
        }

        for (kcfg, label) in kernel_configs() {
            let mut fast = DiffusionSolver::new(p, lev, dt).with_kernel(kcfg);
            fast.run(steps);
            assert_bits_equal(fast.grid(), &naive, &format!("FTCS level ({i},{j}) {label}"));
            assert_seam_bits(fast.grid(), &format!("FTCS level ({i},{j}) {label}"));
        }
    }
}
