//! A second model PDE: the 2D heat (diffusion) equation
//! `∂u/∂t = ν ∇²u` with periodic boundary conditions, solved with the
//! explicit FTCS scheme.
//!
//! The sparse grid combination technique is PDE-agnostic — the paper's
//! framework targets "PDE solvers" generally — and this module is the
//! second data point: the same grids, coefficients, and combination code
//! paths work unchanged (see `examples/diffusion_combination.rs`).
//!
//! For the `sin(2πk_x x) sin(2πk_y y)` initial condition the exact
//! solution decays as `exp(−4π²ν(k_x² + k_y²) t)`, giving a closed-form
//! reference for error measurement.

use sparsegrid::Grid2;

use crate::bands::BandPool;
use crate::simd::{KernelConfig, KernelKind};
use crate::stepper::PaddedField;

/// The 2D diffusion problem on the periodic unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionProblem {
    /// Diffusivity ν > 0.
    pub nu: f64,
    /// x wavenumber of the sine initial condition.
    pub kx: u32,
    /// y wavenumber of the sine initial condition.
    pub ky: u32,
}

impl DiffusionProblem {
    /// ν = 0.05, fundamental mode.
    pub fn standard() -> Self {
        DiffusionProblem { nu: 0.05, kx: 1, ky: 1 }
    }

    /// The initial condition `sin(2πk_x x) sin(2πk_y y)`.
    pub fn initial(&self) -> impl Fn(f64, f64) -> f64 + '_ {
        use std::f64::consts::TAU;
        move |x, y| (TAU * self.kx as f64 * x).sin() * (TAU * self.ky as f64 * y).sin()
    }

    /// The exact solution at time `t`.
    pub fn exact(&self, x: f64, y: f64, t: f64) -> f64 {
        use std::f64::consts::TAU;
        let lambda = self.nu * (TAU * TAU) * (self.kx * self.kx + self.ky * self.ky) as f64;
        (-lambda * t).exp() * (TAU * self.kx as f64 * x).sin() * (TAU * self.ky as f64 * y).sin()
    }

    /// The exact solution at a fixed time as a closure of `(x, y)`.
    pub fn exact_at(&self, t: f64) -> impl Fn(f64, f64) -> f64 + '_ {
        move |x, y| self.exact(x, y, t)
    }

    /// A stable explicit timestep for the finest grid of size `2^n`:
    /// FTCS needs `ν Δt (1/hx² + 1/hy²) ≤ 1/2`; `safety ∈ (0, 1]` scales
    /// below the limit.
    pub fn stable_dt(&self, n: u32, safety: f64) -> f64 {
        let h = 1.0 / (1u64 << n) as f64;
        safety * 0.25 * h * h / self.nu
    }
}

/// One FTCS update of a single output row (same row-slice contract as
/// [`crate::laxwendroff::lax_wendroff_row`], 5-point stencil).
#[inline]
pub fn ftcs_row(south: &[f64], center: &[f64], north: &[f64], rx: f64, ry: f64, out: &mut [f64]) {
    let nx = out.len();
    let south = &south[..nx + 2];
    let center = &center[..nx + 2];
    let north = &north[..nx + 2];
    for k in 0..nx {
        let c = center[k + 1];
        let w = center[k];
        let e = center[k + 2];
        let s = south[k + 1];
        let n_ = north[k + 1];
        out[k] = c + rx * (e - 2.0 * c + w) + ry * (n_ - 2.0 * c + s);
    }
}

/// An FTCS row kernel: `(south, center, north, rx, ry, out)`.
pub type FtcsRowFn = fn(&[f64], &[f64], &[f64], f64, f64, &mut [f64]);

/// The row function implementing `kind` (see
/// [`crate::laxwendroff::lw_row_fn`]).
pub fn ftcs_row_fn(kind: KernelKind) -> FtcsRowFn {
    match kind {
        KernelKind::Scalar => ftcs_row,
        KernelKind::Simd => crate::simd::ftcs_row_simd,
    }
}

/// One FTCS update on a halo-padded block (same layout contract as
/// [`crate::laxwendroff::lax_wendroff_kernel`]; extents asserted in
/// release too, since the stride is implicit in `nx`).
pub fn ftcs_kernel(padded: &[f64], nx: usize, ny: usize, rx: f64, ry: f64, out: &mut [f64]) {
    let pnx = nx + 2;
    assert_eq!(padded.len(), pnx * (ny + 2), "padded extent mismatch for {nx}x{ny}");
    assert_eq!(out.len(), nx * ny, "output extent mismatch for {nx}x{ny}");
    for m in 0..ny {
        let south = &padded[m * pnx..][..pnx];
        let center = &padded[(m + 1) * pnx..][..pnx];
        let north = &padded[(m + 2) * pnx..][..pnx];
        ftcs_row(south, center, north, rx, ry, &mut out[m * nx..][..nx]);
    }
}

/// One periodic FTCS step on a whole grid (single owner): the
/// rebuild-everything reference path, kept for the bitwise-equivalence
/// tests against the double-buffered [`DiffusionSolver`].
pub fn ftcs_step(problem: &DiffusionProblem, grid: &mut Grid2, dt: f64, scratch: &mut Vec<f64>) {
    let nx = grid.nx() - 1;
    let ny = grid.ny() - 1;
    let (hx, hy) = grid.spacing();
    let rx = problem.nu * dt / (hx * hx);
    let ry = problem.nu * dt / (hy * hy);
    sparsegrid::ensure_len(scratch, nx * ny);
    let wrap = |k: isize, n: usize| -> usize { k.rem_euclid(n as isize) as usize };
    for m in 0..ny {
        for k in 0..nx {
            let c = grid.at(k, m);
            let e = grid.at(wrap(k as isize + 1, nx), m);
            let w = grid.at(wrap(k as isize - 1, nx), m);
            let n_ = grid.at(k, wrap(m as isize + 1, ny));
            let s = grid.at(k, wrap(m as isize - 1, ny));
            scratch[m * nx + k] = c + rx * (e - 2.0 * c + w) + ry * (n_ - 2.0 * c + s);
        }
    }
    for m in 0..ny {
        for k in 0..nx {
            *grid.at_mut(k, m) = scratch[m * nx + k];
        }
    }
    // Periodic seam.
    for m in 0..ny {
        let v = grid.at(0, m);
        *grid.at_mut(nx, m) = v;
    }
    for k in 0..grid.nx() {
        let v = grid.at(k, 0);
        *grid.at_mut(k, ny) = v;
    }
}

/// Single-owner diffusion solver mirroring
/// [`crate::laxwendroff::LocalSolver`].
#[derive(Debug, Clone)]
pub struct DiffusionSolver {
    problem: DiffusionProblem,
    grid: Grid2,
    dt: f64,
    steps_done: u64,
    field: PaddedField,
    kernel: KernelConfig,
}

impl DiffusionSolver {
    /// Initialize from the sine initial condition.
    pub fn new(problem: DiffusionProblem, level: sparsegrid::LevelPair, dt: f64) -> Self {
        let grid = Grid2::from_fn(level, problem.initial());
        let field = PaddedField::new(grid.nx() - 1, grid.ny() - 1);
        DiffusionSolver { problem, grid, dt, steps_done: 0, field, kernel: KernelConfig::global() }
    }

    /// Replace the kernel configuration (formulation + banding).
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Advance `n` timesteps through the double-buffered padded field
    /// (one grid load/store per call, no per-step allocation); bitwise
    /// identical to `n` calls of [`ftcs_step`].
    pub fn run(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let (hx, hy) = self.grid.spacing();
        let rx = self.problem.nu * self.dt / (hx * hx);
        let ry = self.problem.nu * self.dt / (hy * hy);
        self.field.load(&self.grid);
        let row = ftcs_row_fn(self.kernel.kind);
        let (nx, ny) = (self.field.nx(), self.field.ny());
        let bands = self.kernel.bands_for(nx * ny, ny);
        for _ in 0..n {
            self.field.refresh_periodic_halo();
            if bands > 1 {
                self.field.step_banded(BandPool::global(), bands, |s, c, nn, out| {
                    row(s, c, nn, rx, ry, out)
                });
            } else {
                self.field.step(|s, c, nn, out| row(s, c, nn, rx, ry, out));
            }
        }
        self.field.store(&mut self.grid);
        self.steps_done += n;
    }

    /// Simulated time reached.
    pub fn time(&self) -> f64 {
        self.steps_done as f64 * self.dt
    }

    /// The current solution grid.
    pub fn grid(&self) -> &Grid2 {
        &self.grid
    }

    /// The problem.
    pub fn problem(&self) -> &DiffusionProblem {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegrid::{l1_error_vs, linf_error_vs, LevelPair};

    #[test]
    fn amplitude_decays_at_the_analytic_rate() {
        let p = DiffusionProblem::standard();
        let dt = p.stable_dt(5, 0.8);
        let mut s = DiffusionSolver::new(p, LevelPair::new(5, 5), dt);
        s.run(120);
        let t = s.time();
        let err = l1_error_vs(s.grid(), p.exact_at(t));
        // Analytic amplitude at t.
        let amp = p.exact(0.25, 0.25, t);
        assert!(amp > 0.05, "don't let it decay to nothing: {amp}");
        assert!(err < 0.01 * amp.max(0.1), "decay rate wrong: err {err}, amp {amp}");
    }

    #[test]
    fn second_order_spatial_convergence() {
        let p = DiffusionProblem::standard();
        let err_at = |lev: u32| {
            // Fixed final time; dt scaled with h² (FTCS stability), so the
            // spatial error dominates.
            let dt = p.stable_dt(lev, 0.5);
            let t_final = 0.05;
            let steps = (t_final / dt).round() as u64;
            let mut s = DiffusionSolver::new(p, LevelPair::new(lev, lev), dt);
            s.run(steps);
            l1_error_vs(s.grid(), p.exact_at(s.time()))
        };
        let e4 = err_at(4);
        let e5 = err_at(5);
        assert!(e5 < e4 / 3.0, "e4={e4}, e5={e5}");
    }

    #[test]
    fn constant_zero_is_a_fixed_point() {
        let p = DiffusionProblem { nu: 0.1, kx: 1, ky: 1 };
        let mut g = Grid2::zeros(LevelPair::new(4, 4));
        let mut scratch = Vec::new();
        ftcs_step(&p, &mut g, 1e-4, &mut scratch);
        assert_eq!(linf_error_vs(&g, |_, _| 0.0), 0.0);
    }

    #[test]
    fn maximum_principle_holds_within_stability() {
        // Diffusion never amplifies extrema.
        let p = DiffusionProblem::standard();
        let dt = p.stable_dt(5, 0.9);
        let mut s = DiffusionSolver::new(p, LevelPair::new(5, 5), dt);
        let max0 = s.grid().values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        s.run(100);
        let max1 = s.grid().values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max1 <= max0 + 1e-12, "amplified: {max0} -> {max1}");
    }

    #[test]
    fn anisotropic_grid_still_converges() {
        let p = DiffusionProblem::standard();
        // Stability set by the finer direction.
        let dt = p.stable_dt(6, 0.5);
        let mut s = DiffusionSolver::new(p, LevelPair::new(6, 3), dt);
        s.run(100);
        let e = l1_error_vs(s.grid(), p.exact_at(s.time()));
        assert!(e < 0.05, "anisotropic diffusion error {e}");
    }
}
