//! The d-dimensional stepping engine — [`PaddedFieldN`] generalizes
//! [`crate::stepper::PaddedField`] to arbitrary dimension.
//!
//! Both buffers hold the interior `n_0 × … × n_{d-1}` block (the
//! fundamental periodic domain; the duplicated seam node is *not*
//! stored) surrounded by a 1-cell halo on every face, row-major with
//! axis 0 fastest. One timestep refreshes the halo (`O(surface)`
//! copies), evaluates a point kernel over the interior into the other
//! buffer, and ping-pongs — the same allocation-free discipline as the
//! tuned 2D path, which remains the d=2 fast case (this engine never
//! runs at d=2 in production; the 2D kernels do).
//!
//! The halo can be filled two ways: [`PaddedFieldN::refresh_periodic_halo`]
//! for single-owner periodic solves, or transverse wrap + external plane
//! exchange ([`PaddedFieldN::wrap_transverse_halo`] /
//! [`PaddedFieldN::set_plane`]) for the distributed slab decomposition —
//! slabs split the **last** axis, whose stride is largest, so every
//! exchanged halo plane is one contiguous slice.

use sparsegrid::ndgrid::{advance, GridN};

/// A persistent double-buffered halo-padded d-dimensional field.
#[derive(Debug, Clone, PartialEq)]
pub struct PaddedFieldN {
    shape: Vec<usize>,
    pshape: Vec<usize>,
    pstride: Vec<usize>,
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl PaddedFieldN {
    /// An all-zero field with the given interior shape.
    pub fn new(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "dimension must be ≥ 1");
        assert!(shape.iter().all(|&n| n >= 1), "interior must be non-empty: {shape:?}");
        let pshape: Vec<usize> = shape.iter().map(|&n| n + 2).collect();
        let mut pstride = vec![1usize; shape.len()];
        for i in 1..shape.len() {
            pstride[i] = pstride[i - 1] * pshape[i - 1];
        }
        let len = pstride.last().unwrap() * pshape.last().unwrap();
        PaddedFieldN {
            shape: shape.to_vec(),
            pshape,
            pstride,
            cur: vec![0.0; len],
            next: vec![0.0; len],
        }
    }

    /// A field sized for `grid`'s fundamental domain, loaded from it.
    pub fn from_grid(grid: &GridN) -> Self {
        let shape: Vec<usize> = grid.shape().iter().map(|&n| n - 1).collect();
        let mut f = PaddedFieldN::new(&shape);
        f.load(grid);
        f
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.shape.len()
    }

    /// Interior shape (fundamental domain, seam excluded).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Padded strides (axis 0 fastest).
    pub fn pstrides(&self) -> &[usize] {
        &self.pstride
    }

    /// Linear offset of a padded multi-index.
    #[inline]
    pub fn poffset(&self, idx: &[usize]) -> usize {
        idx.iter().zip(&self.pstride).map(|(&k, &s)| k * s).sum()
    }

    /// The current padded buffer (halo + interior).
    pub fn padded(&self) -> &[f64] {
        &self.cur
    }

    /// Mutable view of the current padded buffer.
    pub fn padded_mut(&mut self) -> &mut [f64] {
        &mut self.cur
    }

    /// Interior value at an interior multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f64 {
        let off: usize = idx.iter().zip(&self.pstride).map(|(&k, &s)| (k + 1) * s).sum();
        self.cur[off]
    }

    /// Copy `grid`'s fundamental domain into the interior. The halo is
    /// left stale; refresh or exchange before stepping.
    pub fn load(&mut self, grid: &GridN) {
        assert!(
            grid.shape().iter().zip(&self.shape).all(|(&g, &n)| g - 1 == n),
            "grid size mismatch: {:?} vs {:?}",
            grid.shape(),
            self.shape
        );
        let mut idx = vec![0usize; self.dim()];
        loop {
            let off: usize = idx.iter().zip(&self.pstride).map(|(&k, &s)| (k + 1) * s).sum();
            self.cur[off] = grid.at(&idx);
            if !advance(&mut idx, &self.shape) {
                return;
            }
        }
    }

    /// Copy the interior back into `grid`'s fundamental domain and
    /// re-assert the periodic seams (the last node of every axis
    /// duplicates node 0).
    pub fn store(&self, grid: &mut GridN) {
        let d = self.dim();
        let mut idx = vec![0usize; d];
        loop {
            let off: usize = idx.iter().zip(&self.pstride).map(|(&k, &s)| (k + 1) * s).sum();
            *grid.at_mut(&idx) = self.cur[off];
            if !advance(&mut idx, &self.shape) {
                break;
            }
        }
        // Seam pass per axis: coordinates on already-seamed axes (< a)
        // range over the full grid extent, later axes stay below their
        // seam (their own pass fills it) — corners end up consistent.
        let gshape = grid.shape().to_vec();
        for a in 0..d {
            let mut span: Vec<usize> = gshape.clone();
            span[a] = 1;
            for s in span.iter_mut().skip(a + 1) {
                *s -= 1;
            }
            let mut it = vec![0usize; d];
            loop {
                let mut dst = it.clone();
                dst[a] = gshape[a] - 1;
                let mut src = dst.clone();
                src[a] = 0;
                *grid.at_mut(&dst) = grid.at(&src);
                if !advance(&mut it, &span) {
                    break;
                }
            }
        }
    }

    /// Wrap the halo of axes `from..upto` periodically from the interior.
    /// Axis `a`'s pass covers the full padded extent of axes `< a` and
    /// the interior extent of axes `> a`, so corners shared by wrapped
    /// axes come out consistent (same scheme as the 2D path: columns
    /// first, then whole padded rows).
    fn wrap_axes_from(&mut self, from: usize, upto: usize) {
        let d = self.dim();
        for a in from..upto {
            let mut span: Vec<usize> = self.pshape.clone();
            span[a] = 1;
            for s in span.iter_mut().skip(a + 1) {
                *s -= 2;
            }
            let n = self.shape[a];
            let sa = self.pstride[a];
            let mut it = vec![0usize; d];
            'pass: loop {
                let mut off = 0usize;
                for (i, &iv) in it.iter().enumerate() {
                    let k = if i == a {
                        0
                    } else if i > a {
                        iv + 1
                    } else {
                        iv
                    };
                    off += k * self.pstride[i];
                }
                self.cur[off] = self.cur[off + n * sa];
                self.cur[off + (n + 1) * sa] = self.cur[off + sa];
                if !advance(&mut it, &span) {
                    break 'pass;
                }
            }
        }
    }

    /// Fill the whole halo by periodic wrap of the interior (single-owner
    /// solves).
    pub fn refresh_periodic_halo(&mut self) {
        let d = self.dim();
        self.wrap_axes_from(0, d);
    }

    /// Wrap only the transverse axes (all but the last): the distributed
    /// slab solver owns those directions entirely; the last-axis halo
    /// planes come from neighbour ranks *after* this call, so the
    /// exchanged planes already carry consistent transverse corners.
    pub fn wrap_transverse_halo(&mut self) {
        let d = self.dim();
        self.wrap_axes_from(0, d - 1);
    }

    /// Length of one padded hyperplane normal to the last axis — the
    /// contiguous unit of the distributed halo exchange.
    pub fn plane_len(&self) -> usize {
        *self.pstride.last().unwrap()
    }

    /// The contiguous padded plane at padded last-axis index `z`.
    pub fn plane(&self, z: usize) -> &[f64] {
        let s = self.plane_len();
        &self.cur[z * s..(z + 1) * s]
    }

    /// Overwrite the padded plane at padded last-axis index `z` (halo
    /// plane fill from a neighbour's boundary plane).
    pub fn set_plane(&mut self, z: usize, data: &[f64]) {
        let s = self.plane_len();
        self.cur[z * s..(z + 1) * s].copy_from_slice(data);
    }

    /// One timestep: `kernel` receives the current padded buffer and the
    /// center offset of each interior point and returns its new value;
    /// the buffers then swap. The halo of the new current buffer is stale
    /// until the next refresh/exchange.
    pub fn step_with(&mut self, kernel: impl Fn(&[f64], usize) -> f64) {
        let mut idx = vec![0usize; self.dim()];
        loop {
            let off: usize = idx.iter().zip(&self.pstride).map(|(&k, &s)| (k + 1) * s).sum();
            self.next[off] = kernel(&self.cur, off);
            if !advance(&mut idx, &self.shape) {
                break;
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// [`step_with`](Self::step_with) restricted to last-axis interior
    /// planes `z0..z1`, without swapping. A full timestep is a disjoint
    /// cover by `step_planes` calls followed by one
    /// [`commit_step`](Self::commit_step) — each point evaluates the same
    /// expression, so a decomposed step is bitwise equal to a monolithic
    /// one.
    pub fn step_planes(&mut self, z0: usize, z1: usize, kernel: impl Fn(&[f64], usize) -> f64) {
        let d = self.dim();
        debug_assert!(z1 <= self.shape[d - 1]);
        if z0 >= z1 {
            return;
        }
        let mut span = self.shape.clone();
        span[d - 1] = z1 - z0;
        let mut idx = vec![0usize; d];
        loop {
            let mut off = 0usize;
            for (i, &iv) in idx.iter().enumerate() {
                let k = if i == d - 1 { iv + z0 + 1 } else { iv + 1 };
                off += k * self.pstride[i];
            }
            self.next[off] = kernel(&self.cur, off);
            if !advance(&mut idx, &span) {
                return;
            }
        }
    }

    /// Commit a timestep assembled from [`step_planes`](Self::step_planes)
    /// calls: swap the buffers.
    pub fn commit_step(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::PaddedField;

    #[test]
    fn halo_wrap_matches_2d_reference() {
        // The d=2 instantiation of the generic wrap must reproduce the
        // tuned 2D field's halo bit for bit.
        let (nx, ny) = (5, 3);
        let mut f2 = PaddedField::new(nx, ny);
        let mut fnd = PaddedFieldN::new(&[nx, ny]);
        for (i, v) in f2.padded_mut().iter_mut().enumerate() {
            *v = (i as f64 * 0.61).sin();
        }
        fnd.padded_mut().copy_from_slice(f2.padded());
        f2.refresh_periodic_halo();
        fnd.refresh_periodic_halo();
        assert_eq!(f2.padded(), fnd.padded());
    }

    #[test]
    fn halo_wrap_3d_faces_edges_corners() {
        let mut f = PaddedFieldN::new(&[3, 4, 2]);
        // Deterministic interior fill.
        let mut idx = [0usize; 3];
        let shape = [3usize, 4, 2];
        loop {
            let off: usize = idx.iter().zip(f.pstrides()).map(|(&k, &s)| (k + 1) * s).sum();
            f.padded_mut()[off] = (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64;
            if !advance(&mut idx, &shape) {
                break;
            }
        }
        f.refresh_periodic_halo();
        let p = f.padded().to_vec();
        let ps = f.pstrides().to_vec();
        let wrap = |k: isize, n: usize| -> usize { (k - 1).rem_euclid(n as isize) as usize };
        // Every padded point equals the periodic image of the interior —
        // faces, edges and corners alike.
        for z in 0..4usize {
            for y in 0..6usize {
                for x in 0..5usize {
                    let want_idx = [wrap(x as isize, 3), wrap(y as isize, 4), wrap(z as isize, 2)];
                    let want = (want_idx[0] * 100 + want_idx[1] * 10 + want_idx[2]) as f64;
                    let off = x * ps[0] + y * ps[1] + z * ps[2];
                    assert_eq!(p[off], want, "at padded ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn load_store_roundtrip_reasserts_seams() {
        let g0 = GridN::from_fn(&[2, 2, 2], |x| (x[0] * 5.0).sin() + x[1] - x[2] * x[0]);
        let mut f = PaddedFieldN::from_grid(&g0);
        let mut g1 = GridN::zeros(&[2, 2, 2]);
        f.load(&g0);
        f.store(&mut g1);
        // Interior matches; every seam duplicates node 0 of its axis.
        let mut idx = [0usize; 3];
        loop {
            let mut src = idx;
            for (v, &n) in src.iter_mut().zip(g1.shape()) {
                if *v == n - 1 {
                    *v = 0;
                }
            }
            assert_eq!(g1.at(&idx), g0.at(&src), "at {idx:?}");
            if !advance(&mut idx, g1.shape()) {
                break;
            }
        }
    }

    #[test]
    fn plane_decomposed_step_is_bitwise_equal() {
        let kernel = |cur: &[f64], off: usize| {
            // A 7-point-ish stencil via fixed strides captured below.
            cur[off] * 0.4 + cur[off - 1] * 0.3 + cur[off + 1] * 0.3
        };
        let mut whole = PaddedFieldN::new(&[4, 3, 3]);
        for (i, v) in whole.padded_mut().iter_mut().enumerate() {
            *v = (i as f64 * 0.17).cos();
        }
        let mut parts = whole.clone();
        whole.refresh_periodic_halo();
        parts.refresh_periodic_halo();
        whole.step_with(kernel);
        parts.step_planes(0, 1, kernel);
        parts.step_planes(1, 3, kernel);
        parts.commit_step();
        assert_eq!(whole.padded()[..], parts.padded()[..]);
    }

    #[test]
    fn plane_exchange_roundtrip() {
        let mut f = PaddedFieldN::new(&[3, 3, 4]);
        f.refresh_periodic_halo();
        let len = f.plane_len();
        assert_eq!(len, 5 * 5);
        let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
        f.set_plane(0, &data);
        assert_eq!(f.plane(0), &data[..]);
    }
}
