//! d-dimensional steppers: first-order upwind advection–diffusion and
//! Jacobi sweeps for the elliptic problem, plus the single-owner
//! [`SolverN`] that drives them over a [`PaddedFieldN`].
//!
//! The kernels are built as closures over the field's padded strides so
//! the same point update runs under the single-owner solver and the
//! distributed slab solver (`ftsg-core::psolve_nd`) — decomposition
//! cannot change the arithmetic, which keeps decomposed steps bitwise
//! equal to monolithic ones.

use sparsegrid::ndgrid::advance;
use sparsegrid::GridN;

use crate::ndfield::PaddedFieldN;
use crate::ndproblem::ProblemN;

/// Precomputed upwind–diffusion coefficients for one `(Δt, h, a, κ)`
/// combination: per-axis Courant numbers `c_i = a_i Δt / h_i` and
/// diffusion numbers `r_i = κ Δt / h_i²`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpwindDiffusionCoefN {
    /// `a_i Δt / h_i`
    pub c: Vec<f64>,
    /// `κ Δt / h_i²`
    pub r: Vec<f64>,
}

impl UpwindDiffusionCoefN {
    /// Coefficients for a given problem, per-axis mesh widths and
    /// timestep. Panics if called for the elliptic class.
    pub fn new(p: &ProblemN, h: &[f64], dt: f64) -> Self {
        match p {
            ProblemN::AdvectionDiffusion { a, kappa, .. } => UpwindDiffusionCoefN {
                c: a.iter().zip(h).map(|(ai, hi)| ai * dt / hi).collect(),
                r: h.iter().map(|hi| kappa * dt / (hi * hi)).collect(),
            },
            ProblemN::Elliptic { .. } => panic!("elliptic problems advance by Jacobi sweeps"),
        }
    }

    /// The explicit-stability number `Σ_i (|c_i| + 2 r_i)` (needs ≤ 1).
    pub fn stability(&self) -> f64 {
        self.c.iter().map(|v| v.abs()).sum::<f64>() + 2.0 * self.r.iter().sum::<f64>()
    }
}

/// One upwind–diffusion point update as a kernel for
/// [`PaddedFieldN::step_with`]: difference against the upwind neighbour
/// per axis plus the centered second difference, exactly the 2D upwind
/// row kernel generalized.
pub fn upwind_diffusion_kernel(
    coef: UpwindDiffusionCoefN,
    pstride: Vec<usize>,
) -> impl Fn(&[f64], usize) -> f64 {
    move |cur, off| {
        let c = cur[off];
        let mut acc = c;
        for (i, &s) in pstride.iter().enumerate() {
            let fwd = cur[off + s];
            let bwd = cur[off - s];
            let dx = if coef.c[i] >= 0.0 { c - bwd } else { fwd - c };
            acc -= coef.c[i] * dx;
            acc += coef.r[i] * (fwd - 2.0 * c + bwd);
        }
        acc
    }
}

/// One weighted-Jacobi point update for `−Δu = f` as a kernel for
/// [`PaddedFieldN::step_with`]: `rhs` must be laid out in the *padded*
/// offset space of the field (halo entries unused), so the kernel can
/// index it with the same offset it reads the solution at.
pub fn jacobi_kernel(
    inv_h2: Vec<f64>,
    pstride: Vec<usize>,
    rhs: Vec<f64>,
) -> impl Fn(&[f64], usize) -> f64 {
    let inv_diag = 1.0 / (2.0 * inv_h2.iter().sum::<f64>());
    move |cur, off| {
        let mut acc = rhs[off];
        for i in 0..pstride.len() {
            let s = pstride[i];
            acc += inv_h2[i] * (cur[off + s] + cur[off - s]);
        }
        acc * inv_diag
    }
}

/// Sample a problem's right-hand side into the padded offset space of a
/// field (interior entries only; halo stays zero).
pub fn padded_rhs(problem: &ProblemN, field: &PaddedFieldN) -> Vec<f64> {
    let d = field.dim();
    let shape = field.shape().to_vec();
    let mut rhs = vec![0.0; field.padded().len()];
    let mut idx = vec![0usize; d];
    loop {
        let off: usize = idx.iter().zip(field.pstrides()).map(|(&k, &s)| (k + 1) * s).sum();
        let x: Vec<f64> = idx.iter().zip(&shape).map(|(&k, &n)| k as f64 / n as f64).collect();
        rhs[off] = problem.rhs(&x);
        if !advance(&mut idx, &shape) {
            return rhs;
        }
    }
}

/// Single-owner periodic d-dimensional solver, mirroring the 2D
/// `UpwindSolver`/`LocalSolver` pattern: load once, step through the
/// double-buffered padded field, store once.
#[derive(Debug, Clone)]
pub struct SolverN {
    problem: ProblemN,
    grid: GridN,
    dt: f64,
    steps_done: u64,
    field: PaddedFieldN,
}

impl SolverN {
    /// Initialize from the problem's initial condition at a level vector.
    pub fn new(problem: ProblemN, level: &[u32], dt: f64) -> Self {
        assert_eq!(problem.dim(), level.len(), "problem/level dimension mismatch");
        let grid = GridN::from_fn(level, |x| problem.initial(x));
        let field = PaddedFieldN::from_grid(&grid);
        SolverN { problem, grid, dt, steps_done: 0, field }
    }

    /// Advance `n` timesteps (or Jacobi sweeps for the elliptic class).
    pub fn run(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.field.load(&self.grid);
        let pstride = self.field.pstrides().to_vec();
        if self.problem.is_elliptic() {
            let h: Vec<f64> = self.field.shape().iter().map(|&np| 1.0 / np as f64).collect();
            let inv_h2: Vec<f64> = h.iter().map(|hi| 1.0 / (hi * hi)).collect();
            let rhs = padded_rhs(&self.problem, &self.field);
            let kernel = jacobi_kernel(inv_h2, pstride, rhs);
            for _ in 0..n {
                self.field.refresh_periodic_halo();
                self.field.step_with(&kernel);
            }
        } else {
            let h: Vec<f64> = self.field.shape().iter().map(|&np| 1.0 / np as f64).collect();
            let coef = UpwindDiffusionCoefN::new(&self.problem, &h, self.dt);
            let kernel = upwind_diffusion_kernel(coef, pstride);
            for _ in 0..n {
                self.field.refresh_periodic_halo();
                self.field.step_with(&kernel);
            }
        }
        self.field.store(&mut self.grid);
        self.steps_done += n;
    }

    /// Advance one step.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Simulated time reached (sweep count for the elliptic class).
    pub fn time(&self) -> f64 {
        self.steps_done as f64 * self.dt
    }

    /// The current solution grid.
    pub fn grid(&self) -> &GridN {
        &self.grid
    }

    /// The PDE.
    pub fn problem(&self) -> &ProblemN {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndproblem::TimeGridN;

    #[test]
    fn constant_state_is_a_fixed_point_of_advection() {
        let p =
            ProblemN::AdvectionDiffusion { a: vec![1.0, -0.5, 0.25], kappa: 0.1, k: vec![1; 3] };
        let mut s = SolverN::new(p, &[3, 3, 3], 0.001);
        // Overwrite the IC with a constant.
        for v in s.grid.values_mut() {
            *v = 2.0;
        }
        s.run(20);
        for &v in s.grid().values() {
            assert!((v - 2.0).abs() < 1e-13, "constant broken: {v}");
        }
    }

    #[test]
    fn advection_diffusion_tracks_the_exact_solution() {
        let p = ProblemN::standard_advection(3);
        let tg = TimeGridN::for_system(&p, 5, 0, 0.4);
        let steps = (0.05 / tg.dt).round() as u64;
        let mut s = SolverN::new(p.clone(), &[5, 5, 5], tg.dt);
        s.run(steps);
        let t = s.time();
        let err = s.grid().l1_error_vs(|x| p.exact(x, t));
        assert!(err < 0.06, "first-order upwind should stay close: {err}");
    }

    #[test]
    fn upwind_converges_at_first_order() {
        let p = ProblemN::standard_advection(2);
        let err_at = |lev: u32| {
            let dt = 0.1 / (1u64 << lev) as f64;
            let steps = (0.1 / dt).round() as u64;
            let mut s = SolverN::new(p.clone(), &[lev, lev], dt);
            s.run(steps);
            let t = s.time();
            s.grid().l1_error_vs(|x| p.exact(x, t))
        };
        let e4 = err_at(4);
        let e5 = err_at(5);
        assert!(e5 < e4 / 1.6, "e4={e4}, e5={e5}");
    }

    #[test]
    fn jacobi_converges_to_the_manufactured_solution() {
        let p = ProblemN::standard_elliptic(3);
        let mut s = SolverN::new(p.clone(), &[3, 3, 3], 1.0);
        s.run(400);
        let err = s.grid().l1_error_vs(|x| p.exact(x, 0.0));
        assert!(err < 0.03, "Jacobi should approach u*: {err}");
        // More sweeps keep improving (monotone residual decay).
        let mut s2 = SolverN::new(p.clone(), &[3, 3, 3], 1.0);
        s2.run(800);
        let err2 = s2.grid().l1_error_vs(|x| p.exact(x, 0.0));
        assert!(err2 <= err + 1e-12, "{err2} vs {err}");
    }

    #[test]
    fn stability_number_is_reported() {
        let p = ProblemN::standard_advection(3);
        let coef = UpwindDiffusionCoefN::new(&p, &[0.1, 0.1, 0.1], 0.01);
        assert!(coef.stability() > 0.0 && coef.stability() < 1.0);
    }
}
