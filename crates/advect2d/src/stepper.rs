//! Timestep selection and the shared stepping machinery.
//!
//! "As we use a fixed simulation timestep (Δt) across all grids for
//! stability purposes" — the timestep is set once, from the *finest*
//! resolution in the whole grid system (`h = 2⁻ⁿ`), and every component
//! grid advances with it.
//!
//! [`PaddedField`] is the allocation-free stepping engine shared by the
//! Lax–Wendroff, upwind and FTCS solvers: a persistent double-buffered
//! halo-padded block where one timestep only refreshes the halo ring
//! (`O(perimeter)` copies) and ping-pongs the two buffers, instead of
//! rebuilding a padded copy of the whole field and copying the result
//! back (`O(area)` traffic plus two `Vec` reallocations per step).

use sparsegrid::Grid2;

use crate::bands::{band_range, BandPool};
use crate::problem::AdvectionProblem;

/// A raw pointer into the write buffer that band closures may share.
///
/// SAFETY: bands write disjoint row ranges of the buffer (see
/// [`PaddedField::step_banded`]), so concurrent use never aliases.
#[derive(Clone, Copy)]
struct SendMutPtr(*mut f64);
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the bare pointer, under edition-2021
    /// disjoint capture.
    fn get(self) -> *mut f64 {
        self.0
    }
}

/// A persistent double-buffered halo-padded field.
///
/// Both buffers hold `(nx + 2) × (ny + 2)` values, row-major with x
/// fastest; the interior `nx × ny` block is the fundamental periodic
/// domain (node `N` of the grid duplicates node `0` and is *not*
/// stored). A timestep reads stencil rows from the current buffer and
/// writes each output row directly into the interior of the other
/// buffer, then the buffers swap; nothing is allocated and nothing is
/// copied except the halo ring.
///
/// The halo can be filled two ways: [`refresh_periodic_halo`] for the
/// single-owner periodic solvers, or externally (distributed halo
/// exchange) through [`padded_mut`].
///
/// [`refresh_periodic_halo`]: PaddedField::refresh_periodic_halo
/// [`padded_mut`]: PaddedField::padded_mut
#[derive(Debug, Clone, PartialEq)]
pub struct PaddedField {
    nx: usize,
    ny: usize,
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl PaddedField {
    /// An all-zero field with an `nx × ny` interior.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 1 && ny >= 1, "interior must be non-empty: {nx}x{ny}");
        let len = (nx + 2) * (ny + 2);
        PaddedField { nx, ny, cur: vec![0.0; len], next: vec![0.0; len] }
    }

    /// A field sized for `grid`'s fundamental domain, loaded from it.
    pub fn from_grid(grid: &Grid2) -> Self {
        let mut f = PaddedField::new(grid.nx() - 1, grid.ny() - 1);
        f.load(grid);
        f
    }

    /// Interior width (fundamental domain, seam excluded).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height (fundamental domain, seam excluded).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Padded row stride.
    #[inline]
    pub fn pnx(&self) -> usize {
        self.nx + 2
    }

    /// Copy `grid`'s fundamental domain into the interior. The halo is
    /// left stale; refresh or exchange before stepping.
    pub fn load(&mut self, grid: &Grid2) {
        assert_eq!((grid.nx() - 1, grid.ny() - 1), (self.nx, self.ny), "grid size mismatch");
        let pnx = self.pnx();
        for m in 0..self.ny {
            let dst = &mut self.cur[(m + 1) * pnx + 1..][..self.nx];
            dst.copy_from_slice(&grid.row(m)[..self.nx]);
        }
    }

    /// Copy the interior back into `grid`'s fundamental domain and
    /// re-assert the periodic seam (node `N` duplicates node `0`).
    pub fn store(&self, grid: &mut Grid2) {
        assert_eq!((grid.nx() - 1, grid.ny() - 1), (self.nx, self.ny), "grid size mismatch");
        let pnx = self.pnx();
        for m in 0..self.ny {
            let src = &self.cur[(m + 1) * pnx + 1..][..self.nx];
            grid.row_mut(m)[..self.nx].copy_from_slice(src);
        }
        let (nx, ny) = (self.nx, self.ny);
        for m in 0..ny {
            let v = grid.at(0, m);
            *grid.at_mut(nx, m) = v;
        }
        for k in 0..grid.nx() {
            let v = grid.at(k, 0);
            *grid.at_mut(k, ny) = v;
        }
    }

    /// Fill the halo ring of the current buffer by periodic wrap of the
    /// interior: `O(nx + ny)` copies, the only per-step data motion
    /// besides the stencil itself.
    pub fn refresh_periodic_halo(&mut self) {
        let pnx = self.pnx();
        let (nx, ny) = (self.nx, self.ny);
        // Wrap columns first: west halo ← east interior column and vice
        // versa, for every interior row.
        for r in 1..=ny {
            let row = &mut self.cur[r * pnx..(r + 1) * pnx];
            row[0] = row[nx];
            row[nx + 1] = row[1];
        }
        // Then whole padded rows (including the just-wrapped corners):
        // south halo row ← top interior row, north halo row ← bottom
        // interior row.
        self.cur.copy_within(ny * pnx..(ny + 1) * pnx, 0);
        self.cur.copy_within(pnx..2 * pnx, (ny + 1) * pnx);
    }

    /// The current padded buffer (halo + interior).
    pub fn padded(&self) -> &[f64] {
        &self.cur
    }

    /// Mutable view of the current padded buffer, for external halo
    /// fills (distributed exchange) or direct interior edits.
    pub fn padded_mut(&mut self) -> &mut [f64] {
        &mut self.cur
    }

    /// Interior row `m` (of `ny`) as a slice of `nx` values.
    #[inline]
    pub fn interior_row(&self, m: usize) -> &[f64] {
        debug_assert!(m < self.ny);
        &self.cur[(m + 1) * self.pnx() + 1..][..self.nx]
    }

    /// One timestep: for each interior row `m`, `row_kernel` receives
    /// the three padded stencil rows (south, center, north — each
    /// `nx + 2` wide) from the current buffer and the `nx`-wide output
    /// row in the other buffer; the buffers then swap. The halo of the
    /// *new* current buffer is stale until the next refresh/exchange.
    pub fn step(&mut self, mut row_kernel: impl FnMut(&[f64], &[f64], &[f64], &mut [f64])) {
        let pnx = self.pnx();
        for m in 0..self.ny {
            let south = &self.cur[m * pnx..][..pnx];
            let center = &self.cur[(m + 1) * pnx..][..pnx];
            let north = &self.cur[(m + 2) * pnx..][..pnx];
            let out = &mut self.next[(m + 1) * pnx + 1..][..self.nx];
            row_kernel(south, center, north, out);
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Apply `row_kernel` to the sub-rectangle of interior rows
    /// `m0..m1` restricted to interior columns `k0..k1`, writing into the
    /// inactive buffer *without* swapping. A full timestep is any disjoint
    /// cover of the interior by `step_region` calls followed by one
    /// [`commit_step`] — each cell sees exactly the expression [`step`]
    /// would evaluate, so a region-decomposed step is bitwise equal to a
    /// monolithic one. This is what lets a distributed stepper compute the
    /// halo-independent interior while halo messages are still in flight.
    ///
    /// Empty ranges (`m0 >= m1` or `k0 >= k1`) are a no-op.
    ///
    /// [`commit_step`]: PaddedField::commit_step
    /// [`step`]: PaddedField::step
    pub fn step_region(
        &mut self,
        m0: usize,
        m1: usize,
        k0: usize,
        k1: usize,
        mut row_kernel: impl FnMut(&[f64], &[f64], &[f64], &mut [f64]),
    ) {
        debug_assert!(m1 <= self.ny && k1 <= self.nx, "region out of bounds");
        if m0 >= m1 || k0 >= k1 {
            return;
        }
        let pnx = self.pnx();
        let w = k1 - k0;
        for m in m0..m1 {
            let south = &self.cur[m * pnx + k0..][..w + 2];
            let center = &self.cur[(m + 1) * pnx + k0..][..w + 2];
            let north = &self.cur[(m + 2) * pnx + k0..][..w + 2];
            let out = &mut self.next[(m + 1) * pnx + 1 + k0..][..w];
            row_kernel(south, center, north, out);
        }
    }

    /// Commit a timestep assembled from [`step_region`] calls: swap the
    /// buffers. The halo of the new current buffer is stale until the next
    /// refresh/exchange, exactly as after [`step`].
    ///
    /// [`step_region`]: PaddedField::step_region
    /// [`step`]: PaddedField::step
    pub fn commit_step(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// [`step`], with the interior rows split into `bands` contiguous
    /// row bands executed by `pool` (plus the calling thread). Every
    /// band reads the shared current buffer and writes only its own
    /// rows of the inactive buffer, and each output point evaluates the
    /// same kernel expression as [`step`] — so the result is
    /// **bitwise-identical** to a monolithic step for any band count
    /// and any scheduling (see `crate::bands` for the full argument).
    ///
    /// `bands` is clamped to the row count; `bands <= 1` falls back to
    /// the plain loop. The kernel must be `Fn + Sync` (it runs
    /// concurrently); nothing is allocated.
    ///
    /// [`step`]: PaddedField::step
    pub fn step_banded(
        &mut self,
        pool: &BandPool,
        bands: usize,
        row_kernel: impl Fn(&[f64], &[f64], &[f64], &mut [f64]) + Sync,
    ) {
        let bands = bands.clamp(1, self.ny);
        if bands <= 1 {
            self.step(row_kernel);
            return;
        }
        let pnx = self.pnx();
        let (nx, ny) = (self.nx, self.ny);
        let cur: &[f64] = &self.cur;
        let next = SendMutPtr(self.next.as_mut_ptr());
        pool.run(bands, &|b| {
            let (m0, m1) = band_range(ny, bands, b);
            for m in m0..m1 {
                let south = &cur[m * pnx..][..pnx];
                let center = &cur[(m + 1) * pnx..][..pnx];
                let north = &cur[(m + 2) * pnx..][..pnx];
                // SAFETY: band rows are disjoint (band_range partitions
                // 0..ny), so each output row is written by exactly one
                // band; the row lies inside the `next` allocation.
                let out = unsafe {
                    std::slice::from_raw_parts_mut(next.get().add((m + 1) * pnx + 1), nx)
                };
                row_kernel(south, center, north, out);
            }
        });
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// [`step_region`], with the region's rows split into `bands`
    /// contiguous row bands executed by `pool`. Same bitwise guarantee
    /// as [`step_banded`]; no buffer swap (pair with [`commit_step`]).
    /// This is what lets the distributed stepper band the deep-interior
    /// compute that overlaps halo communication.
    ///
    /// [`step_region`]: PaddedField::step_region
    /// [`step_banded`]: PaddedField::step_banded
    /// [`commit_step`]: PaddedField::commit_step
    #[allow(clippy::too_many_arguments)] // step_region's signature + (pool, bands)
    pub fn step_region_banded(
        &mut self,
        pool: &BandPool,
        bands: usize,
        m0: usize,
        m1: usize,
        k0: usize,
        k1: usize,
        row_kernel: impl Fn(&[f64], &[f64], &[f64], &mut [f64]) + Sync,
    ) {
        debug_assert!(m1 <= self.ny && k1 <= self.nx, "region out of bounds");
        if m0 >= m1 || k0 >= k1 {
            return;
        }
        let rows = m1 - m0;
        let bands = bands.clamp(1, rows);
        if bands <= 1 {
            self.step_region(m0, m1, k0, k1, row_kernel);
            return;
        }
        let pnx = self.pnx();
        let w = k1 - k0;
        let cur: &[f64] = &self.cur;
        let next = SendMutPtr(self.next.as_mut_ptr());
        pool.run(bands, &|b| {
            let (r0, r1) = band_range(rows, bands, b);
            for m in m0 + r0..m0 + r1 {
                let south = &cur[m * pnx + k0..][..w + 2];
                let center = &cur[(m + 1) * pnx + k0..][..w + 2];
                let north = &cur[(m + 2) * pnx + k0..][..w + 2];
                // SAFETY: as in `step_banded` — disjoint output rows,
                // in-bounds of the `next` allocation.
                let out = unsafe {
                    std::slice::from_raw_parts_mut(next.get().add((m + 1) * pnx + 1 + k0), w)
                };
                row_kernel(south, center, north, out);
            }
        });
    }
}

/// The shared time discretization of a combination solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGrid {
    /// Fixed timestep used by every component grid.
    pub dt: f64,
    /// Number of timesteps to run (the paper runs `2^13`).
    pub steps: u64,
}

impl TimeGrid {
    /// Choose `Δt` from the CFL condition on the finest mesh width of a
    /// system with full grid size `n`: `Δt = cfl / ((|aₓ| + |a_y|) · 2ⁿ)`.
    pub fn for_system(problem: &AdvectionProblem, n: u32, steps: u64, cfl: f64) -> Self {
        assert!(cfl > 0.0 && cfl <= 1.0, "CFL must be in (0, 1], got {cfl}");
        let h_min = 1.0 / (1u64 << n) as f64;
        let speed = problem.ax.abs() + problem.ay.abs();
        assert!(speed > 0.0, "advection velocity must be nonzero");
        let dt = cfl * h_min / speed;
        TimeGrid { dt, steps }
    }

    /// The paper's configuration: CFL 0.4 and `2^13` steps (scaled down to
    /// `2^k` for smaller reproductions).
    pub fn paper_like(problem: &AdvectionProblem, n: u32, log2_steps: u32) -> Self {
        Self::for_system(problem, n, 1u64 << log2_steps, 0.4)
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        self.dt * self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::AdvectionProblem;

    #[test]
    fn region_decomposed_step_is_bitwise_equal() {
        // A stencil with every dependency direction exercised.
        let kernel = |s: &[f64], c: &[f64], n: &[f64], out: &mut [f64]| {
            for k in 0..out.len() {
                out[k] = 0.5 * c[k + 1]
                    + 0.1 * (c[k] + c[k + 2])
                    + 0.2 * (s[k + 1] - n[k + 1])
                    + 0.05 * (s[k] * n[k + 2]);
            }
        };
        for (nx, ny) in [(8, 6), (1, 5), (5, 1), (2, 2), (1, 1)] {
            let mut whole = PaddedField::new(nx, ny);
            for (i, v) in whole.padded_mut().iter_mut().enumerate() {
                *v = (i as f64 * 0.37).sin();
            }
            let mut parts = whole.clone();
            whole.step(kernel);
            // The overlapped stepper's cover: deep interior, edge rows,
            // edge columns — disjoint and complete for every shape.
            parts.step_region(1, ny.saturating_sub(1), 1, nx.saturating_sub(1), kernel);
            parts.step_region(0, 1, 1, nx.saturating_sub(1), kernel);
            if ny > 1 {
                parts.step_region(ny - 1, ny, 1, nx.saturating_sub(1), kernel);
            }
            parts.step_region(0, ny, 0, 1, kernel);
            if nx > 1 {
                parts.step_region(0, ny, nx - 1, nx, kernel);
            }
            parts.commit_step();
            for m in 0..ny {
                assert_eq!(whole.interior_row(m), parts.interior_row(m), "{nx}x{ny} row {m}");
            }
        }
    }

    #[test]
    fn dt_respects_cfl_on_finest_grid() {
        let p = AdvectionProblem::standard(); // speed 2
        let tg = TimeGrid::for_system(&p, 10, 100, 0.5);
        // dt = 0.5 * 2^-10 / 2
        assert!((tg.dt - 0.5 / 2048.0).abs() < 1e-18);
        // CFL on the finest grid: (|ax|/h + |ay|/h) dt = 0.5.
        let h = 1.0 / 1024.0;
        let cfl = (p.ax.abs() + p.ay.abs()) * tg.dt / h;
        assert!((cfl - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_like_runs_pow2_steps() {
        let p = AdvectionProblem::standard();
        let tg = TimeGrid::paper_like(&p, 13, 13);
        assert_eq!(tg.steps, 8192);
        assert!(tg.total_time() > 0.0);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn rejects_silly_cfl() {
        let p = AdvectionProblem::standard();
        let _ = TimeGrid::for_system(&p, 5, 10, 1.5);
    }
}
