//! Timestep selection.
//!
//! "As we use a fixed simulation timestep (Δt) across all grids for
//! stability purposes" — the timestep is set once, from the *finest*
//! resolution in the whole grid system (`h = 2⁻ⁿ`), and every component
//! grid advances with it.

use crate::problem::AdvectionProblem;

/// The shared time discretization of a combination solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGrid {
    /// Fixed timestep used by every component grid.
    pub dt: f64,
    /// Number of timesteps to run (the paper runs `2^13`).
    pub steps: u64,
}

impl TimeGrid {
    /// Choose `Δt` from the CFL condition on the finest mesh width of a
    /// system with full grid size `n`: `Δt = cfl / ((|aₓ| + |a_y|) · 2ⁿ)`.
    pub fn for_system(problem: &AdvectionProblem, n: u32, steps: u64, cfl: f64) -> Self {
        assert!(cfl > 0.0 && cfl <= 1.0, "CFL must be in (0, 1], got {cfl}");
        let h_min = 1.0 / (1u64 << n) as f64;
        let speed = problem.ax.abs() + problem.ay.abs();
        assert!(speed > 0.0, "advection velocity must be nonzero");
        let dt = cfl * h_min / speed;
        TimeGrid { dt, steps }
    }

    /// The paper's configuration: CFL 0.4 and `2^13` steps (scaled down to
    /// `2^k` for smaller reproductions).
    pub fn paper_like(problem: &AdvectionProblem, n: u32, log2_steps: u32) -> Self {
        Self::for_system(problem, n, 1u64 << log2_steps, 0.4)
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        self.dt * self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::AdvectionProblem;

    #[test]
    fn dt_respects_cfl_on_finest_grid() {
        let p = AdvectionProblem::standard(); // speed 2
        let tg = TimeGrid::for_system(&p, 10, 100, 0.5);
        // dt = 0.5 * 2^-10 / 2
        assert!((tg.dt - 0.5 / 2048.0).abs() < 1e-18);
        // CFL on the finest grid: (|ax|/h + |ay|/h) dt = 0.5.
        let h = 1.0 / 1024.0;
        let cfl = (p.ax.abs() + p.ay.abs()) * tg.dt / h;
        assert!((cfl - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_like_runs_pow2_steps() {
        let p = AdvectionProblem::standard();
        let tg = TimeGrid::paper_like(&p, 13, 13);
        assert_eq!(tg.steps, 8192);
        assert!(tg.total_time() > 0.0);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn rejects_silly_cfl() {
        let p = AdvectionProblem::standard();
        let _ = TimeGrid::for_system(&p, 5, 10, 1.5);
    }
}
