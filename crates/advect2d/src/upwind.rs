//! First-order upwind scheme — the classical baseline the Lax–Wendroff
//! solver is measured against.
//!
//! Not used by the paper's application (which is pure Lax–Wendroff), but
//! indispensable as a numerical cross-check: upwind converges at first
//! order and is monotone; Lax–Wendroff at second order with dispersive
//! ripples. The convergence-order tests in this crate pin both down.

use sparsegrid::Grid2;

use crate::bands::BandPool;
use crate::problem::AdvectionProblem;
use crate::simd::{KernelConfig, KernelKind};
use crate::stepper::PaddedField;

/// Precomputed upwind coefficients for one `(Δt, hx, hy, a)` combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpwindCoef {
    /// `aₓ Δt / hx`
    pub cx: f64,
    /// `a_y Δt / hy`
    pub cy: f64,
}

impl UpwindCoef {
    /// Coefficients for a given problem, mesh widths and timestep.
    pub fn new(p: &AdvectionProblem, hx: f64, hy: f64, dt: f64) -> Self {
        UpwindCoef { cx: p.ax * dt / hx, cy: p.ay * dt / hy }
    }

    /// The CFL number `|cx| + |cy|` (stability needs ≤ 1).
    pub fn cfl(&self) -> f64 {
        self.cx.abs() + self.cy.abs()
    }
}

/// One upwind update of a single output row (same row-slice contract as
/// [`crate::laxwendroff::lax_wendroff_row`]).
#[inline]
pub fn upwind_row(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    coef: &UpwindCoef,
    out: &mut [f64],
) {
    let nx = out.len();
    let south = &south[..nx + 2];
    let center = &center[..nx + 2];
    let north = &north[..nx + 2];
    for k in 0..nx {
        let c = center[k + 1];
        let w = center[k];
        let e = center[k + 2];
        let s = south[k + 1];
        let n = north[k + 1];
        // Difference against the upwind neighbour in each direction.
        let dx = if coef.cx >= 0.0 { c - w } else { e - c };
        let dy = if coef.cy >= 0.0 { c - s } else { n - c };
        out[k] = c - coef.cx * dx - coef.cy * dy;
    }
}

/// An upwind row kernel: `(south, center, north, coef, out)`.
pub type UpwindRowFn = fn(&[f64], &[f64], &[f64], &UpwindCoef, &mut [f64]);

/// The row function implementing `kind` (see
/// [`crate::laxwendroff::lw_row_fn`]).
pub fn upwind_row_fn(kind: KernelKind) -> UpwindRowFn {
    match kind {
        KernelKind::Scalar => upwind_row,
        KernelKind::Simd => crate::simd::upwind_row_simd,
    }
}

/// One upwind update on a halo-padded block (same layout contract as
/// [`crate::laxwendroff::lax_wendroff_kernel`]; extents asserted in
/// release too, since the stride is implicit in `nx`).
pub fn upwind_kernel(padded: &[f64], nx: usize, ny: usize, coef: &UpwindCoef, out: &mut [f64]) {
    let pnx = nx + 2;
    assert_eq!(padded.len(), pnx * (ny + 2), "padded extent mismatch for {nx}x{ny}");
    assert_eq!(out.len(), nx * ny, "output extent mismatch for {nx}x{ny}");
    for m in 0..ny {
        let south = &padded[m * pnx..][..pnx];
        let center = &padded[(m + 1) * pnx..][..pnx];
        let north = &padded[(m + 2) * pnx..][..pnx];
        upwind_row(south, center, north, coef, &mut out[m * nx..][..nx]);
    }
}

/// One periodic upwind step on a whole [`Grid2`]: the rebuild-everything
/// reference path, kept for the bitwise-equivalence tests against the
/// double-buffered [`UpwindSolver`].
pub fn upwind_step_naive(
    grid: &mut Grid2,
    coef: &UpwindCoef,
    padded: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let nx = grid.nx() - 1;
    let ny = grid.ny() - 1;
    let pnx = nx + 2;
    sparsegrid::ensure_len(padded, pnx * (ny + 2));
    let wrapx = |k: isize| -> usize { k.rem_euclid(nx as isize) as usize };
    let wrapy = |m: isize| -> usize { m.rem_euclid(ny as isize) as usize };
    for pm in 0..ny + 2 {
        let gm = wrapy(pm as isize - 1);
        for pk in 0..pnx {
            let gk = wrapx(pk as isize - 1);
            padded[pm * pnx + pk] = grid.at(gk, gm);
        }
    }
    sparsegrid::ensure_len(out, nx * ny);
    upwind_kernel(padded, nx, ny, coef, out);
    for m in 0..ny {
        grid.row_mut(m)[..nx].copy_from_slice(&out[m * nx..][..nx]);
    }
    for m in 0..ny {
        let v = grid.at(0, m);
        *grid.at_mut(nx, m) = v;
    }
    for k in 0..grid.nx() {
        let v = grid.at(k, 0);
        *grid.at_mut(k, ny) = v;
    }
}

/// Single-owner periodic upwind solver, mirroring
/// [`crate::laxwendroff::LocalSolver`].
#[derive(Debug, Clone)]
pub struct UpwindSolver {
    problem: AdvectionProblem,
    grid: Grid2,
    coef: UpwindCoef,
    dt: f64,
    steps_done: u64,
    field: PaddedField,
    kernel: KernelConfig,
}

impl UpwindSolver {
    /// Initialize from the problem's initial condition.
    pub fn new(problem: AdvectionProblem, level: sparsegrid::LevelPair, dt: f64) -> Self {
        let grid = Grid2::from_fn(level, problem.initial());
        let (hx, hy) = grid.spacing();
        let coef = UpwindCoef::new(&problem, hx, hy, dt);
        let field = PaddedField::new(grid.nx() - 1, grid.ny() - 1);
        UpwindSolver {
            problem,
            grid,
            coef,
            dt,
            steps_done: 0,
            field,
            kernel: KernelConfig::global(),
        }
    }

    /// Replace the kernel configuration (formulation + banding).
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Advance `n` timesteps through the double-buffered padded field
    /// (one grid load/store per call, no per-step allocation); bitwise
    /// identical to `n` calls of [`upwind_step_naive`].
    pub fn run(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.field.load(&self.grid);
        let coef = self.coef;
        let row = upwind_row_fn(self.kernel.kind);
        let (nx, ny) = (self.field.nx(), self.field.ny());
        let bands = self.kernel.bands_for(nx * ny, ny);
        for _ in 0..n {
            self.field.refresh_periodic_halo();
            if bands > 1 {
                self.field.step_banded(BandPool::global(), bands, |s, c, nn, out| {
                    row(s, c, nn, &coef, out)
                });
            } else {
                self.field.step(|s, c, nn, out| row(s, c, nn, &coef, out));
            }
        }
        self.field.store(&mut self.grid);
        self.steps_done += n;
    }

    /// Simulated time reached.
    pub fn time(&self) -> f64 {
        self.steps_done as f64 * self.dt
    }

    /// The current solution grid.
    pub fn grid(&self) -> &Grid2 {
        &self.grid
    }

    /// The PDE.
    pub fn problem(&self) -> &AdvectionProblem {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laxwendroff::LocalSolver;
    use crate::problem::InitialCondition;
    use sparsegrid::{l1_error_vs, linf_error_vs, LevelPair};

    #[test]
    fn constant_state_is_a_fixed_point() {
        let p = AdvectionProblem { ax: 1.0, ay: -0.5, ic: InitialCondition::Constant(2.0) };
        let mut s = UpwindSolver::new(p, LevelPair::new(4, 4), 0.01);
        s.run(30);
        assert_eq!(linf_error_vs(s.grid(), |_, _| 2.0), 0.0);
    }

    #[test]
    fn first_order_convergence() {
        let p = AdvectionProblem::standard();
        let err_at = |lev: u32| {
            let dt = 0.2 / (1u64 << lev) as f64;
            let steps = (0.25 / dt).round() as u64;
            let mut s = UpwindSolver::new(p, LevelPair::new(lev, lev), dt);
            s.run(steps);
            l1_error_vs(s.grid(), p.exact_at(s.time()))
        };
        let e4 = err_at(4);
        let e5 = err_at(5);
        // First order: halving h roughly halves the error.
        assert!(e5 < e4 / 1.6, "e4={e4}, e5={e5}");
        assert!(e5 > e4 / 3.0, "suspiciously fast convergence for upwind");
    }

    #[test]
    fn lax_wendroff_beats_upwind_on_smooth_data() {
        let p = AdvectionProblem::standard();
        let lev = 6;
        let dt = 0.2 / 64.0;
        let steps = 64;
        let mut up = UpwindSolver::new(p, LevelPair::new(lev, lev), dt);
        let mut lw = LocalSolver::new(p, LevelPair::new(lev, lev), dt);
        up.run(steps);
        lw.run(steps);
        let e_up = l1_error_vs(up.grid(), p.exact_at(up.time()));
        let e_lw = l1_error_vs(lw.grid(), p.exact_at(lw.time()));
        assert!(
            e_lw < e_up / 5.0,
            "second order must beat first order: LW {e_lw} vs upwind {e_up}"
        );
    }

    #[test]
    fn upwind_is_monotone_no_overshoot() {
        // Upwind never creates new extrema; values stay within the IC range.
        let p = AdvectionProblem { ax: 1.0, ay: 1.0, ic: InitialCondition::CosHill };
        let mut s = UpwindSolver::new(p, LevelPair::new(5, 5), 0.2 / 32.0);
        s.run(64);
        for &v in s.grid().values() {
            assert!((-1e-12..=1.0 + 1e-12).contains(&v), "overshoot: {v}");
        }
    }

    #[test]
    fn negative_velocity_upwinds_the_other_way() {
        let p = AdvectionProblem {
            ax: -1.0,
            ay: -1.0,
            ic: InitialCondition::SinProduct { kx: 1, ky: 1 },
        };
        let dt = 0.2 / 32.0;
        let mut s = UpwindSolver::new(p, LevelPair::new(5, 5), dt);
        s.run(32);
        let e = l1_error_vs(s.grid(), p.exact_at(s.time()));
        assert!(e < 0.2, "negative-velocity transport broken: {e}");
    }

    #[test]
    fn cfl_reporting() {
        let p = AdvectionProblem::standard();
        let c = UpwindCoef::new(&p, 0.1, 0.1, 0.02);
        assert!((c.cfl() - 0.4).abs() < 1e-12);
    }
}
