//! First-order upwind scheme — the classical baseline the Lax–Wendroff
//! solver is measured against.
//!
//! Not used by the paper's application (which is pure Lax–Wendroff), but
//! indispensable as a numerical cross-check: upwind converges at first
//! order and is monotone; Lax–Wendroff at second order with dispersive
//! ripples. The convergence-order tests in this crate pin both down.

use sparsegrid::Grid2;

use crate::problem::AdvectionProblem;

/// Precomputed upwind coefficients for one `(Δt, hx, hy, a)` combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpwindCoef {
    /// `aₓ Δt / hx`
    pub cx: f64,
    /// `a_y Δt / hy`
    pub cy: f64,
}

impl UpwindCoef {
    /// Coefficients for a given problem, mesh widths and timestep.
    pub fn new(p: &AdvectionProblem, hx: f64, hy: f64, dt: f64) -> Self {
        UpwindCoef { cx: p.ax * dt / hx, cy: p.ay * dt / hy }
    }

    /// The CFL number `|cx| + |cy|` (stability needs ≤ 1).
    pub fn cfl(&self) -> f64 {
        self.cx.abs() + self.cy.abs()
    }
}

/// One upwind update on a halo-padded block (same layout contract as
/// [`crate::laxwendroff::lax_wendroff_kernel`]).
pub fn upwind_kernel(padded: &[f64], nx: usize, ny: usize, coef: &UpwindCoef, out: &mut [f64]) {
    let pnx = nx + 2;
    debug_assert_eq!(padded.len(), pnx * (ny + 2));
    debug_assert_eq!(out.len(), nx * ny);
    for m in 0..ny {
        let row_s = m * pnx;
        let row_c = (m + 1) * pnx;
        let row_n = (m + 2) * pnx;
        for k in 0..nx {
            let c = padded[row_c + k + 1];
            let w = padded[row_c + k];
            let e = padded[row_c + k + 2];
            let s = padded[row_s + k + 1];
            let n = padded[row_n + k + 1];
            // Difference against the upwind neighbour in each direction.
            let dx = if coef.cx >= 0.0 { c - w } else { e - c };
            let dy = if coef.cy >= 0.0 { c - s } else { n - c };
            out[m * nx + k] = c - coef.cx * dx - coef.cy * dy;
        }
    }
}

/// Single-owner periodic upwind solver, mirroring
/// [`crate::laxwendroff::LocalSolver`].
#[derive(Debug, Clone)]
pub struct UpwindSolver {
    problem: AdvectionProblem,
    grid: Grid2,
    coef: UpwindCoef,
    dt: f64,
    steps_done: u64,
    padded: Vec<f64>,
    scratch: Vec<f64>,
}

impl UpwindSolver {
    /// Initialize from the problem's initial condition.
    pub fn new(problem: AdvectionProblem, level: sparsegrid::LevelPair, dt: f64) -> Self {
        let grid = Grid2::from_fn(level, problem.initial());
        let (hx, hy) = grid.spacing();
        let coef = UpwindCoef::new(&problem, hx, hy, dt);
        UpwindSolver {
            problem,
            grid,
            coef,
            dt,
            steps_done: 0,
            padded: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let nx = self.grid.nx() - 1;
        let ny = self.grid.ny() - 1;
        let pnx = nx + 2;
        self.padded.clear();
        self.padded.resize(pnx * (ny + 2), 0.0);
        let wrapx = |k: isize| -> usize { k.rem_euclid(nx as isize) as usize };
        let wrapy = |m: isize| -> usize { m.rem_euclid(ny as isize) as usize };
        for pm in 0..ny + 2 {
            let gm = wrapy(pm as isize - 1);
            for pk in 0..pnx {
                let gk = wrapx(pk as isize - 1);
                self.padded[pm * pnx + pk] = self.grid.at(gk, gm);
            }
        }
        self.scratch.clear();
        self.scratch.resize(nx * ny, 0.0);
        upwind_kernel(&self.padded, nx, ny, &self.coef, &mut self.scratch);
        for m in 0..ny {
            for k in 0..nx {
                *self.grid.at_mut(k, m) = self.scratch[m * nx + k];
            }
        }
        for m in 0..ny {
            let v = self.grid.at(0, m);
            *self.grid.at_mut(nx, m) = v;
        }
        for k in 0..self.grid.nx() {
            let v = self.grid.at(k, 0);
            *self.grid.at_mut(k, ny) = v;
        }
        self.steps_done += 1;
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Simulated time reached.
    pub fn time(&self) -> f64 {
        self.steps_done as f64 * self.dt
    }

    /// The current solution grid.
    pub fn grid(&self) -> &Grid2 {
        &self.grid
    }

    /// The PDE.
    pub fn problem(&self) -> &AdvectionProblem {
        &self.problem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laxwendroff::LocalSolver;
    use crate::problem::InitialCondition;
    use sparsegrid::{l1_error_vs, linf_error_vs, LevelPair};

    #[test]
    fn constant_state_is_a_fixed_point() {
        let p = AdvectionProblem { ax: 1.0, ay: -0.5, ic: InitialCondition::Constant(2.0) };
        let mut s = UpwindSolver::new(p, LevelPair::new(4, 4), 0.01);
        s.run(30);
        assert_eq!(linf_error_vs(s.grid(), |_, _| 2.0), 0.0);
    }

    #[test]
    fn first_order_convergence() {
        let p = AdvectionProblem::standard();
        let err_at = |lev: u32| {
            let dt = 0.2 / (1u64 << lev) as f64;
            let steps = (0.25 / dt).round() as u64;
            let mut s = UpwindSolver::new(p, LevelPair::new(lev, lev), dt);
            s.run(steps);
            l1_error_vs(s.grid(), p.exact_at(s.time()))
        };
        let e4 = err_at(4);
        let e5 = err_at(5);
        // First order: halving h roughly halves the error.
        assert!(e5 < e4 / 1.6, "e4={e4}, e5={e5}");
        assert!(e5 > e4 / 3.0, "suspiciously fast convergence for upwind");
    }

    #[test]
    fn lax_wendroff_beats_upwind_on_smooth_data() {
        let p = AdvectionProblem::standard();
        let lev = 6;
        let dt = 0.2 / 64.0;
        let steps = 64;
        let mut up = UpwindSolver::new(p, LevelPair::new(lev, lev), dt);
        let mut lw = LocalSolver::new(p, LevelPair::new(lev, lev), dt);
        up.run(steps);
        lw.run(steps);
        let e_up = l1_error_vs(up.grid(), p.exact_at(up.time()));
        let e_lw = l1_error_vs(lw.grid(), p.exact_at(lw.time()));
        assert!(
            e_lw < e_up / 5.0,
            "second order must beat first order: LW {e_lw} vs upwind {e_up}"
        );
    }

    #[test]
    fn upwind_is_monotone_no_overshoot() {
        // Upwind never creates new extrema; values stay within the IC range.
        let p = AdvectionProblem { ax: 1.0, ay: 1.0, ic: InitialCondition::CosHill };
        let mut s = UpwindSolver::new(p, LevelPair::new(5, 5), 0.2 / 32.0);
        s.run(64);
        for &v in s.grid().values() {
            assert!((-1e-12..=1.0 + 1e-12).contains(&v), "overshoot: {v}");
        }
    }

    #[test]
    fn negative_velocity_upwinds_the_other_way() {
        let p = AdvectionProblem {
            ax: -1.0,
            ay: -1.0,
            ic: InitialCondition::SinProduct { kx: 1, ky: 1 },
        };
        let dt = 0.2 / 32.0;
        let mut s = UpwindSolver::new(p, LevelPair::new(5, 5), dt);
        s.run(32);
        let e = l1_error_vs(s.grid(), p.exact_at(s.time()));
        assert!(e < 0.2, "negative-velocity transport broken: {e}");
    }

    #[test]
    fn cfl_reporting() {
        let p = AdvectionProblem::standard();
        let c = UpwindCoef::new(&p, 0.1, 0.1, 0.02);
        assert!((c.cfl() - 0.4).abs() < 1e-12);
    }
}
