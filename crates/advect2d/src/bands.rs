//! Intra-rank row-band parallelism: a small reusable worker pool that
//! steps disjoint row bands of one sub-grid concurrently.
//!
//! ## Determinism argument
//!
//! A banded step partitions the interior rows into contiguous, disjoint
//! bands ([`band_range`]). Every band evaluates the *same row kernel*
//! over the *same input buffer* (the read buffer is immutable for the
//! whole step) and writes only its own rows of the write buffer. Each
//! output point is therefore computed exactly once, by the same
//! expression in the same per-point operation order as the monolithic
//! step — scheduling only changes *when* a band runs, never *what* it
//! computes. Hence a banded step is bitwise-identical to a monolithic
//! one for **any** band count, worker count, or interleaving, which is
//! what keeps recompute-based fault recovery bit-reproducible with the
//! pool active (pinned by `tests/kernel_props.rs` and the banded CI
//! lanes).
//!
//! ## Allocation discipline
//!
//! Dispatching a job publishes one lifetime-erased fat pointer and bumps
//! two atomics; workers park on a `Condvar` (futex-backed on Linux).
//! Nothing is allocated per step, so the counting-allocator asserts in
//! `crates/bench` stay at zero with the pool active.
//!
//! The pool is **off by default**; see [`crate::simd::KernelConfig`] for
//! the `FTSG_BANDS` / `FTSG_BAND_MIN_CELLS` knobs that enable it for
//! sub-grids above a size threshold.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Balanced contiguous split of `n` rows into `parts` bands: band `b`
/// gets `n / parts` rows plus one of the `n % parts` leftovers, lowest
/// bands first (the same convention as the distributed block split).
pub fn band_range(n: usize, parts: usize, b: usize) -> (usize, usize) {
    debug_assert!(parts >= 1 && b < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = b * base + b.min(rem);
    let len = base + usize::from(b < rem);
    (start, start + len)
}

/// The claim word packs the job generation (high bits) and the next
/// unclaimed band (low [`BAND_BITS`] bits) into one atomic, so a CAS
/// claim by a straggler from a previous job fails on the generation
/// mismatch instead of corrupting the new job's band accounting.
const BAND_BITS: u32 = 24;
const BAND_MASK: u64 = (1 << BAND_BITS) - 1;
/// Largest band count a single job may carry (far above anything
/// `KernelConfig::bands_for` produces — bands are clamped to row counts).
pub const MAX_BANDS: usize = (BAND_MASK as usize) - 1;

/// A lifetime-erased band job: `f` is valid until the dispatching
/// [`BandPool::run`] call returns, which it only does once every band has
/// executed.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    bands: usize,
    generation: u64,
}

// SAFETY: the raw fat pointer is only dereferenced by workers while the
// dispatching `run` call blocks (the referent is a live `Sync` closure on
// the caller's stack), and `bands`/`generation` are plain integers.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// `generation << BAND_BITS | next_band` — see [`BAND_BITS`].
    claim: AtomicU64,
    /// Bands finished for the current generation.
    done: AtomicU64,
    shutdown: AtomicBool,
}

/// A small persistent worker pool for row-band stepping.
///
/// Workers are spawned once and reused for every step; a dispatch hands
/// them a borrowed band closure and blocks until all bands ran. The
/// *caller participates* in claiming bands, so the pool makes progress
/// even with zero workers (or workers that are slow to wake), and
/// `run` degenerates to an inline loop when `bands <= 1`.
///
/// Dispatches are serialized by an internal lock; the pool is not
/// re-entrant (a band closure must not call back into the same pool —
/// it would deadlock on that lock).
pub struct BandPool {
    shared: Arc<Shared>,
    /// Serializes dispatches; also makes generation bumps race-free.
    run_lock: Mutex<u64>,
    handles: Vec<JoinHandle<()>>,
}

impl BandPool {
    /// A pool with `workers` dedicated worker threads (0 is fine: the
    /// caller then executes every band inline, same results).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
            done: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ftsg-band-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn band worker")
            })
            .collect();
        BandPool { shared, run_lock: Mutex::new(0), handles }
    }

    /// Number of dedicated worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The process-wide pool, created on first use. Sized from
    /// `FTSG_BAND_WORKERS` if set, else `available_parallelism - 1`
    /// (at least 1 so the pool code path is exercised even on one CPU).
    pub fn global() -> &'static BandPool {
        static POOL: OnceLock<BandPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = std::env::var("FTSG_BAND_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) - 1
                })
                .max(1);
            BandPool::new(workers)
        })
    }

    /// Execute `f(0) .. f(bands - 1)`, each exactly once, distributed
    /// over the workers and the calling thread; returns when all bands
    /// ran. Bands receive disjoint work by construction of the caller
    /// (disjoint output rows), so any execution order is equivalent.
    pub fn run(&self, bands: usize, f: &(dyn Fn(usize) + Sync)) {
        if bands <= 1 {
            if bands == 1 {
                f(0);
            }
            return;
        }
        assert!(bands <= MAX_BANDS, "band count {bands} exceeds MAX_BANDS");
        let mut gen_guard = self.run_lock.lock().unwrap();
        *gen_guard += 1;
        let generation = *gen_guard;
        // SAFETY: lifetime erasure only — `run` does not return until all
        // bands executed, so workers never see `f` after it dies.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Job { f: f_erased as *const _, bands, generation };
        self.shared.done.store(0, Ordering::Relaxed);
        self.shared.claim.store(generation << BAND_BITS, Ordering::Release);
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            self.shared.work_cv.notify_all();
        }
        // Participate: claim bands alongside the workers.
        run_job(&self.shared, &job);
        // Wait for stragglers still executing their claimed bands.
        let mut st = self.shared.state.lock().unwrap();
        while self.shared.done.load(Ordering::Acquire) < bands as u64 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        drop(st);
        drop(gen_guard);
    }
}

impl Drop for BandPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _st = self.shared.state.lock().unwrap();
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and execute bands of `job` until none are left. A claim CAS
/// carries the generation, so it can only succeed while `job` is the
/// current one — a straggler observing a newer generation backs off
/// without touching the new job's accounting.
fn run_job(shared: &Shared, job: &Job) {
    // SAFETY: per the `Job` contract the closure outlives the dispatch,
    // and `run` does not return before `done` reaches `bands`.
    let f = unsafe { &*job.f };
    loop {
        let cur = shared.claim.load(Ordering::Acquire);
        if cur >> BAND_BITS != job.generation {
            return; // a newer job took over; nothing left for us here
        }
        let band = (cur & BAND_MASK) as usize;
        if band >= job.bands {
            return;
        }
        if shared
            .claim
            .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        f(band);
        let done = shared.done.fetch_add(1, Ordering::AcqRel) + 1;
        if done == job.bands as u64 {
            // Lock-then-notify so the dispatcher can't miss the wakeup
            // between its predicate check and its wait.
            let _st = shared.state.lock().unwrap();
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match st.job {
                    Some(job) if job.generation != seen => {
                        seen = job.generation;
                        break job;
                    }
                    _ => st = shared.work_cv.wait(st).unwrap(),
                }
            }
        };
        run_job(shared, &job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn band_range_is_a_balanced_partition() {
        for n in [1usize, 2, 7, 9, 64, 100] {
            for parts in 1..=9usize.min(n) {
                let mut next = 0;
                let mut sizes = Vec::new();
                for b in 0..parts {
                    let (s, e) = band_range(n, parts, b);
                    assert_eq!(s, next, "contiguous n={n} parts={parts} b={b}");
                    assert!(e > s, "non-empty n={n} parts={parts} b={b}");
                    sizes.push(e - s);
                    next = e;
                }
                assert_eq!(next, n, "covers n={n} parts={parts}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced n={n} parts={parts}: {sizes:?}");
            }
        }
    }

    #[test]
    fn runs_every_band_exactly_once() {
        let pool = BandPool::new(2);
        for bands in [1usize, 2, 3, 5, 16, 33] {
            let hits: Vec<AtomicUsize> = (0..bands).map(|_| AtomicUsize::new(0)).collect();
            pool.run(bands, &|b| {
                hits[b].fetch_add(1, Ordering::Relaxed);
            });
            for (b, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "bands={bands} band {b}");
            }
        }
    }

    #[test]
    fn reusable_across_many_dispatches_and_zero_workers() {
        let pool = BandPool::new(0);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn bands_see_disjoint_rows_and_results_match_inline() {
        let pool = BandPool::new(3);
        let n = 103usize;
        let mut expect = vec![0.0f64; n];
        for (i, v) in expect.iter_mut().enumerate() {
            *v = (i as f64).sqrt();
        }
        for bands in [2usize, 3, 7] {
            let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(bands, &|b| {
                let (s, e) = band_range(n, bands, b);
                for (i, slot) in out.iter().enumerate().take(e).skip(s) {
                    slot.store((i as f64).sqrt().to_bits(), Ordering::Relaxed);
                }
            });
            for i in 0..n {
                assert_eq!(out[i].load(Ordering::Relaxed), expect[i].to_bits(), "bands={bands}");
            }
        }
    }
}
