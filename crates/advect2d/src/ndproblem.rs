//! d-dimensional model problems with closed-form reference solutions.
//!
//! Two problem classes drive the generalized solver:
//!
//! * **Advection–diffusion** `∂u/∂t + a·∇u = κΔu` on the periodic unit
//!   cube, with the separable exact solution
//!   `u(x, t) = exp(−κ(2π)²·Σ k_i²·t) · Π sin(2π k_i (x_i − a_i t))` —
//!   the transport term shifts each factor, the diffusion term decays
//!   the amplitude, so both operators are verified at once.
//! * **Elliptic** `−Δu = f` with the manufactured solution
//!   `u*(x) = Π sin(2π k_i x_i)`, `f = (2π)² Σ k_i² · u*`, solved by
//!   Jacobi sweeps (the SNIPPETS exemplars' workload class). With
//!   periodic boundaries the operator is singular on constants; Jacobi
//!   preserves the mean exactly, so a zero-mean start converges to the
//!   zero-mean discrete solution that `u*` samples.

use std::f64::consts::PI;

/// A d-dimensional PDE instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemN {
    /// `∂u/∂t + a·∇u = κΔu`, periodic on `[0,1]^d`.
    AdvectionDiffusion {
        /// Advection velocity per axis.
        a: Vec<f64>,
        /// Diffusion coefficient (≥ 0; 0 is pure advection).
        kappa: f64,
        /// Wave numbers of the separable initial condition.
        k: Vec<u32>,
    },
    /// `−Δu = f` with the manufactured solution `Π sin(2π k_i x_i)`.
    Elliptic {
        /// Wave numbers of the manufactured solution.
        k: Vec<u32>,
    },
}

impl ProblemN {
    /// The standard advection–diffusion instance: unit diagonal velocity,
    /// mild diffusion, wave number 1 on every axis.
    pub fn standard_advection(dim: usize) -> Self {
        ProblemN::AdvectionDiffusion { a: vec![1.0; dim], kappa: 0.02, k: vec![1; dim] }
    }

    /// The standard elliptic instance: wave number 1 on every axis.
    pub fn standard_elliptic(dim: usize) -> Self {
        ProblemN::Elliptic { k: vec![1; dim] }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        match self {
            ProblemN::AdvectionDiffusion { a, .. } => a.len(),
            ProblemN::Elliptic { k } => k.len(),
        }
    }

    /// True for the elliptic (sweep-iterated) problem class.
    pub fn is_elliptic(&self) -> bool {
        matches!(self, ProblemN::Elliptic { .. })
    }

    /// Initial condition: the exact solution at `t = 0` for
    /// advection–diffusion, the zero guess for the elliptic solve.
    pub fn initial(&self, x: &[f64]) -> f64 {
        match self {
            ProblemN::AdvectionDiffusion { .. } => self.exact(x, 0.0),
            ProblemN::Elliptic { .. } => 0.0,
        }
    }

    /// The reference solution: time-dependent for advection–diffusion,
    /// the manufactured `u*` (time-independent) for the elliptic solve.
    pub fn exact(&self, x: &[f64], t: f64) -> f64 {
        match self {
            ProblemN::AdvectionDiffusion { a, kappa, k } => {
                let lambda: f64 =
                    kappa * (2.0 * PI).powi(2) * k.iter().map(|&ki| (ki * ki) as f64).sum::<f64>();
                let mut u = (-lambda * t).exp();
                for i in 0..x.len() {
                    u *= (2.0 * PI * k[i] as f64 * (x[i] - a[i] * t)).sin();
                }
                u
            }
            ProblemN::Elliptic { k } => {
                let mut u = 1.0;
                for i in 0..x.len() {
                    u *= (2.0 * PI * k[i] as f64 * x[i]).sin();
                }
                u
            }
        }
    }

    /// Right-hand side of the elliptic problem, `f = (2π)² Σ k_i² · u*`
    /// (zero for the time-dependent class, which has no source).
    pub fn rhs(&self, x: &[f64]) -> f64 {
        match self {
            ProblemN::AdvectionDiffusion { .. } => 0.0,
            ProblemN::Elliptic { k } => {
                let lam: f64 =
                    (2.0 * PI).powi(2) * k.iter().map(|&ki| (ki * ki) as f64).sum::<f64>();
                lam * self.exact(x, 0.0)
            }
        }
    }
}

/// The shared time discretization of a d-dimensional combination solve
/// (for the elliptic class, "steps" are Jacobi sweeps and `dt` is unused).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeGridN {
    /// Fixed timestep used by every component grid.
    pub dt: f64,
    /// Number of timesteps (or sweeps) to run.
    pub steps: u64,
}

impl TimeGridN {
    /// Choose `Δt` from the explicit-stability bound on the finest mesh
    /// of a system with full grid size `n`: the upwind–diffusion update
    /// needs `Σ_i (|a_i| Δt/h + 2 κ Δt/h²) ≤ 1`, so
    /// `Δt = cfl / (Σ|a_i|·2ⁿ + 2dκ·4ⁿ)`.
    pub fn for_system(problem: &ProblemN, n: u32, steps: u64, cfl: f64) -> Self {
        assert!(cfl > 0.0 && cfl <= 1.0, "CFL must be in (0, 1], got {cfl}");
        match problem {
            ProblemN::AdvectionDiffusion { a, kappa, .. } => {
                let inv_h = (1u64 << n) as f64;
                let speed: f64 = a.iter().map(|v| v.abs()).sum();
                let rate = speed * inv_h + 2.0 * kappa * a.len() as f64 * inv_h * inv_h;
                assert!(rate > 0.0, "advection velocity and diffusion cannot both vanish");
                TimeGridN { dt: cfl / rate, steps }
            }
            ProblemN::Elliptic { .. } => TimeGridN { dt: 1.0, steps },
        }
    }

    /// The paper-like configuration: CFL 0.4 and `2^k` steps.
    pub fn paper_like(problem: &ProblemN, n: u32, log2_steps: u32) -> Self {
        Self::for_system(problem, n, 1u64 << log2_steps, 0.4)
    }

    /// Total simulated time.
    pub fn total_time(&self) -> f64 {
        self.dt * self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_solution_satisfies_separability() {
        let p = ProblemN::standard_advection(3);
        // At t = 0 the solution is the plain product of sines.
        let x = [0.3, 0.1, 0.7];
        let want = (2.0 * PI * 0.3).sin() * (2.0 * PI * 0.1).sin() * (2.0 * PI * 0.7).sin();
        assert!((p.exact(&x, 0.0) - want).abs() < 1e-14);
        // Amplitude decays in time (diffusion) while transporting.
        let later = p.exact(&[0.3 + 0.1, 0.1 + 0.1, 0.7 + 0.1], 0.1);
        assert!(later.abs() < want.abs());
    }

    #[test]
    fn elliptic_rhs_matches_minus_laplacian() {
        let p = ProblemN::standard_elliptic(3);
        // −Δ(Π sin) = (2π)²·3·Π sin for unit wave numbers.
        let x = [0.2, 0.4, 0.6];
        let lam = (2.0 * PI).powi(2) * 3.0;
        assert!((p.rhs(&x) - lam * p.exact(&x, 0.0)).abs() < 1e-10);
    }

    #[test]
    fn dt_respects_combined_stability_bound() {
        let p = ProblemN::standard_advection(3);
        let tg = TimeGridN::for_system(&p, 4, 10, 0.4);
        let inv_h = 16.0;
        let rate = 3.0 * inv_h + 2.0 * 0.02 * 3.0 * inv_h * inv_h;
        assert!((tg.dt - 0.4 / rate).abs() < 1e-15);
    }

    #[test]
    fn elliptic_timegrid_counts_sweeps() {
        let p = ProblemN::standard_elliptic(3);
        let tg = TimeGridN::paper_like(&p, 4, 5);
        assert_eq!(tg.steps, 32);
    }
}
