//! Explicitly vectorized row kernels, bitwise-pinned to the scalar
//! references, plus the kernel-selection knobs.
//!
//! ## Why operation order is preserved
//!
//! The fault-recovery machinery recomputes lost state from checkpoints or
//! initial conditions and relies on the solvers being **deterministic to
//! the bit** (see `tests/equivalence.rs` and DESIGN.md §13). IEEE-754
//! arithmetic is not associative, so a vectorized kernel is only admissible
//! if every output point evaluates *the same expression in the same
//! order* as the scalar reference. The kernels here satisfy that by
//! construction:
//!
//! * each SIMD lane evaluates the identical chain of `+`/`-`/`*` the
//!   scalar loop evaluates for that point — lanes are element-wise, no
//!   horizontal operations, no reassociation;
//! * **no FMA**: a fused multiply-add rounds once where `mul` + `add`
//!   round twice, which would change low bits, so the code never uses
//!   fused intrinsics and the portable lane type sticks to `*` and `+`
//!   (Rust never contracts float expressions implicitly);
//! * the scalar tail (widths not divisible by the lane count) runs the
//!   very same expression, so a row may be split between vector body and
//!   tail at any point without changing a single bit.
//!
//! Because of this, *any* mix of scalar and SIMD stepping — including a
//! recompute after a failure on a machine that selected a different ISA
//! backend — produces bit-identical grids. The proptests in
//! `tests/kernel_props.rs` pin this across random sizes, coefficients
//! and ragged widths for all three stencils.
//!
//! ## Backends
//!
//! One generic lane-parallel body per stencil, instantiated over:
//!
//! * [`F64x4`] — a portable `[f64; 4]` element-wise lane type the
//!   compiler auto-vectorizes (SSE2 pairs at baseline, `ymm` inside the
//!   AVX2-enabled wrapper);
//! * `F64x8` — eight `f64` lanes over AVX-512 intrinsics (x86-64 only).
//!
//! The backend is picked once per process by runtime feature detection,
//! overridable with `FTSG_SIMD=portable|avx2|avx512` for A/B testing;
//! `FTSG_KERNEL=scalar` bypasses SIMD entirely and forces the reference
//! rows (the default is the fast path — it is bitwise-identical anyway).

use std::ops::{Add, Mul, Sub};
use std::sync::OnceLock;

use crate::laxwendroff::LwCoef;
use crate::upwind::UpwindCoef;

// ---------------------------------------------------------------------
// Lane types
// ---------------------------------------------------------------------

/// Element-wise `f64` lane bundle: exactly the scalar `+`/`-`/`*` per
/// lane, nothing cross-lane, nothing fused.
pub(crate) trait Lanes:
    Copy + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self>
{
    /// Lane count.
    const N: usize;
    /// All lanes set to `v`.
    fn splat(v: f64) -> Self;
    /// Unaligned load of `Self::N` consecutive values.
    ///
    /// # Safety
    /// `p` must be valid for reads of `Self::N` `f64`s.
    unsafe fn load(p: *const f64) -> Self;
    /// Unaligned store of `Self::N` consecutive values.
    ///
    /// # Safety
    /// `p` must be valid for writes of `Self::N` `f64`s.
    unsafe fn store(self, p: *mut f64);
}

/// Portable four-lane bundle. Plain array arithmetic: LLVM lowers it to
/// SSE2 pairs at the x86-64 baseline and to 256-bit `ymm` ops inside the
/// `#[target_feature(enable = "avx2")]` wrappers below; on other
/// architectures it lowers to whatever vector ISA is available.
#[derive(Clone, Copy)]
pub(crate) struct F64x4([f64; 4]);

macro_rules! elementwise_op {
    ($t:ident, $n:expr, $trait:ident, $m:ident, $op:tt) => {
        impl $trait for $t {
            type Output = $t;
            #[inline(always)]
            fn $m(self, o: $t) -> $t {
                let mut r = [0.0; $n];
                let mut i = 0;
                while i < $n {
                    r[i] = self.0[i] $op o.0[i];
                    i += 1;
                }
                $t(r)
            }
        }
    };
}
elementwise_op!(F64x4, 4, Add, add, +);
elementwise_op!(F64x4, 4, Sub, sub, -);
elementwise_op!(F64x4, 4, Mul, mul, *);

impl Lanes for F64x4 {
    const N: usize = 4;
    #[inline(always)]
    fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller guarantees 4 readable f64s at `p`.
        F64x4(unsafe { (p as *const [f64; 4]).read_unaligned() })
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller guarantees 4 writable f64s at `p`.
        unsafe { (p as *mut [f64; 4]).write_unaligned(self.0) }
    }
}

/// Eight-lane AVX-512 bundle. Every operation is a single per-lane IEEE
/// instruction (`vaddpd`/`vsubpd`/`vmulpd` on `zmm`), so results are
/// bit-identical to the scalar loop; deliberately **no** `vfmadd`.
///
/// # Safety contract
/// `F64x8` values are only ever created and operated on inside the
/// `#[target_feature(enable = "avx512f")]` wrappers, reached through the
/// runtime-detected [`isa`] dispatch — executing these intrinsics
/// without AVX-512F would be UB (illegal instruction), so the type is
/// crate-private and must not escape that call tree.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
pub(crate) struct F64x8(std::arch::x86_64::__m512d);

#[cfg(target_arch = "x86_64")]
macro_rules! avx512_op {
    ($trait:ident, $m:ident, $intr:ident) => {
        impl $trait for F64x8 {
            type Output = F64x8;
            #[inline(always)]
            fn $m(self, o: F64x8) -> F64x8 {
                // SAFETY: see the F64x8 safety contract — only executed
                // under the avx512f-guarded dispatch path.
                F64x8(unsafe { std::arch::x86_64::$intr(self.0, o.0) })
            }
        }
    };
}
#[cfg(target_arch = "x86_64")]
avx512_op!(Add, add, _mm512_add_pd);
#[cfg(target_arch = "x86_64")]
avx512_op!(Sub, sub, _mm512_sub_pd);
#[cfg(target_arch = "x86_64")]
avx512_op!(Mul, mul, _mm512_mul_pd);

#[cfg(target_arch = "x86_64")]
impl Lanes for F64x8 {
    const N: usize = 8;
    #[inline(always)]
    fn splat(v: f64) -> Self {
        // SAFETY: see the F64x8 safety contract.
        F64x8(unsafe { std::arch::x86_64::_mm512_set1_pd(v) })
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller guarantees 8 readable f64s; avx512f per contract.
        F64x8(unsafe { std::arch::x86_64::_mm512_loadu_pd(p) })
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller guarantees 8 writable f64s; avx512f per contract.
        unsafe { std::arch::x86_64::_mm512_storeu_pd(p, self.0) }
    }
}

// ---------------------------------------------------------------------
// ISA selection
// ---------------------------------------------------------------------

/// The instruction-set backend the SIMD rows dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    Portable,
    Avx2,
    Avx512,
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        let want = std::env::var("FTSG_SIMD").unwrap_or_default();
        let best = if is_x86_feature_detected!("avx512f") {
            Isa::Avx512
        } else if is_x86_feature_detected!("avx2") {
            Isa::Avx2
        } else {
            Isa::Portable
        };
        // Env override is clamped to what the CPU can actually run.
        match want.as_str() {
            "portable" => Isa::Portable,
            "avx2" if best != Isa::Portable => Isa::Avx2,
            "avx512" if best == Isa::Avx512 => Isa::Avx512,
            _ => best,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Isa::Portable
    }
}

fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect_isa)
}

/// Label of the SIMD backend the process resolved to
/// (`"avx512"` / `"avx2"` / `"portable"`), for benchmark reports.
pub fn simd_isa_label() -> &'static str {
    match isa() {
        Isa::Avx512 => "avx512",
        Isa::Avx2 => "avx2",
        Isa::Portable => "portable",
    }
}

// ---------------------------------------------------------------------
// Lax–Wendroff
// ---------------------------------------------------------------------

/// Generic lane-parallel Lax–Wendroff body; the expression per point is
/// **identical, in evaluation order, to [`crate::laxwendroff::lax_wendroff_row`]**.
#[inline(always)]
fn lw_body<V: Lanes>(south: &[f64], center: &[f64], north: &[f64], coef: &LwCoef, out: &mut [f64]) {
    let nx = out.len();
    let south = &south[..nx + 2];
    let center = &center[..nx + 2];
    let north = &north[..nx + 2];
    let cx = V::splat(coef.cx);
    let cy = V::splat(coef.cy);
    let cxx = V::splat(coef.cxx);
    let cyy = V::splat(coef.cyy);
    let cxy = V::splat(coef.cxy);
    let two = V::splat(2.0);
    let sp = south.as_ptr();
    let cp = center.as_ptr();
    let np = north.as_ptr();
    let op = out.as_mut_ptr();
    let mut k = 0;
    while k + V::N <= nx {
        // SAFETY: k + V::N <= nx, and the input rows hold nx + 2 values,
        // so every load of N values starting at offset <= k + 2 is in
        // bounds; the store writes out[k .. k + N] <= nx.
        unsafe {
            let c = V::load(cp.add(k + 1));
            let w = V::load(cp.add(k));
            let e = V::load(cp.add(k + 2));
            let s = V::load(sp.add(k + 1));
            let n = V::load(np.add(k + 1));
            let sw = V::load(sp.add(k));
            let se = V::load(sp.add(k + 2));
            let nw = V::load(np.add(k));
            let ne = V::load(np.add(k + 2));
            let r = c
                + cx * (e - w)
                + cy * (n - s)
                + cxx * (e - two * c + w)
                + cyy * (n - two * c + s)
                + cxy * (ne - nw - se + sw);
            r.store(op.add(k));
        }
        k += V::N;
    }
    // Scalar tail: the reference expression verbatim.
    while k < nx {
        let c = center[k + 1];
        let w = center[k];
        let e = center[k + 2];
        let s = south[k + 1];
        let n = north[k + 1];
        let sw = south[k];
        let se = south[k + 2];
        let nw = north[k];
        let ne = north[k + 2];
        out[k] = c
            + coef.cx * (e - w)
            + coef.cy * (n - s)
            + coef.cxx * (e - 2.0 * c + w)
            + coef.cyy * (n - 2.0 * c + s)
            + coef.cxy * (ne - nw - se + sw);
        k += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn lw_avx2(south: &[f64], center: &[f64], north: &[f64], coef: &LwCoef, out: &mut [f64]) {
    lw_body::<F64x4>(south, center, north, coef, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn lw_avx512(south: &[f64], center: &[f64], north: &[f64], coef: &LwCoef, out: &mut [f64]) {
    lw_body::<F64x8>(south, center, north, coef, out)
}

/// Vectorized Lax–Wendroff row update: same contract and **bit-identical
/// results** as [`crate::laxwendroff::lax_wendroff_row`].
#[inline]
pub fn lax_wendroff_row_simd(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    coef: &LwCoef,
    out: &mut [f64],
) {
    match isa() {
        // SAFETY: isa() returned Avx512/Avx2 only after runtime detection.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { lw_avx512(south, center, north, coef, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { lw_avx2(south, center, north, coef, out) },
        _ => lw_body::<F64x4>(south, center, north, coef, out),
    }
}

// ---------------------------------------------------------------------
// Upwind
// ---------------------------------------------------------------------

/// Generic lane-parallel upwind body. The scalar reference branches per
/// point on `coef.cx >= 0.0` / `coef.cy >= 0.0`; both are row constants,
/// so hoisting them to const generics evaluates the exact same selected
/// expression per point (matching [`crate::upwind::upwind_row`]).
#[inline(always)]
fn upwind_body<V: Lanes, const XUP: bool, const YUP: bool>(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    coef: &UpwindCoef,
    out: &mut [f64],
) {
    let nx = out.len();
    let south = &south[..nx + 2];
    let center = &center[..nx + 2];
    let north = &north[..nx + 2];
    let cx = V::splat(coef.cx);
    let cy = V::splat(coef.cy);
    let sp = south.as_ptr();
    let cp = center.as_ptr();
    let np = north.as_ptr();
    let op = out.as_mut_ptr();
    let mut k = 0;
    while k + V::N <= nx {
        // SAFETY: same bounds argument as `lw_body`.
        unsafe {
            let c = V::load(cp.add(k + 1));
            let w = V::load(cp.add(k));
            let e = V::load(cp.add(k + 2));
            let s = V::load(sp.add(k + 1));
            let n = V::load(np.add(k + 1));
            let dx = if XUP { c - w } else { e - c };
            let dy = if YUP { c - s } else { n - c };
            let r = c - cx * dx - cy * dy;
            r.store(op.add(k));
        }
        k += V::N;
    }
    while k < nx {
        let c = center[k + 1];
        let w = center[k];
        let e = center[k + 2];
        let s = south[k + 1];
        let n = north[k + 1];
        let dx = if XUP { c - w } else { e - c };
        let dy = if YUP { c - s } else { n - c };
        out[k] = c - coef.cx * dx - coef.cy * dy;
        k += 1;
    }
}

macro_rules! upwind_signs {
    ($V:ty, $s:expr, $c:expr, $n:expr, $coef:expr, $out:expr) => {
        match ($coef.cx >= 0.0, $coef.cy >= 0.0) {
            (true, true) => upwind_body::<$V, true, true>($s, $c, $n, $coef, $out),
            (true, false) => upwind_body::<$V, true, false>($s, $c, $n, $coef, $out),
            (false, true) => upwind_body::<$V, false, true>($s, $c, $n, $coef, $out),
            (false, false) => upwind_body::<$V, false, false>($s, $c, $n, $coef, $out),
        }
    };
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn upwind_avx2(south: &[f64], center: &[f64], north: &[f64], coef: &UpwindCoef, out: &mut [f64]) {
    upwind_signs!(F64x4, south, center, north, coef, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn upwind_avx512(south: &[f64], center: &[f64], north: &[f64], coef: &UpwindCoef, out: &mut [f64]) {
    upwind_signs!(F64x8, south, center, north, coef, out)
}

/// Vectorized upwind row update: same contract and **bit-identical
/// results** as [`crate::upwind::upwind_row`].
#[inline]
pub fn upwind_row_simd(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    coef: &UpwindCoef,
    out: &mut [f64],
) {
    match isa() {
        // SAFETY: isa() returned Avx512/Avx2 only after runtime detection.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { upwind_avx512(south, center, north, coef, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { upwind_avx2(south, center, north, coef, out) },
        _ => upwind_signs!(F64x4, south, center, north, coef, out),
    }
}

// ---------------------------------------------------------------------
// FTCS (diffusion)
// ---------------------------------------------------------------------

/// Generic lane-parallel FTCS body; per-point expression identical to
/// [`crate::diffusion::ftcs_row`].
#[inline(always)]
fn ftcs_body<V: Lanes>(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    rx: f64,
    ry: f64,
    out: &mut [f64],
) {
    let nx = out.len();
    let south = &south[..nx + 2];
    let center = &center[..nx + 2];
    let north = &north[..nx + 2];
    let vrx = V::splat(rx);
    let vry = V::splat(ry);
    let two = V::splat(2.0);
    let sp = south.as_ptr();
    let cp = center.as_ptr();
    let np = north.as_ptr();
    let op = out.as_mut_ptr();
    let mut k = 0;
    while k + V::N <= nx {
        // SAFETY: same bounds argument as `lw_body`.
        unsafe {
            let c = V::load(cp.add(k + 1));
            let w = V::load(cp.add(k));
            let e = V::load(cp.add(k + 2));
            let s = V::load(sp.add(k + 1));
            let n = V::load(np.add(k + 1));
            let r = c + vrx * (e - two * c + w) + vry * (n - two * c + s);
            r.store(op.add(k));
        }
        k += V::N;
    }
    while k < nx {
        let c = center[k + 1];
        let w = center[k];
        let e = center[k + 2];
        let s = south[k + 1];
        let n_ = north[k + 1];
        out[k] = c + rx * (e - 2.0 * c + w) + ry * (n_ - 2.0 * c + s);
        k += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn ftcs_avx2(south: &[f64], center: &[f64], north: &[f64], rx: f64, ry: f64, out: &mut [f64]) {
    ftcs_body::<F64x4>(south, center, north, rx, ry, out)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn ftcs_avx512(south: &[f64], center: &[f64], north: &[f64], rx: f64, ry: f64, out: &mut [f64]) {
    ftcs_body::<F64x8>(south, center, north, rx, ry, out)
}

/// Vectorized FTCS row update: same contract and **bit-identical
/// results** as [`crate::diffusion::ftcs_row`].
#[inline]
pub fn ftcs_row_simd(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    rx: f64,
    ry: f64,
    out: &mut [f64],
) {
    match isa() {
        // SAFETY: isa() returned Avx512/Avx2 only after runtime detection.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { ftcs_avx512(south, center, north, rx, ry, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { ftcs_avx2(south, center, north, rx, ry, out) },
        _ => ftcs_body::<F64x4>(south, center, north, rx, ry, out),
    }
}

// ---------------------------------------------------------------------
// Kernel selection knobs
// ---------------------------------------------------------------------

/// Which row-kernel formulation the solvers step with. Both produce
/// bit-identical grids; the choice only affects speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// The scalar reference rows kept from PR 1.
    Scalar,
    /// The vectorized rows in this module (default).
    #[default]
    Simd,
}

impl KernelKind {
    /// Short label ("scalar" / "simd") for reports and CI lanes.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
        }
    }

    /// Both kinds, for mode-matrix tests.
    pub fn all() -> [KernelKind; 2] {
        [KernelKind::Scalar, KernelKind::Simd]
    }
}

/// Per-solver kernel configuration: formulation plus optional intra-rank
/// row-band parallelism (see [`crate::bands::BandPool`]).
///
/// Environment knobs (read by [`KernelConfig::from_env`] /
/// [`KernelConfig::global`], which [`AppConfig`]-level plumbing and the
/// solver constructors default to):
///
/// * `FTSG_KERNEL=scalar|simd` — formulation (default `simd`);
/// * `FTSG_BANDS=N` — split big sub-grids into `N` row bands stepped by
///   a shared worker pool (default `0` = off);
/// * `FTSG_BAND_MIN_CELLS=C` — only band sub-grids with at least `C`
///   interior cells (default `65536`), so tiny distributed blocks never
///   pay dispatch overhead.
///
/// `AppConfig`: `ftsg_core::AppConfig`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Scalar reference or vectorized rows.
    pub kind: KernelKind,
    /// Number of row bands a large interior is split into (`0`/`1` =
    /// step monolithically on the calling thread).
    pub bands: usize,
    /// Minimum interior cell count before banding kicks in.
    pub band_min_cells: usize,
}

/// Default banding threshold: a 256×256 interior.
pub const DEFAULT_BAND_MIN_CELLS: usize = 65536;

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            kind: KernelKind::default(),
            bands: 0,
            band_min_cells: DEFAULT_BAND_MIN_CELLS,
        }
    }
}

impl KernelConfig {
    /// Scalar reference rows, no banding (the PR 1 behavior).
    pub fn scalar() -> Self {
        KernelConfig { kind: KernelKind::Scalar, ..KernelConfig::default() }
    }

    /// Vectorized rows, no banding.
    pub fn simd() -> Self {
        KernelConfig { kind: KernelKind::Simd, ..KernelConfig::default() }
    }

    /// Replace the band count (applies above [`Self::band_min_cells`]).
    pub fn with_bands(mut self, bands: usize) -> Self {
        self.bands = bands;
        self
    }

    /// Replace the banding size threshold.
    pub fn with_band_min_cells(mut self, cells: usize) -> Self {
        self.band_min_cells = cells;
        self
    }

    /// Read the `FTSG_KERNEL` / `FTSG_BANDS` / `FTSG_BAND_MIN_CELLS`
    /// environment knobs (unset or unparsable values fall back to the
    /// defaults).
    pub fn from_env() -> Self {
        let mut cfg = KernelConfig::default();
        match std::env::var("FTSG_KERNEL").as_deref() {
            Ok("scalar") => cfg.kind = KernelKind::Scalar,
            Ok("simd") => cfg.kind = KernelKind::Simd,
            _ => {}
        }
        if let Ok(v) = std::env::var("FTSG_BANDS") {
            if let Ok(b) = v.parse::<usize>() {
                cfg.bands = b;
            }
        }
        if let Ok(v) = std::env::var("FTSG_BAND_MIN_CELLS") {
            if let Ok(c) = v.parse::<usize>() {
                cfg.band_min_cells = c;
            }
        }
        cfg
    }

    /// The process-wide configuration, resolved from the environment once
    /// (solver constructors default to this).
    pub fn global() -> Self {
        static CFG: OnceLock<KernelConfig> = OnceLock::new();
        *CFG.get_or_init(KernelConfig::from_env)
    }

    /// How many bands to step an `cells`-cell interior of `rows` rows
    /// with: `1` (monolithic) unless banding is enabled and the interior
    /// is big enough; never more bands than rows.
    pub fn bands_for(&self, cells: usize, rows: usize) -> usize {
        if self.bands < 2 || cells < self.band_min_cells {
            1
        } else {
            self.bands.min(rows).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_is_elementwise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([0.5, 0.25, -1.0, 2.0]);
        let r = (a + b) * b - a;
        for i in 0..4 {
            let expect = (a.0[i] + b.0[i]) * b.0[i] - a.0[i];
            assert_eq!(r.0[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn simd_rows_match_scalar_on_a_ragged_row() {
        // One direct row-level check per stencil (the broad sweep lives
        // in tests/kernel_props.rs); nx = 13 exercises body + tail.
        let nx = 13;
        let row: Vec<f64> = (0..3 * (nx + 2)).map(|k| (k as f64 * 0.37).sin()).collect();
        let (s, rest) = row.split_at(nx + 2);
        let (c, n) = rest.split_at(nx + 2);

        let lw = LwCoef { cx: 0.1, cy: -0.2, cxx: 0.01, cyy: 0.02, cxy: -0.005 };
        let mut a = vec![0.0; nx];
        let mut b = vec![0.0; nx];
        crate::laxwendroff::lax_wendroff_row(s, c, n, &lw, &mut a);
        lax_wendroff_row_simd(s, c, n, &lw, &mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        for (cx, cy) in [(0.3, 0.4), (-0.3, 0.4), (0.3, -0.4), (-0.3, -0.4)] {
            let up = UpwindCoef { cx, cy };
            crate::upwind::upwind_row(s, c, n, &up, &mut a);
            upwind_row_simd(s, c, n, &up, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "upwind cx={cx} cy={cy}"
            );
        }

        crate::diffusion::ftcs_row(s, c, n, 0.21, 0.17, &mut a);
        ftcs_row_simd(s, c, n, 0.21, 0.17, &mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn kernel_config_bands_for_respects_threshold_and_rows() {
        let cfg = KernelConfig::simd().with_bands(4).with_band_min_cells(100);
        assert_eq!(cfg.bands_for(99, 50), 1, "below threshold");
        assert_eq!(cfg.bands_for(100, 50), 4);
        assert_eq!(cfg.bands_for(100, 3), 3, "never more bands than rows");
        let off = KernelConfig::simd();
        assert_eq!(off.bands_for(1 << 20, 1024), 1, "bands default off");
    }

    #[test]
    fn isa_label_is_stable() {
        let l = simd_isa_label();
        assert!(["avx512", "avx2", "portable"].contains(&l), "{l}");
        assert_eq!(l, simd_isa_label());
    }
}
