//! The unsplit 2D Lax–Wendroff scheme.
//!
//! Second-order in space and time for the advection equation:
//!
//! ```text
//! u' = u − Δt (aₓ uₓ + a_y u_y)
//!        + Δt²/2 (aₓ² uₓₓ + 2 aₓ a_y uₓ_y + a_y² u_y_y)
//! ```
//!
//! with central differences on a nine-point stencil. The stencil kernel is
//! written against a **halo-padded block** so the same code path serves
//! both the single-owner solver here and the distributed
//! domain-decomposition solver in `ftsg-core` (whose halo exchange fills
//! the padding from neighbour ranks instead of periodic wrap).

use sparsegrid::Grid2;

use crate::bands::BandPool;
use crate::problem::AdvectionProblem;
use crate::simd::{KernelConfig, KernelKind};
use crate::stepper::PaddedField;

/// Precomputed stencil coefficients for one `(Δt, hx, hy, a)` combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LwCoef {
    /// −aₓΔt / (2hx)
    pub cx: f64,
    /// −a_yΔt / (2hy)
    pub cy: f64,
    /// aₓ²Δt² / (2hx²)
    pub cxx: f64,
    /// a_y²Δt² / (2hy²)
    pub cyy: f64,
    /// aₓa_yΔt² / (4hxhy)
    pub cxy: f64,
}

impl LwCoef {
    /// Coefficients for a given problem, mesh widths and timestep.
    pub fn new(p: &AdvectionProblem, hx: f64, hy: f64, dt: f64) -> Self {
        LwCoef {
            cx: -p.ax * dt / (2.0 * hx),
            cy: -p.ay * dt / (2.0 * hy),
            cxx: p.ax * p.ax * dt * dt / (2.0 * hx * hx),
            cyy: p.ay * p.ay * dt * dt / (2.0 * hy * hy),
            cxy: p.ax * p.ay * dt * dt / (4.0 * hx * hy),
        }
    }

    /// The 2D CFL number `|aₓ|Δt/hx + |a_y|Δt/hy` (stability needs ≲ 1).
    pub fn cfl(&self) -> f64 {
        2.0 * (self.cx.abs() + self.cy.abs())
    }
}

/// Apply one Lax–Wendroff update to a single output row.
///
/// `south`, `center`, `north` are three consecutive padded rows (each
/// `nx + 2` wide, where `nx = out.len()`); `out` receives the updated
/// interior row. Binding the three input rows and the output row to
/// slices of known relative length lets the compiler hoist every bounds
/// check out of the k-loop — this is the hot inner loop of the whole
/// solver.
#[inline]
pub fn lax_wendroff_row(
    south: &[f64],
    center: &[f64],
    north: &[f64],
    coef: &LwCoef,
    out: &mut [f64],
) {
    let nx = out.len();
    let south = &south[..nx + 2];
    let center = &center[..nx + 2];
    let north = &north[..nx + 2];
    for k in 0..nx {
        let c = center[k + 1];
        let w = center[k];
        let e = center[k + 2];
        let s = south[k + 1];
        let n = north[k + 1];
        let sw = south[k];
        let se = south[k + 2];
        let nw = north[k];
        let ne = north[k + 2];
        out[k] = c
            + coef.cx * (e - w)
            + coef.cy * (n - s)
            + coef.cxx * (e - 2.0 * c + w)
            + coef.cyy * (n - 2.0 * c + s)
            + coef.cxy * (ne - nw - se + sw);
    }
}

/// A Lax–Wendroff row kernel: `(south, center, north, coef, out)`.
pub type LwRowFn = fn(&[f64], &[f64], &[f64], &LwCoef, &mut [f64]);

/// The row function implementing `kind`: the scalar reference or the
/// vectorized rows of [`crate::simd`] — bitwise-identical by
/// construction, so the choice only affects speed.
pub fn lw_row_fn(kind: KernelKind) -> LwRowFn {
    match kind {
        KernelKind::Scalar => lax_wendroff_row,
        KernelKind::Simd => crate::simd::lax_wendroff_row_simd,
    }
}

/// Apply one Lax–Wendroff update to a halo-padded block.
///
/// `padded` has exactly `(nx + 2) × (ny + 2)` values, row-major with x
/// fastest; the halo (first/last row/column) must already contain the
/// neighbour values. `out` receives the `nx × ny` interior update.
/// Extents are asserted (in release too): the stride is implicit in
/// `nx`, so a mis-sized block would silently read stale halo data.
pub fn lax_wendroff_kernel(padded: &[f64], nx: usize, ny: usize, coef: &LwCoef, out: &mut [f64]) {
    let pnx = nx + 2;
    assert_eq!(padded.len(), pnx * (ny + 2), "padded extent mismatch for {nx}x{ny}");
    assert_eq!(out.len(), nx * ny, "output extent mismatch for {nx}x{ny}");
    for m in 0..ny {
        let south = &padded[m * pnx..][..pnx];
        let center = &padded[(m + 1) * pnx..][..pnx];
        let north = &padded[(m + 2) * pnx..][..pnx];
        lax_wendroff_row(south, center, north, coef, &mut out[m * nx..][..nx]);
    }
}

/// One periodic Lax–Wendroff step on a whole [`Grid2`] (single owner, no
/// domain decomposition): fills a padded copy by periodic wrap and runs
/// the kernel. Nodes `0` and `N` are identified (periodic), and both are
/// stored for interoperability with the combination code.
///
/// This is the straightforward rebuild-everything formulation, kept as
/// the bitwise reference for the double-buffered fast path used by
/// [`LocalSolver`] (see the `equivalence` tests and
/// `DESIGN.md`, "Hot-path memory discipline"); new code should step
/// through [`LocalSolver`] or [`crate::stepper::PaddedField`] instead.
pub fn lax_wendroff_step(
    grid: &mut Grid2,
    coef: &LwCoef,
    padded: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    // Interior is the fundamental domain [0, N) × [0, M): node N duplicates
    // node 0.
    let nx = grid.nx() - 1;
    let ny = grid.ny() - 1;
    let pnx = nx + 2;
    sparsegrid::ensure_len(padded, pnx * (ny + 2));
    let wrapx = |k: isize| -> usize { (k.rem_euclid(nx as isize)) as usize };
    let wrapy = |m: isize| -> usize { (m.rem_euclid(ny as isize)) as usize };
    for pm in 0..ny + 2 {
        let gm = wrapy(pm as isize - 1);
        for pk in 0..pnx {
            let gk = wrapx(pk as isize - 1);
            padded[pm * pnx + pk] = grid.at(gk, gm);
        }
    }
    sparsegrid::ensure_len(out, nx * ny);
    lax_wendroff_kernel(padded, nx, ny, coef, out);
    for m in 0..ny {
        for k in 0..nx {
            *grid.at_mut(k, m) = out[m * nx + k];
        }
    }
    // Re-assert the periodic seam.
    for m in 0..ny {
        let v = grid.at(0, m);
        *grid.at_mut(nx, m) = v;
    }
    for k in 0..grid.nx() {
        let v = grid.at(k, 0);
        *grid.at_mut(k, ny) = v;
    }
}

/// Single-owner advection solver for one component grid.
///
/// This is what each sub-grid's process group computes in aggregate; the
/// serial version is the correctness oracle for the distributed solver and
/// the workhorse of the error experiments.
///
/// ```
/// use advect2d::{AdvectionProblem, LocalSolver};
/// use sparsegrid::{l1_error_vs, LevelPair};
///
/// let problem = AdvectionProblem::standard();
/// let mut solver = LocalSolver::new(problem, LevelPair::new(6, 6), 0.2 / 64.0);
/// solver.run(64);
/// let err = l1_error_vs(solver.grid(), problem.exact_at(solver.time()));
/// assert!(err < 5e-3, "second-order scheme on a smooth problem: {err}");
/// ```
#[derive(Debug, Clone)]
pub struct LocalSolver {
    problem: AdvectionProblem,
    grid: Grid2,
    coef: LwCoef,
    dt: f64,
    steps_done: u64,
    field: PaddedField,
    kernel: KernelConfig,
}

impl LocalSolver {
    /// Initialize the solver on a grid level with a fixed timestep (the
    /// paper uses one `Δt` across all component grids for stability).
    /// The kernel configuration defaults to the process-wide
    /// [`KernelConfig::global`]; override with [`Self::with_kernel`].
    pub fn new(problem: AdvectionProblem, level: sparsegrid::LevelPair, dt: f64) -> Self {
        let grid = Grid2::from_fn(level, problem.initial());
        let (hx, hy) = grid.spacing();
        let coef = LwCoef::new(&problem, hx, hy, dt);
        let field = PaddedField::new(grid.nx() - 1, grid.ny() - 1);
        LocalSolver {
            problem,
            grid,
            coef,
            dt,
            steps_done: 0,
            field,
            kernel: KernelConfig::global(),
        }
    }

    /// Replace the kernel configuration (formulation + banding). All
    /// configurations produce bitwise-identical grids.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        self.run(1);
    }

    /// Advance `n` timesteps.
    ///
    /// The grid is loaded into the double-buffered padded field once,
    /// stepped `n` times (per step: an `O(perimeter)` halo refresh, the
    /// stencil, a buffer swap — no allocation, no full-field copies),
    /// and stored back once. Bitwise identical to `n` calls of the
    /// reference [`lax_wendroff_step`].
    pub fn run(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.field.load(&self.grid);
        let coef = self.coef;
        let row = lw_row_fn(self.kernel.kind);
        let (nx, ny) = (self.field.nx(), self.field.ny());
        let bands = self.kernel.bands_for(nx * ny, ny);
        for _ in 0..n {
            self.field.refresh_periodic_halo();
            if bands > 1 {
                self.field.step_banded(BandPool::global(), bands, |s, c, nn, out| {
                    row(s, c, nn, &coef, out)
                });
            } else {
                self.field.step(|s, c, nn, out| row(s, c, nn, &coef, out));
            }
        }
        self.field.store(&mut self.grid);
        self.steps_done += n;
    }

    /// Simulated time reached.
    pub fn time(&self) -> f64 {
        self.steps_done as f64 * self.dt
    }

    /// Timesteps taken so far.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// The current solution grid.
    pub fn grid(&self) -> &Grid2 {
        &self.grid
    }

    /// Replace the solution (data recovery path).
    pub fn set_grid(&mut self, grid: Grid2) {
        assert_eq!(grid.level(), self.grid.level(), "recovered grid level mismatch");
        self.grid = grid;
    }

    /// Rewind to a checkpointed state (Checkpoint/Restart path).
    pub fn restore(&mut self, grid: Grid2, steps_done: u64) {
        self.set_grid(grid);
        self.steps_done = steps_done;
    }

    /// The problem being solved.
    pub fn problem(&self) -> &AdvectionProblem {
        &self.problem
    }

    /// The fixed timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InitialCondition;
    use sparsegrid::{l1_error_vs, linf_error_vs, LevelPair};

    #[test]
    fn constant_state_is_a_fixed_point() {
        let p = AdvectionProblem { ax: 1.0, ay: 0.5, ic: InitialCondition::Constant(3.0) };
        let mut s = LocalSolver::new(p, LevelPair::new(4, 4), 0.01);
        s.run(25);
        assert_eq!(linf_error_vs(s.grid(), |_, _| 3.0), 0.0);
    }

    #[test]
    fn mass_is_conserved_on_periodic_domain() {
        let p = AdvectionProblem::standard();
        let mut s = LocalSolver::new(p, LevelPair::new(5, 5), 0.005);
        let mass = |g: &Grid2| -> f64 {
            // Sum over the fundamental domain (exclude duplicated seam).
            let mut acc = 0.0;
            for m in 0..g.ny() - 1 {
                for k in 0..g.nx() - 1 {
                    acc += g.at(k, m);
                }
            }
            acc
        };
        let m0 = mass(s.grid());
        s.run(100);
        let m1 = mass(s.grid());
        assert!((m0 - m1).abs() < 1e-10, "mass drift {m0} -> {m1}");
    }

    #[test]
    fn second_order_convergence() {
        // Halving h (and Δt) must shrink the error ~4×; accept ≥ 3×.
        let p = AdvectionProblem::standard();
        let err_at = |lev: u32| {
            let dt = 0.2 / (1u64 << lev) as f64; // CFL ≈ 0.4 at unit speed
            let steps = (0.25 / dt).round() as u64;
            let mut s = LocalSolver::new(p, LevelPair::new(lev, lev), dt);
            s.run(steps);
            let t = s.time();
            l1_error_vs(s.grid(), p.exact_at(t))
        };
        let e4 = err_at(4);
        let e5 = err_at(5);
        let e6 = err_at(6);
        assert!(e5 < e4 / 3.0, "e4={e4}, e5={e5}");
        assert!(e6 < e5 / 3.0, "e5={e5}, e6={e6}");
    }

    #[test]
    fn anisotropic_grids_converge_too() {
        let p = AdvectionProblem::standard();
        let dt = 0.2 / 64.0;
        let mut s = LocalSolver::new(p, LevelPair::new(6, 3), dt);
        s.run(32);
        let e = l1_error_vs(s.grid(), p.exact_at(s.time()));
        // Error dominated by the coarse direction (h = 1/8) but bounded.
        assert!(e < 0.05, "anisotropic error {e}");
    }

    #[test]
    fn periodic_seam_stays_consistent() {
        let p = AdvectionProblem::standard();
        let mut s = LocalSolver::new(p, LevelPair::new(4, 4), 0.01);
        s.run(10);
        let g = s.grid();
        for m in 0..g.ny() {
            assert_eq!(g.at(0, m), g.at(g.nx() - 1, m));
        }
        for k in 0..g.nx() {
            assert_eq!(g.at(k, 0), g.at(k, g.ny() - 1));
        }
    }

    #[test]
    fn cfl_reporting() {
        let p = AdvectionProblem::standard();
        let c = LwCoef::new(&p, 1.0 / 16.0, 1.0 / 16.0, 0.4 / 32.0);
        assert!((c.cfl() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn restore_rewinds_state() {
        let p = AdvectionProblem::standard();
        let mut s = LocalSolver::new(p, LevelPair::new(4, 4), 0.01);
        s.run(5);
        let saved = s.grid().clone();
        let saved_steps = s.steps_done();
        s.run(7);
        s.restore(saved.clone(), saved_steps);
        assert_eq!(s.steps_done(), 5);
        assert_eq!(s.grid(), &saved);
        // Recompute and confirm determinism.
        s.run(7);
        let a = s.grid().clone();
        let mut s2 = LocalSolver::new(p, LevelPair::new(4, 4), 0.01);
        s2.run(12);
        assert_eq!(a, *s2.grid());
    }
}
