//! Problem definition: velocity field, initial conditions, and the exact
//! analytic solution used for error measurement.

/// Initial conditions `u₀(x, y)` on the periodic unit square.
///
/// An enum (rather than a closure) so problems are `Copy + Send` and can
/// be shipped to every simulated MPI rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialCondition {
    /// `sin(2π kx·x) · sin(2π ky·y)` — smooth, periodic, zero-mean.
    SinProduct {
        /// x wavenumber.
        kx: u32,
        /// y wavenumber.
        ky: u32,
    },
    /// A smooth raised-cosine hill centred at (½, ½):
    /// `¼ (1 − cos 2πx)(1 − cos 2πy)`.
    CosHill,
    /// Constant value (trivially invariant under advection; useful in
    /// tests).
    Constant(f64),
}

impl InitialCondition {
    /// Evaluate `u₀` at a point (assumed already wrapped into `[0,1)²`).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        use std::f64::consts::TAU;
        match *self {
            InitialCondition::SinProduct { kx, ky } => {
                (TAU * kx as f64 * x).sin() * (TAU * ky as f64 * y).sin()
            }
            InitialCondition::CosHill => 0.25 * (1.0 - (TAU * x).cos()) * (1.0 - (TAU * y).cos()),
            InitialCondition::Constant(c) => c,
        }
    }
}

/// The scalar 2D advection problem `∂u/∂t + a·∇u = 0` with periodic
/// boundary conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvectionProblem {
    /// x-velocity.
    pub ax: f64,
    /// y-velocity.
    pub ay: f64,
    /// Initial condition.
    pub ic: InitialCondition,
}

/// Wrap a coordinate into `[0, 1)`.
#[inline]
pub fn wrap01(x: f64) -> f64 {
    let r = x.rem_euclid(1.0);
    if r == 1.0 {
        0.0
    } else {
        r
    }
}

impl AdvectionProblem {
    /// The configuration used throughout the experiments: unit diagonal
    /// velocity and a `sin·sin` initial condition.
    pub fn standard() -> Self {
        AdvectionProblem { ax: 1.0, ay: 1.0, ic: InitialCondition::SinProduct { kx: 1, ky: 1 } }
    }

    /// The exact solution `u(x, y, t) = u₀(x − aₓt, y − a_y t)` (wrapped).
    pub fn exact(&self, x: f64, y: f64, t: f64) -> f64 {
        self.ic.eval(wrap01(x - self.ax * t), wrap01(y - self.ay * t))
    }

    /// The initial condition as a closure of `(x, y)`.
    pub fn initial(&self) -> impl Fn(f64, f64) -> f64 + '_ {
        move |x, y| self.ic.eval(wrap01(x), wrap01(y))
    }

    /// The exact solution at a fixed time as a closure of `(x, y)`.
    pub fn exact_at(&self, t: f64) -> impl Fn(f64, f64) -> f64 + '_ {
        move |x, y| self.exact(x, y, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap01_behaviour() {
        assert_eq!(wrap01(0.0), 0.0);
        assert_eq!(wrap01(1.0), 0.0);
        assert!((wrap01(1.25) - 0.25).abs() < 1e-15);
        assert!((wrap01(-0.25) - 0.75).abs() < 1e-15);
        assert!((wrap01(-3.5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn exact_solution_translates_initial_condition() {
        let p = AdvectionProblem::standard();
        // After t, the value at x equals u0 at x - a t.
        let (x, y, t) = (0.3, 0.8, 0.45);
        let expect = p.ic.eval(wrap01(x - t), wrap01(y - t));
        assert!((p.exact(x, y, t) - expect).abs() < 1e-15);
    }

    #[test]
    fn exact_solution_is_time_periodic_for_unit_velocity() {
        let p = AdvectionProblem::standard();
        for &(x, y) in &[(0.1, 0.2), (0.7, 0.9), (0.5, 0.5)] {
            assert!((p.exact(x, y, 1.0) - p.exact(x, y, 0.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn initial_conditions_evaluate() {
        let s = InitialCondition::SinProduct { kx: 1, ky: 1 };
        assert!(s.eval(0.0, 0.5).abs() < 1e-15);
        assert!((s.eval(0.25, 0.25) - 1.0).abs() < 1e-15);
        let h = InitialCondition::CosHill;
        assert!((h.eval(0.5, 0.5) - 1.0).abs() < 1e-15);
        assert!(h.eval(0.0, 0.3).abs() < 1e-15);
        assert_eq!(InitialCondition::Constant(2.5).eval(0.9, 0.1), 2.5);
    }

    #[test]
    fn constant_ic_is_invariant() {
        let p = AdvectionProblem { ax: 2.0, ay: -1.0, ic: InitialCondition::Constant(7.0) };
        assert_eq!(p.exact(0.123, 0.456, 0.789), 7.0);
    }
}
