//! # advect2d — the paper's model PDE
//!
//! The scalar advection equation in two spatial dimensions,
//!
//! ```text
//! ∂u/∂t + a·∇u = 0   on  [0,1]² (periodic),
//! ```
//!
//! solved on regular (anisotropic) grids with an unsplit **Lax–Wendroff**
//! scheme [Lax & Wendroff 1960], exactly as the paper's sparse-grid
//! combination solver does on every sub-grid. The problem has a closed-form
//! solution (`u(x, t) = u₀(x − a t)` wrapped periodically), "which can be
//! calculated for advection from the initial conditions" — that is the
//! reference all error measurements compare against.

pub mod bands;
pub mod diffusion;
pub mod laxwendroff;
pub mod ndfield;
pub mod ndproblem;
pub mod ndsolve;
pub mod problem;
pub mod simd;
pub mod stepper;
pub mod upwind;

pub use bands::{band_range, BandPool};
pub use diffusion::{
    ftcs_kernel, ftcs_row, ftcs_row_fn, ftcs_step, DiffusionProblem, DiffusionSolver,
};
pub use laxwendroff::{
    lax_wendroff_kernel, lax_wendroff_row, lax_wendroff_step, lw_row_fn, LocalSolver, LwCoef,
};
pub use ndfield::PaddedFieldN;
pub use ndproblem::{ProblemN, TimeGridN};
pub use ndsolve::{
    jacobi_kernel, padded_rhs, upwind_diffusion_kernel, SolverN, UpwindDiffusionCoefN,
};
pub use problem::{AdvectionProblem, InitialCondition};
pub use simd::{
    ftcs_row_simd, lax_wendroff_row_simd, simd_isa_label, upwind_row_simd, KernelConfig, KernelKind,
};
pub use stepper::{PaddedField, TimeGrid};
pub use upwind::{
    upwind_kernel, upwind_row, upwind_row_fn, upwind_step_naive, UpwindCoef, UpwindSolver,
};
