//! The d-dimensional grid system — the generalization of the paper's
//! Fig. 1 layout ([`crate::scheme::GridSystem`]) to arbitrary dimension.
//!
//! For dimension `d`, full grid size `n` and level `l`, with
//! `m = n − l + 1` and `τ = n + (d−1)·m`:
//!
//! * **combining** grids: the top `d` layers of the truncated simplex
//!   `{ l : m ≤ l_i, |l|₁ ≤ τ }` — layer `q ∈ 0..d` holds every level
//!   with `|l|₁ = τ − q` and carries the classical coefficient
//!   `(−1)^q · C(d−1, q)` (for the truncated simplex, membership of
//!   `a + z` depends only on `|a|₁`, so this binomial formula is exact
//!   everywhere, truncation corners included);
//! * **duplicates** (RC layout): copies of the top layer (`q = 0`) —
//!   deeper layers recover by exact injection from a finer neighbour
//!   `l + e_0`, which always sits one layer up inside the simplex;
//! * **extra layers** (AC layout): layer `t ∈ {1, 2}` holds every level
//!   with `|l|₁ = τ − d − t + 1` above the floor — coefficient 0
//!   classically, recruited by the robust coefficients after losses.
//!
//! At `d = 2` the grid IDs, levels, roles and coefficients coincide with
//! [`crate::scheme::GridSystem`] exactly (a unit test pins this), so the
//! 2D fast path remains the reference instantiation.

use crate::ndim::{LevelSetN, LevelVecN};
use crate::scheme::Layout;

/// The role a sub-grid plays in the d-dimensional system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridRoleN {
    /// k-th grid of combining layer `q` (`|l|₁ = τ − q`), coefficient
    /// `(−1)^q · C(d−1, q)`.
    Combining {
        /// Layer depth below the top diagonal (0-based).
        q: usize,
        /// Position along the layer (lexicographic).
        k: usize,
    },
    /// Redundant copy of top-layer grid k (Resampling and Copying).
    Duplicate(usize),
    /// k-th grid of extra layer `t ∈ {1, 2}` (`|l|₁ = τ − d − t + 1`),
    /// coefficient 0 in the classical combination.
    ExtraLayer {
        /// Which extra layer (1 = directly below the last combining layer).
        t: usize,
        /// Position along the layer.
        k: usize,
    },
}

/// One sub-grid of the d-dimensional system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubGridN {
    /// Stable ID (combining grids first, layer by layer, then redundancy).
    pub id: usize,
    /// Anisotropy level vector.
    pub level: LevelVecN,
    /// Role in the combination.
    pub role: GridRoleN,
}

/// How a lost grid is recovered under Resampling and Copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcSourceN {
    /// Exact copy from the grid with the same level (duplicate ↔ original).
    Copy(usize),
    /// Down-sample (exact injection) from a finer combining grid.
    Resample(usize),
}

/// The complete d-dimensional grid system of one run.
#[derive(Debug, Clone)]
pub struct GridSystemN {
    dim: usize,
    n: u32,
    l: u32,
    layout: Layout,
    grids: Vec<SubGridN>,
}

/// Binomial coefficient `C(n, k)` in i64 (small arguments only).
fn choose(n: u32, k: u32) -> i64 {
    if k > n {
        return 0;
    }
    let mut r = 1i64;
    for i in 0..k {
        r = r * (n - i) as i64 / (i + 1) as i64;
    }
    r
}

/// All level vectors with `l_i ≥ floor` and `|l|₁ = sum`, lexicographic.
fn layer_levels(dim: usize, floor: u32, sum: u32) -> Vec<LevelVecN> {
    let mut out = Vec::new();
    let mut cur = vec![floor; dim];
    fn rec(cur: &mut LevelVecN, axis: usize, floor: u32, remaining: u32, out: &mut Vec<LevelVecN>) {
        if axis + 1 == cur.len() {
            if remaining >= floor {
                cur[axis] = remaining;
                out.push(cur.clone());
            }
            return;
        }
        let rest_min = floor * (cur.len() - axis - 1) as u32;
        let mut v = floor;
        while v + rest_min <= remaining {
            cur[axis] = v;
            rec(cur, axis + 1, floor, remaining - v, out);
            v += 1;
        }
    }
    if sum >= floor * dim as u32 {
        rec(&mut cur, 0, floor, sum, &mut out);
    }
    out
}

impl GridSystemN {
    /// Build the system for dimension `dim`, full grid size `n`, level `l`
    /// and a layout. Panicking wrapper around [`GridSystemN::try_new`].
    pub fn new(dim: usize, n: u32, l: u32, layout: Layout) -> Self {
        match Self::try_new(dim, n, l, layout) {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor — the validation boundary for user-supplied
    /// configuration. Rejects `dim < 1`, `l < 2`, `n < l`, and parameter
    /// combinations whose `τ = n + (d−1)m` overflows `u32`.
    pub fn try_new(dim: usize, n: u32, l: u32, layout: Layout) -> Result<Self, String> {
        if dim < 1 {
            return Err(format!("dimension must be ≥ 1, got {dim}"));
        }
        if l < 2 {
            return Err(format!("combination level must be ≥ 2, got {l}"));
        }
        if n < l {
            return Err(format!("full grid size n={n} must be ≥ level l={l}"));
        }
        let m = n - l + 1;
        let d32 = u32::try_from(dim).map_err(|_| format!("dimension {dim} exceeds u32 range"))?;
        let tau = (d32 - 1)
            .checked_mul(m)
            .and_then(|v| v.checked_add(n))
            .ok_or_else(|| format!("tau overflows u32 for dim={dim}, n={n}, l={l}"))?;
        // The simplex must be constructible too (floor · d ≤ tau etc.).
        LevelSetN::try_truncated_simplex(dim, m, tau)?;

        let mut grids = Vec::new();
        for q in 0..dim.min(l as usize) {
            for (k, level) in layer_levels(dim, m, tau - q as u32).into_iter().enumerate() {
                grids.push(SubGridN {
                    id: grids.len(),
                    level,
                    role: GridRoleN::Combining { q, k },
                });
            }
        }
        match layout {
            Layout::Plain => {}
            Layout::Duplicates => {
                let tops: Vec<LevelVecN> = layer_levels(dim, m, tau);
                for (k, level) in tops.into_iter().enumerate() {
                    grids.push(SubGridN { id: grids.len(), level, role: GridRoleN::Duplicate(k) });
                }
            }
            Layout::ExtraLayers => {
                for t in 1..=2usize {
                    let sum = tau as i64 - dim as i64 - t as i64 + 1;
                    if sum < (m as i64) * dim as i64 {
                        continue;
                    }
                    for (k, level) in layer_levels(dim, m, sum as u32).into_iter().enumerate() {
                        grids.push(SubGridN {
                            id: grids.len(),
                            level,
                            role: GridRoleN::ExtraLayer { t, k },
                        });
                    }
                }
            }
        }
        Ok(GridSystemN { dim, n, l, layout, grids })
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Full grid size `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Combination level `l`.
    pub fn l(&self) -> u32 {
        self.l
    }

    /// The layout this system was built with.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Minimum (truncation) level `m = n − l + 1` on every axis.
    pub fn min_level(&self) -> LevelVecN {
        vec![self.n - self.l + 1; self.dim]
    }

    /// The top-layer sum `τ = n + (d−1)·m`.
    pub fn tau(&self) -> u32 {
        let m = self.n - self.l + 1;
        self.n + (self.dim as u32 - 1) * m
    }

    /// All sub-grids, by ID.
    pub fn grids(&self) -> &[SubGridN] {
        &self.grids
    }

    /// Number of sub-grids.
    pub fn n_grids(&self) -> usize {
        self.grids.len()
    }

    /// One sub-grid by ID.
    pub fn grid(&self, id: usize) -> &SubGridN {
        &self.grids[id]
    }

    /// Classical combination coefficient of a grid:
    /// `(−1)^q · C(d−1, q)` on combining layer `q`, 0 for redundancy.
    pub fn classical_coefficient(&self, id: usize) -> i64 {
        match self.grids[id].role {
            GridRoleN::Combining { q, .. } => {
                let c = choose(self.dim as u32 - 1, q as u32);
                if q % 2 == 0 {
                    c
                } else {
                    -c
                }
            }
            GridRoleN::Duplicate(_) | GridRoleN::ExtraLayer { .. } => 0,
        }
    }

    /// The truncated simplex `J = { l : m ≤ l_i, |l|₁ ≤ τ }` behind the
    /// classical coefficients.
    pub fn classical_downset(&self) -> LevelSetN {
        let m = self.n - self.l + 1;
        LevelSetN::truncated_simplex(self.dim, m, self.tau())
    }

    /// Levels for which solution data exists (duplicates share their
    /// original's level).
    pub fn available_levels(&self) -> LevelSetN {
        let mut set = LevelSetN::new(self.dim);
        for g in &self.grids {
            set.insert(g.level.clone());
        }
        set
    }

    /// IDs of grids that participate in the classical combination.
    pub fn combination_ids(&self) -> Vec<usize> {
        self.grids.iter().filter(|g| self.classical_coefficient(g.id) != 0).map(|g| g.id).collect()
    }

    /// The ID of a combining grid at a given level.
    pub fn combining_id_at(&self, level: &[u32]) -> Option<usize> {
        self.grids
            .iter()
            .find(|g| g.level == level && self.classical_coefficient(g.id) != 0)
            .map(|g| g.id)
    }

    /// Under Resampling and Copying: where grid `id`'s data is recovered
    /// from. Top-layer grids pair with their duplicate (exact copy);
    /// deeper combining grids down-sample from the combining grid at
    /// `level + e_0`, which sits one layer up inside the simplex. `None`
    /// for layouts without a source or for extra-layer grids.
    pub fn rc_source(&self, id: usize) -> Option<RcSourceN> {
        match self.grids[id].role {
            GridRoleN::Combining { q: 0, k } => self
                .grids
                .iter()
                .find(|g| g.role == GridRoleN::Duplicate(k))
                .map(|g| RcSourceN::Copy(g.id)),
            GridRoleN::Combining { .. } => {
                let mut finer = self.grids[id].level.clone();
                finer[0] += 1;
                self.combining_id_at(&finer).map(RcSourceN::Resample)
            }
            GridRoleN::Duplicate(k) => self
                .grids
                .iter()
                .find(|g| g.role == GridRoleN::Combining { q: 0, k })
                .map(|g| RcSourceN::Copy(g.id)),
            GridRoleN::ExtraLayer { .. } => None,
        }
    }

    /// Pairs of grids that must not fail simultaneously under Resampling
    /// and Copying (grid ↔ its recovery source).
    pub fn rc_conflicts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for g in &self.grids {
            if let Some(RcSourceN::Copy(src) | RcSourceN::Resample(src)) = self.rc_source(g.id) {
                let pair = (g.id.min(src), g.id.max(src));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Total number of solution unknowns across all sub-grids.
    pub fn total_unknowns(&self) -> usize {
        self.grids
            .iter()
            .map(|g| g.level.iter().map(|&l| (1usize << l) + 1).product::<usize>())
            .sum()
    }

    /// Unknowns of the equivalent full isotropic grid `(2^n+1)^d`.
    pub fn full_grid_unknowns(&self) -> usize {
        ((1usize << self.n) + 1).pow(self.dim as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndim::gcp_coefficients_nd;
    use crate::scheme::GridSystem;

    #[test]
    fn d2_reproduces_the_specialized_system_exactly() {
        for layout in [Layout::Plain, Layout::Duplicates, Layout::ExtraLayers] {
            let nd = GridSystemN::new(2, 9, 4, layout);
            let d2 = GridSystem::new(9, 4, layout);
            assert_eq!(nd.n_grids(), d2.n_grids(), "{layout:?}");
            assert_eq!(nd.tau(), d2.tau());
            for g in d2.grids() {
                let ng = nd.grid(g.id);
                assert_eq!(ng.level, vec![g.level.i, g.level.j], "id {}", g.id);
                assert_eq!(
                    nd.classical_coefficient(g.id),
                    d2.classical_coefficient(g.id) as i64,
                    "id {}",
                    g.id
                );
            }
            // RC sources agree too.
            for g in d2.grids() {
                use crate::scheme::RcSource;
                let want = match d2.rc_source(g.id) {
                    None => None,
                    Some(RcSource::Copy(s)) => Some(RcSourceN::Copy(s)),
                    Some(RcSource::Resample(s)) => Some(RcSourceN::Resample(s)),
                };
                assert_eq!(nd.rc_source(g.id), want, "id {}", g.id);
            }
        }
    }

    #[test]
    fn chaos_shape_3d_counts() {
        // The 3D chaos shape: d=3, n=4, l=4 → m=1, τ=6.
        let plain = GridSystemN::new(3, 4, 4, Layout::Plain);
        assert_eq!(plain.tau(), 6);
        assert_eq!(plain.n_grids(), 10 + 6 + 3);
        let rc = GridSystemN::new(3, 4, 4, Layout::Duplicates);
        assert_eq!(rc.n_grids(), 19 + 10);
        let ac = GridSystemN::new(3, 4, 4, Layout::ExtraLayers);
        assert_eq!(ac.n_grids(), 19 + 1); // one extra grid: (1,1,1)
        assert_eq!(ac.grids().last().unwrap().level, vec![1, 1, 1]);
    }

    #[test]
    fn classical_coefficients_match_gcp_of_the_downset() {
        for (dim, n, l) in [(2usize, 8u32, 4u32), (3, 5, 3), (3, 4, 4), (4, 5, 4)] {
            let sys = GridSystemN::new(dim, n, l, Layout::Plain);
            let coeffs = gcp_coefficients_nd(&sys.classical_downset());
            assert_eq!(coeffs.len(), sys.n_grids(), "d={dim} n={n} l={l}");
            for g in sys.grids() {
                assert_eq!(
                    coeffs.get(&g.level).copied().unwrap_or(0),
                    sys.classical_coefficient(g.id),
                    "d={dim} grid {} at {:?}",
                    g.id,
                    g.level
                );
            }
        }
    }

    #[test]
    fn rc_resample_source_dominates_target() {
        let sys = GridSystemN::new(3, 5, 3, Layout::Duplicates);
        let mut resampled = 0;
        for g in sys.grids() {
            if let Some(RcSourceN::Resample(src)) = sys.rc_source(g.id) {
                resampled += 1;
                let s = &sys.grid(src).level;
                assert!(
                    g.level.iter().zip(s).all(|(a, b)| a <= b),
                    "grid {} {:?} not ≤ source {} {:?}",
                    g.id,
                    g.level,
                    src,
                    s
                );
            }
        }
        // Every non-top combining grid has a resample source.
        let deeper = sys
            .grids()
            .iter()
            .filter(|g| matches!(g.role, GridRoleN::Combining { q, .. } if q > 0))
            .count();
        assert_eq!(resampled, deeper);
    }

    #[test]
    fn rc_conflicts_pair_every_redundant_grid() {
        let sys = GridSystemN::new(3, 4, 4, Layout::Duplicates);
        let conflicts = sys.rc_conflicts();
        // 10 copy pairs + 9 resample pairs (layers 1 and 2).
        assert_eq!(conflicts.len(), 10 + 6 + 3);
    }

    #[test]
    fn try_new_rejects_bad_parameters() {
        assert!(GridSystemN::try_new(0, 4, 4, Layout::Plain).is_err());
        assert!(GridSystemN::try_new(3, 4, 1, Layout::Plain).is_err());
        assert!(GridSystemN::try_new(3, 3, 4, Layout::Plain).is_err());
        assert!(GridSystemN::try_new(usize::MAX, 8, 4, Layout::Plain).is_err());
        assert!(GridSystemN::try_new(3, 4, 4, Layout::Plain).is_ok());
    }

    #[test]
    fn sparse_grid_savings_in_3d() {
        let sys = GridSystemN::new(3, 8, 6, Layout::Plain);
        assert!(sys.full_grid_unknowns() > 10 * sys.total_unknowns());
    }
}
