//! Evaluating the combined sparse grid solution.
//!
//! The combination solution is `u^s(x) = Σ c_a · u_a(x)` where each
//! `u_a(x)` is the bilinear interpolant of component grid `a`. We
//! materialize it on a *target* grid; when every component level dominates
//! the target componentwise, evaluation is pure injection and introduces no
//! interpolation error (the solver samples onto the coarsest corner level
//! `(m, m)` for error measurement, and onto a lost grid's own level for
//! Alternate Combination data recovery).

use crate::grid2::Grid2;
use crate::level::LevelPair;

/// One term of a combination: a coefficient and the component grid.
#[derive(Debug, Clone, Copy)]
pub struct CombinationTerm<'a> {
    /// The combination coefficient `c_a`.
    pub coeff: f64,
    /// The component grid `u_a`.
    pub grid: &'a Grid2,
}

/// Evaluate `Σ coeff · grid(x)` on every node of a grid at `target` level.
pub fn combine_onto(target: LevelPair, terms: &[CombinationTerm<'_>]) -> Grid2 {
    let mut out = Grid2::zeros(target);
    combine_onto_into(&mut out, terms);
    out
}

/// [`combine_onto`] into reused storage: `out` (already at the target
/// level) is zeroed and accumulated in place, so a steady-state combine
/// round over preallocated partials performs no heap allocation. Bitwise
/// identical to [`combine_onto`] at `out.level()`.
pub fn combine_onto_into(out: &mut Grid2, terms: &[CombinationTerm<'_>]) {
    let target = out.level();
    for v in out.values_mut() {
        *v = 0.0;
    }
    let (hx, hy) = out.spacing();
    let (nx, ny) = (out.nx(), out.ny());
    for term in terms {
        let g = term.grid;
        let c = term.coeff;
        if c == 0.0 {
            continue;
        }
        if target.leq(&g.level()) {
            // Injection fast path: strides are exact powers of two.
            let sx = 1usize << (g.level().i - target.i);
            let sy = 1usize << (g.level().j - target.j);
            for m in 0..ny {
                for k in 0..nx {
                    *out.at_mut(k, m) += c * g.at(k * sx, m * sy);
                }
            }
        } else {
            for m in 0..ny {
                let y = m as f64 * hy;
                for k in 0..nx {
                    let x = k as f64 * hx;
                    *out.at_mut(k, m) += c * g.eval(x, y);
                }
            }
        }
    }
}

/// Evaluate the combination with **binomial-tree association**: each term
/// is materialized on the target level individually (exactly
/// [`combine_onto`] of a single term), then the partials are pairwise
/// summed with doubling stride — `parts[i] += parts[i + stride]` for
/// `stride = 1, 2, 4, …` — the association a log-depth reduction tree
/// over term owners produces. This is the *serial reference* for the
/// distributed tree combination: the distributed path must match it
/// bitwise, term list for term list.
///
/// For ≤ 2 terms the result is bitwise equal to the left-fold
/// [`combine_onto`]; beyond that the two differ only by floating-point
/// re-association (well inside the combination's discretization error).
pub fn combine_binomial(target: LevelPair, terms: &[CombinationTerm<'_>]) -> Grid2 {
    if terms.is_empty() {
        return Grid2::zeros(target);
    }
    let mut parts: Vec<Grid2> =
        terms.iter().map(|t| combine_onto(target, std::slice::from_ref(t))).collect();
    let mut stride = 1;
    while stride < parts.len() {
        let mut i = 0;
        while i + stride < parts.len() {
            let (head, tail) = parts.split_at_mut(i + stride);
            head[i].axpy(1.0, &tail[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
    parts.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::{gcp_coefficients, LevelSet};

    fn lv(i: u32, j: u32) -> LevelPair {
        LevelPair::new(i, j)
    }

    fn classical_terms(n: u32, l: u32, f: impl Fn(f64, f64) -> f64) -> Vec<(f64, Grid2)> {
        let m = n - l + 1;
        let tau = 2 * n - l + 1;
        let mut levels = Vec::new();
        for i in m..=n {
            for j in m..=n {
                if i + j <= tau {
                    levels.push(lv(i, j));
                }
            }
        }
        let set: LevelSet = levels.into_iter().collect();
        gcp_coefficients(&set).into_iter().map(|(l, c)| (c as f64, Grid2::from_fn(l, &f))).collect()
    }

    #[test]
    fn combination_of_bilinear_is_exact() {
        // x, y and xy are in every component grid's bilinear space, and the
        // coefficients sum to 1, so the combination must reproduce them.
        for f in [
            (|_x: f64, _y: f64| 1.0) as fn(f64, f64) -> f64,
            |x, _| x,
            |_, y| y,
            |x, y| 3.0 - 2.0 * x + y + 4.0 * x * y,
        ] {
            let terms = classical_terms(6, 3, f);
            let refs: Vec<CombinationTerm> =
                terms.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
            let combined = combine_onto(lv(4, 4), &refs);
            for m in 0..combined.ny() {
                for k in 0..combined.nx() {
                    let (x, y) = combined.coords(k, m);
                    assert!((combined.at(k, m) - f(x, y)).abs() < 1e-12, "at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn injection_path_used_for_dominated_target() {
        // Sample onto the corner level (m, m): every component dominates
        // it, so the combined values equal the coefficient-weighted nodal
        // sums exactly.
        let f = |x: f64, y: f64| (6.3 * x).sin() + (6.3 * y).cos();
        let terms = classical_terms(6, 3, f);
        let refs: Vec<CombinationTerm> =
            terms.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
        let target = lv(4, 4); // m = 6 - 3 + 1 = 4
        let combined = combine_onto(target, &refs);
        // Check one node by hand.
        let (x, y) = combined.coords(3, 7);
        let manual: f64 = terms.iter().map(|(c, g)| c * g.eval(x, y)).sum();
        assert!((combined.at(3, 7) - manual).abs() < 1e-12);
    }

    #[test]
    fn combination_error_decreases_with_level() {
        // Smooth-function convergence: the sparse grid combination error
        // at fixed l must shrink as n grows.
        let f =
            |x: f64, y: f64| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
        let err = |n: u32| {
            let l = 3;
            let terms = classical_terms(n, l, f);
            let refs: Vec<CombinationTerm> =
                terms.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
            // Evaluate on the *full* grid (n, n): its off-node points (with
            // respect to the anisotropic components) expose the sparse grid
            // interpolation error; nodes shared by all components would be
            // trivially exact because the grids are direct samples of f.
            let combined = combine_onto(lv(n, n), &refs);
            let mut e = 0.0f64;
            for mm in 0..combined.ny() {
                for k in 0..combined.nx() {
                    let (x, y) = combined.coords(k, mm);
                    e = e.max((combined.at(k, mm) - f(x, y)).abs());
                }
            }
            e
        };
        let e5 = err(5);
        let e7 = err(7);
        assert!(e7 < e5 / 2.0, "combination must converge: err(n=5)={e5}, err(n=7)={e7}");
    }

    #[test]
    fn binomial_association_matches_left_fold_up_to_reassociation() {
        let f = |x: f64, y: f64| (7.1 * x).sin() * (3.3 * y + 0.2).cos();
        let terms = classical_terms(6, 3, f);
        let refs: Vec<CombinationTerm> =
            terms.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
        let target = lv(4, 4);
        let fold = combine_onto(target, &refs);
        let tree = combine_binomial(target, &refs);
        assert_eq!(fold.level(), tree.level());
        for m in 0..fold.ny() {
            for k in 0..fold.nx() {
                let d = (fold.at(k, m) - tree.at(k, m)).abs();
                assert!(d < 1e-12, "reassociation error {d} at ({k},{m})");
            }
        }
        // One and two terms: associations coincide, so equality is bitwise.
        for n in 1..=2 {
            let short = &refs[..n];
            assert_eq!(combine_onto(target, short), combine_binomial(target, short));
        }
    }

    #[test]
    fn binomial_of_empty_terms_is_zeros() {
        let g = combine_binomial(lv(3, 3), &[]);
        assert!(g.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_coefficient_terms_are_skipped() {
        let g = Grid2::from_fn(lv(3, 3), |x, y| x * y);
        let combined = combine_onto(
            lv(2, 2),
            &[CombinationTerm { coeff: 0.0, grid: &g }, CombinationTerm { coeff: 1.0, grid: &g }],
        );
        assert!((combined.eval(0.5, 0.5) - 0.25).abs() < 1e-12);
    }
}
