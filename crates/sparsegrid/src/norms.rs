//! Error norms for solution verification.
//!
//! The paper measures "the average of the l1-norm of the difference
//! between the combined grid solution and exact analytical solution"; the
//! norms here are per-point averages so values are comparable across grid
//! resolutions.

use crate::grid2::Grid2;

/// Average `|u − f|` over the grid nodes (the paper's error metric).
pub fn l1_error_vs(grid: &Grid2, f: impl Fn(f64, f64) -> f64) -> f64 {
    let mut acc = 0.0;
    for m in 0..grid.ny() {
        for k in 0..grid.nx() {
            let (x, y) = grid.coords(k, m);
            acc += (grid.at(k, m) - f(x, y)).abs();
        }
    }
    acc / (grid.nx() * grid.ny()) as f64
}

/// Root-mean-square `|u − f|` over the grid nodes.
pub fn l2_error_vs(grid: &Grid2, f: impl Fn(f64, f64) -> f64) -> f64 {
    let mut acc = 0.0;
    for m in 0..grid.ny() {
        for k in 0..grid.nx() {
            let (x, y) = grid.coords(k, m);
            let d = grid.at(k, m) - f(x, y);
            acc += d * d;
        }
    }
    (acc / (grid.nx() * grid.ny()) as f64).sqrt()
}

/// Maximum `|u − f|` over the grid nodes.
pub fn linf_error_vs(grid: &Grid2, f: impl Fn(f64, f64) -> f64) -> f64 {
    let mut acc = 0.0f64;
    for m in 0..grid.ny() {
        for k in 0..grid.nx() {
            let (x, y) = grid.coords(k, m);
            acc = acc.max((grid.at(k, m) - f(x, y)).abs());
        }
    }
    acc
}

/// Average `|a − b|` between two same-level grids.
pub fn l1_grid_diff(a: &Grid2, b: &Grid2) -> f64 {
    assert_eq!(a.level(), b.level(), "l1_grid_diff level mismatch");
    let n = a.values().len();
    let acc: f64 = a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs()).sum();
    acc / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LevelPair;

    #[test]
    fn exact_grid_has_zero_error() {
        let f = |x: f64, y: f64| x * y + 1.0;
        let g = Grid2::from_fn(LevelPair::new(3, 4), f);
        assert_eq!(l1_error_vs(&g, f), 0.0);
        assert_eq!(l2_error_vs(&g, f), 0.0);
        assert_eq!(linf_error_vs(&g, f), 0.0);
    }

    #[test]
    fn constant_offset_shows_in_all_norms() {
        let g = Grid2::from_fn(LevelPair::new(2, 2), |_, _| 1.0);
        let f = |_: f64, _: f64| 0.75;
        assert!((l1_error_vs(&g, f) - 0.25).abs() < 1e-15);
        assert!((l2_error_vs(&g, f) - 0.25).abs() < 1e-15);
        assert!((linf_error_vs(&g, f) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn norm_ordering_l1_le_l2_le_linf() {
        let g = Grid2::from_fn(LevelPair::new(4, 4), |x, y| (x * 9.0).sin() * y);
        let f = |x: f64, y: f64| (x * 9.0).sin() * y * 0.9;
        let l1 = l1_error_vs(&g, f);
        let l2 = l2_error_vs(&g, f);
        let li = linf_error_vs(&g, f);
        assert!(l1 <= l2 + 1e-15);
        assert!(l2 <= li + 1e-15);
        assert!(l1 > 0.0);
    }

    #[test]
    fn grid_diff_matches_vs_function() {
        let f1 = |x: f64, y: f64| x + y;
        let f2 = |x: f64, y: f64| x + y + 0.5;
        let a = Grid2::from_fn(LevelPair::new(3, 3), f1);
        let b = Grid2::from_fn(LevelPair::new(3, 3), f2);
        assert!((l1_grid_diff(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn grid_diff_requires_same_level() {
        let a = Grid2::zeros(LevelPair::new(2, 2));
        let b = Grid2::zeros(LevelPair::new(2, 3));
        let _ = l1_grid_diff(&a, &b);
    }
}
