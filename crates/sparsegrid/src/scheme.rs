//! The paper's grid system (its Fig. 1): diagonal and lower-diagonal
//! combination grids plus the per-technique redundancy — duplicates for
//! *Resampling and Copying*, two extra layers for *Alternate Combination*.
//!
//! For full grid size `n` and level `l` (the paper uses `n = 13`, `l = 4`),
//! with `m = n − l + 1` and `τ = 2n − l + 1`:
//!
//! * **diagonal** grids (IDs `0..l`): `(m+k, n−k)`, `i+j = τ` — the `+1`
//!   terms of Eq. 1;
//! * **lower diagonal** grids (IDs `l..2l−1`): `(m+k, n−1−k)`, `i+j = τ−1`
//!   — the `−1` terms;
//! * **duplicates** (RC layout, IDs `2l−1..3l−1`): copies of the diagonal
//!   grids (the paper's IDs 7–10);
//! * **extra layers** (AC layout): layer `t ∈ {1, 2}` holds grids
//!   `(m+k, n−1−t−k)` with `i+j = τ−1−t` (the paper's IDs 11–13).

use crate::coeffs::LevelSet;
use crate::level::LevelPair;

/// Which redundancy a grid system carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Combination grids only (IDs 0..2l−1) — the Checkpoint/Restart
    /// configuration (paper grids 0–6).
    Plain,
    /// Plus one duplicate of every diagonal grid — the Resampling and
    /// Copying configuration (paper grids 0–10).
    Duplicates,
    /// Plus two extra layers of coarser grids — the Alternate Combination
    /// configuration (paper grids 0–6 and 11–13).
    ExtraLayers,
}

/// The role a sub-grid plays in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridRole {
    /// k-th grid of the top diagonal (`i + j = τ`), coefficient +1.
    Diagonal(usize),
    /// k-th grid of the lower diagonal (`i + j = τ − 1`), coefficient −1.
    LowerDiagonal(usize),
    /// Redundant copy of diagonal grid k (Resampling and Copying).
    Duplicate(usize),
    /// k-th grid of extra layer `layer ∈ {1, 2}` (`i + j = τ − 1 − layer`),
    /// coefficient 0 in the classical combination.
    ExtraLayer {
        /// Which extra layer (1 = directly below the lower diagonal).
        layer: usize,
        /// Position along the layer.
        k: usize,
    },
}

/// One sub-grid of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubGrid {
    /// Stable ID, numbered as in the paper's Fig. 1.
    pub id: usize,
    /// Anisotropy level.
    pub level: LevelPair,
    /// Role in the combination.
    pub role: GridRole,
}

/// How a lost grid is recovered under Resampling and Copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcSource {
    /// Exact copy from the grid with the same level (duplicate ↔ original).
    Copy(usize),
    /// Down-sample (exact injection) from a finer diagonal grid.
    Resample(usize),
}

/// The complete grid system of one run.
#[derive(Debug, Clone)]
pub struct GridSystem {
    n: u32,
    l: u32,
    layout: Layout,
    grids: Vec<SubGrid>,
}

impl GridSystem {
    /// Build the system for full grid size `n`, level `l` and a layout.
    ///
    /// Panics unless `2 ≤ l ≤ n` (the paper uses `l ≥ 4`, which guarantees
    /// both extra layers are non-empty).
    pub fn new(n: u32, l: u32, layout: Layout) -> Self {
        assert!(l >= 2, "combination level must be ≥ 2, got {l}");
        assert!(n >= l, "full grid size n={n} must be ≥ level l={l}");
        let m = n - l + 1;
        let mut grids = Vec::new();
        for k in 0..l as usize {
            grids.push(SubGrid {
                id: grids.len(),
                level: LevelPair::new(m + k as u32, n - k as u32),
                role: GridRole::Diagonal(k),
            });
        }
        for k in 0..(l - 1) as usize {
            grids.push(SubGrid {
                id: grids.len(),
                level: LevelPair::new(m + k as u32, n - 1 - k as u32),
                role: GridRole::LowerDiagonal(k),
            });
        }
        match layout {
            Layout::Plain => {}
            Layout::Duplicates => {
                for k in 0..l as usize {
                    grids.push(SubGrid {
                        id: grids.len(),
                        level: LevelPair::new(m + k as u32, n - k as u32),
                        role: GridRole::Duplicate(k),
                    });
                }
            }
            Layout::ExtraLayers => {
                for layer in 1..=2usize {
                    let count = l as i64 - 1 - layer as i64;
                    for k in 0..count.max(0) as usize {
                        grids.push(SubGrid {
                            id: grids.len(),
                            level: LevelPair::new(m + k as u32, n - 1 - layer as u32 - k as u32),
                            role: GridRole::ExtraLayer { layer, k },
                        });
                    }
                }
            }
        }
        GridSystem { n, l, layout, grids }
    }

    /// Full grid size `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Combination level `l`.
    pub fn l(&self) -> u32 {
        self.l
    }

    /// The layout this system was built with.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Minimum (truncation) level `m = n − l + 1`.
    pub fn min_level(&self) -> LevelPair {
        let m = self.n - self.l + 1;
        LevelPair::new(m, m)
    }

    /// The diagonal sum `τ = 2n − l + 1`.
    pub fn tau(&self) -> u32 {
        2 * self.n - self.l + 1
    }

    /// All sub-grids, by ID.
    pub fn grids(&self) -> &[SubGrid] {
        &self.grids
    }

    /// Number of sub-grids.
    pub fn n_grids(&self) -> usize {
        self.grids.len()
    }

    /// One sub-grid by ID.
    pub fn grid(&self, id: usize) -> &SubGrid {
        &self.grids[id]
    }

    /// Classical (Eq. 1) combination coefficient of a grid: +1 on the
    /// diagonal, −1 on the lower diagonal, 0 for redundancy grids.
    pub fn classical_coefficient(&self, id: usize) -> i32 {
        match self.grids[id].role {
            GridRole::Diagonal(_) => 1,
            GridRole::LowerDiagonal(_) => -1,
            GridRole::Duplicate(_) | GridRole::ExtraLayer { .. } => 0,
        }
    }

    /// The triangular downset `J = {(i,j) : m ≤ i,j ≤ n, i+j ≤ τ}` behind
    /// the classical coefficients.
    pub fn classical_downset(&self) -> LevelSet {
        let m = self.n - self.l + 1;
        let mut levels = Vec::new();
        for i in m..=self.n {
            for j in m..=self.n {
                if i + j <= self.tau() {
                    levels.push(LevelPair::new(i, j));
                }
            }
        }
        levels.into_iter().collect()
    }

    /// Levels for which solution data exists (one entry per distinct level:
    /// duplicates share their original's level).
    pub fn available_levels(&self) -> LevelSet {
        self.grids.iter().map(|g| g.level).collect()
    }

    /// IDs of grids that participate in the classical combination
    /// (diagonal + lower diagonal).
    pub fn combination_ids(&self) -> Vec<usize> {
        self.grids.iter().filter(|g| self.classical_coefficient(g.id) != 0).map(|g| g.id).collect()
    }

    /// The ID of the grid holding a given role, if present.
    pub fn id_of_role(&self, role: GridRole) -> Option<usize> {
        self.grids.iter().find(|g| g.role == role).map(|g| g.id)
    }

    /// The ID of a combining grid at a given level (diagonal/lower only).
    pub fn combining_id_at(&self, level: LevelPair) -> Option<usize> {
        self.grids
            .iter()
            .find(|g| g.level == level && self.classical_coefficient(g.id) != 0)
            .map(|g| g.id)
    }

    /// Under Resampling and Copying: where grid `id`'s data is recovered
    /// from (paper: 0↔7, 1↔8, 2↔9, 3↔10 by copy; 4←1, 5←2, 6←3 by
    /// resampling). `None` if the layout has no source (e.g. lower
    /// diagonals in the Plain layout, or extra-layer grids).
    pub fn rc_source(&self, id: usize) -> Option<RcSource> {
        match self.grids[id].role {
            GridRole::Diagonal(k) => self.id_of_role(GridRole::Duplicate(k)).map(RcSource::Copy),
            GridRole::Duplicate(k) => self.id_of_role(GridRole::Diagonal(k)).map(RcSource::Copy),
            GridRole::LowerDiagonal(k) => {
                // (m+k, n−1−k) is a restriction of diagonal k+1 = (m+k+1, n−1−k)?
                // No: of the diagonal with the same j, i.e. Diagonal(k+1) has
                // level (m+k+1, n−k−1) — same j, finer i. Exact injection.
                self.id_of_role(GridRole::Diagonal(k + 1)).map(RcSource::Resample)
            }
            GridRole::ExtraLayer { .. } => None,
        }
    }

    /// Total number of solution unknowns across all sub-grids (counting
    /// each grid's full `(2^i+1)(2^j+1)` nodes — the memory footprint of
    /// the system; duplicates and extra layers included).
    pub fn total_unknowns(&self) -> usize {
        self.grids.iter().map(|g| g.level.points()).sum()
    }

    /// Unknowns of the equivalent *full* isotropic grid `(2^n+1)²` — the
    /// grid the combination technique avoids solving on.
    pub fn full_grid_unknowns(&self) -> usize {
        LevelPair::new(self.n, self.n).points()
    }

    /// Pairs of grids that must not fail simultaneously under Resampling
    /// and Copying (the paper's constraint list: 3&6, 2&5, 1&4, 0&7, 1&8,
    /// 2&9, 3&10).
    pub fn rc_conflicts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for g in &self.grids {
            if let Some(RcSource::Copy(src) | RcSource::Resample(src)) = self.rc_source(g.id) {
                let pair = (g.id.min(src), g.id.max(src));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(i: u32, j: u32) -> LevelPair {
        LevelPair::new(i, j)
    }

    #[test]
    fn paper_fig1_layout_n13_l4() {
        let sys = GridSystem::new(13, 4, Layout::Duplicates);
        assert_eq!(sys.n_grids(), 11); // 0–10
        assert_eq!(sys.grid(0).level, lv(10, 13));
        assert_eq!(sys.grid(3).level, lv(13, 10));
        assert_eq!(sys.grid(4).level, lv(10, 12));
        assert_eq!(sys.grid(6).level, lv(12, 10));
        assert_eq!(sys.grid(7).level, lv(10, 13)); // duplicate of 0
        assert_eq!(sys.grid(10).level, lv(13, 10)); // duplicate of 3
        assert_eq!(sys.tau(), 23);
        assert_eq!(sys.min_level(), lv(10, 10));
    }

    #[test]
    fn paper_fig1_extra_layers() {
        let sys = GridSystem::new(13, 4, Layout::ExtraLayers);
        assert_eq!(sys.n_grids(), 10); // 0–6 plus 11–13 renumbered 7–9
        let extras: Vec<_> = sys
            .grids()
            .iter()
            .filter(|g| matches!(g.role, GridRole::ExtraLayer { .. }))
            .map(|g| g.level)
            .collect();
        assert_eq!(extras, vec![lv(10, 11), lv(11, 10), lv(10, 10)]);
    }

    #[test]
    fn plain_layout_is_the_checkpoint_configuration() {
        let sys = GridSystem::new(13, 4, Layout::Plain);
        assert_eq!(sys.n_grids(), 7); // 0–6
        assert_eq!(sys.combination_ids(), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn classical_coefficients_by_role() {
        let sys = GridSystem::new(9, 4, Layout::Duplicates);
        for g in sys.grids() {
            let c = sys.classical_coefficient(g.id);
            match g.role {
                GridRole::Diagonal(_) => assert_eq!(c, 1),
                GridRole::LowerDiagonal(_) => assert_eq!(c, -1),
                _ => assert_eq!(c, 0),
            }
        }
    }

    #[test]
    fn classical_downset_matches_gcp() {
        // The triangular downset's GCP coefficients are exactly the
        // classical per-grid coefficients.
        let sys = GridSystem::new(9, 4, Layout::Plain);
        let coeffs = crate::coeffs::gcp_coefficients(&sys.classical_downset());
        assert_eq!(coeffs.len(), 7);
        for g in sys.grids() {
            assert_eq!(
                coeffs.get(&g.level).copied().unwrap_or(0),
                sys.classical_coefficient(g.id),
                "grid {} at {}",
                g.id,
                g.level
            );
        }
    }

    #[test]
    fn rc_sources_match_paper_mapping() {
        let sys = GridSystem::new(13, 4, Layout::Duplicates);
        // 0 from 7, 7 from 0, ..., 4 from 1 (resample), ...
        assert_eq!(sys.rc_source(0), Some(RcSource::Copy(7)));
        assert_eq!(sys.rc_source(7), Some(RcSource::Copy(0)));
        assert_eq!(sys.rc_source(3), Some(RcSource::Copy(10)));
        assert_eq!(sys.rc_source(4), Some(RcSource::Resample(1)));
        assert_eq!(sys.rc_source(5), Some(RcSource::Resample(2)));
        assert_eq!(sys.rc_source(6), Some(RcSource::Resample(3)));
    }

    #[test]
    fn rc_resample_source_dominates_target() {
        // Resampling must be an exact injection: source level ≥ target.
        let sys = GridSystem::new(13, 4, Layout::Duplicates);
        for g in sys.grids() {
            if let Some(RcSource::Resample(src)) = sys.rc_source(g.id) {
                assert!(
                    g.level.leq(&sys.grid(src).level),
                    "grid {} {} not ≤ source {} {}",
                    g.id,
                    g.level,
                    src,
                    sys.grid(src).level
                );
            }
        }
    }

    #[test]
    fn rc_conflicts_match_paper_list() {
        let sys = GridSystem::new(13, 4, Layout::Duplicates);
        let conflicts = sys.rc_conflicts();
        // Paper: "process failures should not occur simultaneously on
        // sub-grids 3 and 6, or 2 and 5, or 1 and 4, or 0 and 7, or 1 and
        // 8, or 2 and 9, or 3 and 10".
        let expected = vec![(0, 7), (1, 4), (1, 8), (2, 5), (2, 9), (3, 6), (3, 10)];
        assert_eq!(conflicts, expected);
    }

    #[test]
    fn available_levels_include_extras_only_for_ac() {
        let plain = GridSystem::new(9, 4, Layout::Plain).available_levels();
        let ac = GridSystem::new(9, 4, Layout::ExtraLayers).available_levels();
        let m = 6;
        assert!(!plain.contains(&lv(m, m)));
        assert!(ac.contains(&lv(m, m)));
        assert_eq!(plain.len(), 7);
        assert_eq!(ac.len(), 10);
    }

    #[test]
    fn small_level_systems_degenerate_gracefully() {
        let sys = GridSystem::new(4, 2, Layout::ExtraLayers);
        // l = 2: 2 diagonal + 1 lower diagonal; layer 1 has l−2 = 0 grids.
        assert_eq!(sys.n_grids(), 3);
        let sys = GridSystem::new(5, 3, Layout::ExtraLayers);
        // l = 3: 3 + 2 + layer1 (1 grid) + layer2 (0 grids).
        assert_eq!(sys.n_grids(), 6);
    }

    #[test]
    fn unknown_counts_show_sparse_grid_savings() {
        // Savings grow with the level: the paper's shallow truncation
        // (l = 4) trims ~30 % off the full grid, while a deep combination
        // (l close to n) gives the classic orders-of-magnitude sparse-grid
        // reduction.
        let shallow = GridSystem::new(13, 4, Layout::Plain);
        assert!(shallow.full_grid_unknowns() > shallow.total_unknowns());
        let deep = GridSystem::new(13, 12, Layout::Plain);
        assert!(
            deep.full_grid_unknowns() > 100 * deep.total_unknowns(),
            "deep combination: {} vs {}",
            deep.total_unknowns(),
            deep.full_grid_unknowns()
        );
        let sys = GridSystem::new(13, 4, Layout::Plain);
        let sparse = sys.total_unknowns();
        // And redundancy costs what it should: RC roughly doubles the
        // diagonal storage.
        let rc = GridSystem::new(13, 4, Layout::Duplicates).total_unknowns();
        assert!(rc > sparse && rc < 2 * sparse + 1);
        // AC's extra layers are cheap.
        let ac = GridSystem::new(13, 4, Layout::ExtraLayers).total_unknowns();
        assert!(ac > sparse && (ac - sparse) < sparse / 2);
    }

    #[test]
    #[should_panic(expected = "must be ≥")]
    fn rejects_n_smaller_than_l() {
        let _ = GridSystem::new(3, 4, Layout::Plain);
    }
}
