//! Anisotropic d-dimensional component grids on the unit cube.
//!
//! [`GridN`] is the d-dimensional sibling of [`crate::Grid2`]: nodal
//! values on the `(2^{l_0}+1) × … × (2^{l_{d-1}}+1)` lattice over
//! `[0,1]^d`, stored row-major with axis 0 fastest (the same x-fastest
//! convention as the 2D path, so a d=2 `GridN` and a `Grid2` share the
//! exact memory layout). Evaluation anywhere in the cube is d-linear per
//! cell — the interpolant the combination technique is defined over.

use crate::ndim::LevelVecN;

/// Nodal values of one d-dimensional component grid.
///
/// ```
/// use sparsegrid::GridN;
///
/// // A 5 × 3 × 3 grid sampling f(x) = x0 + 2 x1 + 4 x2.
/// let g = GridN::from_fn(&[2, 1, 1], |x| x[0] + 2.0 * x[1] + 4.0 * x[2]);
/// assert_eq!(g.shape(), &[5, 3, 3]);
/// // Trilinear evaluation reproduces trilinear functions exactly.
/// assert!((g.eval(&[0.3, 0.7, 0.5]) - (0.3 + 1.4 + 2.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridN {
    level: LevelVecN,
    shape: Vec<usize>,
    stride: Vec<usize>,
    data: Vec<f64>,
}

/// Points per axis for a level: `2^l + 1` (both boundaries included).
pub fn points_of(l: u32) -> usize {
    (1usize << l) + 1
}

impl GridN {
    /// Zero-initialized grid at the given level vector.
    pub fn zeros(level: &[u32]) -> Self {
        assert!(!level.is_empty(), "level vector must be non-empty");
        let shape: Vec<usize> = level.iter().map(|&l| points_of(l)).collect();
        let mut stride = vec![1usize; shape.len()];
        for i in 1..shape.len() {
            stride[i] = stride[i - 1] * shape[i - 1];
        }
        let total = stride.last().unwrap() * shape.last().unwrap();
        GridN { level: level.to_vec(), shape, stride, data: vec![0.0; total] }
    }

    /// Grid sampled from a function of `x ∈ [0,1]^d`.
    pub fn from_fn(level: &[u32], f: impl Fn(&[f64]) -> f64) -> Self {
        let mut g = GridN::zeros(level);
        g.fill_from(f);
        g
    }

    /// Rebuild from raw parts (checkpoint restore, message reassembly).
    /// Errors if the buffer length does not match the level.
    pub fn from_raw(level: &[u32], data: Vec<f64>) -> Result<Self, String> {
        let probe = GridN::zeros(level);
        if data.len() != probe.data.len() {
            return Err(format!(
                "grid {level:?}: expected {} values, got {}",
                probe.data.len(),
                data.len()
            ));
        }
        Ok(GridN { data, ..probe })
    }

    /// The grid's level vector.
    pub fn level(&self) -> &[u32] {
        &self.level
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.level.len()
    }

    /// Points per axis.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Row-major strides (axis 0 fastest).
    pub fn strides(&self) -> &[usize] {
        &self.stride
    }

    /// Mesh width per axis.
    pub fn spacing(&self) -> Vec<f64> {
        self.shape.iter().map(|&n| 1.0 / (n - 1) as f64).collect()
    }

    /// Linear index of a multi-index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dim());
        idx.iter().zip(&self.stride).map(|(&k, &s)| k * s).sum()
    }

    /// Nodal value at a multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Mutable nodal value at a multi-index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let o = self.offset(idx);
        &mut self.data[o]
    }

    /// Raw values, row-major with axis 0 fastest.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The coordinates of a node.
    pub fn coords(&self, idx: &[usize]) -> Vec<f64> {
        idx.iter().zip(&self.shape).map(|(&k, &n)| k as f64 / (n - 1) as f64).collect()
    }

    /// d-linear evaluation at an arbitrary point of `[0,1]^d` (clamped).
    pub fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        let d = self.dim();
        // Base corner + fractional offset per axis.
        let mut base = vec![0usize; d];
        let mut frac = vec![0.0f64; d];
        for i in 0..d {
            let f = x[i].clamp(0.0, 1.0) * (self.shape[i] - 1) as f64;
            let k0 = (f.floor() as usize).min(self.shape[i] - 2);
            base[i] = k0;
            frac[i] = f - k0 as f64;
        }
        let base_off = self.offset(&base);
        let mut acc = 0.0;
        for corner in 0..(1usize << d) {
            let mut w = 1.0;
            let mut off = base_off;
            for (i, &fr) in frac.iter().enumerate() {
                if (corner >> i) & 1 == 1 {
                    w *= fr;
                    off += self.stride[i];
                } else {
                    w *= 1.0 - fr;
                }
            }
            acc += w * self.data[off];
        }
        acc
    }

    /// Exact restriction (injection) onto a coarser-or-equal level: every
    /// target node coincides with a source node. Panics if `target` is
    /// finer than this grid along any axis.
    pub fn restrict_to(&self, target: &[u32]) -> GridN {
        assert_eq!(target.len(), self.dim());
        assert!(
            target.iter().zip(&self.level).all(|(&t, &s)| t <= s),
            "restrict_to: target {target:?} is not ≤ source {:?}",
            self.level
        );
        let steps: Vec<usize> =
            target.iter().zip(&self.level).map(|(&t, &s)| 1usize << (s - t)).collect();
        let mut out = GridN::zeros(target);
        let mut idx = vec![0usize; self.dim()];
        let mut src = vec![0usize; self.dim()];
        loop {
            for i in 0..idx.len() {
                src[i] = idx[i] * steps[i];
            }
            let o = out.offset(&idx);
            out.data[o] = self.at(&src);
            if !advance(&mut idx, &out.shape) {
                return out;
            }
        }
    }

    /// Sample (d-linearly) onto an arbitrary level — exact where nodes
    /// coincide, interpolating otherwise. Used by the Alternate
    /// Combination technique to materialize a recovered grid from the
    /// combined solution.
    pub fn sample_to(&self, target: &[u32]) -> GridN {
        let mut out = GridN::zeros(target);
        let mut idx = vec![0usize; out.dim()];
        loop {
            let x = out.coords(&idx);
            let o = out.offset(&idx);
            out.data[o] = self.eval(&x);
            if !advance(&mut idx, &out.shape.clone()) {
                return out;
            }
        }
    }

    /// `self += coeff * other`, requiring identical levels.
    pub fn axpy(&mut self, coeff: f64, other: &GridN) {
        assert_eq!(self.level, other.level, "axpy level mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += coeff * b;
        }
    }

    /// Fill from a function (reusing the allocation).
    pub fn fill_from(&mut self, f: impl Fn(&[f64]) -> f64) {
        let shape = self.shape.clone();
        let mut idx = vec![0usize; self.dim()];
        loop {
            let x = self.coords(&idx);
            let o = self.offset(&idx);
            self.data[o] = f(&x);
            if !advance(&mut idx, &shape) {
                return;
            }
        }
    }

    /// Mean absolute nodal difference against a reference function —
    /// the d-dimensional analogue of the 2D L1 error norm.
    pub fn l1_error_vs(&self, f: impl Fn(&[f64]) -> f64) -> f64 {
        let mut idx = vec![0usize; self.dim()];
        let mut sum = 0.0;
        loop {
            let x = self.coords(&idx);
            sum += (self.at(&idx) - f(&x)).abs();
            if !advance(&mut idx, &self.shape) {
                return sum / self.data.len() as f64;
            }
        }
    }

    /// Byte size of the nodal data (checkpoint sizing).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

/// Odometer increment over a multi-index bounded by `shape`
/// (axis 0 fastest). Returns false once the index space is exhausted.
#[inline]
pub fn advance(idx: &mut [usize], shape: &[usize]) -> bool {
    for i in 0..idx.len() {
        idx[i] += 1;
        if idx[i] < shape[i] {
            return true;
        }
        idx[i] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid2::Grid2;
    use crate::level::LevelPair;

    #[test]
    fn construction_and_indexing() {
        let g = GridN::from_fn(&[2, 1, 3], |x| x[0] + 10.0 * x[1] + 100.0 * x[2]);
        assert_eq!(g.shape(), &[5, 3, 9]);
        assert_eq!(g.at(&[0, 0, 0]), 0.0);
        assert_eq!(g.at(&[4, 0, 0]), 1.0);
        assert!((g.at(&[2, 1, 4]) - (0.5 + 5.0 + 50.0)).abs() < 1e-12);
    }

    #[test]
    fn d2_layout_matches_grid2_bitwise() {
        // The d=2 instantiation must share Grid2's exact memory layout —
        // the nd path can hand its buffers to the tuned 2D kernels.
        let f = |x: f64, y: f64| (x * 7.0).sin() * (y * 3.0).cos();
        let g2 = Grid2::from_fn(LevelPair::new(3, 4), f);
        let gn = GridN::from_fn(&[3, 4], |x| f(x[0], x[1]));
        assert_eq!(g2.values(), gn.values());
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(GridN::from_raw(&[1, 1, 1], vec![0.0; 27]).is_ok());
        assert!(GridN::from_raw(&[1, 1, 1], vec![0.0; 26]).is_err());
    }

    #[test]
    fn eval_reproduces_trilinear_exactly() {
        let f = |x: &[f64]| 2.0 + 3.0 * x[0] - x[1] + 5.0 * x[0] * x[1] * x[2];
        let g = GridN::from_fn(&[3, 2, 2], f);
        for p in [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.3, 0.7, 0.2], [0.99, 0.01, 0.5]] {
            assert!((g.eval(&p) - f(&p)).abs() < 1e-12, "at {p:?}");
        }
    }

    #[test]
    fn restriction_is_exact_injection() {
        let fine = GridN::from_fn(&[4, 3, 3], |x| x[0] * x[0] + x[1] - x[2]);
        let coarse = fine.restrict_to(&[2, 3, 1]);
        assert_eq!(coarse.shape(), &[5, 9, 3]);
        let mut idx = vec![0usize; 3];
        loop {
            let x = coarse.coords(&idx);
            assert_eq!(coarse.at(&idx), fine.eval(&x));
            if !advance(&mut idx, coarse.shape()) {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "restrict_to")]
    fn restriction_to_finer_panics() {
        let g = GridN::zeros(&[2, 2, 2]);
        let _ = g.restrict_to(&[3, 2, 2]);
    }

    #[test]
    fn sample_to_finer_is_exact_on_linear() {
        let coarse = GridN::from_fn(&[2, 2, 2], |x| x[0] + x[1] + x[2]);
        let fine = coarse.sample_to(&[4, 3, 4]);
        let mut idx = vec![0usize; 3];
        loop {
            let x = fine.coords(&idx);
            assert!((fine.at(&idx) - (x[0] + x[1] + x[2])).abs() < 1e-13);
            if !advance(&mut idx, fine.shape()) {
                break;
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = GridN::from_fn(&[2, 2], |x| x[0]);
        let b = GridN::from_fn(&[2, 2], |x| x[1]);
        a.axpy(-2.0, &b);
        assert!((a.at(&[4, 4]) - (1.0 - 2.0)).abs() < 1e-14);
    }

    #[test]
    fn l1_error_is_zero_on_exact_samples() {
        let f = |x: &[f64]| x[0] * 2.0 - x[1];
        let g = GridN::from_fn(&[3, 3], f);
        assert_eq!(g.l1_error_vs(f), 0.0);
    }
}
