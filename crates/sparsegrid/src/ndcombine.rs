//! Evaluating the combined sparse grid solution in d dimensions.
//!
//! The d-dimensional sibling of [`crate::combine`]: the combination
//! solution `u^s(x) = Σ c_a · u_a(x)` is materialized on a *target* grid.
//! When every component level dominates the target componentwise,
//! evaluation is pure injection (exact powers-of-two strides per axis);
//! otherwise the component's d-linear interpolant is evaluated at every
//! target node. At d = 2 both paths are bitwise identical to the 2D
//! implementation — [`GridN`] shares `Grid2`'s memory layout.

use crate::ndgrid::{advance, GridN};

/// One term of a d-dimensional combination.
#[derive(Debug, Clone, Copy)]
pub struct CombinationTermN<'a> {
    /// The combination coefficient `c_a`.
    pub coeff: f64,
    /// The component grid `u_a`.
    pub grid: &'a GridN,
}

/// Evaluate `Σ coeff · grid(x)` on every node of a grid at `target` level.
pub fn combine_onto_nd(target: &[u32], terms: &[CombinationTermN<'_>]) -> GridN {
    let mut out = GridN::zeros(target);
    combine_onto_into_nd(&mut out, terms);
    out
}

/// [`combine_onto_nd`] into reused storage: `out` (already at the target
/// level) is zeroed and accumulated in place. Bitwise identical to
/// [`combine_onto_nd`] at `out.level()`.
pub fn combine_onto_into_nd(out: &mut GridN, terms: &[CombinationTermN<'_>]) {
    let target = out.level().to_vec();
    let d = target.len();
    for v in out.values_mut() {
        *v = 0.0;
    }
    let shape = out.shape().to_vec();
    let spacing = out.spacing();
    for term in terms {
        let g = term.grid;
        let c = term.coeff;
        assert_eq!(g.dim(), d, "combination term dimension mismatch");
        if c == 0.0 {
            continue;
        }
        let dominated = target.iter().zip(g.level()).all(|(&t, &s)| t <= s);
        let mut idx = vec![0usize; d];
        if dominated {
            // Injection fast path: strides are exact powers of two.
            let steps: Vec<usize> =
                target.iter().zip(g.level()).map(|(&t, &s)| 1usize << (s - t)).collect();
            let mut src = vec![0usize; d];
            loop {
                for i in 0..d {
                    src[i] = idx[i] * steps[i];
                }
                *out.at_mut(&idx) += c * g.at(&src);
                if !advance(&mut idx, &shape) {
                    break;
                }
            }
        } else {
            let mut x = vec![0.0f64; d];
            loop {
                for i in 0..d {
                    x[i] = idx[i] as f64 * spacing[i];
                }
                *out.at_mut(&idx) += c * g.eval(&x);
                if !advance(&mut idx, &shape) {
                    break;
                }
            }
        }
    }
}

/// Evaluate the combination with **binomial-tree association**: each term
/// is materialized on the target level individually, then the partials
/// are pairwise summed with doubling stride — the association a log-depth
/// reduction tree over term owners produces. This is the *serial
/// reference* for the distributed d-dimensional tree combination, which
/// must match it bitwise, term list for term list.
pub fn combine_binomial_nd(target: &[u32], terms: &[CombinationTermN<'_>]) -> GridN {
    if terms.is_empty() {
        return GridN::zeros(target);
    }
    let mut parts: Vec<GridN> =
        terms.iter().map(|t| combine_onto_nd(target, std::slice::from_ref(t))).collect();
    let mut stride = 1;
    while stride < parts.len() {
        let mut i = 0;
        while i + stride < parts.len() {
            let (head, tail) = parts.split_at_mut(i + stride);
            head[i].axpy(1.0, &tail[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
    parts.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{combine_binomial, combine_onto, CombinationTerm};
    use crate::grid2::Grid2;
    use crate::level::LevelPair;
    use crate::ndim::{gcp_coefficients_nd, LevelSetN, LevelVecN};

    /// Classical truncated-simplex terms in d dimensions sampling `f`.
    fn classical_terms_nd(
        dim: usize,
        n: u32,
        l: u32,
        f: impl Fn(&[f64]) -> f64,
    ) -> Vec<(f64, GridN)> {
        let m = n - l + 1;
        let tau = n + (dim as u32 - 1) * m;
        let set = LevelSetN::try_truncated_simplex(dim, m, tau).unwrap();
        gcp_coefficients_nd(&set)
            .into_iter()
            .filter(|(_, c)| *c != 0)
            .map(|(lv, c)| (c as f64, GridN::from_fn(&lv, &f)))
            .collect()
    }

    #[test]
    fn d2_combination_matches_2d_path_bitwise() {
        let f2 = |x: f64, y: f64| (7.1 * x).sin() * (3.3 * y + 0.2).cos();
        let (n, l) = (6u32, 3u32);
        let m = n - l + 1;
        // Build the same term list in the same (BTreeMap) order for both.
        let terms_nd = classical_terms_nd(2, n, l, |x| f2(x[0], x[1]));
        let grids_2d: Vec<(f64, Grid2)> = terms_nd
            .iter()
            .map(|(c, g)| {
                let lv = LevelPair::new(g.level()[0], g.level()[1]);
                (*c, Grid2::from_fn(lv, f2))
            })
            .collect();
        let refs_nd: Vec<CombinationTermN> =
            terms_nd.iter().map(|(c, g)| CombinationTermN { coeff: *c, grid: g }).collect();
        let refs_2d: Vec<CombinationTerm> =
            grids_2d.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
        let got = combine_onto_nd(&[m, m], &refs_nd);
        let want = combine_onto(LevelPair::new(m, m), &refs_2d);
        assert_eq!(got.values(), want.values(), "fold combine must be bitwise equal at d=2");
        let got_t = combine_binomial_nd(&[m, m], &refs_nd);
        let want_t = combine_binomial(LevelPair::new(m, m), &refs_2d);
        assert_eq!(got_t.values(), want_t.values(), "tree combine must be bitwise equal at d=2");
        // And on a non-dominated target (interpolation path).
        let got_i = combine_onto_nd(&[n, n], &refs_nd);
        let want_i = combine_onto(LevelPair::new(n, n), &refs_2d);
        assert_eq!(got_i.values(), want_i.values(), "interpolation path must match at d=2");
    }

    #[test]
    fn d3_combination_of_trilinear_is_exact() {
        // Multilinear functions are in every component's d-linear space and
        // the GCP coefficients sum to 1 on the downset, so the combination
        // reproduces them to rounding.
        for f in [
            (|_x: &[f64]| 1.0) as fn(&[f64]) -> f64,
            |x| x[0],
            |x| x[2],
            |x| 3.0 - 2.0 * x[0] + x[1] * x[2] + 4.0 * x[0] * x[1] * x[2],
        ] {
            let terms = classical_terms_nd(3, 4, 3, f);
            let refs: Vec<CombinationTermN> =
                terms.iter().map(|(c, g)| CombinationTermN { coeff: *c, grid: g }).collect();
            let combined = combine_onto_nd(&[2, 2, 2], &refs);
            let mut idx = vec![0usize; 3];
            loop {
                let x = combined.coords(&idx);
                assert!(
                    (combined.at(&idx) - f(&x)).abs() < 1e-12,
                    "at {x:?}: {} vs {}",
                    combined.at(&idx),
                    f(&x)
                );
                if !advance(&mut idx, combined.shape()) {
                    break;
                }
            }
        }
    }

    #[test]
    fn d3_combination_error_decreases_with_level() {
        let pi = std::f64::consts::PI;
        let f = move |x: &[f64]| (pi * x[0]).sin() * (pi * x[1]).sin() * (pi * x[2]).sin();
        let err = |n: u32| {
            let terms = classical_terms_nd(3, n, 3, f);
            let refs: Vec<CombinationTermN> =
                terms.iter().map(|(c, g)| CombinationTermN { coeff: *c, grid: g }).collect();
            let combined = combine_onto_nd(&[n, n, n], &refs);
            let mut e = 0.0f64;
            let mut idx = vec![0usize; 3];
            loop {
                let x = combined.coords(&idx);
                e = e.max((combined.at(&idx) - f(&x)).abs());
                if !advance(&mut idx, combined.shape()) {
                    break;
                }
            }
            e
        };
        let e4 = err(4);
        let e6 = err(6);
        assert!(e6 < e4 / 2.0, "3D combination must converge: err(n=4)={e4}, err(n=6)={e6}");
    }

    #[test]
    fn robust_coefficients_recover_after_3d_loss() {
        // Drop one combining grid, recompute coefficients over the
        // survivors, and check a trilinear function is still reproduced.
        let f = |x: &[f64]| 1.0 + x[0] - 0.5 * x[1] + 2.0 * x[2];
        let (dim, n, l) = (3usize, 4u32, 3u32);
        let m = n - l + 1;
        let tau = n + (dim as u32 - 1) * m;
        let set = LevelSetN::try_truncated_simplex(dim, m, tau).unwrap();
        let lost: LevelVecN = vec![4, 2, 2];
        let mut surviving = LevelSetN::new(dim);
        for lv in set.iter().filter(|lv| **lv != lost) {
            surviving.insert(lv.clone());
        }
        let coeffs =
            crate::ndim::robust_coefficients_nd(&set, std::slice::from_ref(&lost), &surviving);
        assert_eq!(coeffs.get(&lost).copied().unwrap_or(0), 0, "lost grid must not be used");
        let grids: Vec<(f64, GridN)> = coeffs
            .iter()
            .filter(|(_, c)| **c != 0)
            .map(|(lv, c)| (*c as f64, GridN::from_fn(lv, f)))
            .collect();
        let refs: Vec<CombinationTermN> =
            grids.iter().map(|(c, g)| CombinationTermN { coeff: *c, grid: g }).collect();
        let combined = combine_onto_nd(&[m, m, m], &refs);
        let mut idx = vec![0usize; 3];
        loop {
            let x = combined.coords(&idx);
            assert!((combined.at(&idx) - f(&x)).abs() < 1e-12, "at {x:?}");
            if !advance(&mut idx, combined.shape()) {
                break;
            }
        }
    }

    #[test]
    fn zero_coefficient_terms_are_skipped_and_empty_is_zeros() {
        let g = GridN::from_fn(&[3, 3, 3], |x| x[0] * x[1] + x[2]);
        let combined = combine_onto_nd(
            &[2, 2, 2],
            &[CombinationTermN { coeff: 0.0, grid: &g }, CombinationTermN { coeff: 1.0, grid: &g }],
        );
        assert!((combined.eval(&[0.5, 0.5, 0.5]) - 0.75).abs() < 1e-12);
        let z = combine_binomial_nd(&[2, 2], &[]);
        assert!(z.values().iter().all(|&v| v == 0.0));
    }
}
