//! Level pairs: the anisotropy index `(i, j)` of a component grid
//! `(2^i + 1) × (2^j + 1)`.

use std::fmt;

/// The level pair of an anisotropic 2D component grid.
///
/// Partial order: `(i, j) ≤ (i', j')` iff `i ≤ i'` **and** `j ≤ j'`
/// (componentwise); this is the lattice the combination coefficients live
/// on. Note `PartialOrd` is implemented accordingly — incomparable pairs
/// compare as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelPair {
    /// x-direction level: `2^i + 1` points.
    pub i: u32,
    /// y-direction level: `2^j + 1` points.
    pub j: u32,
}

impl LevelPair {
    /// Construct a level pair.
    pub const fn new(i: u32, j: u32) -> Self {
        LevelPair { i, j }
    }

    /// Sum of levels (`|level|_1`): constant along a combination diagonal.
    pub fn sum(&self) -> u32 {
        self.i + self.j
    }

    /// Number of points along x.
    pub fn nx(&self) -> usize {
        (1usize << self.i) + 1
    }

    /// Number of points along y.
    pub fn ny(&self) -> usize {
        (1usize << self.j) + 1
    }

    /// Total number of grid points.
    pub fn points(&self) -> usize {
        self.nx() * self.ny()
    }

    /// Componentwise `≤` (the lattice order).
    pub fn leq(&self, other: &LevelPair) -> bool {
        self.i <= other.i && self.j <= other.j
    }

    /// Componentwise minimum (lattice meet).
    pub fn meet(&self, other: &LevelPair) -> LevelPair {
        LevelPair::new(self.i.min(other.i), self.j.min(other.j))
    }

    /// Componentwise maximum (lattice join).
    pub fn join(&self, other: &LevelPair) -> LevelPair {
        LevelPair::new(self.i.max(other.i), self.j.max(other.j))
    }

    /// Offset by `(di, dj)`.
    pub fn plus(&self, di: u32, dj: u32) -> LevelPair {
        LevelPair::new(self.i + di, self.j + dj)
    }
}

// Lexicographic total order for use in BTree containers; the *lattice*
// order is `leq`.
impl PartialOrd for LevelPair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LevelPair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.i, self.j).cmp(&(other.i, other.j))
    }
}

impl fmt::Display for LevelPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_counts() {
        let l = LevelPair::new(3, 5);
        assert_eq!(l.nx(), 9);
        assert_eq!(l.ny(), 33);
        assert_eq!(l.points(), 297);
        assert_eq!(l.sum(), 8);
    }

    #[test]
    fn lattice_order_vs_total_order() {
        let a = LevelPair::new(2, 5);
        let b = LevelPair::new(3, 4);
        // Incomparable in the lattice...
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        // ...but totally ordered lexicographically for containers.
        assert!(a < b);
        assert!(a.leq(&a));
        assert!(LevelPair::new(2, 4).leq(&a));
    }

    #[test]
    fn meet_and_join() {
        let a = LevelPair::new(2, 5);
        let b = LevelPair::new(3, 4);
        assert_eq!(a.meet(&b), LevelPair::new(2, 4));
        assert_eq!(a.join(&b), LevelPair::new(3, 5));
        assert_eq!(a.plus(1, 0), LevelPair::new(3, 5));
    }
}
