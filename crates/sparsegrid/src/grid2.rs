//! Anisotropic 2D component grids on the unit square.
//!
//! A [`Grid2`] stores nodal values on the `(2^i+1) × (2^j+1)` lattice
//! `x_k = k / 2^i`, `y_m = m / 2^j` (both boundaries included), row-major
//! with x fastest — the layout the Lax–Wendroff stencil streams over.
//! Evaluation anywhere in `[0,1]²` is bilinear per cell, which is also the
//! interpolant the combination technique is defined over.

use crate::level::LevelPair;

/// Nodal values of one component grid.
///
/// ```
/// use sparsegrid::{Grid2, LevelPair};
///
/// // A 9 x 5 grid sampling f(x, y) = x + 2y on the unit square.
/// let g = Grid2::from_fn(LevelPair::new(3, 2), |x, y| x + 2.0 * y);
/// assert_eq!(g.nx(), 9);
/// assert_eq!(g.ny(), 5);
/// // Bilinear evaluation reproduces bilinear functions exactly.
/// assert!((g.eval(0.3, 0.7) - (0.3 + 1.4)).abs() < 1e-12);
/// // Exact restriction onto a coarser level.
/// let coarse = g.restrict_to(LevelPair::new(2, 2));
/// assert_eq!(coarse.nx(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2 {
    level: LevelPair,
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid2 {
    /// Zero-initialized grid at the given level.
    pub fn zeros(level: LevelPair) -> Self {
        let (nx, ny) = (level.nx(), level.ny());
        Grid2 { level, nx, ny, data: vec![0.0; nx * ny] }
    }

    /// Grid sampled from a function of `(x, y) ∈ [0,1]²`.
    pub fn from_fn(level: LevelPair, f: impl Fn(f64, f64) -> f64) -> Self {
        let mut g = Grid2::zeros(level);
        let (hx, hy) = g.spacing();
        for m in 0..g.ny {
            let y = m as f64 * hy;
            for k in 0..g.nx {
                let x = k as f64 * hx;
                g.data[m * g.nx + k] = f(x, y);
            }
        }
        g
    }

    /// Rebuild from raw parts (checkpoint restore, message reassembly).
    /// Errors if the buffer length does not match the level.
    pub fn from_raw(level: LevelPair, data: Vec<f64>) -> Result<Self, String> {
        let (nx, ny) = (level.nx(), level.ny());
        if data.len() != nx * ny {
            return Err(format!("grid {level}: expected {} values, got {}", nx * ny, data.len()));
        }
        Ok(Grid2 { level, nx, ny, data })
    }

    /// The grid's level pair.
    pub fn level(&self) -> LevelPair {
        self.level
    }

    /// Points along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Points along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Mesh widths `(hx, hy)`.
    pub fn spacing(&self) -> (f64, f64) {
        (1.0 / (self.nx - 1) as f64, 1.0 / (self.ny - 1) as f64)
    }

    /// Nodal value at index `(k, m)`.
    #[inline]
    pub fn at(&self, k: usize, m: usize) -> f64 {
        debug_assert!(k < self.nx && m < self.ny);
        self.data[m * self.nx + k]
    }

    /// Mutable nodal value at index `(k, m)`.
    #[inline]
    pub fn at_mut(&mut self, k: usize, m: usize) -> &mut f64 {
        debug_assert!(k < self.nx && m < self.ny);
        &mut self.data[m * self.nx + k]
    }

    /// Row `m` as a contiguous slice of `nx` values (x fastest).
    #[inline]
    pub fn row(&self, m: usize) -> &[f64] {
        debug_assert!(m < self.ny);
        &self.data[m * self.nx..(m + 1) * self.nx]
    }

    /// Row `m` as a mutable contiguous slice of `nx` values.
    #[inline]
    pub fn row_mut(&mut self, m: usize) -> &mut [f64] {
        debug_assert!(m < self.ny);
        &mut self.data[m * self.nx..(m + 1) * self.nx]
    }

    /// Raw values, row-major with x fastest.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The coordinates of node `(k, m)`.
    pub fn coords(&self, k: usize, m: usize) -> (f64, f64) {
        let (hx, hy) = self.spacing();
        (k as f64 * hx, m as f64 * hy)
    }

    /// Bilinear evaluation at an arbitrary point of `[0,1]²` (clamped).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let fx = (x.clamp(0.0, 1.0)) * (self.nx - 1) as f64;
        let fy = (y.clamp(0.0, 1.0)) * (self.ny - 1) as f64;
        let k0 = (fx.floor() as usize).min(self.nx - 2);
        let m0 = (fy.floor() as usize).min(self.ny - 2);
        let tx = fx - k0 as f64;
        let ty = fy - m0 as f64;
        let v00 = self.at(k0, m0);
        let v10 = self.at(k0 + 1, m0);
        let v01 = self.at(k0, m0 + 1);
        let v11 = self.at(k0 + 1, m0 + 1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Exact restriction (injection) onto a coarser-or-equal level: every
    /// target node coincides with a source node, so no interpolation error
    /// is introduced. This is the paper's "resampling of the diagonal grid
    /// ... to recover the lost data of the lower diagonal sub-grid".
    ///
    /// Panics if `target` is finer than this grid in any direction.
    pub fn restrict_to(&self, target: LevelPair) -> Grid2 {
        assert!(
            target.leq(&self.level),
            "restrict_to: target {target} is not ≤ source {}",
            self.level
        );
        let sx = 1usize << (self.level.i - target.i);
        let sy = 1usize << (self.level.j - target.j);
        let mut out = Grid2::zeros(target);
        for m in 0..out.ny {
            for k in 0..out.nx {
                *out.at_mut(k, m) = self.at(k * sx, m * sy);
            }
        }
        out
    }

    /// Sample (bilinearly) onto an arbitrary level — exact where nodes
    /// coincide, interpolating otherwise. Used by the Alternate
    /// Combination technique to materialize a recovered grid from the
    /// combined solution.
    pub fn sample_to(&self, target: LevelPair) -> Grid2 {
        let mut out = Grid2::zeros(target);
        let (hx, hy) = out.spacing();
        for m in 0..out.ny {
            let y = m as f64 * hy;
            for k in 0..out.nx {
                let x = k as f64 * hx;
                *out.at_mut(k, m) = self.eval(x, y);
            }
        }
        out
    }

    /// `self += coeff * other`, requiring identical levels.
    pub fn axpy(&mut self, coeff: f64, other: &Grid2) {
        assert_eq!(self.level, other.level, "axpy level mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += coeff * b;
        }
    }

    /// Fill from a function (reusing the allocation).
    pub fn fill_from(&mut self, f: impl Fn(f64, f64) -> f64) {
        let (hx, hy) = self.spacing();
        for m in 0..self.ny {
            let y = m as f64 * hy;
            for k in 0..self.nx {
                let x = k as f64 * hx;
                self.data[m * self.nx + k] = f(x, y);
            }
        }
    }

    /// Byte size of the nodal data (checkpoint sizing).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(i: u32, j: u32) -> LevelPair {
        LevelPair::new(i, j)
    }

    #[test]
    fn construction_and_indexing() {
        let g = Grid2::from_fn(lv(2, 3), |x, y| x + 10.0 * y);
        assert_eq!(g.nx(), 5);
        assert_eq!(g.ny(), 9);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(4, 0), 1.0);
        assert!((g.at(2, 4) - (0.5 + 5.0)).abs() < 1e-15);
        let (x, y) = g.coords(4, 8);
        assert_eq!((x, y), (1.0, 1.0));
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(Grid2::from_raw(lv(1, 1), vec![0.0; 9]).is_ok());
        assert!(Grid2::from_raw(lv(1, 1), vec![0.0; 8]).is_err());
    }

    #[test]
    fn eval_reproduces_bilinear_exactly() {
        let g = Grid2::from_fn(lv(3, 2), |x, y| 2.0 + 3.0 * x - y + 5.0 * x * y);
        for &(x, y) in &[(0.0, 0.0), (1.0, 1.0), (0.3, 0.7), (0.125, 0.5), (0.99, 0.01)] {
            let exact = 2.0 + 3.0 * x - y + 5.0 * x * y;
            assert!(
                (g.eval(x, y) - exact).abs() < 1e-12,
                "bilinear must be reproduced exactly at ({x},{y})"
            );
        }
    }

    #[test]
    fn eval_at_nodes_is_injection() {
        let g = Grid2::from_fn(lv(4, 4), |x, y| (x * 7.0).sin() * (y * 3.0).cos());
        for m in 0..g.ny() {
            for k in 0..g.nx() {
                let (x, y) = g.coords(k, m);
                assert!((g.eval(x, y) - g.at(k, m)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn restriction_is_exact_injection() {
        let fine = Grid2::from_fn(lv(5, 4), |x, y| x * x + y);
        let coarse = fine.restrict_to(lv(3, 4));
        assert_eq!(coarse.nx(), 9);
        assert_eq!(coarse.ny(), 17);
        for m in 0..coarse.ny() {
            for k in 0..coarse.nx() {
                let (x, y) = coarse.coords(k, m);
                assert_eq!(coarse.at(k, m), fine.eval(x, y));
            }
        }
    }

    #[test]
    #[should_panic(expected = "restrict_to")]
    fn restriction_to_finer_panics() {
        let g = Grid2::zeros(lv(2, 2));
        let _ = g.restrict_to(lv(3, 2));
    }

    #[test]
    fn sample_to_finer_interpolates() {
        let coarse = Grid2::from_fn(lv(2, 2), |x, y| x + y);
        let fine = coarse.sample_to(lv(4, 4));
        // x + y is linear → interpolation is exact everywhere.
        for m in 0..fine.ny() {
            for k in 0..fine.nx() {
                let (x, y) = fine.coords(k, m);
                assert!((fine.at(k, m) - (x + y)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Grid2::from_fn(lv(2, 2), |x, _| x);
        let b = Grid2::from_fn(lv(2, 2), |_, y| y);
        a.axpy(-2.0, &b);
        assert!((a.eval(0.5, 0.25) - (0.5 - 0.5)).abs() < 1e-14);
        assert!((a.at(4, 4) - (1.0 - 2.0)).abs() < 1e-14);
    }

    #[test]
    fn byte_size_counts_f64s() {
        assert_eq!(Grid2::zeros(lv(1, 1)).byte_size(), 9 * 8);
    }
}
