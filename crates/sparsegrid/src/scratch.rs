//! Reusable-scratch helpers for hot paths.

/// Make `v` exactly `n` elements long, reusing its allocation.
///
/// The widespread `v.clear(); v.resize(n, 0.0)` pattern zero-fills all
/// `n` elements on *every* call even though the caller immediately
/// overwrites them; in steady state (`v.len() == n` already) this helper
/// touches nothing at all. Use it only when every element is written
/// before being read.
#[inline]
pub fn ensure_len<T: Clone + Default>(v: &mut Vec<T>, n: usize) {
    if v.len() != n {
        v.clear();
        v.resize(n, T::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_shrinks_and_reuses() {
        let mut v: Vec<f64> = Vec::new();
        ensure_len(&mut v, 4);
        assert_eq!(v, [0.0; 4]);
        v.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // Same length: contents untouched, no reallocation.
        let ptr = v.as_ptr();
        ensure_len(&mut v, 4);
        assert_eq!(v, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.as_ptr(), ptr);
        // Shrink: fresh zeros at the new length.
        ensure_len(&mut v, 2);
        assert_eq!(v, [0.0, 0.0]);
        // Grow again within capacity: still the same allocation.
        ensure_len(&mut v, 4);
        assert_eq!(v.as_ptr(), ptr);
    }
}
