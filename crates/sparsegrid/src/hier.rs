//! Hierarchical surplus transform (piecewise-linear, boundary-included).
//!
//! Not needed by the solver itself, but the natural analysis tool for the
//! combination technique: the GCP coefficients are *defined* by which
//! hierarchical subspaces they cover, and the tests here (plus the
//! property tests in `tests/`) verify the implementation through that
//! lens. Also handy for building synthetic functions with a prescribed
//! hierarchical support.

// Indexed row/column copies between strided 2D storage and contiguous
// scratch are clearer than iterator zips here.
#![allow(clippy::needless_range_loop)]

use crate::grid2::Grid2;

/// In-place 1D hierarchization of `2^lev + 1` nodal values: each interior
/// node's value is replaced by its surplus over the linear interpolant of
/// its hierarchical parents.
pub fn hierarchize_1d(v: &mut [f64]) {
    let n = v.len();
    assert!(n >= 2 && (n - 1).is_power_of_two(), "need 2^l + 1 values, got {n}");
    let levels = (n - 1).trailing_zeros();
    for l in (1..=levels).rev() {
        let stride = (n - 1) >> l;
        let mut k = stride;
        while k < n {
            v[k] -= 0.5 * (v[k - stride] + v[k + stride]);
            k += 2 * stride;
        }
    }
}

/// Inverse of [`hierarchize_1d`].
pub fn dehierarchize_1d(v: &mut [f64]) {
    let n = v.len();
    assert!(n >= 2 && (n - 1).is_power_of_two(), "need 2^l + 1 values, got {n}");
    let levels = (n - 1).trailing_zeros();
    for l in 1..=levels {
        let stride = (n - 1) >> l;
        let mut k = stride;
        while k < n {
            v[k] += 0.5 * (v[k - stride] + v[k + stride]);
            k += 2 * stride;
        }
    }
}

/// 2D hierarchization: 1D transform along x for every row, then along y
/// for every column (the transforms commute).
pub fn hierarchize(grid: &Grid2) -> Grid2 {
    let mut out = grid.clone();
    let (nx, ny) = (out.nx(), out.ny());
    let mut row = vec![0.0; nx];
    for m in 0..ny {
        for k in 0..nx {
            row[k] = out.at(k, m);
        }
        hierarchize_1d(&mut row);
        for k in 0..nx {
            *out.at_mut(k, m) = row[k];
        }
    }
    let mut col = vec![0.0; ny];
    for k in 0..nx {
        for m in 0..ny {
            col[m] = out.at(k, m);
        }
        hierarchize_1d(&mut col);
        for m in 0..ny {
            *out.at_mut(k, m) = col[m];
        }
    }
    out
}

/// Inverse of [`hierarchize`].
pub fn dehierarchize(grid: &Grid2) -> Grid2 {
    let mut out = grid.clone();
    let (nx, ny) = (out.nx(), out.ny());
    let mut col = vec![0.0; ny];
    for k in 0..nx {
        for m in 0..ny {
            col[m] = out.at(k, m);
        }
        dehierarchize_1d(&mut col);
        for m in 0..ny {
            *out.at_mut(k, m) = col[m];
        }
    }
    let mut row = vec![0.0; nx];
    for m in 0..ny {
        for k in 0..nx {
            row[k] = out.at(k, m);
        }
        dehierarchize_1d(&mut row);
        for k in 0..nx {
            *out.at_mut(k, m) = row[k];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LevelPair;

    #[test]
    fn linear_function_has_no_interior_surplus() {
        let mut v: Vec<f64> = (0..=8).map(|k| 3.0 * k as f64 / 8.0 + 1.0).collect();
        hierarchize_1d(&mut v);
        // Boundary values stay; all interior surpluses vanish.
        assert!((v[0] - 1.0).abs() < 1e-15);
        assert!((v[8] - 4.0).abs() < 1e-15);
        for k in 1..8 {
            assert!(v[k].abs() < 1e-14, "surplus at {k} = {}", v[k]);
        }
    }

    #[test]
    fn roundtrip_1d() {
        let orig: Vec<f64> = (0..=16).map(|k| ((k * k) as f64).sin()).collect();
        let mut v = orig.clone();
        hierarchize_1d(&mut v);
        dehierarchize_1d(&mut v);
        for (a, b) in orig.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_2d() {
        let g = Grid2::from_fn(LevelPair::new(4, 3), |x, y| (7.0 * x).sin() * (3.0 * y).cos());
        let back = dehierarchize(&hierarchize(&g));
        for (a, b) in g.values().iter().zip(back.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_function_surplus_is_boundary_only() {
        let g = Grid2::from_fn(LevelPair::new(3, 3), |x, y| 1.0 + 2.0 * x * y);
        let h = hierarchize(&g);
        // Interior (non-boundary in both directions) surpluses vanish for
        // a globally bilinear function... more precisely all surpluses at
        // hierarchical level ≥ 1 in either direction vanish.
        for m in 1..h.ny() - 1 {
            for k in 1..h.nx() - 1 {
                // Skip nodes that are "level 0" in a direction (none
                // strictly interior are).
                assert!(h.at(k, m).abs() < 1e-13, "surplus at ({k},{m})");
            }
        }
    }

    #[test]
    fn surplus_decay_for_smooth_function() {
        // |surplus| at the finest level should be much smaller than at the
        // coarsest level for a smooth function.
        let n = 6u32;
        let g = Grid2::from_fn(LevelPair::new(n, 1), |x, _| (std::f64::consts::PI * x).sin());
        let h = hierarchize(&g);
        // x-level 1 surplus lives at k = 2^(n-1).
        let coarse = h.at(1 << (n - 1), 0).abs();
        // Finest-level surpluses live at odd k.
        let fine = (1..h.nx()).step_by(2).map(|k| h.at(k, 0).abs()).fold(0.0f64, f64::max);
        assert!(fine < coarse / 100.0, "coarse {coarse}, fine {fine}");
    }

    #[test]
    #[should_panic(expected = "2^l + 1")]
    fn rejects_bad_length() {
        let mut v = vec![0.0; 6];
        hierarchize_1d(&mut v);
    }
}
