//! Combination coefficients: the classical formula and the general
//! coefficient problem (GCP) used by the Alternate Combination recovery.
//!
//! For any finite **downset** `J` of level pairs (a set closed under the
//! componentwise order: `b ≤ a ∈ J ⇒ b ∈ J`), the inclusion–exclusion
//! coefficients
//!
//! ```text
//! c(a) = Σ_{z ∈ {0,1}²} (−1)^{z₁+z₂} [a + z ∈ J]
//! ```
//!
//! satisfy `Σ_{a ≥ b, a ∈ J} c(a) = 1` for every `b ∈ J` — each
//! hierarchical subspace of `J` is covered exactly once, which is the
//! defining property of a valid combination (Griebel–Schneider–Zenger).
//! The classical Eq.-1 coefficients (+1 on the top diagonal, −1 on the one
//! below) fall out as the special case of a triangular downset.
//!
//! After grid losses, the surviving index set is `J \ upset(lost)` — still
//! a downset — and the same formula yields the *robust* (alternate)
//! combination of Harding & Hegland. Losses in the middle of a diagonal
//! recruit grids from the extra layers; that is precisely why the paper's
//! Alternate Combination technique carries two extra layers of sub-grids.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::level::LevelPair;

/// A finite set of level pairs, maintained as a downset for coefficient
/// computations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LevelSet {
    levels: BTreeSet<LevelPair>,
}

impl LevelSet {
    /// Empty set.
    pub fn new() -> Self {
        LevelSet { levels: BTreeSet::new() }
    }

    /// The downset hull of the given levels: everything `≤` some element,
    /// truncated below at `floor` (componentwise minimum level, the
    /// paper's `m = n − l + 1` truncation).
    pub fn downset_hull(tops: &[LevelPair], floor: LevelPair) -> Self {
        let mut levels = BTreeSet::new();
        for top in tops {
            for i in floor.i..=top.i {
                for j in floor.j..=top.j {
                    levels.insert(LevelPair::new(i, j));
                }
            }
        }
        LevelSet { levels }
    }

    /// Membership.
    pub fn contains(&self, l: &LevelPair) -> bool {
        self.levels.contains(l)
    }

    /// Remove a level and its entire upset (everything `≥` it) — the
    /// index-set surgery performed when a grid's data is lost.
    pub fn remove_upset(&mut self, lost: LevelPair) {
        self.levels.retain(|l| !lost.leq(l));
    }

    /// Number of levels in the set.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Iterate in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &LevelPair> {
        self.levels.iter()
    }

    /// Is this set a downset above `floor`? (Diagnostic/property-test
    /// helper.)
    pub fn is_downset(&self, floor: LevelPair) -> bool {
        self.levels.iter().all(|l| {
            let below_i = l.i == floor.i || self.contains(&LevelPair::new(l.i - 1, l.j));
            let below_j = l.j == floor.j || self.contains(&LevelPair::new(l.i, l.j - 1));
            below_i && below_j
        })
    }
}

impl FromIterator<LevelPair> for LevelSet {
    fn from_iter<T: IntoIterator<Item = LevelPair>>(iter: T) -> Self {
        LevelSet { levels: iter.into_iter().collect() }
    }
}

/// Inclusion–exclusion combination coefficients over a downset `J`.
/// Levels with coefficient 0 are omitted from the result.
///
/// ```
/// use sparsegrid::{gcp_coefficients, GridSystem, Layout};
///
/// // The classical combination of (n = 9, l = 4): +1 on the diagonal,
/// // -1 on the lower diagonal.
/// let sys = GridSystem::new(9, 4, Layout::Plain);
/// let coeffs = gcp_coefficients(&sys.classical_downset());
/// assert_eq!(coeffs.len(), 7);
/// assert_eq!(coeffs.values().sum::<i32>(), 1);
/// ```
pub fn gcp_coefficients(j_set: &LevelSet) -> BTreeMap<LevelPair, i32> {
    let mut coeffs = BTreeMap::new();
    for &a in j_set.iter() {
        let mut c = 0i32;
        for (di, dj, sign) in [(0, 0, 1), (1, 0, -1), (0, 1, -1), (1, 1, 1)] {
            if j_set.contains(&a.plus(di, dj)) {
                c += sign;
            }
        }
        if c != 0 {
            coeffs.insert(a, c);
        }
    }
    coeffs
}

/// Coefficients for a downset after removing the upsets of `lost` levels,
/// **restricted to grids that actually exist**: if the surgery would
/// assign a nonzero coefficient to a level outside `available`, that level
/// is treated as lost too and the surgery repeats. Always terminates (the
/// set shrinks); returns the final coefficients (possibly empty, if every
/// grid is gone).
///
/// ```
/// use sparsegrid::{robust_coefficients, verify_covering, GridSystem, Layout, LevelSet};
///
/// let sys = GridSystem::new(9, 4, Layout::ExtraLayers);
/// // Lose a middle diagonal grid; the robust combination recruits the
/// // extra layers and still covers every hierarchical subspace once.
/// let lost = vec![sys.grid(1).level];
/// let surviving: LevelSet = sys
///     .grids()
///     .iter()
///     .filter(|g| g.id != 1)
///     .map(|g| g.level)
///     .collect();
/// let coeffs = robust_coefficients(&sys.classical_downset(), &lost, &surviving);
/// assert_eq!(coeffs.values().sum::<i32>(), 1);
/// assert!(verify_covering(&coeffs, sys.min_level()).is_none());
/// ```
pub fn robust_coefficients(
    j_set: &LevelSet,
    lost: &[LevelPair],
    available: &LevelSet,
) -> BTreeMap<LevelPair, i32> {
    // A level may stay inside the downset as long as its coefficient is
    // zero — its data is never touched. Only a *nonzero* coefficient on a
    // lost/unavailable grid forces index-set surgery, and there is a
    // choice of surgeries: removing the upset of the bad level itself, or
    // of one of its two upper neighbours (which can zero the bad level's
    // coefficient while keeping far more of the downset — e.g. losing the
    // lower-diagonal (i,i) *and* the corner extra grid is only solvable by
    // trimming a neighbouring diagonal grid instead of the corner's whole
    // upset). The downsets involved are tiny (l(l+1)/2 levels), so a
    // best-retention recursive search is affordable and deterministic.
    fn search(
        j: &LevelSet,
        usable: &impl Fn(&LevelPair) -> bool,
        best: &mut Option<(usize, BTreeMap<LevelPair, i32>)>,
    ) {
        let coeffs = gcp_coefficients(j);
        let bad = coeffs.keys().find(|l| !usable(l)).copied();
        match bad {
            None => {
                let retained = j.len();
                let better = match best {
                    Some((n, _)) => retained > *n,
                    None => true,
                };
                if better && !coeffs.is_empty() {
                    *best = Some((retained, coeffs));
                }
            }
            Some(bad) => {
                // Prune: this branch can never beat the incumbent.
                if let Some((n, _)) = best {
                    if j.len() <= *n {
                        return;
                    }
                }
                for cand in [bad.plus(1, 0), bad.plus(0, 1), bad] {
                    if !j.contains(&cand) {
                        continue;
                    }
                    let mut j2 = j.clone();
                    j2.remove_upset(cand);
                    if j2.len() < j.len() {
                        search(&j2, usable, best);
                    }
                }
            }
        }
    }

    let usable = |l: &LevelPair| !lost.contains(l) && available.contains(l);
    let mut best = None;
    search(j_set, &usable, &mut best);
    best.map(|(_, c)| c).unwrap_or_default()
}

/// Verify the defining GCP property of a coefficient set: every
/// hierarchical subspace of the downset hull of the coefficients' levels
/// is covered exactly once (`Σ_{a ≥ b} c(a) = 1`). Returns the first
/// violating level, or `None` if the combination is valid.
///
/// This is the invariant every recovery path must preserve; applications
/// can `debug_assert!(verify_covering(&coeffs, floor).is_none())` after
/// recomputing coefficients.
pub fn verify_covering(coeffs: &BTreeMap<LevelPair, i32>, floor: LevelPair) -> Option<LevelPair> {
    let tops: Vec<LevelPair> = coeffs.keys().copied().collect();
    if tops.is_empty() {
        return None;
    }
    let hull = LevelSet::downset_hull(&tops, floor);
    for &b in hull.iter() {
        let cover: i32 = coeffs.iter().filter(|(a, _)| b.leq(a)).map(|(_, &v)| v).sum();
        if cover != 1 {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(i: u32, j: u32) -> LevelPair {
        LevelPair::new(i, j)
    }

    #[test]
    fn verify_covering_accepts_classical_and_rejects_broken() {
        let j = classical(9, 4);
        let c = gcp_coefficients(&j);
        assert_eq!(verify_covering(&c, lv(6, 6)), None);

        // Drop one term: covering breaks somewhere.
        let mut broken = c.clone();
        let first = *broken.keys().next().unwrap();
        broken.remove(&first);
        assert!(verify_covering(&broken, lv(6, 6)).is_some());

        // Flip a sign: also invalid.
        let mut flipped = c.clone();
        if let Some(v) = flipped.values_mut().next() {
            *v = -*v;
        }
        assert!(verify_covering(&flipped, lv(6, 6)).is_some());

        // Empty set is vacuously fine.
        assert_eq!(verify_covering(&BTreeMap::new(), lv(1, 1)), None);
    }

    #[test]
    fn verify_covering_accepts_robust_after_losses() {
        let j = classical(8, 4);
        let avail: LevelSet = j.iter().copied().collect();
        for lost in [vec![lv(5, 8)], vec![lv(6, 7), lv(7, 6)], vec![lv(6, 6), lv(5, 5)]] {
            let c = robust_coefficients(&j, &lost, &avail);
            if !c.is_empty() {
                assert_eq!(verify_covering(&c, lv(5, 5)), None, "lost {lost:?}");
            }
        }
    }

    /// The classical triangular downset of the paper: `m ≤ i,j`,
    /// `i + j ≤ τ` with `τ = 2n − l + 1`.
    fn classical(n: u32, l: u32) -> LevelSet {
        let m = n - l + 1;
        let tau = 2 * n - l + 1;
        let mut s = LevelSet::new();
        for i in m..=n {
            for j in m..=n {
                if i + j <= tau {
                    s.levels.insert(lv(i, j));
                }
            }
        }
        s
    }

    #[test]
    fn classical_coefficients_match_eq1() {
        // n = 13, l = 4: +1 on i+j = 23 (4 grids), −1 on i+j = 22 (3 grids).
        let j = classical(13, 4);
        let c = gcp_coefficients(&j);
        assert_eq!(c.len(), 7);
        for (l, &v) in &c {
            if l.sum() == 23 {
                assert_eq!(v, 1, "diagonal {l}");
            } else if l.sum() == 22 {
                assert_eq!(v, -1, "lower diagonal {l}");
            } else {
                panic!("unexpected nonzero coefficient at {l}");
            }
        }
        assert_eq!(c.values().sum::<i32>(), 1);
    }

    #[test]
    fn coefficients_cover_every_subspace_once() {
        // The defining GCP property: Σ_{a ≥ b} c(a) = 1 for all b ∈ J.
        for (n, l) in [(9u32, 4u32), (13, 4), (8, 5), (6, 3)] {
            let j = classical(n, l);
            let c = gcp_coefficients(&j);
            for &b in j.iter() {
                let cover: i32 = c.iter().filter(|(a, _)| b.leq(a)).map(|(_, &v)| v).sum();
                assert_eq!(cover, 1, "subspace {b} of (n={n}, l={l})");
            }
        }
    }

    #[test]
    fn corner_loss_keeps_coefficients_on_survivors() {
        // Lose the corner diagonal grid (10,13) of (n=13, l=4).
        let j = classical(13, 4);
        let mut j2 = j.clone();
        j2.remove_upset(lv(10, 13));
        assert!(j2.is_downset(lv(10, 10)));
        let c = gcp_coefficients(&j2);
        assert_eq!(c.values().sum::<i32>(), 1);
        assert!(!c.contains_key(&lv(10, 13)));
        // Covering property still holds on the surviving downset.
        for &b in j2.iter() {
            let cover: i32 = c.iter().filter(|(a, _)| b.leq(a)).map(|(_, &v)| v).sum();
            assert_eq!(cover, 1);
        }
    }

    #[test]
    fn middle_loss_recruits_extra_layer() {
        // Losing (11,12) — a middle diagonal grid — must recruit the
        // extra-layer grid (10,11) with coefficient −1 (worked through in
        // the crate docs).
        let j = classical(13, 4);
        let mut j2 = j.clone();
        j2.remove_upset(lv(11, 12));
        let c = gcp_coefficients(&j2);
        assert_eq!(c.get(&lv(10, 11)), Some(&-1));
        assert_eq!(c.get(&lv(10, 13)), Some(&1));
        assert_eq!(c.values().sum::<i32>(), 1);
    }

    #[test]
    fn robust_coefficients_respect_availability() {
        // Availability: the paper's AC layout (two diagonals + 2 extra
        // layers), i.e. no interior grids below layer 2.
        let n = 13;
        let l = 4;
        let m = n - l + 1;
        let tau = 2 * n - l + 1;
        let mut avail = LevelSet::new();
        for i in m..=n {
            for j in m..=n {
                let s = i + j;
                if s <= tau && s >= tau - 3 {
                    avail.levels.insert(lv(i, j));
                }
            }
        }
        let j = classical(n, l);
        // Lose two middle grids at once.
        let c = robust_coefficients(&j, &[lv(11, 12), lv(12, 11)], &avail);
        assert!(!c.is_empty());
        assert_eq!(c.values().sum::<i32>(), 1);
        for lvl in c.keys() {
            assert!(avail.contains(lvl), "coefficient on unavailable grid {lvl}");
        }
    }

    #[test]
    fn remove_upset_removes_dependents() {
        let mut s = LevelSet::downset_hull(&[lv(3, 3)], lv(1, 1));
        assert_eq!(s.len(), 9);
        s.remove_upset(lv(2, 2));
        assert_eq!(s.len(), 5); // (1,1),(1,2),(1,3),(2,1),(3,1)
        assert!(s.is_downset(lv(1, 1)));
        assert!(!s.contains(&lv(2, 2)));
        assert!(!s.contains(&lv(3, 3)));
    }

    #[test]
    fn downset_hull_truncates_at_floor() {
        let s = LevelSet::downset_hull(&[lv(4, 2)], lv(2, 1));
        assert!(s.contains(&lv(2, 1)));
        assert!(s.contains(&lv(4, 2)));
        assert!(!s.contains(&lv(1, 1)));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn losing_bottom_grid_alone_keeps_classical_combination() {
        // The (m,m) extra-layer grid has coefficient 0; its loss must not
        // destroy the downset.
        let j = classical(7, 4);
        let avail: LevelSet = j.iter().copied().collect();
        let c = robust_coefficients(&j, &[lv(4, 4)], &avail);
        assert_eq!(c.values().sum::<i32>(), 1);
        assert_eq!(c.len(), 7, "classical coefficients are untouched");
        assert!(!c.contains_key(&lv(4, 4)));
    }

    #[test]
    fn lower_diag_plus_corner_loss_finds_partial_surgery() {
        // Losing (5,5) *and* (4,4) of (n=7, l=4) is unsolvable by naive
        // full-upset removal (it wipes the downset); the search must find
        // the partial surgery that trims one neighbouring diagonal grid
        // instead.
        let j = classical(7, 4);
        let avail: LevelSet = j.iter().copied().collect();
        let c = robust_coefficients(&j, &[lv(5, 5), lv(4, 4)], &avail);
        assert!(!c.is_empty(), "a valid combination exists");
        assert_eq!(c.values().sum::<i32>(), 1);
        assert!(!c.contains_key(&lv(5, 5)));
        assert!(!c.contains_key(&lv(4, 4)));
        // The covering property holds on the found downset's fringe: check
        // the retained-set size is large (9 of 10 levels).
        let retained: i32 = c.values().map(|v| v.abs()).sum();
        assert!(retained >= 3, "non-trivial combination, got {c:?}");
    }

    #[test]
    fn degenerate_total_loss_yields_empty() {
        let j = classical(6, 3);
        let avail = LevelSet::new();
        let c = robust_coefficients(&j, &[lv(4, 4)], &avail);
        assert!(c.is_empty());
    }
}
