//! The combination technique in arbitrary dimension.
//!
//! The paper instantiates the classical *d*-dimensional combination
//! technique (Griebel–Schneider–Zenger) at `d = 2`; this module carries
//! the coefficient theory in general dimension, so the library can serve
//! as a foundation for higher-dimensional solvers (the paper's §V points
//! at "more advanced sparse grid combination techniques").
//!
//! Everything is a direct generalization of [`crate::coeffs`]:
//!
//! * level vectors `l ∈ ℕ^d` ordered componentwise,
//! * downsets `J` of level vectors,
//! * inclusion–exclusion coefficients
//!   `c(a) = Σ_{z ∈ {0,1}^d} (−1)^{|z|₁} [a + z ∈ J]`,
//! * the covering property `Σ_{a ≥ b, a ∈ J} c(a) = 1` for all `b ∈ J`,
//! * robust coefficient recomputation after losses, with the same
//!   best-retention surgery search.
//!
//! For the classical truncated-simplex downset, the coefficients reduce
//! to the textbook formula `(−1)^q · C(d−1, q)` on the diagonal
//! `|l|₁ = τ − q` (away from the truncation corners), which the tests
//! verify.

use std::collections::{BTreeMap, BTreeSet};

/// A level vector in `d` dimensions. Plain `Vec<u32>` keyed containers
/// keep the module dependency-free; dimensions are validated at set
/// construction.
pub type LevelVecN = Vec<u32>;

/// Componentwise `≤` (the lattice order).
pub fn leq(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// A finite set of level vectors of a fixed dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSetN {
    dim: usize,
    levels: BTreeSet<LevelVecN>,
}

impl LevelSetN {
    /// Empty set of the given dimension.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be ≥ 1");
        LevelSetN { dim, levels: BTreeSet::new() }
    }

    /// The classical truncated simplex
    /// `{ l : floor ≤ l_i, |l|₁ ≤ tau }` — the *d*-dimensional analogue
    /// of the paper's Eq.-1 index set.
    ///
    /// Panicking wrapper around [`LevelSetN::try_truncated_simplex`] for
    /// call sites with statically valid parameters.
    pub fn truncated_simplex(dim: usize, floor: u32, tau: u32) -> Self {
        match Self::try_truncated_simplex(dim, floor, tau) {
            Ok(set) => set,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor for the truncated simplex: rejects degenerate
    /// dimensions, simplices that cannot hold the floor corner, and
    /// parameter combinations whose corner sum `floor · d` overflows
    /// `u32` — all as errors rather than panics, so user-supplied config
    /// can be validated at the boundary.
    pub fn try_truncated_simplex(dim: usize, floor: u32, tau: u32) -> Result<Self, String> {
        if dim < 1 {
            return Err("dimension must be ≥ 1".into());
        }
        let d32 = u32::try_from(dim).map_err(|_| format!("dimension {dim} exceeds u32 range"))?;
        let corner = floor
            .checked_mul(d32)
            .ok_or_else(|| format!("floor {floor} × dim {dim} overflows u32"))?;
        if tau < corner {
            return Err(format!("tau {tau} cannot hold the floor corner ({floor}^{dim})"));
        }
        let mut set = LevelSetN::new(dim);
        let mut cursor = vec![floor; dim];
        loop {
            if cursor.iter().sum::<u32>() <= tau {
                set.levels.insert(cursor.clone());
            }
            // Odometer increment with per-digit cap tau (pruned by the
            // simplex test above).
            let mut i = 0;
            loop {
                if i == dim {
                    return Ok(set);
                }
                cursor[i] += 1;
                let partial: u32 = cursor.iter().sum();
                if partial <= tau {
                    break;
                }
                cursor[i] = floor;
                i += 1;
            }
        }
    }

    /// Dimension of the member vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Membership.
    pub fn contains(&self, l: &[u32]) -> bool {
        debug_assert_eq!(l.len(), self.dim);
        self.levels.contains(l)
    }

    /// Insert a level (must match the dimension).
    pub fn insert(&mut self, l: LevelVecN) {
        assert_eq!(l.len(), self.dim, "dimension mismatch");
        self.levels.insert(l);
    }

    /// Remove a level and its entire upset.
    pub fn remove_upset(&mut self, lost: &[u32]) {
        debug_assert_eq!(lost.len(), self.dim);
        self.levels.retain(|l| !leq(lost, l));
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Iterate in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &LevelVecN> {
        self.levels.iter()
    }
}

/// Inclusion–exclusion coefficients over a downset in any dimension.
/// Levels with coefficient 0 are omitted.
pub fn gcp_coefficients_nd(j: &LevelSetN) -> BTreeMap<LevelVecN, i64> {
    let d = j.dim();
    assert!(d < 63, "coefficient enumeration over 2^d corners needs d < 63");
    let mut out = BTreeMap::new();
    let mut probe = vec![0u32; d];
    for a in j.iter() {
        let mut c: i64 = 0;
        for z in 0..(1u64 << d) {
            let ones = z.count_ones();
            probe.clear();
            probe.extend(a.iter().enumerate().map(|(i, &v)| v + ((z >> i) & 1) as u32));
            if j.contains(&probe) {
                c += if ones % 2 == 0 { 1 } else { -1 };
            }
        }
        if c != 0 {
            out.insert(a.clone(), c);
        }
    }
    out
}

/// The covering property `Σ_{a ≥ b} c(a) = 1` for every `b` in the
/// downset hull of the coefficient support. Returns the first violator.
pub fn verify_covering_nd(coeffs: &BTreeMap<LevelVecN, i64>, floor: u32) -> Option<LevelVecN> {
    let first = coeffs.keys().next()?;
    let d = first.len();
    // Hull: componentwise ranges floor..=max over support; enumerate and
    // test every point dominated by some support level.
    let mut maxes = vec![floor; d];
    for a in coeffs.keys() {
        for (m, &v) in maxes.iter_mut().zip(a) {
            *m = (*m).max(v);
        }
    }
    let mut cursor = vec![floor; d];
    loop {
        let dominated = coeffs.keys().any(|a| leq(&cursor, a));
        if dominated {
            let cover: i64 = coeffs.iter().filter(|(a, _)| leq(&cursor, a)).map(|(_, &c)| c).sum();
            if cover != 1 {
                return Some(cursor);
            }
        }
        // Odometer over the bounding box.
        let mut i = 0;
        loop {
            if i == d {
                return None;
            }
            cursor[i] += 1;
            if cursor[i] <= maxes[i] {
                break;
            }
            cursor[i] = floor;
            i += 1;
        }
    }
}

/// Robust coefficients after losses, in any dimension: the same
/// best-retention surgery search as the 2D version — a bad (lost or
/// unavailable) level with nonzero coefficient is neutralized by removing
/// the upset of one of its `d` upper neighbours or of the level itself,
/// searched for maximum retained downset size.
pub fn robust_coefficients_nd(
    j_set: &LevelSetN,
    lost: &[LevelVecN],
    available: &LevelSetN,
) -> BTreeMap<LevelVecN, i64> {
    fn search(
        j: &LevelSetN,
        usable: &impl Fn(&LevelVecN) -> bool,
        best: &mut Option<(usize, BTreeMap<LevelVecN, i64>)>,
    ) {
        let coeffs = gcp_coefficients_nd(j);
        let bad = coeffs.keys().find(|l| !usable(l)).cloned();
        match bad {
            None => {
                let retained = j.len();
                let better = best.as_ref().is_none_or(|(n, _)| retained > *n);
                if better && !coeffs.is_empty() {
                    *best = Some((retained, coeffs));
                }
            }
            Some(bad) => {
                if let Some((n, _)) = best {
                    if j.len() <= *n {
                        return;
                    }
                }
                let d = j.dim();
                let mut candidates: Vec<LevelVecN> = (0..d)
                    .map(|axis| {
                        let mut v = bad.clone();
                        v[axis] += 1;
                        v
                    })
                    .collect();
                candidates.push(bad);
                for cand in candidates {
                    if !j.contains(&cand) {
                        continue;
                    }
                    let mut j2 = j.clone();
                    j2.remove_upset(&cand);
                    if j2.len() < j.len() {
                        search(&j2, usable, best);
                    }
                }
            }
        }
    }
    let usable = |l: &LevelVecN| !lost.iter().any(|q| q == l) && available.contains(l);
    let mut best = None;
    search(j_set, &usable, &mut best);
    best.map(|(_, c)| c).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::{gcp_coefficients, LevelSet};
    use crate::level::LevelPair;

    /// Binomial coefficient.
    fn choose(n: u32, k: u32) -> i64 {
        if k > n {
            return 0;
        }
        let mut r = 1i64;
        for i in 0..k {
            r = r * (n - i) as i64 / (i + 1) as i64;
        }
        r
    }

    #[test]
    fn two_dim_matches_the_specialized_module() {
        let floor = 3;
        let tau = 11;
        let nd = LevelSetN::truncated_simplex(2, floor, tau);
        let c_nd = gcp_coefficients_nd(&nd);

        let set2d: LevelSet = nd.iter().map(|v| LevelPair::new(v[0], v[1])).collect();
        let c_2d = gcp_coefficients(&set2d);

        assert_eq!(c_nd.len(), c_2d.len());
        for (lv, c) in &c_2d {
            assert_eq!(c_nd.get(&vec![lv.i, lv.j]).copied(), Some(*c as i64), "mismatch at {lv}");
        }
    }

    #[test]
    fn classical_3d_coefficients_are_binomial() {
        // The textbook d-dimensional combination: on the q-th diagonal
        // below the top, the coefficient is (−1)^q · C(d−1, q) — away
        // from truncation corners.
        let d = 3u32;
        let floor = 2;
        let tau = 14;
        let j = LevelSetN::truncated_simplex(d as usize, floor, tau);
        let c = gcp_coefficients_nd(&j);
        // Central (non-corner) representatives on each diagonal.
        for q in 0..d {
            let s = tau - q; // |l|1 on this diagonal
                             // Pick l = (a, a, s − 2a) with a in the middle.
            let a = (s / 3).max(floor + 1);
            let l = vec![a, a, s - 2 * a];
            assert!(l.iter().all(|&x| x > floor), "pick interior point");
            let expect = if q % 2 == 0 { choose(d - 1, q) } else { -choose(d - 1, q) };
            assert_eq!(c.get(&l).copied().unwrap_or(0), expect, "diagonal q={q} at {l:?}");
        }
        // Deeper diagonals vanish.
        let deep = vec![3, 3, tau - 6 - 3];
        assert_eq!(c.get(&deep).copied().unwrap_or(0), 0);
    }

    #[test]
    fn covering_property_holds_in_3d_and_4d() {
        for (d, floor, tau) in [(3usize, 1u32, 8u32), (4, 1, 9)] {
            let j = LevelSetN::truncated_simplex(d, floor, tau);
            let c = gcp_coefficients_nd(&j);
            assert_eq!(c.values().sum::<i64>(), 1, "d={d}");
            assert_eq!(verify_covering_nd(&c, floor), None, "d={d}");
        }
    }

    #[test]
    fn robust_3d_losses_keep_covering() {
        let d = 3;
        let floor = 1;
        let tau = 8;
        let j = LevelSetN::truncated_simplex(d, floor, tau);
        let available = j.clone();
        // Lose two top-diagonal grids.
        let lost = vec![vec![2, 3, 3], vec![3, 3, 2]];
        let c = robust_coefficients_nd(&j, &lost, &available);
        assert!(!c.is_empty());
        assert_eq!(c.values().sum::<i64>(), 1);
        for l in &lost {
            assert!(!c.contains_key(l), "coefficient on lost {l:?}");
        }
        assert_eq!(verify_covering_nd(&c, floor), None);
    }

    #[test]
    fn robust_2d_agrees_with_specialized_search() {
        // The tricky 2D case (lower-diagonal + corner loss) must solve the
        // same way through the n-dimensional path.
        let floor = 4;
        let tau = 11; // the (n=7, l=4) system
        let nd = LevelSetN::truncated_simplex(2, floor, tau);
        let lost = vec![vec![5, 5], vec![4, 4]];
        let c = robust_coefficients_nd(&nd, &lost, &nd.clone());
        assert!(!c.is_empty(), "the partial surgery exists");
        assert_eq!(c.values().sum::<i64>(), 1);
        assert_eq!(verify_covering_nd(&c, floor), None);
    }

    #[test]
    fn truncated_simplex_counts() {
        // d=2, floor=1, tau=4: {(1,1),(1,2),(1,3),(2,1),(2,2),(3,1)} = 6.
        let s = LevelSetN::truncated_simplex(2, 1, 4);
        assert_eq!(s.len(), 6);
        // d=3, floor=1, tau=4: only (1,1,1), (2,1,1) perms = 1 + 3 = 4.
        let s = LevelSetN::truncated_simplex(3, 1, 4);
        assert_eq!(s.len(), 4);
        // Corner-only.
        let s = LevelSetN::truncated_simplex(3, 2, 6);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_upset_nd() {
        let mut s = LevelSetN::truncated_simplex(3, 1, 6);
        let before = s.len();
        s.remove_upset(&[2, 2, 1]);
        assert!(s.len() < before);
        assert!(!s.contains(&[2, 2, 1]));
        assert!(!s.contains(&[2, 2, 2]));
        assert!(s.contains(&[1, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rejects_impossible_simplex() {
        let _ = LevelSetN::truncated_simplex(3, 3, 8);
    }

    #[test]
    fn try_simplex_reports_errors_instead_of_panicking() {
        assert!(LevelSetN::try_truncated_simplex(3, 3, 8).is_err());
        assert!(LevelSetN::try_truncated_simplex(0, 1, 4).is_err());
        // floor · d would overflow u32 — must be an error, not a wrap.
        assert!(LevelSetN::try_truncated_simplex(1 << 20, u32::MAX / 2, u32::MAX).is_err());
        let ok = LevelSetN::try_truncated_simplex(3, 1, 6).unwrap();
        assert_eq!(ok.len(), LevelSetN::truncated_simplex(3, 1, 6).len());
    }
}
