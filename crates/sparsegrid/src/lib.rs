//! # sparsegrid — the sparse grid combination technique (2D)
//!
//! Implements the numerical machinery of the paper: anisotropic component
//! grids `(2^i+1) × (2^j+1)` on the unit square, the classical combination
//! formula (the paper's Eq. 1)
//!
//! ```text
//! u_{n,l}^s = Σ_{i+j = 2n−l+1, i,j ≤ n} u_{i,j}  −  Σ_{i+j = 2n−l, i,j ≤ n−1} u_{i,j}
//! ```
//!
//! and the **general coefficient problem** solution that powers the
//! *Alternate Combination* recovery technique: for any downset `J` of
//! levels, the inclusion–exclusion coefficients
//!
//! ```text
//! c(a) = Σ_{z ∈ {0,1}²} (−1)^{|z|} [a + z ∈ J]
//! ```
//!
//! yield a valid combination; after grid losses the surviving downset is
//! `J \ upset(lost)` and the recomputed coefficients recruit the *extra
//! layer* grids (Harding & Hegland's robust combination technique,
//! refs [15, 18] of the paper).
//!
//! The grid layout of the paper's Fig. 1 — diagonal sub-grids 0–3, lower
//! diagonal 4–6, duplicates 7–10 (for Resampling & Copying), extra-layer
//! grids 11–13 (for Alternate Combination) — is provided by
//! [`scheme::GridSystem`].

pub mod coeffs;
pub mod combine;
pub mod grid2;
pub mod hier;
pub mod level;
pub mod ndcombine;
pub mod ndgrid;
pub mod ndim;
pub mod norms;
pub mod scheme;
pub mod scheme_nd;
pub mod scratch;

pub use coeffs::{gcp_coefficients, robust_coefficients, verify_covering, LevelSet};
pub use combine::{combine_binomial, combine_onto, combine_onto_into, CombinationTerm};
pub use grid2::Grid2;
pub use level::LevelPair;
pub use ndcombine::{combine_binomial_nd, combine_onto_into_nd, combine_onto_nd, CombinationTermN};
pub use ndgrid::GridN;
pub use ndim::{
    gcp_coefficients_nd, robust_coefficients_nd, verify_covering_nd, LevelSetN, LevelVecN,
};
pub use norms::{l1_error_vs, l1_grid_diff, l2_error_vs, linf_error_vs};
pub use scheme::{GridRole, GridSystem, Layout, SubGrid};
pub use scheme_nd::{GridRoleN, GridSystemN, RcSourceN, SubGridN};
pub use scratch::ensure_len;
