//! Property tests pinning the d-dimensional combination machinery to its
//! 2D specialization, and exercising the covering verifier against
//! fabricated non-coverings.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sparsegrid::{
    gcp_coefficients_nd, robust_coefficients, robust_coefficients_nd, verify_covering_nd,
    LevelPair, LevelSet, LevelSetN, LevelVecN,
};

/// A random truncated-simplex shape `(d, n, l)` plus a bitmask selecting
/// the lost levels out of the downset (in lexicographic order).
fn shape_2d() -> impl Strategy<Value = (u32, u32, u64)> {
    (2u32..=4, 4u32..=7, any::<u64>()).prop_map(|(l, n, mask)| (n.max(l), l, mask))
}

fn simplex(dim: usize, n: u32, l: u32) -> (LevelSetN, u32) {
    let floor = n - l + 1;
    let tau = n + (dim as u32 - 1) * floor;
    (LevelSetN::truncated_simplex(dim, floor, tau), floor)
}

/// Pick the levels whose index bit is set, never all of them (rank 0's
/// grid always survives in the application).
fn pick_lost(downset: &LevelSetN, mask: u64) -> Vec<LevelVecN> {
    downset
        .iter()
        .enumerate()
        .filter(|(i, _)| i + 1 < downset.len() && (mask >> (i % 64)) & 1 == 1)
        .map(|(_, lv)| lv.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `robust_coefficients_nd` at d = 2 is the 2D robust path: identical
    /// coefficient maps for every random loss pattern over the downset.
    #[test]
    fn robust_nd_at_d2_matches_the_2d_path((n, l, mask) in shape_2d()) {
        let (downset, _floor) = simplex(2, n, l);
        let lost_nd = pick_lost(&downset, mask);
        let survivors_nd = {
            let mut s = LevelSetN::new(2);
            for lv in downset.iter().filter(|lv| !lost_nd.contains(lv)) {
                s.insert(lv.clone());
            }
            s
        };
        let c_nd = robust_coefficients_nd(&downset, &lost_nd, &survivors_nd);

        let to_pair = |v: &LevelVecN| LevelPair::new(v[0], v[1]);
        let set2d: LevelSet = downset.iter().map(to_pair).collect();
        let lost_2d: Vec<LevelPair> = lost_nd.iter().map(to_pair).collect();
        let survivors_2d: LevelSet = survivors_nd.iter().map(to_pair).collect();
        let c_2d = robust_coefficients(&set2d, &lost_2d, &survivors_2d);

        let c_2d_as_nd: BTreeMap<LevelVecN, i64> =
            c_2d.iter().map(|(p, &c)| (vec![p.i, p.j], c as i64)).collect();
        prop_assert_eq!(c_nd, c_2d_as_nd);
    }

    /// Whatever the losses, a non-empty robust result never touches a
    /// lost grid and always covers every hierarchical subspace once.
    #[test]
    fn robust_nd_result_is_a_valid_covering(
        dim in 2usize..=4,
        l in 2u32..=3,
        extra in 0u32..=2,
        mask in any::<u64>(),
    ) {
        let n = l + extra;
        let (downset, floor) = simplex(dim, n, l);
        let lost = pick_lost(&downset, mask);
        let survivors = {
            let mut s = LevelSetN::new(dim);
            for lv in downset.iter().filter(|lv| !lost.contains(lv)) {
                s.insert(lv.clone());
            }
            s
        };
        let coeffs = robust_coefficients_nd(&downset, &lost, &survivors);
        prop_assert!(!coeffs.is_empty(), "at least the floor grid survives");
        for lv in &lost {
            prop_assert!(!coeffs.contains_key(lv), "lost level {lv:?} got a coefficient");
        }
        prop_assert_eq!(coeffs.values().sum::<i64>(), 1);
        prop_assert_eq!(verify_covering_nd(&coeffs, floor), None);
    }

    /// `verify_covering_nd` rejects fabricated non-coverings: perturbing
    /// any single coefficient of a valid combination breaks the covering
    /// property at a detectable level.
    #[test]
    fn verifier_rejects_perturbed_coverings(
        dim in 2usize..=4,
        l in 2u32..=3,
        extra in 0u32..=2,
        idx in any::<u64>(),
        bump in prop_oneof![Just(1i64), Just(-1), Just(2)],
    ) {
        let n = l + extra;
        let (downset, floor) = simplex(dim, n, l);
        let mut coeffs = gcp_coefficients_nd(&downset);
        prop_assert_eq!(verify_covering_nd(&coeffs, floor), None);
        let support: Vec<LevelVecN> = coeffs.keys().cloned().collect();
        let victim = support[(idx % support.len() as u64) as usize].clone();
        *coeffs.get_mut(&victim).unwrap() += bump;
        coeffs.retain(|_, c| *c != 0);
        prop_assert!(
            verify_covering_nd(&coeffs, floor).is_some(),
            "perturbing {victim:?} by {bump} must break the covering"
        );
    }
}
