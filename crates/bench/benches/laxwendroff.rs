//! Real-time throughput of the Lax–Wendroff stencil (cells/second), the
//! hot loop of every solve.

use advect2d::laxwendroff::{lax_wendroff_kernel, LwCoef};
use advect2d::{AdvectionProblem, LocalSolver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparsegrid::LevelPair;

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("lw_kernel");
    let p = AdvectionProblem::standard();
    for &(i, j) in &[(6u32, 6u32), (8, 8), (6, 10)] {
        let nx = 1usize << i;
        let ny = 1usize << j;
        let coef = LwCoef::new(&p, 1.0 / nx as f64, 1.0 / ny as f64, 1e-4);
        let padded: Vec<f64> = (0..(nx + 2) * (ny + 2)).map(|k| (k as f64).sin()).collect();
        let mut out = vec![0.0; nx * ny];
        g.throughput(Throughput::Elements((nx * ny) as u64));
        g.bench_function(BenchmarkId::new("cells", format!("{i}x{j}")), |b| {
            b.iter(|| lax_wendroff_kernel(&padded, nx, ny, &coef, &mut out))
        });
    }
    g.finish();
}

fn bench_local_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_solver");
    g.sample_size(20);
    let p = AdvectionProblem::standard();
    for &lev in &[6u32, 8] {
        g.bench_function(BenchmarkId::new("steps_x16", lev), |b| {
            b.iter_with_setup(
                || LocalSolver::new(p, LevelPair::new(lev, lev), 1e-4),
                |mut s| {
                    s.run(16);
                    s
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernel, bench_local_solver);
criterion_main!(benches);
