//! Real-time throughput of the Lax–Wendroff stencil (cells/second), the
//! hot loop of every solve — plus the allocation discipline check: the
//! whole bench binary runs under a counting global allocator, and the
//! steady-state stepping loop is asserted to allocate *nothing*.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use advect2d::laxwendroff::{lax_wendroff_kernel, lax_wendroff_row, lax_wendroff_step, LwCoef};
use advect2d::{
    lax_wendroff_row_simd, AdvectionProblem, BandPool, KernelConfig, LocalSolver, PaddedField,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparsegrid::{
    combine_onto_into, gcp_coefficients, CombinationTerm, Grid2, GridSystem, Layout as GridLayout,
    LevelPair,
};
use ulfm_sim::{MetricsCell, TraceEvent, TraceRing};

/// A pass-through allocator that counts calls to `alloc`/`realloc`. The
/// counter is how the bench proves "allocation-free": warm code paths
/// are run between two reads of [`alloc_count`], and the delta must be
/// zero.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("lw_kernel");
    let p = AdvectionProblem::standard();
    for &(i, j) in &[(6u32, 6u32), (8, 8), (6, 10)] {
        let nx = 1usize << i;
        let ny = 1usize << j;
        let coef = LwCoef::new(&p, 1.0 / nx as f64, 1.0 / ny as f64, 1e-4);
        let padded: Vec<f64> = (0..(nx + 2) * (ny + 2)).map(|k| (k as f64).sin()).collect();
        let mut out = vec![0.0; nx * ny];
        g.throughput(Throughput::Elements((nx * ny) as u64));
        g.bench_function(BenchmarkId::new("cells", format!("{i}x{j}")), |b| {
            b.iter(|| lax_wendroff_kernel(&padded, nx, ny, &coef, &mut out))
        });
    }
    g.finish();
}

/// The acceptance benchmark: one steady-state timestep of the level-9
/// single-owner solve, seed formulation (rebuild the whole padded copy,
/// run the kernel into a scratch grid, copy back) against the
/// double-buffered formulation (refresh the halo ring, step, swap).
fn bench_level9_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("level9_step");
    let p = AdvectionProblem::standard();
    let lev = LevelPair::new(9, 9);
    let n = 1usize << 9;
    let coef = LwCoef::new(&p, 1.0 / n as f64, 1.0 / n as f64, 1e-4);
    g.throughput(Throughput::Elements((n * n) as u64));

    // Seed formulation. `lax_wendroff_step` is the kept-as-reference
    // implementation: per step it refills the entire (n+2)² padded copy
    // from the grid (periodic rem_euclid indexing included) and copies
    // the kernel output back node by node.
    let mut grid = Grid2::from_fn(lev, p.initial());
    let (mut padded, mut out) = (Vec::new(), Vec::new());
    g.bench_function(BenchmarkId::new("seed_naive", "9x9"), |b| {
        b.iter(|| lax_wendroff_step(&mut grid, &coef, &mut padded, &mut out))
    });

    // Double-buffered formulation: the per-step work of `LocalSolver` /
    // `DistributedSolver` in steady state — O(perimeter) halo refresh,
    // row-slice kernel into the other buffer, pointer swap.
    let mut field = PaddedField::from_grid(&Grid2::from_fn(lev, p.initial()));
    g.bench_function(BenchmarkId::new("fast_double_buffered", "9x9"), |b| {
        b.iter(|| {
            field.refresh_periodic_halo();
            field.step(|s, c2, n2, out| lax_wendroff_row(s, c2, n2, &coef, out));
        })
    });

    // Same stepping discipline, vectorized rows (bitwise-identical; see
    // advect2d::simd and the equivalence suites).
    let mut field = PaddedField::from_grid(&Grid2::from_fn(lev, p.initial()));
    g.bench_function(BenchmarkId::new("fast_simd", "9x9"), |b| {
        b.iter(|| {
            field.refresh_periodic_halo();
            field.step(|s, c2, n2, out| lax_wendroff_row_simd(s, c2, n2, &coef, out));
        })
    });

    // Vectorized rows + the intra-rank row-band pool (2 bands). Only a
    // speedup on multi-core hosts; benchmarked honestly either way.
    let mut field = PaddedField::from_grid(&Grid2::from_fn(lev, p.initial()));
    let pool = BandPool::global();
    g.bench_function(BenchmarkId::new("fast_simd_bands", "9x9"), |b| {
        b.iter(|| {
            field.refresh_periodic_halo();
            field.step_banded(pool, 2, |s, c2, n2, out| {
                lax_wendroff_row_simd(s, c2, n2, &coef, out)
            });
        })
    });
    g.finish();
}

fn bench_local_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_solver");
    g.sample_size(20);
    let p = AdvectionProblem::standard();
    for &lev in &[6u32, 8] {
        g.bench_function(BenchmarkId::new("steps_x16", lev), |b| {
            b.iter_with_setup(
                || LocalSolver::new(p, LevelPair::new(lev, lev), 1e-4),
                |mut s| {
                    s.run(16);
                    s
                },
            )
        });
    }
    g.finish();
}

/// Not a timing benchmark: assert the steady-state stepping loop is
/// allocation-free. Construction allocates (buffers, coefficients);
/// after one warm-up run, further stepping must not touch the allocator
/// at all.
fn assert_alloc_free(_c: &mut Criterion) {
    let p = AdvectionProblem::standard();
    let mut s = LocalSolver::new(p, LevelPair::new(8, 8), 1e-4);
    s.run(2); // warm-up: pays any one-time setup
    let before = alloc_count();
    s.run(64);
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "LocalSolver::run allocated {} times over 64 steady-state steps",
        after - before
    );

    // The same discipline must hold with the vectorized kernel and the
    // band pool active: the pool is created once (warm-up pays for the
    // worker threads), and every subsequent banded dispatch reuses it
    // without touching the allocator.
    let mut s = LocalSolver::new(p, LevelPair::new(8, 8), 1e-4)
        .with_kernel(KernelConfig::simd().with_bands(2).with_band_min_cells(1));
    s.run(2); // warm-up: creates the global BandPool on first banded step
    let before = alloc_count();
    s.run(64);
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "banded LocalSolver::run allocated {} times over 64 steady-state steps",
        after - before
    );

    // The naive reference with reused scratch is also steady-state
    // allocation-free once the scratch vectors are warm.
    let mut grid = Grid2::from_fn(LevelPair::new(8, 8), p.initial());
    let coef = LwCoef::new(&p, 1.0 / 256.0, 1.0 / 256.0, 1e-4);
    let (mut padded, mut out) = (Vec::new(), Vec::new());
    lax_wendroff_step(&mut grid, &coef, &mut padded, &mut out);
    let before = alloc_count();
    for _ in 0..64 {
        lax_wendroff_step(&mut grid, &coef, &mut padded, &mut out);
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "naive step with warm scratch allocated {}", after - before);

    // A full combine round over warm storage must also be allocation-free:
    // each term is re-materialized into its preallocated partial
    // (`combine_onto_into`), then the partials are merged with the
    // binomial-tree association via in-place `axpy` — the same
    // materialize + pairwise-merge work every leader performs per round
    // in the distributed tree combination.
    let sys = GridSystem::new(6, 3, GridLayout::Plain);
    let coeffs = gcp_coefficients(&sys.classical_downset());
    let grids: Vec<(f64, Grid2)> = coeffs
        .iter()
        .filter(|(_, &c)| c != 0)
        .map(|(&lv, &c)| (c as f64, Grid2::from_fn(lv, |x, y| (5.0 * x).sin() + 2.0 * y)))
        .collect();
    let target = sys.min_level();
    let mut parts: Vec<Grid2> = grids.iter().map(|_| Grid2::zeros(target)).collect();
    let combine_round = |parts: &mut Vec<Grid2>| {
        for ((c, g), part) in grids.iter().zip(parts.iter_mut()) {
            combine_onto_into(part, &[CombinationTerm { coeff: *c, grid: g }]);
        }
        let mut stride = 1;
        while stride < parts.len() {
            let mut i = 0;
            while i + stride < parts.len() {
                let (head, tail) = parts.split_at_mut(i + stride);
                head[i].axpy(1.0, &tail[0]);
                i += 2 * stride;
            }
            stride *= 2;
        }
    };
    combine_round(&mut parts); // warm-up
    let before = alloc_count();
    for _ in 0..8 {
        combine_round(&mut parts);
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "combine round over warm partials allocated {} times",
        after - before
    );
    assert!(parts[0].values().iter().all(|v| v.is_finite()));

    // Default-on tracing must stay steady-state allocation-free: the ring
    // buffer preallocates its capacity up front and overwrites in place
    // once full, and the per-rank metrics are plain `Cell` counters.
    let mut ring = TraceRing::new(1024);
    let cell = MetricsCell::new();
    let ev = |k: usize| TraceEvent {
        proc: 1,
        host: 0,
        op: "send",
        cat: "mpi",
        cid: 0,
        t_start: k as f64 * 1e-6,
        t_end: k as f64 * 1e-6 + 5e-7,
        bytes: 64,
    };
    // Warm-up: fill past capacity so the ring is in overwrite mode.
    for k in 0..2048 {
        ring.push(ev(k));
    }
    let before = alloc_count();
    for k in 0..4096 {
        ring.push(ev(k));
        cell.note_op("send", 5e-7);
        cell.note_sent(64);
        cell.note_recvd(64);
        cell.note_recv_retry();
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "default-on tracing allocated {} times over 4096 warm events",
        after - before
    );
    assert_eq!(ring.len(), 1024);
    assert_eq!(ring.dropped(), 2048 + 4096 - 1024);

    println!("alloc_discipline: 0 allocations over 192 steps (incl. banded) + 8 combine rounds + 4096 trace events ... ok");
}

criterion_group!(benches, assert_alloc_free, bench_kernel, bench_level9_step, bench_local_solver);
criterion_main!(benches);
