//! Cost of the per-timestep halo exchange: boundary pack/unpack, the
//! wire encode/decode path, and the end-to-end distributed step.
//!
//! The seed formulation `collect()`ed four fresh boundary vectors per
//! rank per step and round-tripped every payload through freshly
//! allocated buffers; the optimized path packs into reused scratch,
//! encodes with the bulk little-endian fast path into pooled buffers,
//! and decodes straight into a reused receive vector.

use advect2d::AdvectionProblem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftsg_core::layout::GroupInfo;
use ftsg_core::psolve::DistributedSolver;
use sparsegrid::{ensure_len, LevelPair};
use ulfm_sim::datatype::{decode, decode_into, encode, encode_into};
use ulfm_sim::{run, BufPool, RunConfig};

/// Boundary pack/unpack over a level-9 block padded buffer: the seed's
/// four per-step `collect()`s against reused scratch vectors.
fn bench_pack_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_pack");
    let (lnx, lny) = (256usize, 256usize); // level-9 grid split 2×2
    let pnx = lnx + 2;
    let padded: Vec<f64> = (0..pnx * (lny + 2)).map(|k| (k as f64).cos()).collect();
    g.throughput(Throughput::Elements((2 * lnx + 2 * (lny + 2)) as u64));

    g.bench_function(BenchmarkId::new("seed_collect", "256x256"), |b| {
        b.iter(|| {
            // Verbatim shape of the seed's halo_exchange packing.
            let top: Vec<f64> = (0..lnx).map(|k| padded[lny * pnx + k + 1]).collect();
            let bottom: Vec<f64> = (0..lnx).map(|k| padded[pnx + k + 1]).collect();
            let right: Vec<f64> = (0..lny + 2).map(|m| padded[m * pnx + lnx]).collect();
            let left: Vec<f64> = (0..lny + 2).map(|m| padded[m * pnx + 1]).collect();
            (top.len(), bottom.len(), right.len(), left.len())
        })
    });

    let mut buf: Vec<f64> = Vec::new();
    g.bench_function(BenchmarkId::new("reused_scratch", "256x256"), |b| {
        b.iter(|| {
            // Optimized shape: rows are contiguous slices (no pack at
            // all); columns strided-copy into one reused buffer.
            let top = &padded[lny * pnx + 1..][..lnx];
            let bottom = &padded[pnx + 1..][..lnx];
            let mut sum = top[0] + bottom[0];
            ensure_len(&mut buf, lny + 2);
            for m in 0..lny + 2 {
                buf[m] = padded[m * pnx + lnx];
            }
            sum += buf[0];
            for m in 0..lny + 2 {
                buf[m] = padded[m * pnx + 1];
            }
            sum + buf[0]
        })
    });
    g.finish();
}

/// The wire path one halo message takes: typed slice → bytes → typed
/// vector. Seed: fresh buffer per encode, fresh `Vec` per decode.
/// Optimized: pooled buffer, bulk memcpy both ways, reused receive
/// vector.
fn bench_wire_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_wire");
    let boundary: Vec<f64> = (0..258).map(|k| (k as f64).sin()).collect();
    g.throughput(Throughput::Bytes((boundary.len() * 8) as u64));

    g.bench_function(BenchmarkId::new("seed_alloc_per_msg", "258"), |b| {
        b.iter(|| {
            let payload = encode(&boundary);
            let back: Vec<f64> = decode(&payload).unwrap();
            back.len()
        })
    });

    let pool = BufPool::default();
    let mut back: Vec<f64> = Vec::new();
    g.bench_function(BenchmarkId::new("pooled_reused", "258"), |b| {
        b.iter(|| {
            let mut buf = pool.take(boundary.len() * 8);
            encode_into(&boundary, &mut buf);
            let payload = buf.freeze();
            decode_into(&payload, &mut back).unwrap();
            pool.recycle(payload);
            back.len()
        })
    });
    g.finish();
}

/// End-to-end: a 2×2 group stepping a level-9 sub-grid over the
/// simulated runtime — halo exchange (pack, send, match, decode, unpack)
/// plus the stencil, amortized per burst of 8 steps.
fn bench_distributed_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_exchange");
    g.sample_size(10);
    let p = AdvectionProblem::standard();
    let lev = LevelPair::new(9, 9);
    g.bench_function(BenchmarkId::new("steps_x8_2x2", "9x9"), |b| {
        b.iter(|| {
            let report = run(RunConfig::local(4), move |ctx| {
                let world = ctx.initial_world().unwrap();
                let info = GroupInfo { grid: 0, first: 0, size: 4, px: 2, py: 2 };
                let mut s = DistributedSolver::new(p, lev, 1e-4, &info, world.rank());
                for _ in 0..8 {
                    s.step(ctx, &world).unwrap();
                }
            });
            report.assert_no_app_errors();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pack_unpack, bench_wire_path, bench_distributed_step);
criterion_main!(benches);
