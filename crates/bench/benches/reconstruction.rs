//! Real-time cost of a full detect → shrink → spawn → merge → re-order
//! communicator reconstruction in the simulator, across world sizes and
//! failure counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftsg_core::reconstruct::communicator_reconstruct;
use ftsg_core::ReconstructTimings;
use ulfm_sim::{run, FaultPlan, RunConfig};

fn bench_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconstruct");
    g.sample_size(10);
    for &p in &[8usize, 32, 128] {
        for &failures in &[1usize, 2, 4] {
            g.bench_function(BenchmarkId::new(format!("world{p}"), failures), |b| {
                b.iter(|| {
                    let plan = FaultPlan::random(failures, p, 0, 7, &[]);
                    let report = run(RunConfig::local(p), move |ctx| {
                        let mut t = ReconstructTimings::default();
                        if ctx.is_spawned() {
                            let parent = ctx.parent().unwrap();
                            let _ =
                                communicator_reconstruct(ctx, None, Some(parent), &mut t).unwrap();
                            return;
                        }
                        let world = ctx.initial_world().unwrap();
                        if plan.strikes(world.rank(), 0) {
                            ctx.die();
                        }
                        let world =
                            communicator_reconstruct(ctx, Some(world), None, &mut t).unwrap();
                        assert_eq!(world.size(), p);
                    });
                    report.assert_no_app_errors();
                    report
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_reconstruct);
criterion_main!(benches);
