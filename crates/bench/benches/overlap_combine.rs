//! Wall-clock benches for the PR 3 surfaces: the overlapped halo
//! stepper against the blocking reference, and the combination under
//! both associations — the central master's left fold and the
//! binomial-tree pairing (serial, and distributed over a simulated
//! group of leaders). Virtual-makespan acceptance numbers come from the
//! `expt-overlap` binary; these benches pin the real-time cost of the
//! same code paths so regressions show up in `cargo bench`.

use std::sync::Arc;

use advect2d::AdvectionProblem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftsg_core::gather::binomial_combine;
use ftsg_core::layout::GroupInfo;
use ftsg_core::psolve::DistributedSolver;
use sparsegrid::{
    combine_binomial, combine_onto, gcp_coefficients, CombinationTerm, Grid2, GridSystem, Layout,
    LevelPair,
};
use ulfm_sim::{run, RunConfig};

/// The classical level-set terms of the (n, l = 4) system, materialized
/// once outside the timed region.
fn classical_terms(n: u32) -> (LevelPair, Vec<(f64, Grid2)>) {
    let sys = GridSystem::new(n, 4, Layout::Plain);
    let coeffs = gcp_coefficients(&sys.classical_downset());
    let terms = coeffs
        .iter()
        .filter(|(_, &c)| c != 0)
        .map(|(&lv, &c)| (c as f64, Grid2::from_fn(lv, |x, y| (4.7 * x).sin() * (2.9 * y).cos())))
        .collect();
    (sys.min_level(), terms)
}

/// Serial combination associations at levels 7–11: the left fold is the
/// central master's entire workload; the binomial tree is the same
/// arithmetic under the pairing the distributed reduction uses.
fn bench_combine_association(c: &mut Criterion) {
    let mut g = c.benchmark_group("combine_assoc");
    g.sample_size(10);
    for n in 7u32..=11 {
        let (target, data) = classical_terms(n);
        let terms: Vec<CombinationTerm> =
            data.iter().map(|(cf, gr)| CombinationTerm { coeff: *cf, grid: gr }).collect();
        g.throughput(Throughput::Elements((data.len() * target.points()) as u64));
        g.bench_function(BenchmarkId::new("left_fold", n), |b| {
            b.iter(|| combine_onto(target, &terms))
        });
        g.bench_function(BenchmarkId::new("binomial_tree", n), |b| {
            b.iter(|| combine_binomial(target, &terms))
        });
    }
    g.finish();
}

/// The distributed tree combination end to end: one simulated rank per
/// group leader, each materializing its term and reducing over the
/// binomial tree (isend/irecv hops, in-place merge at every receiver).
fn bench_distributed_tree_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_combine");
    g.sample_size(10);
    for n in [9u32, 11] {
        let (target, data) = classical_terms(n);
        let world = data.len();
        let data = Arc::new(data);
        g.throughput(Throughput::Elements((world * target.points()) as u64));
        g.bench_function(BenchmarkId::new("distributed", n), |b| {
            b.iter(|| {
                let td = Arc::clone(&data);
                let report = run(RunConfig::local(world), move |ctx| {
                    let w = ctx.initial_world().unwrap();
                    let (cf, grid) = &td[w.rank()];
                    let term = CombinationTerm { coeff: *cf, grid };
                    let part = combine_onto(target, std::slice::from_ref(&term));
                    let leaders: Vec<usize> = (0..w.size()).collect();
                    let mut scratch = Vec::new();
                    binomial_combine(ctx, &w, &leaders, 0, target, Some(part), &mut scratch, 7)
                        .unwrap();
                });
                report.assert_no_app_errors();
            })
        });
    }
    g.finish();
}

/// Overlapped vs blocking halo stepper, 2×2 group, bursts of 8 steps.
/// Both run over the simulated runtime, so the delta here is scheduling
/// overhead (request bookkeeping vs rendezvous), not the virtual-time
/// overlap win — that is `expt-overlap`'s job to measure.
fn bench_overlapped_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap_step");
    g.sample_size(10);
    let p = AdvectionProblem::standard();
    for n in [7u32, 9] {
        let lev = LevelPair::new(n, n);
        for (name, blocking) in [("overlapped", false), ("blocking", true)] {
            g.bench_function(BenchmarkId::new(name, n), |b| {
                b.iter(|| {
                    let report = run(RunConfig::local(4), move |ctx| {
                        let w = ctx.initial_world().unwrap();
                        let info = GroupInfo { grid: 0, first: 0, size: 4, px: 2, py: 2 };
                        let mut s = DistributedSolver::new(p, lev, 1e-4, &info, w.rank());
                        for _ in 0..8 {
                            if blocking {
                                s.step_blocking(ctx, &w).unwrap();
                            } else {
                                s.step(ctx, &w).unwrap();
                            }
                        }
                    });
                    report.assert_no_app_errors();
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_combine_association,
    bench_distributed_tree_combine,
    bench_overlapped_step
);
criterion_main!(benches);
