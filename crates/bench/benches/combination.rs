//! Real-time performance of the sparse grid machinery: coefficient
//! computation (classical and robust) and combination evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparsegrid::{
    combine_onto, gcp_coefficients, robust_coefficients, CombinationTerm, Grid2, GridSystem,
    Layout, LevelPair,
};

fn bench_coefficients(c: &mut Criterion) {
    let mut g = c.benchmark_group("coefficients");
    for &(n, l) in &[(9u32, 4u32), (13, 4), (16, 6)] {
        let sys = GridSystem::new(n, l, Layout::ExtraLayers);
        let downset = sys.classical_downset();
        g.bench_with_input(
            BenchmarkId::new("gcp_classical", format!("n{n}_l{l}")),
            &downset,
            |b, ds| b.iter(|| gcp_coefficients(ds)),
        );
        // Robust recomputation after losing a middle diagonal grid.
        let lost = vec![LevelPair::new(n - l + 2, n - 1)];
        let avail = sys.available_levels();
        g.bench_function(BenchmarkId::new("robust_one_loss", format!("n{n}_l{l}")), |b| {
            b.iter(|| robust_coefficients(&downset, &lost, &avail))
        });
    }
    g.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("combine_onto");
    for &n in &[7u32, 9] {
        let l = 4;
        let sys = GridSystem::new(n, l, Layout::Plain);
        let grids: Vec<(f64, Grid2)> = sys
            .grids()
            .iter()
            .map(|sg| {
                (
                    sys.classical_coefficient(sg.id) as f64,
                    Grid2::from_fn(sg.level, |x, y| (x * 3.0).sin() * (y * 2.0).cos()),
                )
            })
            .collect();
        let terms: Vec<CombinationTerm> = grids
            .iter()
            .map(|(c, gr)| CombinationTerm { coeff: *c, grid: gr })
            .collect();
        let target = sys.min_level();
        g.throughput(Throughput::Elements((terms.len() * target.points()) as u64));
        g.bench_function(BenchmarkId::new("injection_target", format!("n{n}")), |b| {
            b.iter(|| combine_onto(target, &terms))
        });
        // Interpolating target (finer than some components).
        let fine = LevelPair::new(n, n);
        g.bench_function(
            BenchmarkId::new("interpolating_target", format!("n{n}")),
            |b| b.iter(|| combine_onto(fine, &terms)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_coefficients, bench_combine);
criterion_main!(benches);
