//! Real-time performance of the sparse grid machinery: coefficient
//! computation (classical and robust) and combination evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftsg_core::gather::{assemble_grid, split_grid_into};
use ftsg_core::layout::GroupInfo;
use ftsg_core::psolve::block_range;
use sparsegrid::{
    combine_onto, gcp_coefficients, robust_coefficients, CombinationTerm, Grid2, GridSystem,
    Layout, LevelPair,
};

/// Seed formulation of the gather–scatter grid marshalling: per-element
/// `at`/`at_mut` indexing (each with its own bounds check and 2-D index
/// arithmetic), kept here as the baseline the slice-based
/// `split_grid_into`/`assemble_grid` are measured against.
mod seed {
    use super::*;

    pub fn split_grid(grid: &Grid2, info: &GroupInfo) -> Vec<Vec<f64>> {
        let level = grid.level();
        let nxg = 1usize << level.i;
        let nyg = 1usize << level.j;
        let mut out = Vec::with_capacity(info.size);
        for local in 0..info.size {
            let pi = local % info.px;
            let pj = local / info.px;
            let (x0, lnx) = block_range(nxg, info.px, pi);
            let (y0, lny) = block_range(nyg, info.py, pj);
            let mut block = Vec::with_capacity(lnx * lny);
            for m in 0..lny {
                for k in 0..lnx {
                    block.push(grid.at(x0 + k, y0 + m));
                }
            }
            out.push(block);
        }
        out
    }

    pub fn assemble_grid(level: LevelPair, info: &GroupInfo, blocks: &[Vec<f64>]) -> Grid2 {
        let nxg = 1usize << level.i;
        let nyg = 1usize << level.j;
        let mut grid = Grid2::zeros(level);
        for (local, block) in blocks.iter().enumerate() {
            let pi = local % info.px;
            let pj = local / info.px;
            let (x0, lnx) = block_range(nxg, info.px, pi);
            let (y0, lny) = block_range(nyg, info.py, pj);
            for m in 0..lny {
                for k in 0..lnx {
                    *grid.at_mut(x0 + k, y0 + m) = block[m * lnx + k];
                }
            }
        }
        for m in 0..nyg {
            let v = grid.at(0, m);
            *grid.at_mut(nxg, m) = v;
        }
        for k in 0..=nxg {
            let v = grid.at(k, 0);
            *grid.at_mut(k, nyg) = v;
        }
        grid
    }
}

/// The gather–scatter marshalling round trip on a level-9 grid with a
/// 2×2 group: split into member blocks, assemble back into a full grid.
fn bench_gather_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather_scatter");
    let level = LevelPair::new(9, 9);
    let grid = Grid2::from_fn(level, |x, y| (x * 3.0).sin() * (y * 2.0).cos());
    let info = GroupInfo { grid: 0, first: 0, size: 4, px: 2, py: 2 };
    g.throughput(Throughput::Elements((2 * (1usize << 9) * (1usize << 9)) as u64));

    g.bench_function(BenchmarkId::new("seed_per_element", "n9_2x2"), |b| {
        b.iter(|| {
            let blocks = seed::split_grid(&grid, &info);
            seed::assemble_grid(level, &info, &blocks)
        })
    });

    let mut blocks: Vec<Vec<f64>> = Vec::new();
    g.bench_function(BenchmarkId::new("fast_row_slices", "n9_2x2"), |b| {
        b.iter(|| {
            split_grid_into(&grid, &info, &mut blocks);
            assemble_grid(level, &info, &blocks).unwrap()
        })
    });
    g.finish();
}

fn bench_coefficients(c: &mut Criterion) {
    let mut g = c.benchmark_group("coefficients");
    for &(n, l) in &[(9u32, 4u32), (13, 4), (16, 6)] {
        let sys = GridSystem::new(n, l, Layout::ExtraLayers);
        let downset = sys.classical_downset();
        g.bench_with_input(
            BenchmarkId::new("gcp_classical", format!("n{n}_l{l}")),
            &downset,
            |b, ds| b.iter(|| gcp_coefficients(ds)),
        );
        // Robust recomputation after losing a middle diagonal grid.
        let lost = vec![LevelPair::new(n - l + 2, n - 1)];
        let avail = sys.available_levels();
        g.bench_function(BenchmarkId::new("robust_one_loss", format!("n{n}_l{l}")), |b| {
            b.iter(|| robust_coefficients(&downset, &lost, &avail))
        });
    }
    g.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("combine_onto");
    for &n in &[7u32, 9] {
        let l = 4;
        let sys = GridSystem::new(n, l, Layout::Plain);
        let grids: Vec<(f64, Grid2)> = sys
            .grids()
            .iter()
            .map(|sg| {
                (
                    sys.classical_coefficient(sg.id) as f64,
                    Grid2::from_fn(sg.level, |x, y| (x * 3.0).sin() * (y * 2.0).cos()),
                )
            })
            .collect();
        let terms: Vec<CombinationTerm> =
            grids.iter().map(|(c, gr)| CombinationTerm { coeff: *c, grid: gr }).collect();
        let target = sys.min_level();
        g.throughput(Throughput::Elements((terms.len() * target.points()) as u64));
        g.bench_function(BenchmarkId::new("injection_target", format!("n{n}")), |b| {
            b.iter(|| combine_onto(target, &terms))
        });
        // Interpolating target (finer than some components).
        let fine = LevelPair::new(n, n);
        g.bench_function(BenchmarkId::new("interpolating_target", format!("n{n}")), |b| {
            b.iter(|| combine_onto(fine, &terms))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_coefficients, bench_combine, bench_gather_scatter);
criterion_main!(benches);
