//! Real-time (wall-clock) performance of the simulated MPI runtime's
//! primitives — how fast the *simulator itself* is, as opposed to the
//! virtual times the experiments report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ulfm_sim::{run, ReduceOp, RunConfig};

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p");
    for &len in &[64usize, 4096, 262_144] {
        g.throughput(Throughput::Bytes((len * 8) as u64));
        g.bench_with_input(BenchmarkId::new("ping_pong_f64", len), &len, |b, &len| {
            b.iter(|| {
                run(RunConfig::local(2), move |ctx| {
                    let w = ctx.initial_world().unwrap();
                    let data = vec![1.0f64; len];
                    for _ in 0..8 {
                        if w.rank() == 0 {
                            w.send(ctx, 1, 1, &data).unwrap();
                            let _: Vec<f64> = w.recv(ctx, 1, 2).unwrap();
                        } else {
                            let got: Vec<f64> = w.recv(ctx, 0, 1).unwrap();
                            w.send(ctx, 0, 2, &got).unwrap();
                        }
                    }
                })
            });
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    for &p in &[4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("barrier_x8", p), &p, |b, &p| {
            b.iter(|| {
                run(RunConfig::local(p), |ctx| {
                    let w = ctx.initial_world().unwrap();
                    for _ in 0..8 {
                        w.barrier(ctx).unwrap();
                    }
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("allreduce_x8", p), &p, |b, &p| {
            b.iter(|| {
                run(RunConfig::local(p), |ctx| {
                    let w = ctx.initial_world().unwrap();
                    let mine = vec![w.rank() as f64; 128];
                    for _ in 0..8 {
                        let _ = w.allreduce(ctx, ReduceOp::Sum, &mine).unwrap();
                    }
                })
            });
        });
    }
    g.finish();
}

fn bench_spawn_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    for &p in &[19usize, 76, 304] {
        g.bench_with_input(BenchmarkId::new("spinup_teardown", p), &p, |b, &p| {
            b.iter(|| {
                run(RunConfig::local(p), |ctx| {
                    let w = ctx.initial_world().unwrap();
                    let _ = w.allreduce_sum(ctx, 1u64).unwrap();
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_p2p, bench_collectives, bench_spawn_world);
criterion_main!(benches);
