//! Real-time performance of the data-recovery building blocks:
//! checkpoint write/read, restriction (resampling), and recovered-grid
//! materialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftsg_core::checkpoint::CheckpointStore;
use sparsegrid::{Grid2, LevelPair};

fn bench_checkpoint_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(20);
    for &(i, j) in &[(6u32, 9u32), (8, 8)] {
        let grid = Grid2::from_fn(LevelPair::new(i, j), |x, y| x * y);
        let store =
            CheckpointStore::new(std::env::temp_dir().join(format!("ftsg-bench-ckpt-{i}-{j}")))
                .unwrap();
        g.throughput(Throughput::Bytes(grid.byte_size() as u64));
        g.bench_function(BenchmarkId::new("write", format!("{i}x{j}")), |b| {
            b.iter(|| store.write(0, 42, &grid).unwrap())
        });
        store.write(0, 42, &grid).unwrap();
        g.bench_function(BenchmarkId::new("read", format!("{i}x{j}")), |b| {
            b.iter(|| store.read(0).unwrap().unwrap())
        });
        store.clear().unwrap();
    }
    g.finish();
}

fn bench_resample(c: &mut Criterion) {
    let mut g = c.benchmark_group("resample");
    // RC's lower-diagonal recovery: restrict a finer diagonal grid.
    let fine = Grid2::from_fn(LevelPair::new(7, 9), |x, y| (x * 4.0).sin() + y);
    g.throughput(Throughput::Elements(LevelPair::new(6, 9).points() as u64));
    g.bench_function("restrict_7x9_to_6x9", |b| b.iter(|| fine.restrict_to(LevelPair::new(6, 9))));
    // AC's recovered-grid materialization: bilinear sampling.
    let coarse = Grid2::from_fn(LevelPair::new(6, 6), |x, y| x - y * y);
    g.bench_function("sample_6x6_to_7x9", |b| b.iter(|| coarse.sample_to(LevelPair::new(7, 9))));
    g.finish();
}

criterion_group!(benches, bench_checkpoint_io, bench_resample);
criterion_main!(benches);
