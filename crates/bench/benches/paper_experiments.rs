//! End-to-end real-time cost of one full application run per technique —
//! the unit of work every paper experiment repeats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftsg_core::{run_app, AppConfig, ProcLayout, Technique};
use ulfm_sim::{run, FaultPlan, RunConfig};

fn bench_full_app(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_app");
    g.sample_size(10);
    for technique in [
        Technique::CheckpointRestart,
        Technique::ResamplingCopying,
        Technique::AlternateCombination,
    ] {
        let world = ProcLayout::new(7, 4, technique.layout(), 1).world_size();
        g.bench_function(BenchmarkId::new("healthy", technique.label()), |b| {
            b.iter(|| {
                let cfg = AppConfig::paper_shaped(technique, 7, 1, 4);
                let r = run(RunConfig::local(world), move |ctx| run_app(&cfg, ctx));
                r.assert_no_app_errors();
                r
            })
        });
        g.bench_function(BenchmarkId::new("one_failure", technique.label()), |b| {
            b.iter(|| {
                let base = AppConfig::paper_shaped(technique, 7, 1, 4);
                let steps = base.steps();
                let layout = ProcLayout::new(7, 4, technique.layout(), 1);
                let victim = layout.group(2).first;
                let when = if technique == Technique::CheckpointRestart { 3 } else { steps };
                let cfg = base.with_plan(FaultPlan::single(victim, when));
                let r = run(RunConfig::local(world), move |ctx| run_app(&cfg, ctx));
                r.assert_no_app_errors();
                r
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_full_app);
criterion_main!(benches);
