//! Per-kernel throughput: scalar reference rows vs the vectorized rows
//! for all three stencils (Lax–Wendroff, first-order upwind, FTCS
//! diffusion), plus the banded full-field step. The scalar rows are the
//! bitwise-pinned references; this bench is where the SIMD speedup is
//! measured in isolation from halo/stepping overhead.

use advect2d::{
    ftcs_row, ftcs_row_simd, lax_wendroff_row, lax_wendroff_row_simd, simd_isa_label, upwind_row,
    upwind_row_simd, BandPool, LwCoef, PaddedField, UpwindCoef,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Three padded stencil rows plus an output row, deterministically
/// filled — the inputs every row kernel consumes.
fn rows(nx: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let f = |k: usize, phase: f64| ((k as f64) * 0.37 + phase).sin();
    let s: Vec<f64> = (0..nx + 2).map(|k| f(k, 0.0)).collect();
    let c: Vec<f64> = (0..nx + 2).map(|k| f(k, 1.0)).collect();
    let n: Vec<f64> = (0..nx + 2).map(|k| f(k, 2.0)).collect();
    (s, c, n, vec![0.0; nx])
}

fn bench_rows(c: &mut Criterion) {
    let lw = LwCoef { cx: 0.2, cy: 0.15, cxx: 0.02, cyy: 0.01, cxy: 0.015 };
    let up = UpwindCoef { cx: 0.2, cy: 0.15 };
    let (rx, ry) = (0.2, 0.25);

    let mut g = c.benchmark_group(format!("row_kernels_{}", simd_isa_label()));
    for &nx in &[64usize, 512, 4096] {
        let (s, cc, n, mut out) = rows(nx);
        g.throughput(Throughput::Elements(nx as u64));
        g.bench_function(BenchmarkId::new("lw_scalar", nx), |b| {
            b.iter(|| lax_wendroff_row(&s, &cc, &n, &lw, &mut out))
        });
        g.bench_function(BenchmarkId::new("lw_simd", nx), |b| {
            b.iter(|| lax_wendroff_row_simd(&s, &cc, &n, &lw, &mut out))
        });
        g.bench_function(BenchmarkId::new("upwind_scalar", nx), |b| {
            b.iter(|| upwind_row(&s, &cc, &n, &up, &mut out))
        });
        g.bench_function(BenchmarkId::new("upwind_simd", nx), |b| {
            b.iter(|| upwind_row_simd(&s, &cc, &n, &up, &mut out))
        });
        g.bench_function(BenchmarkId::new("ftcs_scalar", nx), |b| {
            b.iter(|| ftcs_row(&s, &cc, &n, rx, ry, &mut out))
        });
        g.bench_function(BenchmarkId::new("ftcs_simd", nx), |b| {
            b.iter(|| ftcs_row_simd(&s, &cc, &n, rx, ry, &mut out))
        });
    }
    g.finish();
}

/// Full-field step (level 8) per stencil: scalar, SIMD, SIMD + 2 bands.
/// Steady-state discipline: halo refresh + row kernels + buffer swap.
fn bench_field_step(c: &mut Criterion) {
    let lw = LwCoef { cx: 0.2, cy: 0.15, cxx: 0.02, cyy: 0.01, cxy: 0.015 };
    let n = 1usize << 8;
    let mut g = c.benchmark_group("field_step");
    g.throughput(Throughput::Elements((n * n) as u64));

    let mut field = PaddedField::new(n, n);
    for (k, v) in field.padded_mut().iter_mut().enumerate() {
        *v = ((k as f64) * 0.11).sin();
    }
    let variants: [(&str, bool, usize); 3] =
        [("scalar", false, 1), ("simd", true, 1), ("simd_bands2", true, 2)];
    for (label, simd, bands) in variants {
        g.bench_function(BenchmarkId::new(label, format!("{n}x{n}")), |b| {
            b.iter(|| {
                field.refresh_periodic_halo();
                let kernel = |s: &[f64], c2: &[f64], n2: &[f64], out: &mut [f64]| {
                    if simd {
                        lax_wendroff_row_simd(s, c2, n2, &lw, out)
                    } else {
                        lax_wendroff_row(s, c2, n2, &lw, out)
                    }
                };
                if bands > 1 {
                    field.step_banded(BandPool::global(), bands, kernel);
                } else {
                    field.step(kernel);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(kernels, bench_rows, bench_field_step);
criterion_main!(kernels);
