//! Shared launch and victim-sampling helpers for the experiments.

use std::sync::Arc;
use std::time::Duration;

use ftsg_core::{run_app, AppConfig, ProcLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ulfm_sim::{run, ClusterProfile, IdealUlfm, Report, RunConfig};

/// Which ULFM cost model a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The paper's beta Open MPI `1.7ft`, calibrated against Table I.
    Beta,
    /// The idealized, failure-count-independent ablation.
    Ideal,
}

impl ModelKind {
    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Beta => "beta-ulfm",
            ModelKind::Ideal => "ideal-ulfm",
        }
    }
}

/// Scale a profile's per-cell compute cost so that a reduced-size run
/// (`n < 13`, `2^k < 2^13` steps) charges the *virtual* compute the paper's
/// full-size configuration would: the cell count of a fixed-`l` grid
/// system scales as `4^Δn` and the step count as `2^Δk`. Without this, the
/// fixed protocol overheads (detection agreement, checkpoint latency,
/// reconstruction) dwarf the solve phase and every efficiency curve
/// collapses — the paper's compute/overhead ratio is part of what Figs. 9
/// and 11 measure. Documented in EXPERIMENTS.md.
pub fn emulate_paper_scale(mut profile: ClusterProfile, n: u32, log2_steps: u32) -> ClusterProfile {
    let dn = 13u32.saturating_sub(n);
    let dk = 13u32.saturating_sub(log2_steps);
    // Grid-size ratio applies to all compute; the step-count compression
    // applies to per-timestep solve work only (one-shot work like the
    // combination happens once regardless of how many steps were run).
    profile.cell_update_time *= 4f64.powi(dn as i32);
    profile.step_multiplier = 2f64.powi(dk as i32);
    profile
}

/// Run the full application on a cluster profile and return the report.
/// Panics if the application recorded any error (experiments must be
/// healthy runs).
pub fn launch_on(profile: ClusterProfile, model: ModelKind, cfg: AppConfig, seed: u64) -> Report {
    let layout = ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
    let world = layout.world_size();
    let mut rc = RunConfig::cluster(profile, world).with_seed(seed);
    if model == ModelKind::Ideal {
        let net = rc.profile.net;
        rc = rc.with_model(Arc::new(IdealUlfm::new(net)));
    }
    rc.stall_timeout = Duration::from_secs(120);
    let report = run(rc, move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

/// Sample `count` distinct victim *ranks* (never rank 0), honouring the
/// Resampling-and-Copying conflict constraints when `rc_constraints` is
/// set. Deterministic in `seed`.
pub fn random_victims(
    layout: &ProcLayout,
    count: usize,
    rc_constraints: bool,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let world = layout.world_size();
    let mut chosen: Vec<usize> = Vec::new();
    let mut guard = 0usize;
    while chosen.len() < count {
        guard += 1;
        assert!(guard < 100_000, "could not sample {count} admissible victims");
        let r = rng.gen_range(1..world);
        if chosen.contains(&r) {
            continue;
        }
        if rc_constraints {
            let mut attempt = chosen.clone();
            attempt.push(r);
            if violates_rc(layout, &attempt) {
                continue;
            }
        }
        chosen.push(r);
    }
    chosen.sort_unstable();
    chosen
}

/// Sample `count` distinct lost *grids* for the simulated-failure
/// experiments (Figs. 9 and 10), honouring RC conflicts when requested.
pub fn random_lost_grids(
    layout: &ProcLayout,
    count: usize,
    rc_constraints: bool,
    seed: u64,
) -> Vec<usize> {
    let n_grids = layout.system().n_grids();
    assert!(count <= n_grids, "cannot lose {count} of {n_grids} grids");
    let mut rng = StdRng::seed_from_u64(seed);
    let conflicts = layout.system().rc_conflicts();
    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(guard < 100_000, "could not sample {count} admissible lost grids");
        let mut grids: Vec<usize> = Vec::new();
        while grids.len() < count {
            let g = rng.gen_range(0..n_grids);
            if !grids.contains(&g) {
                grids.push(g);
            }
        }
        if rc_constraints
            && conflicts.iter().any(|&(a, b)| grids.contains(&a) && grids.contains(&b))
        {
            continue;
        }
        grids.sort_unstable();
        return grids;
    }
}

fn violates_rc(layout: &ProcLayout, victims: &[usize]) -> bool {
    let broken = layout.broken_grids(victims);
    layout.system().rc_conflicts().iter().any(|&(a, b)| broken.contains(&a) && broken.contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsg_core::Technique;

    fn rc_layout() -> ProcLayout {
        ProcLayout::new(9, 4, Technique::ResamplingCopying.layout(), 2)
    }

    #[test]
    fn victims_exclude_rank_zero_and_are_deterministic() {
        let lay = rc_layout();
        let a = random_victims(&lay, 3, true, 7);
        let b = random_victims(&lay, 3, true, 7);
        assert_eq!(a, b);
        assert!(!a.contains(&0));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn rc_constrained_victims_avoid_conflicting_grids() {
        let lay = rc_layout();
        for seed in 0..30 {
            let v = random_victims(&lay, 4, true, seed);
            assert!(!violates_rc(&lay, &v), "seed {seed} gave conflicting {v:?}");
        }
    }

    #[test]
    fn lost_grids_respect_rc_conflicts() {
        let lay = rc_layout();
        for seed in 0..30 {
            let g = random_lost_grids(&lay, 5, true, seed);
            assert_eq!(g.len(), 5);
            let conflicts = lay.system().rc_conflicts();
            assert!(
                !conflicts.iter().any(|&(a, b)| g.contains(&a) && g.contains(&b)),
                "seed {seed} gave conflicting {g:?}"
            );
        }
    }

    #[test]
    fn unconstrained_lost_grids_cover_range() {
        let lay = rc_layout();
        let g = random_lost_grids(&lay, lay.system().n_grids(), false, 1);
        assert_eq!(g, (0..lay.system().n_grids()).collect::<Vec<_>>());
    }
}
