//! `expt-regress` — the bench-regression gate: re-measure the
//! load-bearing performance claims in this repo and compare each against
//! the committed `BENCH_*.json` baseline, failing on a regression beyond
//! [`TOLERANCE`].
//!
//! The gated quantities, chosen because each one guards a different layer:
//!
//! 1. **`level9_step_speedup`** (wall clock) — the double-buffered
//!    Lax–Wendroff step vs the seed formulation at level 9, vs
//!    `BENCH_pr1.json` `acceptance.level9_single_owner_step_speedup`.
//!    Guards the numerics hot loop.
//! 2. **`combine_tree_speedup_n9`** (virtual time, deterministic) — the
//!    binomial-tree combination vs the centralized master gather, vs
//!    `BENCH_pr3.json` `acceptance.combine_virtual_makespan_speedup_level9`.
//!    Guards the communication schedule and the cost models.
//! 3. **`scale_1k_wall_per_step_ms`** (wall clock, lower is better) — the
//!    ~1k-rank pooled-scheduler failure run, vs the first ok pooled row of
//!    `BENCH_pr6.json`. Guards the simulator runtime itself.
//! 4. **`level9_simd_speedup`** (wall clock, ratio of two same-machine
//!    measurements) — the vectorized level-9 step vs the scalar reference
//!    step, vs `BENCH_pr8.json`
//!    `acceptance.level9_simd_speedup_vs_scalar`. Guards the SIMD
//!    kernels: a build or dispatch change that silently falls back to
//!    scalar collapses this ratio to ~1.
//! 5. **`serve_overlap_ratio`** (wall clock, ratio of two same-process
//!    measurements) — the campaign service's 2-worker vs 1-worker
//!    throughput on a fixed batch of tiny CR solves, vs `BENCH_pr9.json`
//!    `acceptance.gate_overlap_ratio`. Guards the service layer: a
//!    scheduling, locking or panic-boundary change that serializes the
//!    shared pool collapses the ratio to ~1, while the ratio form
//!    cancels host-load and process-history noise that makes absolute
//!    jobs/sec baselines unportable.
//! 6. **`d2_level9_step_wall_ns`** (wall clock, lower is better) — the
//!    absolute median wall time of the double-buffered d=2 level-9 step,
//!    vs `BENCH_pr8.json` `acceptance.pr1_fast_double_buffered_median_ns`.
//!    Guards the classic 2D hot path against the d-dimensional
//!    generalization: the speedup gates are ratios and would hide a
//!    change that slowed both formulations equally.
//!
//! Wall-clock gates are inherently machine-relative, so CI runs this lane
//! advisory (`continue-on-error`); locally a nonzero exit means "look
//! before you merge".

use std::time::Instant;

use advect2d::laxwendroff::{lax_wendroff_row, lax_wendroff_step, LwCoef};
use advect2d::{AdvectionProblem, PaddedField};
use ftsg_core::RecoveryPolicy;
use sparsegrid::{Grid2, LevelPair};

use crate::experiments::overlap::combine_makespan;
use crate::experiments::scale::{json_num, json_str, run_child, ChildSpec};
use crate::table::{sig3, Table};

/// Allowed relative slip against a committed baseline before the gate
/// fails (0.15 = 15%).
pub const TOLERANCE: f64 = 0.15;

/// One gated quantity: baseline, fresh measurement, verdict.
#[derive(Debug, Clone)]
pub struct GateResult {
    pub name: &'static str,
    /// Committed file the baseline was read from.
    pub source: &'static str,
    pub baseline: f64,
    pub fresh: f64,
    /// Whether larger values are better (speedups) or worse (walls).
    pub higher_is_better: bool,
    pub pass: bool,
}

impl GateResult {
    fn new(
        name: &'static str,
        source: &'static str,
        baseline: f64,
        fresh: f64,
        higher_is_better: bool,
    ) -> Self {
        let pass = passes(baseline, fresh, higher_is_better, TOLERANCE);
        GateResult { name, source, baseline, fresh, higher_is_better, pass }
    }
}

/// The whole gate run.
#[derive(Debug, Clone)]
pub struct RegressReport {
    pub gates: Vec<GateResult>,
    pub tolerance: f64,
}

impl RegressReport {
    pub fn all_pass(&self) -> bool {
        self.gates.iter().all(|g| g.pass)
    }

    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Bench-regression gate (tolerance {:.0}%)", self.tolerance * 100.0),
            &["gate", "baseline", "fresh", "direction", "verdict", "source"],
        );
        for g in &self.gates {
            t.row(vec![
                g.name.into(),
                sig3(g.baseline),
                sig3(g.fresh),
                if g.higher_is_better { "higher-better".into() } else { "lower-better".into() },
                if g.pass { "ok".into() } else { "REGRESSED".into() },
                g.source.into(),
            ]);
        }
        t
    }
}

/// The pass rule: a speedup may slip to `baseline * (1 - tol)`, a wall
/// time may grow to `baseline * (1 + tol)`. Improvements always pass.
fn passes(baseline: f64, fresh: f64, higher_is_better: bool, tol: f64) -> bool {
    if !baseline.is_finite() || !fresh.is_finite() {
        return false;
    }
    if higher_is_better {
        fresh >= baseline * (1.0 - tol)
    } else {
        fresh <= baseline * (1.0 + tol)
    }
}

fn read_baseline(dir: &str, file: &'static str) -> Result<String, String> {
    let path = format!("{dir}/{file}");
    std::fs::read_to_string(&path).map_err(|e| format!("cannot read baseline {path}: {e}"))
}

/// First numeric occurrence of `key` in `text` (our BENCH files put the
/// `config`/`acceptance` blocks before the result rows, so "first" is the
/// config/acceptance value).
fn num_field(text: &str, key: &str, file: &str) -> Result<f64, String> {
    json_num(text, key).ok_or_else(|| format!("{file}: no numeric field \"{key}\""))
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Median wall times `(naive, fast)` in seconds of the seed and the
/// double-buffered level-9 step formulations (the same two code paths
/// `cargo bench` measures, sized down to `iters` timed runs each). The
/// ratio feeds the speedup gate; the `fast` wall also gates absolutely.
fn measure_step_walls(iters: usize) -> (f64, f64) {
    let p = AdvectionProblem::standard();
    let lev = LevelPair::new(9, 9);
    let n = 1usize << 9;
    let coef = LwCoef::new(&p, 1.0 / n as f64, 1.0 / n as f64, 1e-4);

    // Seed formulation: rebuild the whole padded copy per step.
    let mut grid = Grid2::from_fn(lev, p.initial());
    let (mut padded, mut out) = (Vec::new(), Vec::new());
    lax_wendroff_step(&mut grid, &coef, &mut padded, &mut out); // warm scratch
    let naive = median(
        (0..iters)
            .map(|_| {
                let t = Instant::now();
                lax_wendroff_step(&mut grid, &coef, &mut padded, &mut out);
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );

    // Double-buffered formulation: halo refresh + row kernel + swap.
    let mut field = PaddedField::from_grid(&Grid2::from_fn(lev, p.initial()));
    field.refresh_periodic_halo();
    field.step(|s, c2, n2, out| lax_wendroff_row(s, c2, n2, &coef, out));
    let fast = median(
        (0..iters)
            .map(|_| {
                let t = Instant::now();
                field.refresh_periodic_halo();
                field.step(|s, c2, n2, out| lax_wendroff_row(s, c2, n2, &coef, out));
                t.elapsed().as_secs_f64()
            })
            .collect(),
    );
    (naive, fast)
}

/// Re-run the smallest-scale pooled configuration from the committed
/// `BENCH_pr6.json` config block in-process and return its
/// `wall_per_step_ms`.
fn measure_scale_wall(pr6: &str) -> Result<f64, String> {
    let spec = ChildSpec {
        n: num_field(pr6, "n", "BENCH_pr6.json")? as u32,
        s: 53,
        log2_steps: num_field(pr6, "log2_steps", "BENCH_pr6.json")? as u32,
        failures: num_field(pr6, "failures", "BENCH_pr6.json")? as usize,
        seed: num_field(pr6, "seed", "BENCH_pr6.json")? as u64,
        threads: false,
        workers: 0,
        stack_kb: 1024,
        policy: RecoveryPolicy::Respawn,
    };
    let row = run_child(&spec);
    json_num(&row, "wall_per_step_ms").ok_or_else(|| format!("scale re-run emitted no wall: {row}"))
}

/// First ok pooled row's `wall_per_step_ms` from the committed scale
/// report (the sweep emits one row per line).
fn baseline_scale_wall(pr6: &str) -> Result<f64, String> {
    pr6.lines()
        .filter(|l| {
            json_str(l, "status").as_deref() == Some("ok")
                && json_str(l, "mode").as_deref() == Some("pooled")
        })
        .find_map(|l| json_num(l, "wall_per_step_ms"))
        .ok_or_else(|| "BENCH_pr6.json: no ok pooled row with wall_per_step_ms".into())
}

/// Run every gate against the baselines committed in `dir`.
pub fn run(dir: &str, iters: usize) -> Result<RegressReport, String> {
    let iters = iters.max(3);

    let pr1 = read_baseline(dir, "BENCH_pr1.json")?;
    let step_base = num_field(&pr1, "level9_single_owner_step_speedup", "BENCH_pr1.json")?;
    let (naive_wall, fast_wall) = measure_step_walls(iters);
    let step_fresh = naive_wall / fast_wall;

    let pr3 = read_baseline(dir, "BENCH_pr3.json")?;
    let combine_base =
        num_field(&pr3, "combine_virtual_makespan_speedup_level9", "BENCH_pr3.json")?;
    let combine_fresh = combine_makespan(9, true) / combine_makespan(9, false);

    let pr6 = read_baseline(dir, "BENCH_pr6.json")?;
    let scale_base = baseline_scale_wall(&pr6)?;
    let scale_fresh = measure_scale_wall(&pr6)?;

    let pr8 = read_baseline(dir, "BENCH_pr8.json")?;
    let simd_base = num_field(&pr8, "level9_simd_speedup_vs_scalar", "BENCH_pr8.json")?;
    let simd_fresh = crate::experiments::kernel::measure_simd_step_speedup(iters);
    let step_wall_base = num_field(&pr8, "pr1_fast_double_buffered_median_ns", "BENCH_pr8.json")?;

    let pr9 = read_baseline(dir, "BENCH_pr9.json")?;
    let serve_base = num_field(&pr9, "gate_overlap_ratio", "BENCH_pr9.json")?;
    let serve_fresh = crate::experiments::serve::measure_gate_overlap_ratio();

    Ok(RegressReport {
        gates: vec![
            GateResult::new("level9_step_speedup", "BENCH_pr1.json", step_base, step_fresh, true),
            GateResult::new(
                "combine_tree_speedup_n9",
                "BENCH_pr3.json",
                combine_base,
                combine_fresh,
                true,
            ),
            GateResult::new(
                "scale_1k_wall_per_step_ms",
                "BENCH_pr6.json",
                scale_base,
                scale_fresh,
                false,
            ),
            GateResult::new("level9_simd_speedup", "BENCH_pr8.json", simd_base, simd_fresh, true),
            GateResult::new("serve_overlap_ratio", "BENCH_pr9.json", serve_base, serve_fresh, true),
            GateResult::new(
                "d2_level9_step_wall_ns",
                "BENCH_pr8.json",
                step_wall_base,
                fast_wall * 1e9,
                false,
            ),
        ],
        tolerance: TOLERANCE,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_rule_is_directional() {
        // Speedup: 15% slip allowed, 16% is a regression, faster passes.
        assert!(passes(2.0, 1.71, true, 0.15));
        assert!(!passes(2.0, 1.69, true, 0.15));
        assert!(passes(2.0, 3.0, true, 0.15));
        // Wall: 15% growth allowed, more is a regression, faster passes.
        assert!(passes(10.0, 11.4, false, 0.15));
        assert!(!passes(10.0, 11.6, false, 0.15));
        assert!(passes(10.0, 5.0, false, 0.15));
        // Non-finite measurements never pass.
        assert!(!passes(f64::NAN, 1.0, true, 0.15));
        assert!(!passes(1.0, f64::INFINITY, false, 0.15));
    }

    #[test]
    fn baseline_scale_wall_takes_first_ok_pooled_row() {
        let pr6 = concat!(
            "{\"schema\":\"scale-row-v1\",\"status\":\"dnf\",\"mode\":\"pooled\"}\n",
            "{\"schema\":\"scale-row-v1\",\"status\":\"ok\",\"mode\":\"threads\",",
            "\"wall_per_step_ms\":99.0}\n",
            "{\"schema\":\"scale-row-v1\",\"status\":\"ok\",\"mode\":\"pooled\",",
            "\"wall_per_step_ms\":10.5}\n",
        );
        assert_eq!(baseline_scale_wall(pr6).unwrap(), 10.5);
        assert!(baseline_scale_wall("{}").is_err());
    }

    #[test]
    fn report_table_flags_regressions() {
        let report = RegressReport {
            gates: vec![
                GateResult::new("a", "x.json", 2.0, 2.1, true),
                GateResult::new("b", "y.json", 10.0, 20.0, false),
            ],
            tolerance: TOLERANCE,
        };
        assert!(!report.all_pass());
        let rendered = report.table().render();
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("ok"));
    }
}
