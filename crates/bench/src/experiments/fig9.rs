//! Fig. 9 — failed-grid data recovery overheads with 1–5 lost grids, for
//! the three techniques, on both test systems.
//!
//! * **9a**: raw data-recovery overhead. Per the paper's accounting,
//!   CR = all checkpoint writes + checkpoint read + recomputation;
//!   AC = the time to compute the new combination coefficients only (the
//!   combination itself "happens as a compulsory stage later");
//!   RC = the copy/resample transfer time.
//! * **9b**: normalized process-time overheads via the paper's formulas,
//!   charging RC and AC for their extra processes
//!   (`P_c/P_r/P_a = 44/76/49` at scale 4):
//!   `T'_c = C·T_IO + T_c`, `T'_r = (T_r·P_r + T_app_r(P_r−P_c))/P_c`,
//!   `T'_a = (T_a·P_a + T_app_a(P_a−P_c))/P_c`.
//!
//! Losses are *simulated* (no real kills, no reconstruction time), as in
//! the paper. The CR checkpoint count uses Eq. 2 (`C = T/T_IO`, MTBF
//! T = half the predicted run time), calibrated from a probe run.

use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, Technique};
use ulfm_sim::ClusterProfile;

use crate::opts::Opts;
use crate::runner::{emulate_paper_scale, launch_on, random_lost_grids, ModelKind};
use crate::table::{sig3, Table};

/// The paper's per-technique process counts at scale 4 are reproduced by
/// the layout automatically; this experiment fixes scale = 4 (8/4/2/1
/// processes per diagonal/lower/upper-extra/lower-extra grid).
const SCALE: usize = 4;

/// Eq. 2 calibration: probe a (nearly) checkpoint-free run for the base
/// time `T_base`, then solve the self-consistent fixed point of
/// `C = T/T_IO` with MTBF `T` = half the *checkpointing* run's own time
/// `T_c = T_base + C·T_IO`, which gives `C·T_IO = T_base`, i.e.
/// `C = T_base / T_IO` (capped so the checkpoint period stays ≥ 2 steps).
pub fn calibrated_checkpoints(opts: &Opts, profile: &ClusterProfile, log2_steps: u32) -> u32 {
    let cfg = AppConfig::paper_shaped(Technique::CheckpointRestart, opts.n, SCALE, log2_steps)
        .with_checkpoints(1);
    let report = launch_on(profile.clone(), ModelKind::Beta, cfg, opts.seed ^ 0xCAFE);
    let t_base = report.get_f64(keys::T_TOTAL).unwrap();
    let bytes = sparsegrid::LevelPair::new(opts.n - opts.l + 1, opts.n).points() * 8;
    let t_io = profile.checkpoint_write_time(bytes);
    AppConfig::optimal_checkpoints(2.0 * t_base, t_io).min((1u64 << log2_steps) as u32 / 2)
}

/// Run both sub-figures on both clusters.
pub fn run(opts: &Opts) -> Vec<Table> {
    let mut t9a = Table::new(
        format!(
            "Fig. 9a: failed grid data recovery overhead (n={}, l={}, scale={SCALE}, {} reps)",
            opts.n, opts.l, opts.reps
        ),
        &["cluster", "technique", "lost_grids", "t_recovery(s)"],
    );
    let mut t9b = Table::new(
        "Fig. 9b: process-time data recovery overhead (normalized to P_c)",
        &["cluster", "technique", "lost_grids", "T'(s)"],
    );

    let max_lost = if opts.quick { 2 } else { 5 };
    // Enough steps that the Eq.-2 optimal checkpoint count fits without
    // the period collapsing below 2 steps.
    let log2_steps = if opts.quick { opts.log2_steps } else { opts.log2_steps.max(8) };
    for base_profile in [ClusterProfile::opl(), ClusterProfile::raijin()] {
        let profile = emulate_paper_scale(base_profile, opts.n, log2_steps);
        let checkpoints = calibrated_checkpoints(opts, &profile, log2_steps);
        let p_c = ProcLayout::new(opts.n, opts.l, Technique::CheckpointRestart.layout(), SCALE)
            .world_size() as f64;
        for technique in [
            Technique::CheckpointRestart,
            Technique::ResamplingCopying,
            Technique::AlternateCombination,
        ] {
            let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), SCALE);
            let p_own = layout.world_size() as f64;
            for lost in 1..=max_lost {
                let mut rec = 0.0;
                let mut ckpt = 0.0;
                let mut total = 0.0;
                for rep in 0..opts.reps {
                    let seed = opts.seed ^ (lost as u64) << 32 ^ rep as u64;
                    let grids = random_lost_grids(
                        &layout,
                        lost,
                        technique == Technique::ResamplingCopying,
                        seed,
                    );
                    let cfg = AppConfig::paper_shaped(technique, opts.n, SCALE, log2_steps)
                        .with_checkpoints(checkpoints)
                        .with_simulated_losses(grids);
                    let report = launch_on(profile.clone(), ModelKind::Beta, cfg, seed);
                    rec += report.get_f64(keys::T_RECOVERY).unwrap();
                    ckpt += report.get_f64(keys::T_CKPT).unwrap();
                    total += report.get_f64(keys::T_TOTAL).unwrap();
                }
                let n = opts.reps as f64;
                let (rec, ckpt, total) = (rec / n, ckpt / n, total / n);
                // 9a: the technique's accountable overhead.
                let overhead = match technique {
                    Technique::CheckpointRestart => ckpt + rec,
                    _ => rec,
                };
                t9a.row(vec![
                    profile.name.clone(),
                    technique.label().into(),
                    lost.to_string(),
                    sig3(overhead),
                ]);
                // 9b: the paper's process-time normalization.
                let tp = match technique {
                    Technique::CheckpointRestart => ckpt + rec,
                    _ => (rec * p_own + total * (p_own - p_c)) / p_c,
                };
                t9b.row(vec![
                    profile.name.clone(),
                    technique.label().into(),
                    lost.to_string(),
                    sig3(tp),
                ]);
            }
        }
    }
    vec![t9a, t9b]
}
