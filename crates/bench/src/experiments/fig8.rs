//! Fig. 8 — wall time for (a) creating the failed-process list and
//! (b) reconstructing the faulty communicator, as a function of core
//! count, for one and two real process failures.
//!
//! Setup mirrors the paper: the Resampling-and-Copying process layout
//! (whose world sizes are the 19·s Table-I core counts), failures
//! injected just before the final detection point, times averaged over
//! `reps` runs. Both the calibrated beta-ULFM model and the ideal
//! ablation are reported; the paper's headline is that the beta's
//! two-failure times blow up where "in principle, these two times should
//! be roughly the same, irrespective of the number of process failures".

use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, Technique};
use ulfm_sim::{ClusterProfile, FaultPlan};

use crate::opts::Opts;
use crate::runner::{launch_on, random_victims, ModelKind};
use crate::table::{sig3, Table};

/// Run the sweep; returns one table with both sub-figures' series.
pub fn run(opts: &Opts) -> Vec<Table> {
    let technique = Technique::ResamplingCopying;
    let mut t = Table::new(
        format!(
            "Fig. 8: failure identification & communicator reconstruction (n={}, l={}, {} reps)",
            opts.n, opts.l, opts.reps
        ),
        &["model", "cores", "failures", "t_list(s)  [8a]", "t_reconstruct(s)  [8b]"],
    );
    for model in [ModelKind::Beta, ModelKind::Ideal] {
        for &s in &opts.scales {
            let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), s);
            let cores = layout.world_size();
            for failures in [1usize, 2] {
                let mut t_list = 0.0;
                let mut t_rec = 0.0;
                for rep in 0..opts.reps {
                    let seed = opts.seed ^ (s as u64) << 24 ^ (failures as u64) << 16 ^ rep as u64;
                    let cfg = AppConfig::paper_shaped(technique, opts.n, s, opts.log2_steps);
                    let steps = cfg.steps();
                    let victims = random_victims(&layout, failures, true, seed);
                    let plan = FaultPlan::new(victims.into_iter().map(|r| (r, steps)).collect());
                    let report = launch_on(ClusterProfile::opl(), model, cfg.with_plan(plan), seed);
                    t_list += report.get_f64(keys::T_LIST).expect("t_list reported");
                    t_rec += report.get_f64(keys::T_RECONSTRUCT).expect("t_reconstruct");
                }
                t.row(vec![
                    model.label().into(),
                    cores.to_string(),
                    failures.to_string(),
                    sig3(t_list / opts.reps as f64),
                    sig3(t_rec / opts.reps as f64),
                ]);
            }
        }
    }
    vec![t]
}
