//! Fig. 10 — average approximation error of the combined solution with
//! 0–5 lost grids, per technique, averaged over 20 random loss patterns.
//!
//! The error is the per-point-average l1 difference between the combined
//! solution and the exact analytic advection solution. The shapes to
//! reproduce: Checkpoint/Restart flat at the baseline (exact recovery);
//! Resampling-and-Copying and Alternate Combination growing with losses
//! but staying within a factor of 10 of the baseline up to 5 lost
//! grids — with the paper's surprise that **AC beats RC** even though RC
//! is "near-exact".

use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, Technique};
use ulfm_sim::ClusterProfile;

use crate::opts::Opts;
use crate::runner::{launch_on, random_lost_grids, ModelKind};
use crate::table::{sci, sig3, Table};

/// Error experiments are resolution-bound, not process-bound: scale 1
/// keeps them fast without changing any error number.
const SCALE: usize = 1;

/// Run the error sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let reps = if opts.quick { 3 } else { opts.reps.max(20) };
    let mut t = Table::new(
        format!(
            "Fig. 10: average l1 approximation error vs lost grids (n={}, l={}, {} reps)",
            opts.n, opts.l, reps
        ),
        &["technique", "lost_grids", "avg_err_l1", "vs_baseline"],
    );
    let max_lost = if opts.quick { 2 } else { 5 };
    for technique in [
        Technique::CheckpointRestart,
        Technique::ResamplingCopying,
        Technique::AlternateCombination,
    ] {
        let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), SCALE);
        let mut baseline = f64::NAN;
        for lost in 0..=max_lost {
            let mut acc = 0.0;
            let actual_reps = if lost == 0 { 1 } else { reps };
            for rep in 0..actual_reps {
                let seed = opts.seed ^ (lost as u64) << 40 ^ (rep as u64) << 8;
                let grids = if lost == 0 {
                    Vec::new()
                } else {
                    random_lost_grids(
                        &layout,
                        lost,
                        technique == Technique::ResamplingCopying,
                        seed,
                    )
                };
                let cfg = AppConfig::paper_shaped(technique, opts.n, SCALE, opts.log2_steps)
                    .with_simulated_losses(grids);
                let report = launch_on(ClusterProfile::opl(), ModelKind::Beta, cfg, seed);
                acc += report.get_f64(keys::ERR_L1).unwrap();
            }
            let avg = acc / actual_reps as f64;
            if lost == 0 {
                baseline = avg;
            }
            t.row(vec![technique.label().into(), lost.to_string(), sci(avg), sig3(avg / baseline)]);
        }
    }
    vec![t]
}
