//! `expt-policy` — the recovery-policy matrix: per-failure-count recovery
//! overhead vs combined-solution error vs virtual makespan, across every
//! `RecoveryPolicy` × technique pair.
//!
//! Every `(technique, failures, rep)` cell reuses the *same* victim set
//! under all four policies (the policy never enters the sampling seed),
//! so the rows are directly comparable: what you pay (makespan overhead)
//! and what you get (solution accuracy, final world size) for each way of
//! answering a failure. Two cross-policy invariants are asserted while
//! sweeping — `DeferRepair` and `SpareSubstitute` must reproduce the
//! `Respawn` solution *bitwise* (same restore sources, same deterministic
//! recompute), while `ShrinkRedistribute` trades accuracy for repair-free
//! continuation.

use std::collections::HashMap;
use std::time::Duration;

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayout, RecoveryPolicy, Technique};
use ulfm_sim::{FaultPlan, Report, RunConfig};

use crate::chaos::CHAOS_SPARES;
use crate::opts::Opts;
use crate::runner::random_victims;
use crate::table::{sig3, Table};

/// Failure counts swept per policy × technique cell.
pub const FAILURE_COUNTS: [usize; 4] = [0, 1, 2, 3];

/// One aggregated cell of the matrix (means over `reps` victim draws).
#[derive(Debug, Clone)]
pub struct PolicyRow {
    pub policy: &'static str,
    pub technique: &'static str,
    pub failures: usize,
    /// Mean virtual makespan (s).
    pub makespan: f64,
    /// Mean makespan minus this policy × technique's 0-failure makespan.
    pub overhead: f64,
    /// Mean combined-solution l1 error.
    pub err: f64,
    /// Mean final communicator size.
    pub world_end: f64,
}

/// Whole-sweep outcome.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    pub rows: Vec<PolicyRow>,
    pub n: u32,
    pub l: u32,
    pub log2_steps: u32,
    pub reps: usize,
    /// `substitute overhead / respawn overhead`, averaged over techniques
    /// at the highest failure count — the promote-don't-spawn payoff.
    pub substitute_overhead_ratio: f64,
    /// Same ratio for `ShrinkRedistribute` (no restore, no spawn).
    pub shrink_overhead_ratio: f64,
}

fn launch(cfg: AppConfig, seed: u64) -> Report {
    let layout = ProcLayout::new(cfg.n, cfg.l, cfg.technique.layout(), cfg.scale);
    let world = cfg.world_size(layout.world_size());
    let mut rc = RunConfig::local(world).with_seed(seed);
    rc.stall_timeout = Duration::from_secs(120);
    let report = ulfm_sim::run(rc, move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report
}

/// Run the sweep. Victim sets depend on `(technique, failures, rep)` only.
pub fn run(opts: &Opts) -> PolicyReport {
    let techniques = [
        Technique::CheckpointRestart,
        Technique::ResamplingCopying,
        Technique::AlternateCombination,
        Technique::BuddyCheckpoint,
    ];
    let reps = opts.reps.clamp(1, 3);
    let mut rows = Vec::new();
    // err bits per (policy, technique, failures, rep) — for the bitwise
    // cross-policy assertions.
    let mut err_bits: HashMap<(&'static str, &'static str, usize, usize), u64> = HashMap::new();
    for technique in techniques {
        let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), 1);
        let steps = 1u64 << opts.log2_steps;
        for policy in RecoveryPolicy::all() {
            let mut zero_makespan = f64::NAN;
            for failures in FAILURE_COUNTS {
                let cell_reps = if failures == 0 { 1 } else { reps };
                let (mut mk, mut ov, mut er, mut we) = (0.0, 0.0, 0.0, 0.0);
                for rep in 0..cell_reps {
                    let seed = opts.seed ^ (failures as u64) << 16 ^ (rep as u64) << 4;
                    let plan = if failures == 0 {
                        FaultPlan::none()
                    } else {
                        // Mid-run kills spread evenly over the schedule;
                        // the same victims under every policy.
                        let victims = random_victims(
                            &layout,
                            failures,
                            technique == Technique::ResamplingCopying,
                            seed,
                        );
                        FaultPlan::new(
                            victims
                                .into_iter()
                                .enumerate()
                                .map(|(j, r)| (r, (j as u64 + 1) * steps / (failures as u64 + 1)))
                                .collect(),
                        )
                    };
                    let mut cfg = AppConfig::paper_shaped(technique, opts.n, 1, opts.log2_steps)
                        .with_recovery_policy(policy)
                        .with_plan(plan);
                    if policy == RecoveryPolicy::SpareSubstitute {
                        cfg = cfg.with_spares(CHAOS_SPARES);
                    }
                    let report = launch(cfg, opts.seed);
                    let err = report.get_f64(keys::ERR_L1).expect("err_l1");
                    err_bits
                        .insert((policy.label(), technique.label(), failures, rep), err.to_bits());
                    mk += report.makespan;
                    er += err;
                    we += report.get_f64(keys::WORLD).expect("world");
                }
                mk /= cell_reps as f64;
                er /= cell_reps as f64;
                we /= cell_reps as f64;
                if failures == 0 {
                    zero_makespan = mk;
                } else {
                    ov = mk - zero_makespan;
                }
                rows.push(PolicyRow {
                    policy: policy.label(),
                    technique: technique.label(),
                    failures,
                    makespan: mk,
                    overhead: ov,
                    err: er,
                    world_end: we,
                });
            }
        }
    }
    // Cross-policy invariants: defer and substitute reproduce the respawn
    // solution bitwise for every technique, failure count, and draw.
    for (&(policy, tech, failures, rep), &bits) in &err_bits {
        if policy == "defer" || policy == "substitute" {
            let respawn = err_bits[&("respawn", tech, failures, rep)];
            assert_eq!(
                bits, respawn,
                "{policy} err bits diverge from respawn for {tech} f={failures} rep={rep}"
            );
        }
    }
    let ratio_of = |policy: &str| {
        let max_f = *FAILURE_COUNTS.last().unwrap();
        let mut num = 0.0;
        let mut den = 0.0;
        for row in &rows {
            if row.failures == max_f {
                if row.policy == policy {
                    num += row.overhead;
                } else if row.policy == "respawn" {
                    den += row.overhead;
                }
            }
        }
        num / den
    };
    let substitute_overhead_ratio = ratio_of("substitute");
    let shrink_overhead_ratio = ratio_of("shrink");
    PolicyReport {
        rows,
        n: opts.n,
        l: opts.l,
        log2_steps: opts.log2_steps,
        reps,
        substitute_overhead_ratio,
        shrink_overhead_ratio,
    }
}

impl PolicyReport {
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Recovery-policy matrix (n={}, l={}, 2^{} steps, {} draw(s) per cell)",
                self.n, self.l, self.log2_steps, self.reps
            ),
            &["policy", "technique", "failures", "makespan(s)", "overhead(s)", "err_l1", "world"],
        );
        for r in &self.rows {
            t.row(vec![
                r.policy.into(),
                r.technique.into(),
                r.failures.to_string(),
                sig3(r.makespan),
                sig3(r.overhead),
                format!("{:.3e}", r.err),
                format!("{:.1}", r.world_end),
            ]);
        }
        t
    }

    /// Hand-rolled JSON (the workspace has no serde).
    pub fn to_json(&self, date: &str) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"policy\": \"{}\", \"technique\": \"{}\", \"failures\": {}, \
                     \"virtual_makespan_s\": {:.6}, \"overhead_s\": {:.6}, \"err_l1\": {:.6e}, \
                     \"world_end\": {:.1}}}",
                    r.policy, r.technique, r.failures, r.makespan, r.overhead, r.err, r.world_end
                )
            })
            .collect();
        format!(
            "{{\n \"pr\": 7,\n \"date\": \"{date}\",\n \"note\": \"Recovery-policy matrix from \
             expt-policy (virtual time from the runtime cost models; identical victim sets \
             under every policy; defer and substitute asserted bitwise-equal to respawn while \
             sweeping).\",\n \"config\": {{\"n\": {}, \"l\": {}, \"log2_steps\": {}, \"reps\": {}, \
             \"spares\": {}}},\n \"acceptance\": {{\n  \
             \"defer_err_bitwise_equals_respawn\": true,\n  \
             \"substitute_err_bitwise_equals_respawn\": true,\n  \
             \"substitute_overhead_ratio_vs_respawn_3f\": {:.4},\n  \
             \"shrink_overhead_ratio_vs_respawn_3f\": {:.4}\n }},\n \"results\": [\n{}\n ]\n}}\n",
            self.n,
            self.l,
            self.log2_steps,
            self.reps,
            CHAOS_SPARES,
            self.substitute_overhead_ratio,
            self.shrink_overhead_ratio,
            rows.join(",\n"),
        )
    }
}
