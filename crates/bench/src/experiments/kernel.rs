//! `expt-kernel` — the kernel-vectorization acceptance experiment: row
//! kernel GFLOP/s (scalar reference vs SIMD) for all three stencils, and
//! the level-9 steady-state step wall under three configurations —
//! scalar, SIMD, and SIMD + 2 row bands. The SIMD-vs-scalar step ratio
//! is the machine-relative quantity the regression gate pins; the
//! absolute nanoseconds let `BENCH_pr8.json` be compared against
//! `BENCH_pr1.json`'s fast path when both were measured on one machine.
//!
//! The experiment also *checks* (not assumes) the bitwise contract: the
//! SIMD and banded paths must reproduce the scalar trajectory exactly,
//! bit for bit, over several steps before any timing is reported.

use std::time::Instant;

use advect2d::laxwendroff::{lax_wendroff_row, LwCoef};
use advect2d::{
    ftcs_row, ftcs_row_simd, lax_wendroff_row_simd, simd_isa_label, upwind_row, upwind_row_simd,
    AdvectionProblem, BandPool, PaddedField, UpwindCoef,
};
use sparsegrid::{Grid2, LevelPair};

use crate::table::{sig3, Table};

/// FLOPs per output cell of each row kernel, counted from the pinned
/// scalar expressions (adds + subs + muls; no FMA contraction exists in
/// these kernels by design).
pub const LW_FLOPS_PER_CELL: f64 = 21.0;
pub const UPWIND_FLOPS_PER_CELL: f64 = 6.0;
pub const FTCS_FLOPS_PER_CELL: f64 = 10.0;

/// One row-kernel measurement.
#[derive(Debug, Clone)]
pub struct RowKernelRow {
    pub kernel: &'static str,
    pub variant: &'static str,
    pub nx: usize,
    pub best_ns: f64,
    pub gflops: f64,
}

/// One level-9 full-step measurement.
#[derive(Debug, Clone)]
pub struct StepRow {
    pub mode: &'static str,
    pub best_ns: f64,
    pub cells_per_s: f64,
}

/// Whole-experiment outcome.
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub isa: &'static str,
    pub rows: Vec<RowKernelRow>,
    pub steps: Vec<StepRow>,
    /// SIMD and banded level-9 trajectories bitwise-equal to scalar.
    pub bitwise_ok: bool,
    /// Fresh `scalar_ns / simd_ns` at level 9 — machine-relative, gated.
    pub simd_speedup_vs_scalar: f64,
    /// Fresh `scalar_ns / simd_bands_ns` at level 9.
    pub bands_speedup_vs_scalar: f64,
    /// `BENCH_pr1.json`'s committed `level9_step/fast_double_buffered`
    /// median, if the baseline file was readable.
    pub pr1_fast_ns: Option<f64>,
    /// `pr1_fast_ns / simd_ns` — the ≥ 2x acceptance quantity.
    pub speedup_vs_pr1_fast: Option<f64>,
}

/// The minimum over samples — the estimator every timing here uses.
/// On shared hosts the interesting quantity is the *uncontended* cost:
/// contention and steal time only ever add, so the fastest sample is
/// the most reproducible estimate of what the code itself costs, and
/// ratios of minima are far more stable run-to-run than ratios of
/// medians (both sides of a ratio must be uncontended simultaneously
/// for a median to compare fairly).
fn best(v: Vec<f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// Time `f` `iters` times (after one warm-up call) and return the best
/// nanoseconds per call, batching `batch` calls per sample so short
/// kernels are not measured at clock resolution.
fn time_ns(iters: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    f();
    best(
        (0..iters.max(5))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    f();
                }
                t.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect(),
    )
}

/// Deterministic stencil rows for the row-kernel timings.
fn rows(nx: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let f = |k: usize, phase: f64| ((k as f64) * 0.37 + phase).sin();
    let s: Vec<f64> = (0..nx + 2).map(|k| f(k, 0.0)).collect();
    let c: Vec<f64> = (0..nx + 2).map(|k| f(k, 1.0)).collect();
    let n: Vec<f64> = (0..nx + 2).map(|k| f(k, 2.0)).collect();
    (s, c, n, vec![0.0; nx])
}

/// Measure all six row-kernel variants at width `nx`.
fn measure_rows(nx: usize, iters: usize) -> Vec<RowKernelRow> {
    let lw = LwCoef { cx: 0.2, cy: 0.15, cxx: 0.02, cyy: 0.01, cxy: 0.015 };
    let up = UpwindCoef { cx: 0.2, cy: 0.15 };
    let (s, c, n, mut out) = rows(nx);
    let batch = (1 << 14) / nx.max(1) + 1;

    let mut result = Vec::new();
    let mut push = |kernel, variant, flops: f64, ns: f64| {
        result.push(RowKernelRow {
            kernel,
            variant,
            nx,
            best_ns: ns,
            gflops: flops * nx as f64 / ns,
        });
    };
    let ns = time_ns(iters, batch, || lax_wendroff_row(&s, &c, &n, &lw, &mut out));
    push("lax_wendroff", "scalar", LW_FLOPS_PER_CELL, ns);
    let ns = time_ns(iters, batch, || lax_wendroff_row_simd(&s, &c, &n, &lw, &mut out));
    push("lax_wendroff", "simd", LW_FLOPS_PER_CELL, ns);
    let ns = time_ns(iters, batch, || upwind_row(&s, &c, &n, &up, &mut out));
    push("upwind", "scalar", UPWIND_FLOPS_PER_CELL, ns);
    let ns = time_ns(iters, batch, || upwind_row_simd(&s, &c, &n, &up, &mut out));
    push("upwind", "simd", UPWIND_FLOPS_PER_CELL, ns);
    let ns = time_ns(iters, batch, || ftcs_row(&s, &c, &n, 0.2, 0.25, &mut out));
    push("ftcs", "scalar", FTCS_FLOPS_PER_CELL, ns);
    let ns = time_ns(iters, batch, || ftcs_row_simd(&s, &c, &n, 0.2, 0.25, &mut out));
    push("ftcs", "simd", FTCS_FLOPS_PER_CELL, ns);
    result
}

/// Check the bitwise contract on the level-9 field: SIMD and SIMD+bands
/// must reproduce the scalar trajectory exactly over `steps` steps.
fn check_bitwise(coef: &LwCoef, lev: LevelPair, p: &AdvectionProblem, steps: usize) -> bool {
    let init = Grid2::from_fn(lev, p.initial());
    let mut scalar = PaddedField::from_grid(&init);
    let mut simd = scalar.clone();
    let mut banded = scalar.clone();
    for _ in 0..steps {
        scalar.refresh_periodic_halo();
        scalar.step(|s, c, n, out| lax_wendroff_row(s, c, n, coef, out));
        simd.refresh_periodic_halo();
        simd.step(|s, c, n, out| lax_wendroff_row_simd(s, c, n, coef, out));
        banded.refresh_periodic_halo();
        banded.step_banded(BandPool::global(), 2, |s, c, n, out| {
            lax_wendroff_row_simd(s, c, n, coef, out)
        });
    }
    let (ny, _) = (scalar.ny(), scalar.nx());
    (0..ny).all(|m| {
        let r = scalar.interior_row(m);
        r.iter().zip(simd.interior_row(m)).all(|(a, b)| a.to_bits() == b.to_bits())
            && r.iter().zip(banded.interior_row(m)).all(|(a, b)| a.to_bits() == b.to_bits())
    })
}

/// Measure the level-9 steady-state step in the three configurations.
///
/// Each mode is timed **in its own steady state**: several un-timed
/// warm-up steps first, so caches are hot and the core's frequency
/// license has settled on *that mode's* instruction mix before any
/// sample is taken. This mirrors what a real rank does — it steps with
/// one kernel configuration for the whole run — and avoids the
/// license-transition penalty that interleaving scalar and wide-vector
/// steps would charge to the SIMD rows (measured ~10% here), a cost no
/// actual solve pays.
fn measure_level9(iters: usize) -> Vec<StepRow> {
    let p = AdvectionProblem::standard();
    let lev = LevelPair::new(9, 9);
    let n = 1usize << 9;
    let coef = LwCoef::new(&p, 1.0 / n as f64, 1.0 / n as f64, 1e-4);
    let cells = (n * n) as f64;
    let iters = iters.max(5);
    let warmup = (iters / 4).max(5);

    let modes: [&'static str; 3] = ["fast_scalar", "fast_simd", "fast_simd_bands2"];
    modes
        .into_iter()
        .enumerate()
        .map(|(which, mode)| {
            let mut field = PaddedField::from_grid(&Grid2::from_fn(lev, p.initial()));
            let step = |field: &mut PaddedField| {
                let t = Instant::now();
                field.refresh_periodic_halo();
                match which {
                    0 => field.step(|s, c, n2, o| lax_wendroff_row(s, c, n2, &coef, o)),
                    1 => field.step(|s, c, n2, o| lax_wendroff_row_simd(s, c, n2, &coef, o)),
                    _ => field.step_banded(BandPool::global(), 2, |s, c, n2, o| {
                        lax_wendroff_row_simd(s, c, n2, &coef, o)
                    }),
                }
                t.elapsed().as_secs_f64() * 1e9
            };
            for _ in 0..warmup {
                step(&mut field);
            }
            let ns = best((0..iters).map(|_| step(&mut field)).collect());
            StepRow { mode, best_ns: ns, cells_per_s: cells / (ns * 1e-9) }
        })
        .collect()
}

/// Committed `level9_step/fast_double_buffered/9x9` median from
/// `BENCH_pr1.json`, if present in `dir`.
fn pr1_fast_baseline(dir: &str) -> Option<f64> {
    let text = std::fs::read_to_string(format!("{dir}/BENCH_pr1.json")).ok()?;
    let at = text.find("level9_step/fast_double_buffered")?;
    crate::experiments::scale::json_num(&text[at..], "median_ns")
}

/// Run the whole experiment. `iters` sizes the timing loops (use a small
/// value for `--quick` smoke runs); baselines are read from `dir`.
pub fn run(dir: &str, iters: usize) -> KernelReport {
    let p = AdvectionProblem::standard();
    let n = 1usize << 9;
    let coef = LwCoef::new(&p, 1.0 / n as f64, 1.0 / n as f64, 1e-4);
    let bitwise_ok = check_bitwise(&coef, LevelPair::new(9, 9), &p, 4);

    let mut rows = Vec::new();
    for nx in [512usize, 4096] {
        rows.extend(measure_rows(nx, iters));
    }
    let steps = measure_level9(iters);

    let ns_of = |mode: &str| steps.iter().find(|r| r.mode == mode).map(|r| r.best_ns);
    let scalar = ns_of("fast_scalar").unwrap_or(f64::NAN);
    let simd = ns_of("fast_simd").unwrap_or(f64::NAN);
    let bands = ns_of("fast_simd_bands2").unwrap_or(f64::NAN);
    let pr1_fast_ns = pr1_fast_baseline(dir);

    KernelReport {
        isa: simd_isa_label(),
        rows,
        steps,
        bitwise_ok,
        simd_speedup_vs_scalar: scalar / simd,
        bands_speedup_vs_scalar: scalar / bands,
        pr1_fast_ns,
        speedup_vs_pr1_fast: pr1_fast_ns.map(|b| b / simd),
    }
}

impl KernelReport {
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Row kernels and level-9 step (isa: {})", self.isa),
            &["bench", "best_ns", "rate"],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{}/{}/{}", r.kernel, r.variant, r.nx),
                sig3(r.best_ns),
                format!("{} GFLOP/s", sig3(r.gflops)),
            ]);
        }
        for s in &self.steps {
            t.row(vec![
                format!("level9_step/{}/9x9", s.mode),
                sig3(s.best_ns),
                format!("{} cells/s", sig3(s.cells_per_s)),
            ]);
        }
        t
    }

    /// `BENCH_pr8.json` contents: acceptance block first, then one result
    /// row per measurement (criterion-shim row shape).
    pub fn to_json(&self, date: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n \"pr\": 8,\n");
        s.push_str(&format!(" \"date\": \"{date}\",\n"));
        s.push_str(
            " \"note\": \"Vectorized kernels from expt-kernel: per-stencil row GFLOP/s \
             (scalar reference vs SIMD) and the level-9 steady-state step wall under \
             scalar / SIMD / SIMD+2-band configurations. Bitwise equality of the fast \
             paths is re-checked before timing.\",\n",
        );
        s.push_str(&format!(" \"config\": {{\"simd_isa\": \"{}\", \"level\": 9}},\n", self.isa));
        s.push_str(" \"acceptance\": {\n");
        s.push_str(&format!("  \"fast_paths_bitwise_identical\": {},\n", self.bitwise_ok));
        s.push_str(&format!(
            "  \"level9_simd_speedup_vs_scalar\": {:.4},\n",
            self.simd_speedup_vs_scalar
        ));
        s.push_str(&format!(
            "  \"level9_simd_bands_speedup_vs_scalar\": {:.4},\n",
            self.bands_speedup_vs_scalar
        ));
        if let (Some(b), Some(v)) = (self.pr1_fast_ns, self.speedup_vs_pr1_fast) {
            s.push_str(&format!("  \"pr1_fast_double_buffered_median_ns\": {b:.1},\n"));
            s.push_str(&format!("  \"level9_step_speedup_vs_pr1_fast\": {v:.4},\n"));
        }
        s.push_str("  \"required_min_speedup\": 2.0\n },\n \"results\": [\n");
        let mut rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"bench\": \"{}/{}/{}\", \"best_ns\": {:.1}, \"gflops\": {:.3}}}",
                    r.kernel, r.variant, r.nx, r.best_ns, r.gflops
                )
            })
            .collect();
        rows.extend(self.steps.iter().map(|r| {
            format!(
                "  {{\"bench\": \"level9_step/{}/9x9\", \"best_ns\": {:.1}, \
                 \"throughput\": {:.3}, \"throughput_unit\": \"elem/s\"}}",
                r.mode, r.best_ns, r.cells_per_s
            )
        }));
        s.push_str(&rows.join(",\n"));
        s.push_str("\n ]\n}\n");
        s
    }
}

/// Fresh machine-relative level-9 SIMD speedup, for the regression gate.
pub fn measure_simd_step_speedup(iters: usize) -> f64 {
    let steps = measure_level9(iters);
    let ns_of = |mode: &str| steps.iter().find(|r| r.mode == mode).map(|r| r.best_ns);
    ns_of("fast_scalar").unwrap_or(f64::NAN) / ns_of("fast_simd").unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_contract_holds_on_level7() {
        let p = AdvectionProblem::standard();
        let n = 1usize << 7;
        let coef = LwCoef::new(&p, 1.0 / n as f64, 1.0 / n as f64, 1e-4);
        assert!(check_bitwise(&coef, LevelPair::new(7, 7), &p, 3));
    }

    #[test]
    fn quick_report_is_complete_and_serializes() {
        let report = run("/nonexistent", 5);
        assert!(report.bitwise_ok, "fast paths drifted from the scalar reference");
        assert_eq!(report.rows.len(), 12);
        assert_eq!(report.steps.len(), 3);
        assert!(report.simd_speedup_vs_scalar.is_finite());
        assert!(report.pr1_fast_ns.is_none());
        let json = report.to_json("2026-01-01");
        assert!(json.contains("\"level9_simd_speedup_vs_scalar\""));
        assert!(json.contains("level9_step/fast_simd_bands2/9x9"));
        assert!(report.table().render().contains("GFLOP/s"));
    }
}
