//! The combination-phase A/B measured by `expt-overlap` and re-measured
//! by the `expt-regress` gate: one combination round over a world of
//! group leaders, centralized master gather vs binomial reduction tree,
//! in **virtual seconds** from the runtime cost models.

use std::sync::Arc;

use ftsg_core::gather::{binomial_combine, recv_grid_into, send_grid, GridScratch};
use sparsegrid::{
    combine_onto, gcp_coefficients, CombinationTerm, Grid2, GridSystem, Layout, LevelPair,
};
use ulfm_sim::{run, RunConfig};

/// The classical (n, l = 4) combination terms, one per group leader.
pub fn classical_terms(n: u32) -> (LevelPair, Vec<(f64, Grid2)>) {
    let sys = GridSystem::new(n, 4, Layout::Plain);
    let coeffs = gcp_coefficients(&sys.classical_downset());
    let terms = coeffs
        .iter()
        .filter(|(_, &c)| c != 0)
        .map(|(&lv, &c)| (c as f64, Grid2::from_fn(lv, |x, y| (4.7 * x).sin() * (2.9 * y).cos())))
        .collect();
    (sys.min_level(), terms)
}

/// One combination phase over a world of G leaders, replicating the cost
/// accounting of `run_app`'s combine phase for the chosen mode. Returns
/// the virtual makespan.
pub fn combine_makespan(n: u32, central: bool) -> f64 {
    let (target, data) = classical_terms(n);
    let world = data.len();
    let td = Arc::new(data);
    let report = run(RunConfig::local(world), move |ctx| {
        let w = ctx.initial_world().unwrap();
        let me = w.rank();
        let (coeff, grid) = &td[me];
        if central {
            // Reference path: leaders ship whole component grids to the
            // controller, which left-folds the combination serially.
            if me != 0 {
                send_grid(ctx, &w, 0, 9000 + me as i32, grid).unwrap();
            } else {
                let mut scratch = GridScratch::default();
                let mut sources: Vec<(f64, Grid2)> = vec![(*coeff, grid.clone())];
                for src in 1..w.size() {
                    let g = recv_grid_into(ctx, &w, src, 9000 + src as i32, &mut scratch).unwrap();
                    sources.push((td[src].0, g));
                }
                let terms: Vec<CombinationTerm> =
                    sources.iter().map(|(c, g)| CombinationTerm { coeff: *c, grid: g }).collect();
                let combined = combine_onto(target, &terms);
                ctx.compute_cells((terms.len() * target.points()) as u64);
                assert!(combined.values()[1].is_finite());
            }
        } else {
            // Tree path: every leader materializes its own term, then the
            // partials flow down the binomial tree.
            let term = CombinationTerm { coeff: *coeff, grid };
            let part = combine_onto(target, std::slice::from_ref(&term));
            ctx.compute_cells(target.points() as u64);
            let leaders: Vec<usize> = (0..w.size()).collect();
            let mut scratch = Vec::new();
            let combined =
                binomial_combine(ctx, &w, &leaders, 0, target, Some(part), &mut scratch, 9500)
                    .unwrap();
            if me == 0 {
                assert!(combined.unwrap().values()[1].is_finite());
            }
        }
    });
    report.assert_no_app_errors();
    report.makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_beats_central_at_small_n() {
        let central = combine_makespan(6, true);
        let tree = combine_makespan(6, false);
        assert!(central.is_finite() && tree.is_finite());
        assert!(central > tree, "central {central} should cost more than tree {tree}");
    }
}
