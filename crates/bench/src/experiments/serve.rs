//! `expt-serve` — throughput and soak validation of the multi-tenant
//! campaign service (`crates/service`), beyond the paper.
//!
//! Three phases, all against real solver jobs (each job is a complete
//! simulated-MPI world running the fault-tolerant application):
//!
//! 1. **Sweep** — jobs/sec over worker counts (default 1/2/4), identical
//!    job batch per point. The scaling target normalizes linear speedup
//!    by the *machine's* parallelism: on a `P`-core box, `w` workers can
//!    at best deliver `min(w, P)`× the 1-worker rate, so the acceptance
//!    ratio is `(jps_w / jps_1) / min(w, P) ≥ 0.7`.
//! 2. **Soak** — a 10k-job run through one service instance with seeded
//!    panic injection (the sabotage hook): exactly the injected jobs must
//!    land `Failed`, every sibling `Done`, the queue fully drained, and
//!    peak RSS (`VmHWM`) bounded — the panic-isolation contract at scale.
//! 3. **Gate** — a fixed-shape jobs/sec measurement re-run by
//!    `expt-regress` against the committed `BENCH_pr9.json` baseline.
//!
//! Results land in `BENCH_pr9.json` and `results/serve.csv`.

use std::collections::BTreeSet;
use std::time::Instant;

use ftsg_core::{AppConfig, Technique};
use ftsg_service::{JobId, JobSpec, JobState, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::scale::peak_rss_kb;
use crate::table::{sig3, Table};

/// Peak-RSS ceiling for the soak (MB). The whole point of a bounded
/// queue + take-once outputs is that 10k jobs do not accumulate state;
/// the ceiling is generous against the ~100 MB a healthy soak uses.
pub const SOAK_RSS_LIMIT_MB: f64 = 2048.0;

/// Fixed shape of the regression-gate measurement (shared with
/// `expt-regress`, which re-runs it against the committed baseline).
pub const GATE_WORKERS: usize = 2;
/// Jobs in the gate measurement.
pub const GATE_JOBS: usize = 120;
/// Seed of the gate measurement.
pub const GATE_SEED: u64 = 2014;

/// Sweep/soak sizing (see `expt-serve --help`).
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Worker counts swept for the throughput curve.
    pub workers_sweep: Vec<usize>,
    /// Jobs per sweep point.
    pub sweep_jobs: usize,
    /// Jobs in the soak phase.
    pub soak_jobs: usize,
    /// Workers serving the soak.
    pub soak_workers: usize,
    /// Panic-sabotage jobs injected into the soak (seeded positions).
    pub sabotage: usize,
    /// Base RNG seed (job seeds and sabotage positions).
    pub seed: u64,
    /// CI smoke: small sweep + short soak.
    pub smoke: bool,
    /// Output path for the machine-readable benchmark report.
    pub out: String,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            workers_sweep: vec![1, 2, 4],
            sweep_jobs: 240,
            soak_jobs: 10_000,
            soak_workers: 4,
            sabotage: 25,
            seed: 2014,
            smoke: false,
            out: "BENCH_pr9.json".into(),
        }
    }
}

impl ServeOpts {
    /// Shrink to the CI smoke shape (the full soak is a nightly lane).
    pub fn apply_smoke(&mut self) {
        self.workers_sweep = vec![1, 2];
        self.sweep_jobs = 40;
        self.soak_jobs = 400;
        self.soak_workers = 2;
        self.sabotage = 5;
        self.smoke = true;
    }
}

/// The job every throughput phase runs: the smallest config that still
/// exercises the full CR pipeline (layout, solve, combine, async
/// checkpoint write) so jobs/sec measures real service overhead over
/// real work, not channel ping-pong.
fn tiny_solve_cfg() -> AppConfig {
    let mut cfg = AppConfig::small(Technique::CheckpointRestart);
    cfg.n = 5;
    cfg.log2_steps = 3;
    cfg.checkpoints = 1;
    cfg
}

/// Silence the panic backtraces of injected sabotage jobs (they are the
/// test payload, not bugs); everything else goes to the previous hook.
fn quiet_sabotage_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg: Option<&str> = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.contains("sabotage-")) {
                prev(info);
            }
        }));
    });
}

/// One throughput measurement: `jobs` tiny solves through a fresh
/// service with `workers` workers. Returns `(wall_s, jobs_per_sec)`.
pub fn measure_point(workers: usize, jobs: usize, seed: u64) -> (f64, f64) {
    let (svc, rx) = Service::start(ServiceConfig { workers, queue_depth: 128 });
    // The sweep measures the job path, not the listener: drain events on
    // a side thread so the channel never accumulates 10k buffered sends.
    let listener = std::thread::spawn(move || rx.iter().count());
    let t0 = Instant::now();
    for i in 0..jobs {
        svc.submit(JobSpec::solve(format!("sweep-{i}"), tiny_solve_cfg(), seed + i as u64))
            .expect("sweep submit");
    }
    svc.drain();
    let wall = t0.elapsed().as_secs_f64();
    svc.shutdown();
    let _ = listener.join();
    (wall, jobs as f64 / wall.max(1e-9))
}

/// The fixed-shape measurement `expt-regress` gates on: the ratio of
/// `GATE_WORKERS`-worker to 1-worker throughput on the same job batch —
/// the service's overlap win (while one fiber world blocks on I/O or
/// timers, another runs). A *ratio of two same-process measurements* is
/// the same trick as the SIMD gate: absolute jobs/sec swings 2-3x with
/// host load and process history (allocator state, warmed pools), which
/// would perma-fail any absolute baseline, while the ratio cancels all
/// of that. A scheduling, locking or panic-boundary change that
/// serializes the pool collapses the ratio to ~1 (on a 1-core host the
/// healthy value is modest — ~1.2, pure blocked-time overlap — while
/// multi-core hosts see close to `GATE_WORKERS`×).
pub fn measure_gate_overlap_ratio() -> f64 {
    quiet_sabotage_panics();
    // One unmeasured batch first: the very first service run in a
    // process pays allocator/page-in warmup that would bias whichever
    // side runs first.
    let _ = measure_point(1, GATE_JOBS, GATE_SEED);
    // Paired back-to-back batches, median of the per-pair ratios:
    // pairing cancels slow host-load drift, the median shrugs off a
    // single noisy pair.
    let mut ratios: Vec<f64> = (0..5)
        .map(|_| {
            let two = measure_point(GATE_WORKERS, GATE_JOBS, GATE_SEED).1;
            let one = measure_point(1, GATE_JOBS, GATE_SEED).1;
            two / one
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Soak outcome, already checked against the isolation contract.
pub struct SoakResult {
    pub jobs: usize,
    pub wall_s: f64,
    pub jobs_per_sec: f64,
    pub done: usize,
    pub failed: usize,
    pub cancelled: usize,
    pub injected: usize,
    /// Exactly the injected jobs failed — no collateral damage, no lost
    /// jobs, queue fully drained.
    pub injection_exact: bool,
    pub peak_rss_mb: Option<f64>,
}

/// Run the soak: `jobs` jobs over `workers` workers, with `sabotage`
/// seeded panic jobs mixed in at RNG-chosen positions.
pub fn run_soak(workers: usize, jobs: usize, sabotage: usize, seed: u64) -> SoakResult {
    quiet_sabotage_panics();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ab0_7a6e);
    let mut sab_at: BTreeSet<usize> = BTreeSet::new();
    while sab_at.len() < sabotage.min(jobs) {
        sab_at.insert(rng.gen_range(0..jobs));
    }
    let (svc, rx) = Service::start(ServiceConfig { workers, queue_depth: 128 });
    let listener = std::thread::spawn(move || rx.iter().count());
    let mut ids: Vec<(usize, JobId)> = Vec::with_capacity(jobs);
    let t0 = Instant::now();
    for i in 0..jobs {
        let spec = if sab_at.contains(&i) {
            JobSpec::sabotage(format!("soak-{i}"), format!("sabotage-{i}"))
        } else {
            JobSpec::solve(format!("soak-{i}"), tiny_solve_cfg(), seed + i as u64)
        };
        ids.push((i, svc.submit(spec).expect("soak submit")));
    }
    svc.drain();
    let wall = t0.elapsed().as_secs_f64();
    let drained = svc.open_jobs() == 0;

    let (mut done, mut cancelled) = (0usize, 0usize);
    let mut failed_idx: BTreeSet<usize> = BTreeSet::new();
    let mut exact = drained;
    for (i, id) in &ids {
        match svc.state(*id) {
            Some(JobState::Done) => done += 1,
            Some(JobState::Cancelled) => cancelled += 1,
            Some(JobState::Failed(msg)) => {
                failed_idx.insert(*i);
                // The failure must be the injected panic, payload intact.
                if !msg.contains(&format!("sabotage-{i}")) {
                    exact = false;
                }
            }
            other => {
                eprintln!("expt-serve: job {i} in non-terminal state {other:?} after drain");
                exact = false;
            }
        }
    }
    exact = exact && failed_idx == sab_at && cancelled == 0 && done == jobs - sab_at.len();
    svc.shutdown();
    let _ = listener.join();
    SoakResult {
        jobs,
        wall_s: wall,
        jobs_per_sec: jobs as f64 / wall.max(1e-9),
        done,
        failed: failed_idx.len(),
        cancelled,
        injected: sab_at.len(),
        injection_exact: exact,
        peak_rss_mb: peak_rss_kb().map(|kb| kb as f64 / 1024.0),
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "null".into(),
    }
}

/// Run sweep + soak + gate, write `BENCH_pr9.json` and the CSV table.
/// Returns the process exit code.
pub fn run(o: &ServeOpts) -> i32 {
    quiet_sabotage_panics();
    let avail = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);

    let mut table = Table::new(
        format!(
            "Campaign-service throughput (sweep {} jobs/point, soak {} jobs, {} sabotage)",
            o.sweep_jobs, o.soak_jobs, o.sabotage
        ),
        &["phase", "workers", "jobs", "wall(s)", "jobs/sec", "failed", "peak RSS(MB)", "status"],
    );
    let mut rows: Vec<String> = Vec::new();

    // The fixed-shape gate ratio for expt-regress (same-process
    // 2-worker/1-worker throughput; see measure_gate_overlap_ratio).
    eprintln!(
        "expt-serve: gate measurement ({GATE_JOBS} jobs, {GATE_WORKERS}w/1w ratio, best of 3) ..."
    );
    let gate = measure_gate_overlap_ratio();

    // Phase 1 — throughput sweep. Best of 3 batches per point (the
    // min-wall estimator): single batches on a loaded host swing enough
    // to invert the worker ordering, the uncontended best doesn't.
    let mut jps: Vec<(usize, f64)> = Vec::new();
    for &w in &o.workers_sweep {
        eprintln!("expt-serve: sweep {} jobs over {w} worker(s), best of 3 ...", o.sweep_jobs);
        let (wall, rate) = (0..3)
            .map(|_| measure_point(w, o.sweep_jobs, o.seed))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        jps.push((w, rate));
        rows.push(format!(
            concat!(
                r#"{{"schema":"serve-row-v1","phase":"sweep","workers":{w},"jobs":{jobs},"#,
                r#""wall_s":{wall:.6},"jobs_per_sec":{rate:.6}}}"#
            ),
            w = w,
            jobs = o.sweep_jobs,
            wall = wall,
            rate = rate,
        ));
        table.row(vec![
            "sweep".into(),
            w.to_string(),
            o.sweep_jobs.to_string(),
            sig3(wall),
            sig3(rate),
            "0".into(),
            "-".into(),
            "ok".into(),
        ]);
    }

    // Normalized scaling efficiency from 1 worker to the largest swept
    // count: ideal speedup on this machine is min(w, cores).
    let jps1 = jps.iter().find(|&&(w, _)| w == 1).map(|&(_, r)| r);
    let (w_max, jps_max) = jps.iter().cloned().max_by_key(|&(w, _)| w).unwrap_or((1, f64::NAN));
    let efficiency = jps1.map(|r1| {
        let ideal = w_max.min(avail) as f64;
        (jps_max / r1) / ideal
    });
    let scaling_ok = efficiency.map(|e| e >= 0.7).unwrap_or(false);

    // Phase 2 — soak with seeded panic injection.
    eprintln!(
        "expt-serve: soak {} jobs over {} worker(s), {} sabotaged ...",
        o.soak_jobs, o.soak_workers, o.sabotage
    );
    let soak = run_soak(o.soak_workers, o.soak_jobs, o.sabotage, o.seed);
    let rss_ok = soak.peak_rss_mb.map(|mb| mb < SOAK_RSS_LIMIT_MB).unwrap_or(true);
    rows.push(format!(
        concat!(
            r#"{{"schema":"serve-row-v1","phase":"soak","workers":{w},"jobs":{jobs},"#,
            r#""wall_s":{wall:.6},"jobs_per_sec":{rate:.6},"done":{done},"failed":{failed},"#,
            r#""cancelled":{cancelled},"injected":{injected},"injection_exact":{exact},"#,
            r#""peak_rss_mb":{rss}}}"#
        ),
        w = o.soak_workers,
        jobs = soak.jobs,
        wall = soak.wall_s,
        rate = soak.jobs_per_sec,
        done = soak.done,
        failed = soak.failed,
        cancelled = soak.cancelled,
        injected = soak.injected,
        exact = soak.injection_exact,
        rss = json_opt(soak.peak_rss_mb),
    ));
    table.row(vec![
        "soak".into(),
        o.soak_workers.to_string(),
        soak.jobs.to_string(),
        sig3(soak.wall_s),
        sig3(soak.jobs_per_sec),
        soak.failed.to_string(),
        soak.peak_rss_mb.map(sig3).unwrap_or_else(|| "-".into()),
        if soak.injection_exact { "ok".into() } else { "VIOLATED".into() },
    ]);

    // Phase 3 — report the gate ratio measured up top.
    rows.push(format!(
        concat!(
            r#"{{"schema":"serve-row-v1","phase":"gate","workers":{w},"jobs":{jobs},"#,
            r#""overlap_ratio":{rate:.6}}}"#
        ),
        w = GATE_WORKERS,
        jobs = GATE_JOBS,
        rate = gate,
    ));
    // The gate value is the 2w/1w throughput ratio, not a jobs/sec.
    table.row(vec![
        "gate 2w/1w".into(),
        GATE_WORKERS.to_string(),
        GATE_JOBS.to_string(),
        "-".into(),
        format!("{gate:.2}x"),
        "0".into(),
        "-".into(),
        "ok".into(),
    ]);

    let jps_json: Vec<String> = jps.iter().map(|(w, r)| format!("\"w{w}\": {r:.6}")).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"BENCH_pr9\",\n",
            "  \"experiment\": \"expt-serve\",\n",
            "  \"config\": {{\"sweep_jobs\": {sj}, \"soak_jobs\": {kj}, ",
            "\"soak_workers\": {kw}, \"sabotage\": {sab}, \"seed\": {seed}, ",
            "\"smoke\": {smoke}, \"available_parallelism\": {avail}, ",
            "\"gate_workers\": {gw}, \"gate_jobs\": {gj}}},\n",
            "  \"rows\": [\n    {rows}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    {jps},\n",
            "    \"scaling_efficiency_normalized\": {eff},\n",
            "    \"target_scaling_0_7x\": {s_ok},\n",
            "    \"soak_peak_rss_mb\": {rss},\n",
            "    \"soak_rss_limit_mb\": {rss_lim},\n",
            "    \"soak_rss_bounded\": {rss_ok},\n",
            "    \"panic_injection_exact\": {exact},\n",
            "    \"gate_overlap_ratio\": {gate:.6}\n",
            "  }}\n",
            "}}\n"
        ),
        sj = o.sweep_jobs,
        kj = o.soak_jobs,
        kw = o.soak_workers,
        sab = o.sabotage,
        seed = o.seed,
        smoke = o.smoke,
        avail = avail,
        gw = GATE_WORKERS,
        gj = GATE_JOBS,
        rows = rows.join(",\n    "),
        jps = jps_json.join(",\n    "),
        eff = json_opt(efficiency),
        s_ok = scaling_ok,
        rss = json_opt(soak.peak_rss_mb),
        rss_lim = SOAK_RSS_LIMIT_MB,
        rss_ok = rss_ok,
        exact = soak.injection_exact,
        gate = gate,
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("expt-serve: cannot write {}: {e}", o.out);
        return 2;
    }
    table.emit("results/serve.csv");
    println!("report written to {}", o.out);
    if let Some(e) = efficiency {
        println!(
            "scaling 1->{w_max} workers: {:.2}x of ideal min({w_max},{avail})x ({})",
            e,
            if scaling_ok { "ok" } else { "BELOW 0.7" },
        );
    }
    println!(
        "soak: {} jobs in {:.1}s ({:.0} jobs/sec), {} failed (injected {}), exact={}, rss={}MB",
        soak.jobs,
        soak.wall_s,
        soak.jobs_per_sec,
        soak.failed,
        soak.injected,
        soak.injection_exact,
        soak.peak_rss_mb.map(sig3).unwrap_or_else(|| "-".into()),
    );

    if soak.injection_exact && rss_ok && scaling_ok {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cfg_is_a_real_cr_solve() {
        let cfg = tiny_solve_cfg();
        assert_eq!(cfg.technique, Technique::CheckpointRestart);
        assert!(cfg.steps() >= 4);
        assert!(cfg.checkpoints >= 1);
    }

    /// A miniature of the soak: sabotage positions are seeded, exactly
    /// those jobs fail, siblings complete, queue drains.
    #[test]
    fn mini_soak_isolates_injected_panics() {
        let soak = run_soak(2, 24, 3, 7);
        assert_eq!(soak.injected, 3);
        assert_eq!(soak.failed, 3);
        assert_eq!(soak.done, 21);
        assert_eq!(soak.cancelled, 0);
        assert!(soak.injection_exact);
    }

    /// Same seed, same sabotage positions: the injection is reproducible.
    #[test]
    fn soak_injection_is_seed_deterministic() {
        let a = run_soak(2, 16, 2, 11);
        let b = run_soak(2, 16, 2, 11);
        assert!(a.injection_exact && b.injection_exact);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.done, b.done);
    }
}
