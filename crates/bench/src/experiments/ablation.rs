//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Respawn placement** — the paper pins replacements to the failed
//!    rank's original host "for load balancing" (§II-C) and proposes
//!    spare-node recovery as future work (§V). The ablation compares
//!    same-host, spare-node, and a naive first-host placement under a
//!    whole-node failure: the naive policy oversubscribes a node, and the
//!    bulk-synchronous solve slows down with it.
//! 2. **ULFM implementation maturity** — the beta-vs-ideal cost model
//!    comparison (also visible in Fig. 8's series) at the application
//!    level: total time to recover from a double failure.

use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, RespawnPolicy, Technique};
use ulfm_sim::{ClusterProfile, FaultPlan};

use crate::opts::Opts;
use crate::runner::{emulate_paper_scale, launch_on, random_victims, ModelKind};
use crate::table::{sig3, Table};

/// Run all ablations.
pub fn run(opts: &Opts) -> Vec<Table> {
    vec![respawn_placement(opts), ulfm_maturity(opts), buddy_vs_disk(opts)]
}

/// Extension bench: diskless buddy checkpointing vs on-disk
/// Checkpoint/Restart on both clusters — the protection cost (all
/// checkpoint epochs) and the recovery outcome for one mid-run failure.
fn buddy_vs_disk(opts: &Opts) -> Table {
    let mut t = Table::new(
        "Extension: diskless buddy checkpointing vs Checkpoint/Restart (1 mid-run failure)",
        &["cluster", "technique", "t_protect(s)", "t_recovery(s)", "t_total(s)", "err_vs_baseline"],
    );
    for base_profile in [ClusterProfile::opl(), ClusterProfile::raijin()] {
        let profile = emulate_paper_scale(base_profile, opts.n, opts.log2_steps);
        for technique in [Technique::CheckpointRestart, Technique::BuddyCheckpoint] {
            let cfg =
                AppConfig::paper_shaped(technique, opts.n, 2, opts.log2_steps).with_checkpoints(4);
            let steps = cfg.steps();
            let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), 2);
            let baseline = launch_on(profile.clone(), ModelKind::Ideal, cfg.clone(), opts.seed)
                .get_f64(keys::ERR_L1)
                .unwrap();
            let victim = layout.group(2).first;
            let plan = FaultPlan::single(victim, steps / 3);
            let report =
                launch_on(profile.clone(), ModelKind::Ideal, cfg.with_plan(plan), opts.seed);
            t.row(vec![
                profile.name.clone(),
                technique.label().into(),
                sig3(report.get_f64(keys::T_CKPT).unwrap()),
                sig3(report.get_f64(keys::T_RECOVERY).unwrap()),
                sig3(report.get_f64(keys::T_TOTAL).unwrap()),
                format!("{:.2}x", report.get_f64(keys::ERR_L1).unwrap() / baseline),
            ]);
        }
    }
    t
}

/// Node failure recovered under three placement policies.
fn respawn_placement(opts: &Opts) -> Table {
    let mut t = Table::new(
        format!(
            "Ablation: respawn placement under a whole-node failure (n={}, l={})",
            opts.n, opts.l
        ),
        &["policy", "t_total(s)", "t_solve(s)", "vs_same_host"],
    );
    // Checkpoint/Restart so detection happens mid-run and the remaining
    // three quarters of the solve feel the post-recovery load (im)balance.
    let technique = Technique::CheckpointRestart;
    let scale = 2;
    let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), scale);
    // A small-node profile (4 slots) so one node holds a meaningful chunk
    // of the world and its loss is a genuine node failure.
    let mut profile = emulate_paper_scale(
        ClusterProfile::local(layout.world_size().div_ceil(4) + 2, 4),
        opts.n,
        opts.log2_steps,
    );
    profile.name = "ablation".into();
    // Kill node 1 entirely (ranks 4..8) a quarter of the way in.
    let steps = 1u64 << opts.log2_steps;
    let victims: Vec<(usize, u64)> = (4..8).map(|r| (r, steps / 4)).collect();

    let mut baseline = None;
    for policy in [RespawnPolicy::SameHost, RespawnPolicy::SpareNode, RespawnPolicy::FirstHost] {
        let cfg = AppConfig::paper_shaped(technique, opts.n, scale, opts.log2_steps)
            .with_checkpoints(3)
            .with_plan(FaultPlan::new(victims.clone()))
            .with_respawn_policy(policy);
        let report = launch_on(profile.clone(), ModelKind::Ideal, cfg, opts.seed);
        let total = report.get_f64(keys::T_TOTAL).unwrap();
        let solve = report.get_f64(keys::T_SOLVE).unwrap();
        let base = *baseline.get_or_insert(total);
        t.row(vec![
            format!("{policy:?}"),
            sig3(total),
            sig3(solve),
            format!("{:.2}x", total / base),
        ]);
    }
    t
}

/// Beta vs ideal ULFM at the application level.
fn ulfm_maturity(opts: &Opts) -> Table {
    let mut t = Table::new(
        "Ablation: ULFM implementation maturity (2 real failures, RC technique)",
        &["model", "cores", "t_reconstruct(s)", "t_total(s)"],
    );
    let technique = Technique::ResamplingCopying;
    for &s in &opts.scales {
        let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), s);
        for model in [ModelKind::Beta, ModelKind::Ideal] {
            let cfg = AppConfig::paper_shaped(technique, opts.n, s, opts.log2_steps);
            let steps = cfg.steps();
            let victims = random_victims(&layout, 2, true, opts.seed ^ (s as u64));
            let plan = FaultPlan::new(victims.into_iter().map(|r| (r, steps)).collect());
            let report = launch_on(
                emulate_paper_scale(ClusterProfile::opl(), opts.n, opts.log2_steps),
                model,
                cfg.with_plan(plan),
                opts.seed,
            );
            t.row(vec![
                model.label().into(),
                layout.world_size().to_string(),
                sig3(report.get_f64(keys::T_RECONSTRUCT).unwrap()),
                sig3(report.get_f64(keys::T_TOTAL).unwrap()),
            ]);
        }
    }
    t
}
