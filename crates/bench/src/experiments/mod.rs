//! One module per paper artifact. Every module exposes
//! `run(&Opts) -> Vec<Table>`; the binaries print and save the tables.

pub mod ablation;
pub mod dim3;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod kernel;
pub mod overlap;
pub mod policy;
pub mod regress;
pub mod scale;
pub mod serve;
pub mod table1;
