//! `expt-3d` — the paper's Figs. 9/10 experiment lifted to three
//! dimensions: error of the combined solution vs the number of lost
//! component grids, per recovery technique, for both 3D problems
//! (upwind advection–diffusion and the elliptic Jacobi solve).
//!
//! Losses are *simulated* at end-of-run (no kills, no reconstruction
//! time), exactly like the 2D Fig. 9/10 harness: CR restores lost grids
//! from checkpoints (error stays at the healthy value), RC resamples or
//! copies from duplicate grids (near-exact), and AC recombines the
//! survivors with robust coefficients (the error–loss trade-off curve).
//!
//! The binary writes `results/expt3d.csv` and the `BENCH_pr10.json`
//! acceptance artifact.

use advect2d::ndproblem::ProblemN;
use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayoutN, Technique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ulfm_sim::{run, RunConfig};

use crate::table::{sci, sig3, utc_today, Table};

/// Sizing knobs for the 3D sweep (own struct: the shared [`crate::Opts`]
/// defaults are 2D-sized).
#[derive(Debug, Clone)]
pub struct Dim3Opts {
    pub n: u32,
    pub l: u32,
    pub log2_steps: u32,
    pub reps: usize,
    pub max_lost: usize,
    pub seed: u64,
    pub out: String,
}

impl Default for Dim3Opts {
    fn default() -> Self {
        Dim3Opts {
            n: 4,
            l: 4,
            log2_steps: 4,
            reps: 5,
            max_lost: 6,
            seed: 2014,
            out: "BENCH_pr10.json".into(),
        }
    }
}

impl Dim3Opts {
    /// Shrink for the CI smoke lane.
    pub fn apply_smoke(&mut self) {
        self.reps = 1;
        self.max_lost = 2;
    }
}

const DIM: usize = 3;

const TECHNIQUES: [Technique; 3] =
    [Technique::CheckpointRestart, Technique::ResamplingCopying, Technique::AlternateCombination];

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    pub problem: &'static str,
    pub technique: &'static str,
    pub lost: usize,
    /// Mean combined-solution L1 error over the reps.
    pub err: f64,
    /// `err / healthy err` for the same (problem, technique).
    pub ratio: f64,
}

fn problem_of(name: &str) -> ProblemN {
    match name {
        "advection" => ProblemN::standard_advection(DIM),
        "elliptic" => ProblemN::standard_elliptic(DIM),
        other => panic!("unknown 3D problem {other:?}"),
    }
}

/// Sample `count` distinct lost grids, honouring the RC duplicate
/// conflicts when the technique is Resampling-and-Copying.
fn random_lost_grids_nd(
    layout: &ProcLayoutN,
    count: usize,
    rc_constraints: bool,
    seed: u64,
) -> Vec<usize> {
    let sys = layout.system();
    let n_grids = sys.n_grids();
    assert!(count <= n_grids, "cannot lose {count} of {n_grids} grids");
    let mut rng = StdRng::seed_from_u64(seed);
    let conflicts = sys.rc_conflicts();
    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(guard < 100_000, "could not sample {count} admissible lost grids");
        let mut grids: Vec<usize> = Vec::new();
        while grids.len() < count {
            let g = rng.gen_range(0..n_grids);
            if !grids.contains(&g) {
                grids.push(g);
            }
        }
        if rc_constraints
            && conflicts.iter().any(|&(a, b)| grids.contains(&a) && grids.contains(&b))
        {
            continue;
        }
        grids.sort_unstable();
        return grids;
    }
}

fn run_once(o: &Dim3Opts, problem: &str, technique: Technique, lost: &[usize], seed: u64) -> f64 {
    let mut cfg = AppConfig::small_nd(technique, DIM).with_problem_nd(problem_of(problem));
    cfg.n = o.n;
    cfg.l = o.l;
    cfg.log2_steps = o.log2_steps;
    cfg = cfg.with_simulated_losses(lost.to_vec());
    let world = ProcLayoutN::new(DIM, o.n, o.l, technique.layout(), 1).world_size();
    let report = run(RunConfig::local(world).with_seed(seed), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report.get_f64(keys::ERR_L1).expect("controller reports err_l1")
}

/// Run the sweep and return every measured point.
pub fn sweep(o: &Dim3Opts) -> Vec<CurvePoint> {
    let mut points = Vec::new();
    for problem in ["advection", "elliptic"] {
        for technique in TECHNIQUES {
            let layout = ProcLayoutN::new(DIM, o.n, o.l, technique.layout(), 1);
            let max_lost = o.max_lost.min(layout.system().n_grids() - 1);
            let healthy = run_once(o, problem, technique, &[], o.seed);
            points.push(CurvePoint {
                problem,
                technique: technique.label(),
                lost: 0,
                err: healthy,
                ratio: 1.0,
            });
            for lost in 1..=max_lost {
                let mut sum = 0.0;
                for rep in 0..o.reps {
                    let seed = o.seed ^ ((lost as u64) << 32) ^ ((rep as u64) << 16);
                    let grids = random_lost_grids_nd(
                        &layout,
                        lost,
                        technique == Technique::ResamplingCopying,
                        seed,
                    );
                    sum += run_once(o, problem, technique, &grids, seed);
                }
                let err = sum / o.reps as f64;
                points.push(CurvePoint {
                    problem,
                    technique: technique.label(),
                    lost,
                    err,
                    ratio: err / healthy,
                });
            }
        }
    }
    points
}

/// Render the sweep as the CSV table the binary emits.
pub fn table(o: &Dim3Opts, points: &[CurvePoint]) -> Table {
    let mut t = Table::new(
        format!(
            "3D error vs lost grids (d={DIM}, n={}, l={}, 2^{} steps, {} reps)",
            o.n, o.l, o.log2_steps, o.reps
        ),
        &["problem", "technique", "lost_grids", "err_l1", "vs_healthy"],
    );
    for p in points {
        t.row(vec![
            p.problem.into(),
            p.technique.into(),
            p.lost.to_string(),
            sci(p.err),
            sig3(p.ratio),
        ]);
    }
    t
}

/// The `BENCH_pr10.json` acceptance artifact: the error curves plus the
/// headline numbers the regression lane reads back.
pub fn to_json(o: &Dim3Opts, points: &[CurvePoint]) -> String {
    let healthy = |prob: &str| {
        points.iter().find(|p| p.problem == prob && p.lost == 0).map_or(f64::NAN, |p| p.err)
    };
    let worst_ac_ratio =
        points.iter().filter(|p| p.technique == "AC").map(|p| p.ratio).fold(0.0_f64, f64::max);
    let worst_cr_ratio =
        points.iter().filter(|p| p.technique == "CR").map(|p| p.ratio).fold(0.0_f64, f64::max);
    let all_finite = points.iter().all(|p| p.err.is_finite());
    let mut s = String::new();
    s.push_str("{\n \"pr\": 10,\n");
    s.push_str(&format!(" \"date\": \"{}\",\n", utc_today()));
    s.push_str(
        " \"note\": \"expt-3d: combined-solution L1 error vs simulated lost grids for the 3D \
         advection-diffusion and elliptic problems under CR (checkpoint restore), RC \
         (resample/copy) and AC (robust recombination of the survivors) — the paper's \
         Figs. 9/10 lifted to d=3.\",\n",
    );
    s.push_str(&format!(
        " \"config\": {{\"dim\": {DIM}, \"n\": {}, \"l\": {}, \"log2_steps\": {}, \"reps\": {}, \
         \"max_lost\": {}, \"seed\": {}}},\n",
        o.n, o.l, o.log2_steps, o.reps, o.max_lost, o.seed
    ));
    s.push_str(" \"acceptance\": {\n");
    s.push_str(&format!("  \"healthy_3d_err_advection\": {:.6e},\n", healthy("advection")));
    s.push_str(&format!("  \"healthy_3d_err_elliptic\": {:.6e},\n", healthy("elliptic")));
    s.push_str(&format!("  \"worst_cr_err_growth\": {:.4},\n", worst_cr_ratio));
    s.push_str(&format!("  \"worst_ac_err_growth\": {:.4},\n", worst_ac_ratio));
    s.push_str(&format!("  \"all_errors_finite\": {all_finite}\n"));
    s.push_str(" },\n \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"problem\": \"{}\", \"technique\": \"{}\", \"lost\": {}, \"err_l1\": {:.6e}, \
             \"vs_healthy\": {:.4}}}{}\n",
            p.problem,
            p.technique,
            p.lost,
            p.err,
            p.ratio,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str(" ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_grid_sampler_respects_rc_conflicts() {
        let layout = ProcLayoutN::new(3, 4, 4, Technique::ResamplingCopying.layout(), 1);
        let conflicts = layout.system().rc_conflicts();
        assert!(!conflicts.is_empty(), "RC layouts have duplicate conflicts");
        for seed in 0..32 {
            let grids = random_lost_grids_nd(&layout, 4, true, seed);
            assert_eq!(grids.len(), 4);
            assert!(!conflicts.iter().any(|&(a, b)| grids.contains(&a) && grids.contains(&b)));
        }
    }

    #[test]
    fn json_has_the_acceptance_fields() {
        let o = Dim3Opts::default();
        let points = vec![
            CurvePoint { problem: "advection", technique: "AC", lost: 0, err: 1e-3, ratio: 1.0 },
            CurvePoint { problem: "elliptic", technique: "AC", lost: 1, err: 2e-3, ratio: 2.0 },
        ];
        let json = to_json(&o, &points);
        for key in
            ["healthy_3d_err_advection", "worst_ac_err_growth", "all_errors_finite", "\"pr\": 10"]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
