//! Table I — beta Open MPI 3.1 performance with two failed processes:
//! wall times of `MPI_Comm_spawn_multiple`, `OMPI_Comm_shrink`,
//! `OMPI_Comm_agree` and `MPI_Intercomm_merge` at 19–304 cores.
//!
//! The measured columns come from the application's repair path
//! (timed per operation in `ftsg_core::reconstruct`); the paper's
//! published values are shown alongside for direct comparison — by
//! construction the beta-ULFM cost model was calibrated against them, so
//! agreement here validates the calibration end-to-end *through the whole
//! recovery protocol*, not just the model functions.

use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, Technique};
use ulfm_sim::{ClusterProfile, FaultPlan};

use crate::opts::Opts;
use crate::runner::{launch_on, random_victims, ModelKind};
use crate::table::{sig3, Table};

/// The paper's measurements: (cores, spawn, shrink, agree, merge).
pub const PAPER: &[(usize, f64, f64, f64, f64)] = &[
    (19, 0.01, 0.01, 0.49, 0.01),
    (38, 4.19, 2.46, 0.51, 0.01),
    (76, 60.75, 43.35, 1.03, 0.02),
    (152, 86.45, 50.80, 2.36, 0.03),
    (304, 112.61, 55.57, 12.83, 0.03),
];

/// Run the two-failure sweep.
pub fn run(opts: &Opts) -> Vec<Table> {
    let technique = Technique::ResamplingCopying;
    let mut t = Table::new(
        format!(
            "Table I: ULFM operation wall times, two process failures (n={}, l={})",
            opts.n, opts.l
        ),
        &[
            "cores",
            "spawn(s)",
            "paper",
            "shrink(s)",
            "paper",
            "agree(s)",
            "paper",
            "merge(s)",
            "paper",
        ],
    );
    for &s in &opts.scales {
        let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), s);
        let cores = layout.world_size();
        let seed = opts.seed ^ (s as u64) << 20;
        let cfg = AppConfig::paper_shaped(technique, opts.n, s, opts.log2_steps);
        let steps = cfg.steps();
        let victims = random_victims(&layout, 2, true, seed);
        let plan = FaultPlan::new(victims.into_iter().map(|r| (r, steps)).collect());
        let report = launch_on(ClusterProfile::opl(), ModelKind::Beta, cfg.with_plan(plan), seed);
        let paper = PAPER.iter().find(|&&(c, ..)| c == cores).copied().unwrap_or((
            cores,
            f64::NAN,
            f64::NAN,
            f64::NAN,
            f64::NAN,
        ));
        t.row(vec![
            cores.to_string(),
            sig3(report.get_f64(keys::T_SPAWN).unwrap()),
            sig3(paper.1),
            sig3(report.get_f64(keys::T_SHRINK).unwrap()),
            sig3(paper.2),
            sig3(report.get_f64(keys::T_AGREE).unwrap()),
            sig3(paper.3),
            sig3(report.get_f64(keys::T_MERGE).unwrap()),
            sig3(paper.4),
        ]);
    }
    vec![t]
}
