//! Fig. 11 — overall parallel performance: (a) execution time and
//! (b) parallel efficiency vs core count, for 0/1/2 *real* process
//! failures and all three techniques.
//!
//! Shapes to reproduce: CR most costly (checkpoint I/O), then RC
//! (duplicated computation), AC cheapest; AC and RC above 80 % parallel
//! efficiency without failures; the two-failure runs degraded badly by
//! the beta ULFM's `shrink`/`agree`/`spawn` costs.
//!
//! Efficiency is strong-scaling relative to each series' smallest run:
//! `E(s) = T(s₁)·P(s₁) / (T(s)·P(s))`.

use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, Technique};
use ulfm_sim::{ClusterProfile, FaultPlan};

use crate::experiments::fig9::calibrated_checkpoints;
use crate::opts::Opts;
use crate::runner::{emulate_paper_scale, launch_on, random_victims, ModelKind};
use crate::table::{sig3, Table};

/// Run the time and efficiency sweeps.
pub fn run(opts: &Opts) -> Vec<Table> {
    let mut t11a = Table::new(
        format!("Fig. 11a: overall execution time (n={}, l={})", opts.n, opts.l),
        &["technique", "failures", "cores", "t_total(s)"],
    );
    let mut t11b = Table::new(
        "Fig. 11b: overall parallel efficiency (relative to each series' smallest run)",
        &["technique", "failures", "cores", "efficiency"],
    );

    let failure_counts: &[usize] = if opts.quick { &[0, 1] } else { &[0, 1, 2] };
    // CR runs with the Eq.-2 optimal checkpoint count, like the paper.
    let log2_steps = if opts.quick { opts.log2_steps } else { opts.log2_steps.max(8) };
    let checkpoints = calibrated_checkpoints(
        opts,
        &emulate_paper_scale(ClusterProfile::opl(), opts.n, log2_steps),
        log2_steps,
    );
    for technique in [
        Technique::ResamplingCopying,
        Technique::AlternateCombination,
        Technique::CheckpointRestart,
    ] {
        for &failures in failure_counts {
            let mut series: Vec<(usize, f64)> = Vec::new();
            for &s in &opts.scales {
                let layout = ProcLayout::new(opts.n, opts.l, technique.layout(), s);
                let cores = layout.world_size();
                let mut total = 0.0;
                for rep in 0..opts.reps {
                    let seed = opts.seed
                        ^ (s as u64) << 24
                        ^ (failures as u64) << 16
                        ^ (rep as u64) << 4
                        ^ match technique {
                            Technique::CheckpointRestart => 1,
                            Technique::ResamplingCopying => 2,
                            Technique::AlternateCombination => 3,
                            Technique::BuddyCheckpoint => 4,
                        };
                    let cfg = AppConfig::paper_shaped(technique, opts.n, s, log2_steps)
                        .with_checkpoints(checkpoints);
                    let steps = cfg.steps();
                    let plan = if failures == 0 {
                        FaultPlan::none()
                    } else {
                        let victims = random_victims(
                            &layout,
                            failures,
                            technique == Technique::ResamplingCopying,
                            seed,
                        );
                        FaultPlan::new(victims.into_iter().map(|r| (r, steps)).collect())
                    };
                    let report = launch_on(
                        emulate_paper_scale(ClusterProfile::opl(), opts.n, log2_steps),
                        ModelKind::Beta,
                        cfg.with_plan(plan),
                        seed,
                    );
                    total += report.get_f64(keys::T_TOTAL).unwrap();
                }
                series.push((cores, total / opts.reps as f64));
            }
            let (p1, t1) = series[0];
            for &(cores, t_total) in &series {
                t11a.row(vec![
                    technique.label().into(),
                    failures.to_string(),
                    cores.to_string(),
                    sig3(t_total),
                ]);
                let eff = (t1 * p1 as f64) / (t_total * cores as f64);
                t11b.row(vec![
                    technique.label().into(),
                    failures.to_string(),
                    cores.to_string(),
                    sig3(eff),
                ]);
            }
        }
    }
    vec![t11a, t11b]
}
