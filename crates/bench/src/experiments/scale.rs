//! `expt-scale` — runtime scalability sweep: wall-clock-per-simulated-step
//! and peak RSS of Fig-8-style failure/recovery runs at ~1k/10k/100k
//! simulated ranks, pooled cooperative scheduler versus the legacy
//! thread-per-rank escape hatch.
//!
//! The interesting quantity is *simulator* cost, not model output: the
//! same Resampling-and-Copying layout, beta-ULFM model and single
//! injected failure as Fig. 8, but swept over process scales `s` where
//! the RC world size `19s` reaches 1007, 10013 and 100700 ranks. Each
//! configuration runs in its own child process (re-exec of this binary
//! with `--child`) so that
//!
//! 1. `VmHWM` in `/proc/self/status` is an honest per-configuration peak,
//! 2. a thread-per-rank attempt that cannot finish — thread spawn failing
//!    outright at 100k, or crawling under oversubscription — is bounded
//!    by a parent-side timeout and recorded as a DNF instead of wedging
//!    the sweep.
//!
//! Results land in `BENCH_pr6.json` (machine-readable rows + summary
//! against the ≥10x-ranks / ≥2x-wall targets) and `results/scale.csv`.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ftsg_core::app::keys;
use ftsg_core::{run_app, AppConfig, ProcLayout, RecoveryPolicy, Technique};
use ulfm_sim::{run, ClusterProfile, FaultPlan, RunConfig};

use crate::chaos::CHAOS_SPARES;
use crate::runner::random_victims;
use crate::table::{sig3, Table};

/// Sweep sizing and orchestration knobs (see `expt-scale --help`).
#[derive(Debug, Clone)]
pub struct ScaleOpts {
    /// RC process scales to sweep; world size is `19s`.
    pub scales: Vec<usize>,
    /// Full grid size `n` (9 keeps the real numerics trivial next to the
    /// scheduling cost being measured, while every group still fits its
    /// sub-grid's process-grid factorization at `s = 5300`).
    pub n: u32,
    /// `log2` of the timestep count.
    pub log2_steps: u32,
    /// Real failures injected just before the final detection point.
    pub failures: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-child wall-clock budget; exceeding it records a DNF row.
    pub timeout: Duration,
    /// Run only the thread-per-rank escape hatch (CI smoke of the
    /// fallback path).
    pub threads_only: bool,
    /// CI smoke: smallest scale only, fewer steps, pooled only (or
    /// threads only when combined with `threads_only`).
    pub smoke: bool,
    /// Worker count for the pooled scheduler (0 = available parallelism).
    pub workers: usize,
    /// Fiber/thread stack size in KiB.
    pub stack_kb: usize,
    /// Recovery policy applied by the app on every injected failure.
    pub policy: RecoveryPolicy,
    /// Output path for the machine-readable benchmark report.
    pub out: String,
}

impl Default for ScaleOpts {
    fn default() -> Self {
        ScaleOpts {
            scales: vec![53, 527, 5300],
            n: 9,
            log2_steps: 4,
            failures: 1,
            seed: 2014,
            timeout: Duration::from_secs(900),
            threads_only: false,
            smoke: false,
            workers: 0,
            stack_kb: 1024,
            policy: RecoveryPolicy::Respawn,
            out: "BENCH_pr6.json".into(),
        }
    }
}

impl ScaleOpts {
    /// Shrink to the CI smoke shape: ~1k ranks, 4 steps, tight timeout.
    pub fn apply_smoke(&mut self) {
        self.scales = vec![53];
        self.log2_steps = 2;
        self.timeout = Duration::from_secs(300);
        self.smoke = true;
    }
}

/// One child configuration, round-trippable through argv.
#[derive(Debug, Clone, Copy)]
pub struct ChildSpec {
    pub n: u32,
    pub s: usize,
    pub log2_steps: u32,
    pub failures: usize,
    pub seed: u64,
    pub threads: bool,
    pub workers: usize,
    pub stack_kb: usize,
    pub policy: RecoveryPolicy,
}

impl ChildSpec {
    fn argv(&self) -> Vec<String> {
        vec![
            "--child".into(),
            "--n".into(),
            self.n.to_string(),
            "--s".into(),
            self.s.to_string(),
            "--steps".into(),
            self.log2_steps.to_string(),
            "--failures".into(),
            self.failures.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--mode".into(),
            if self.threads { "threads".into() } else { "pooled".into() },
            "--workers".into(),
            self.workers.to_string(),
            "--stack-kb".into(),
            self.stack_kb.to_string(),
            "--policy".into(),
            self.policy.label().into(),
        ]
    }

    fn mode(&self) -> &'static str {
        if self.threads {
            "threads"
        } else {
            "pooled"
        }
    }

    /// Worker count this configuration actually runs with: the world size
    /// under thread-per-rank, the machine's available parallelism when the
    /// pooled count was left at 0. Shared by the child's result row and
    /// the parent's DNF synthesizer so both echo the same number.
    fn resolved_workers(&self, world: usize) -> usize {
        if self.threads {
            world
        } else if self.workers == 0 {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// (`None` off Linux). Shared with `expt-serve`'s soak accounting.
pub(crate) fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "null".into(),
    }
}

/// Run one configuration in-process and return its result row as a JSON
/// object on a single line. This is the `--child` entry point: the
/// parent parses the line, so the schema tag comes first.
pub fn run_child(spec: &ChildSpec) -> String {
    let technique = Technique::ResamplingCopying;
    let layout = ProcLayout::new(spec.n, 4, technique.layout(), spec.s);
    let mut cfg = AppConfig::paper_shaped(technique, spec.n, spec.s, spec.log2_steps)
        .with_recovery_policy(spec.policy);
    if spec.policy == RecoveryPolicy::SpareSubstitute {
        cfg = cfg.with_spares(CHAOS_SPARES);
    }
    // Spare ranks (substitute only) sit after the layout's active slots.
    let world = cfg.world_size(layout.world_size());
    let steps = cfg.steps();
    let victims = random_victims(&layout, spec.failures, true, spec.seed);
    let plan = FaultPlan::new(victims.into_iter().map(|r| (r, steps)).collect());
    let cfg = cfg.with_plan(plan);

    let mut rc = RunConfig::cluster(ClusterProfile::opl(), world).with_seed(spec.seed);
    rc.stall_timeout = Duration::from_secs(600);
    rc.stack_size = spec.stack_kb << 10;
    rc = if spec.threads { rc.with_thread_per_rank() } else { rc.with_workers(spec.workers) };

    let workers = spec.resolved_workers(world);

    let t0 = Instant::now();
    let report = run(rc, move |ctx| run_app(&cfg, ctx));
    let wall = t0.elapsed().as_secs_f64();
    report.assert_no_app_errors();

    format!(
        concat!(
            r#"{{"schema":"scale-row-v2","status":"ok","mode":"{mode}","policy":"{policy}","#,
            r#""ranks":{ranks},"workers":{workers},"n":{n},"s":{s},"steps":{steps},"#,
            r#""failures":{failures},"seed":{seed},"stack_kb":{stack_kb},"#,
            r#""wall_s":{wall:.6},"wall_per_step_ms":{wps:.6},"#,
            r#""peak_rss_mb":{rss},"sim_makespan_s":{mk:.6},"#,
            r#""t_list_s":{tl},"t_reconstruct_s":{tr},"t_recovery_s":{tv}}}"#
        ),
        mode = spec.mode(),
        policy = spec.policy.label(),
        ranks = world,
        workers = workers,
        n = spec.n,
        s = spec.s,
        steps = steps,
        failures = spec.failures,
        seed = spec.seed,
        stack_kb = spec.stack_kb,
        wall = wall,
        wps = wall * 1e3 / steps as f64,
        rss = json_opt(peak_rss_kb().map(|kb| kb as f64 / 1024.0)),
        mk = report.makespan,
        tl = json_opt(report.get_f64(keys::T_LIST)),
        tr = json_opt(report.get_f64(keys::T_RECONSTRUCT)),
        tv = json_opt(report.get_f64(keys::T_RECOVERY)),
    )
}

/// Extract a numeric field from one of our own flat JSON rows. Good
/// enough because every value we emit is a bare number or `null`.
pub(crate) fn json_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = obj.find(&pat)? + pat.len();
    let rest = obj[i..].trim_start();
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

pub(crate) fn json_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let i = obj.find(&pat)? + pat.len();
    let rest = &obj[i..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Spawn one child configuration, enforce the timeout, and return its
/// result row (a DNF/failed row is synthesized when the child dies or
/// overruns).
fn run_one(exe: &std::path::Path, spec: &ChildSpec, ranks: usize, timeout: Duration) -> String {
    // A DNF/failed row echoes the *full* child configuration — mode,
    // workers, steps, stack size, recovery policy — so a sweep that only
    // produced DNFs at some scale is still attributable from the JSON
    // alone (the nightly matrix relies on this).
    let dnf = |status: &str| {
        format!(
            concat!(
                r#"{{"schema":"scale-row-v2","status":"{status}","mode":"{mode}","#,
                r#""policy":"{policy}","ranks":{ranks},"workers":{workers},"n":{n},"s":{s},"#,
                r#""steps":{steps},"failures":{failures},"seed":{seed},"stack_kb":{stack_kb}}}"#
            ),
            status = status,
            mode = spec.mode(),
            policy = spec.policy.label(),
            ranks = ranks,
            workers = spec.resolved_workers(ranks),
            n = spec.n,
            s = spec.s,
            steps = 1u64 << spec.log2_steps,
            failures = spec.failures,
            seed = spec.seed,
            stack_kb = spec.stack_kb,
        )
    };
    let child =
        Command::new(exe).args(spec.argv()).stdout(Stdio::piped()).stderr(Stdio::inherit()).spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(e) => {
            eprintln!("expt-scale: cannot spawn child: {e}");
            return dnf("failed_spawn");
        }
    };
    let deadline = Instant::now() + timeout;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    eprintln!(
                        "expt-scale: {} ranks ({}) exceeded {}s — recorded as DNF",
                        ranks,
                        spec.mode(),
                        timeout.as_secs()
                    );
                    return dnf(&format!("dnf_timeout_{}s", timeout.as_secs()));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => {
                eprintln!("expt-scale: wait failed: {e}");
                let _ = child.kill();
                return dnf("failed_wait");
            }
        }
    };
    let mut out = String::new();
    if let Some(mut stdout) = child.stdout.take() {
        use std::io::Read as _;
        let _ = stdout.read_to_string(&mut out);
    }
    if !status.success() {
        // Thread-per-rank at large scale dies in spawn (`Resource
        // temporarily unavailable`) — the expected "old runtime can't
        // launch this" outcome.
        return dnf(&format!("failed_exit_{}", status.code().unwrap_or(-1)));
    }
    out.lines()
        .find(|l| l.trim_start().starts_with(r#"{"schema":"scale-row-v2""#))
        .map(|l| l.trim().to_string())
        .unwrap_or_else(|| dnf("failed_no_output"))
}

/// Run the sweep, write `BENCH_pr6.json` and the CSV table, and return
/// the process exit code (0 when every pooled configuration finished).
pub fn orchestrate(o: &ScaleOpts) -> i32 {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("expt-scale: current_exe: {e}");
            return 2;
        }
    };
    let mut specs: Vec<ChildSpec> = Vec::new();
    for &s in &o.scales {
        let base = ChildSpec {
            n: o.n,
            s,
            log2_steps: o.log2_steps,
            failures: o.failures,
            seed: o.seed,
            threads: false,
            workers: o.workers,
            stack_kb: o.stack_kb,
            policy: o.policy,
        };
        if !o.threads_only {
            specs.push(base);
        }
        if o.threads_only || !o.smoke {
            specs.push(ChildSpec { threads: true, ..base });
        }
    }

    let mut table = Table::new(
        format!(
            "Scale sweep: pooled vs thread-per-rank (n={}, 2^{} steps, {} failure(s), policy={})",
            o.n, o.log2_steps, o.failures, o.policy
        ),
        &[
            "mode",
            "ranks",
            "workers",
            "wall(s)",
            "wall/step(ms)",
            "peak RSS(MB)",
            "t_list(s)",
            "t_reconstruct(s)",
            "status",
        ],
    );
    let mut rows: Vec<String> = Vec::new();
    for spec in &specs {
        let ranks =
            ProcLayout::new(spec.n, 4, Technique::ResamplingCopying.layout(), spec.s).world_size();
        eprintln!("expt-scale: {} ranks, mode={} ...", ranks, spec.mode());
        let row = run_one(&exe, spec, ranks, o.timeout);
        let status = json_str(&row, "status").unwrap_or_else(|| "unparsed".into());
        table.row(vec![
            spec.mode().into(),
            ranks.to_string(),
            json_num(&row, "workers").map(|w| (w as u64).to_string()).unwrap_or_else(|| "-".into()),
            json_num(&row, "wall_s").map(sig3).unwrap_or_else(|| "-".into()),
            json_num(&row, "wall_per_step_ms").map(sig3).unwrap_or_else(|| "-".into()),
            json_num(&row, "peak_rss_mb").map(sig3).unwrap_or_else(|| "-".into()),
            json_num(&row, "t_list_s").map(sig3).unwrap_or_else(|| "-".into()),
            json_num(&row, "t_reconstruct_s").map(sig3).unwrap_or_else(|| "-".into()),
            status,
        ]);
        rows.push(row);
    }

    // Summary against the PR's two targets: pooled launches ≥10x the
    // ranks the thread runtime manages, and ≥2x lower wall-clock at the
    // smallest (~1k) scale.
    let ok = |r: &&String| json_str(r, "status").as_deref() == Some("ok");
    let max_ranks = |mode: &str| -> u64 {
        rows.iter()
            .filter(ok)
            .filter(|r| json_str(r, "mode").as_deref() == Some(mode))
            .filter_map(|r| json_num(r, "ranks"))
            .fold(0.0, f64::max) as u64
    };
    let wall_at_smallest = |mode: &str| -> Option<f64> {
        let s0 = *o.scales.iter().min()?;
        rows.iter()
            .filter(ok)
            .filter(|r| {
                json_str(r, "mode").as_deref() == Some(mode) && json_num(r, "s") == Some(s0 as f64)
            })
            .filter_map(|r| json_num(r, "wall_s"))
            .next()
    };
    let (mp, mt) = (max_ranks("pooled"), max_ranks("threads"));
    let (wp, wt) = (wall_at_smallest("pooled"), wall_at_smallest("threads"));
    let speedup = match (wp, wt) {
        (Some(p), Some(t)) if p > 0.0 => Some(t / p),
        _ => None,
    };
    let rank_ratio = if mt > 0 { Some(mp as f64 / mt as f64) } else { None };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"BENCH_pr6\",\n",
            "  \"experiment\": \"expt-scale\",\n",
            "  \"config\": {{\"n\": {n}, \"log2_steps\": {k}, \"failures\": {f}, ",
            "\"seed\": {seed}, \"timeout_s\": {to}, \"smoke\": {smoke}, ",
            "\"policy\": \"{policy}\", \"workers\": {workers}, \"stack_kb\": {stack_kb}}},\n",
            "  \"rows\": [\n    {rows}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"max_ok_ranks_pooled\": {mp},\n",
            "    \"max_ok_ranks_threads\": {mt},\n",
            "    \"rank_ratio_pooled_over_threads\": {ratio},\n",
            "    \"wall_smallest_pooled_s\": {wp},\n",
            "    \"wall_smallest_threads_s\": {wt},\n",
            "    \"speedup_smallest_threads_over_pooled\": {sp},\n",
            "    \"target_ranks_10x\": {t10},\n",
            "    \"target_wall_2x\": {t2}\n",
            "  }}\n",
            "}}\n"
        ),
        n = o.n,
        k = o.log2_steps,
        f = o.failures,
        seed = o.seed,
        to = o.timeout.as_secs(),
        smoke = o.smoke,
        policy = o.policy.label(),
        workers = o.workers,
        stack_kb = o.stack_kb,
        rows = rows.join(",\n    "),
        mp = mp,
        mt = mt,
        ratio = json_opt(rank_ratio),
        wp = json_opt(wp),
        wt = json_opt(wt),
        sp = json_opt(speedup),
        t10 = rank_ratio.map(|r| r >= 10.0).unwrap_or(mp > 0 && mt == 0),
        t2 = speedup.map(|s| s >= 2.0).unwrap_or(false),
    );
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("expt-scale: cannot write {}: {e}", o.out);
        return 2;
    }
    table.emit("results/scale.csv");
    println!("report written to {}", o.out);
    if let Some(s) = speedup {
        println!("speedup at smallest scale (threads/pooled): {:.2}x", s);
    }
    println!("max ranks completed: pooled={mp} threads={mt}");

    let pooled_all_ok = o.threads_only
        || rows
            .iter()
            .filter(|r| json_str(r, "mode").as_deref() == Some("pooled"))
            .all(|r| json_str(r, "status").as_deref() == Some("ok"));
    let threads_smallest_ok = !o.threads_only || wall_at_smallest("threads").is_some();
    if pooled_all_ok && threads_smallest_ok {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_spec_argv_roundtrips_mode() {
        let spec = ChildSpec {
            n: 9,
            s: 53,
            log2_steps: 2,
            failures: 1,
            seed: 7,
            threads: true,
            workers: 0,
            stack_kb: 1024,
            policy: RecoveryPolicy::ShrinkRedistribute,
        };
        let argv = spec.argv();
        assert!(argv.contains(&"--child".to_string()));
        assert!(argv.windows(2).any(|w| w == ["--mode", "threads"]));
        assert!(argv.windows(2).any(|w| w == ["--policy", "shrink"]));
    }

    #[test]
    fn json_helpers_parse_own_rows() {
        let row = r#"{"schema":"scale-row-v2","status":"ok","mode":"pooled","ranks":1007,"wall_s":1.5,"peak_rss_mb":null}"#;
        assert_eq!(json_num(row, "ranks"), Some(1007.0));
        assert_eq!(json_num(row, "wall_s"), Some(1.5));
        assert_eq!(json_num(row, "peak_rss_mb"), None);
        assert_eq!(json_str(row, "mode").as_deref(), Some("pooled"));
    }

    #[test]
    fn smoke_shrinks_to_smallest_scale() {
        let mut o = ScaleOpts::default();
        o.apply_smoke();
        assert_eq!(o.scales, vec![53]);
        assert!(o.log2_steps <= 2);
    }

    /// The sweep's child configuration really runs end to end at a tiny
    /// scale (s=2 → 38 ranks): this is the in-tree guard that the
    /// orchestrated path stays wired to the app.
    #[test]
    fn tiny_child_run_reports_recovery_times() {
        let spec = ChildSpec {
            n: 7,
            s: 2,
            log2_steps: 2,
            failures: 1,
            seed: 2014,
            threads: false,
            workers: 1,
            stack_kb: 1024,
            policy: RecoveryPolicy::Respawn,
        };
        let row = run_child(&spec);
        assert_eq!(json_str(&row, "status").as_deref(), Some("ok"));
        assert_eq!(json_num(&row, "ranks"), Some(38.0));
        assert_eq!(json_str(&row, "policy").as_deref(), Some("respawn"));
        assert_eq!(json_num(&row, "stack_kb"), Some(1024.0));
        assert!(json_num(&row, "t_list_s").is_some(), "row: {row}");
        assert!(json_num(&row, "t_reconstruct_s").is_some(), "row: {row}");
    }

    /// The shrink policy survives the orchestrated child path: the world
    /// shrinks by the failure count and the row still echoes the full
    /// configuration (the nightly matrix runs exactly this shape).
    #[test]
    fn tiny_child_run_honors_shrink_policy() {
        let spec = ChildSpec {
            n: 7,
            s: 2,
            log2_steps: 2,
            failures: 1,
            seed: 2014,
            threads: false,
            workers: 1,
            stack_kb: 1024,
            policy: RecoveryPolicy::ShrinkRedistribute,
        };
        let row = run_child(&spec);
        assert_eq!(json_str(&row, "status").as_deref(), Some("ok"), "row: {row}");
        assert_eq!(json_str(&row, "policy").as_deref(), Some("shrink"));
        assert_eq!(json_num(&row, "ranks"), Some(38.0));
    }
}
