//! Regenerate the paper's Fig. 11 (overall execution time and parallel
//! efficiency vs cores, 0/1/2 failures × three techniques).

use ftsg_bench::{experiments::fig11, Opts};

fn main() {
    let opts = Opts::from_args();
    let tables = fig11::run(&opts);
    tables[0].emit("results/fig11a.csv");
    tables[1].emit("results/fig11b.csv");
}
