//! `expt-timeline` — per-phase recovery timeline breakdown (the paper's
//! Figs. 8–11 lens over one failure event), for all four techniques.
//!
//! ```text
//! expt-timeline [--seed S] [--json PATH]
//! ```
//!
//! For each technique (CR, RC, AC, BC) the small configuration is run
//! with one injected failure in the controller's own grid group, and the
//! resulting recovery timeline is broken down phase by phase: detect,
//! ack, revoke+shrink, failed-list, spawn, merge, agree, rank reorder,
//! data restore, and the uninstrumented residual. The table shows virtual
//! milliseconds per phase; `--json` additionally writes the raw
//! timelines, keyed by technique label, for plotting.

use ftsg_bench::chaos::TECHNIQUES;
use ftsg_bench::Table;
use ftsg_core::{run_app, AppConfig, ProcLayout, PHASES};
use ulfm_sim::{run, timelines_to_json, FaultPlan, RecoveryTimeline, RunConfig};

struct Cli {
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!("usage: expt-timeline [--seed S] [--json PATH]");
        std::process::exit(2);
    };
    let mut cli = Cli { seed: 1, json: None };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--seed" => cli.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => cli.json = Some(take(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    cli
}

/// One failure in rank 0's own group, so the rank-0 timeline shows the
/// data-restore phase itself rather than a wait inside the agree vote.
fn timelines_for(technique: ftsg_core::Technique, seed: u64) -> Vec<RecoveryTimeline> {
    let base = AppConfig::small(technique);
    let steps = base.steps();
    let layout = ProcLayout::new(base.n, base.l, technique.layout(), base.scale);
    let victim = layout.group(0).first + 1;
    let when = if technique.has_periodic_protection() { steps / 2 } else { steps };
    let cfg = base.with_plan(FaultPlan::single(victim, when));
    let world = layout.world_size();
    let report = run(RunConfig::local(world).with_seed(seed), move |ctx| run_app(&cfg, ctx));
    report.assert_no_app_errors();
    report.timelines
}

fn main() {
    let cli = parse_args();
    let mut headers: Vec<&str> = vec!["phase"];
    headers.extend(TECHNIQUES.iter().map(|t| t.label()));
    let mut table =
        Table::new(format!("Recovery timeline breakdown (ms, seed={})", cli.seed), &headers);

    let per_tech: Vec<(&'static str, Vec<RecoveryTimeline>)> =
        TECHNIQUES.iter().map(|&t| (t.label(), timelines_for(t, cli.seed))).collect();
    for (label, tls) in &per_tech {
        assert!(!tls.is_empty(), "{label}: the injected failure must produce a recovery timeline");
    }
    for (i, phase) in PHASES.iter().enumerate() {
        let mut row = vec![phase.to_string()];
        for (_, tls) in &per_tech {
            let ms: f64 = tls.iter().map(|tl| tl.phases[i].1).sum::<f64>() * 1e3;
            row.push(format!("{ms:.3}"));
        }
        table.row(row);
    }
    let mut total_row = vec!["total".to_string()];
    for (_, tls) in &per_tech {
        let ms: f64 = tls.iter().map(|tl| tl.total()).sum::<f64>() * 1e3;
        total_row.push(format!("{ms:.3}"));
    }
    table.row(total_row);
    print!("{}", table.render());

    if let Some(path) = &cli.json {
        let entries: Vec<String> = per_tech
            .iter()
            .map(|(label, tls)| format!("\"{label}\": {}", timelines_to_json(tls)))
            .collect();
        let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("expt-timeline: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("timelines written to {path}");
    }
}
