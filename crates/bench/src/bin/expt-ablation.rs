//! Ablation studies: respawn placement policies (same-host / spare-node /
//! naive first-host) and ULFM implementation maturity (beta vs ideal).

use ftsg_bench::{experiments::ablation, Opts};

fn main() {
    let opts = Opts::from_args();
    let tables = ablation::run(&opts);
    tables[0].emit("results/ablation_respawn.csv");
    tables[1].emit("results/ablation_ulfm.csv");
    tables[2].emit("results/ablation_buddy.csv");
}
