//! Regenerate the paper's Fig. 9 (data recovery overheads, raw and
//! process-time-normalized, on OPL and Raijin).

use ftsg_bench::{experiments::fig9, Opts};

fn main() {
    let opts = Opts::from_args();
    let tables = fig9::run(&opts);
    tables[0].emit("results/fig9a.csv");
    tables[1].emit("results/fig9b.csv");
}
