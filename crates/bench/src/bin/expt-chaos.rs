//! `expt-chaos` — deterministic fault-injection campaign with invariant
//! oracles and failing-case minimization (see `ftsg_bench::chaos`).
//!
//! ```text
//! expt-chaos [--budget N] [--seed S] [--policy P] [--dim D] [--stall-secs T]
//!            [--fanout-workers W] [--sabotage] [--no-corrupt] [--corrupt-only]
//!            [--json PATH] [--repro SPEC] [--artifacts DIR]
//! ```
//!
//! `--policy` runs every sampled case under the given recovery policy
//! (`respawn` (default), `shrink`, `substitute`, `defer`); sampling is
//! policy-independent, so campaigns with the same seed examine the same
//! fault sites under each policy. `--dim 3` samples the 3D campaign shape
//! instead of the classic 2D one (the scenario matrix's third axis).
//!
//! Exit code 0 when every examined case satisfies all oracles, 1 when any
//! violation was found (the minimized repro specs are printed and, with
//! `--json`, written alongside the full report).

use std::time::Duration;

use ftsg_bench::chaos::{self, CampaignOpts, CaseRecord};
use ftsg_core::RecoveryPolicy;

struct Cli {
    opts: CampaignOpts,
    json: Option<String>,
    repro: Option<String>,
}

fn parse_args() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!(
            "usage: expt-chaos [--budget N] [--seed S] [--policy respawn|shrink|substitute|defer] \
             [--dim D] [--stall-secs T] [--fanout-workers W] [--sabotage] [--no-corrupt] \
             [--corrupt-only] [--json PATH] [--repro SPEC] [--artifacts DIR]"
        );
        std::process::exit(2);
    };
    let mut cli = Cli { opts: CampaignOpts::default(), json: None, repro: None };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--budget" => cli.opts.budget = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cli.opts.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                cli.opts.policy =
                    RecoveryPolicy::from_label(&take(&mut i)).unwrap_or_else(|| usage())
            }
            "--dim" => {
                cli.opts.dim = take(&mut i).parse().unwrap_or_else(|_| usage());
                if cli.opts.dim < 2 {
                    usage()
                }
            }
            "--stall-secs" => {
                cli.opts.stall =
                    Duration::from_secs(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--fanout-workers" => {
                cli.opts.fanout_workers = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--sabotage" => cli.opts.sabotage = true,
            "--no-corrupt" => cli.opts.corruption = false,
            "--corrupt-only" => cli.opts.corrupt_only = true,
            "--json" => cli.json = Some(take(&mut i)),
            "--repro" => cli.repro = Some(take(&mut i)),
            "--artifacts" => cli.opts.artifact_dir = Some(take(&mut i).into()),
            _ => usage(),
        }
        i += 1;
    }
    cli
}

fn print_record(i: usize, r: &CaseRecord) {
    let verdict = if r.violations.is_empty() { "ok" } else { "VIOLATION" };
    println!(
        "[{i:>4}] {verdict:<9} {:<4} {:<8} failed={} {}",
        r.technique, r.kind, r.procs_failed, r.spec
    );
    for v in &r.violations {
        println!("        {}: {}", v.oracle, v.detail);
    }
    if let Some(s) = &r.shrunk_spec {
        println!("        minimized to {} failure(s): {s}", r.shrunk_n_failures.unwrap_or(0));
    }
    for a in &r.artifacts {
        println!("        artifact: {a}");
    }
}

fn main() {
    let cli = parse_args();

    if let Some(spec) = &cli.repro {
        match chaos::replay(spec, &cli.opts) {
            Ok(record) => {
                print_record(0, &record);
                std::process::exit(if record.violations.is_empty() { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("expt-chaos: {e}");
                std::process::exit(2);
            }
        }
    }

    let corrupt_mix = if cli.opts.corrupt_only {
        "all"
    } else if cli.opts.corruption {
        "1-in-5"
    } else {
        "off"
    };
    println!(
        "chaos campaign: budget={} seed={} policy={} dim={} sabotage={} stall={}s \
         corruption={corrupt_mix}",
        cli.opts.budget,
        cli.opts.seed,
        cli.opts.policy.label(),
        cli.opts.dim,
        cli.opts.sabotage,
        cli.opts.stall.as_secs()
    );
    let report = chaos::run_campaign_with(&cli.opts, |i, r| {
        if !r.violations.is_empty() {
            print_record(i, r);
        }
    });

    println!();
    println!("coverage (technique x site kind):");
    let cov = report.coverage();
    let mut keys: Vec<_> = cov.keys().collect();
    keys.sort();
    for k in keys {
        println!("  {:<4} {:<8} {:>4} cases", k.0, k.1, cov[k]);
    }
    println!(
        "\nexamined {} cases ({} baseline runs, {} shrink runs): {} violating",
        report.cases.len(),
        report.baseline_runs,
        report.shrink_runs,
        report.n_violating()
    );
    for line in report.repro_lines() {
        println!("  {line}");
    }

    if let Some(path) = &cli.json {
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("expt-chaos: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("report written to {path}");
    }
    std::process::exit(if report.n_violating() == 0 { 0 } else { 1 });
}
