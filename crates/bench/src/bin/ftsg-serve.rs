//! `ftsg-serve` — CLI front of the campaign service: submit solver jobs
//! written in the chaos spec grammar, stream their lifecycle as JSONL.
//!
//! ```text
//! ftsg-serve [--workers N] [--queue-depth D] [--seed S] [--stall-secs T]
//!            [--jobs FILE] [--jsonl PATH] [SPEC ...]
//! ```
//!
//! Each `SPEC` is a chaos case spec (`CR/n6l3s1k5c2/3@step:16`, see
//! `expt-chaos --help` for the grammar); `--jobs FILE` reads one spec per
//! line (`#` comments and blank lines skipped). Every spec becomes one
//! solve job with its fault plan baked in. Events go to stdout as JSONL
//! (or to `--jsonl PATH`); the exit code is 0 iff every job finished
//! `Done`.
//!
//! ```text
//! $ ftsg-serve --workers 4 "CR/n6l3s1k5c2/3@step:16" "RC/n6l3s1k5c2/5@step:8"
//! {"event":"queued","job":1,"name":"CR/n6l3s1k5c2/3@step:16"}
//! ...
//! {"event":"done","job":1,"makespan":2.41}
//! ```

use std::time::Duration;

use ftsg_bench::chaos::ChaosCase;
use ftsg_service::sink::pump;
use ftsg_service::{JobSpec, JobState, JobWork, Service, ServiceConfig, SolveSpec};

fn usage() -> ! {
    eprintln!(
        "usage: ftsg-serve [--workers N] [--queue-depth D] [--seed S] [--stall-secs T] \
         [--jobs FILE] [--jsonl PATH] [SPEC ...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 2usize;
    let mut queue_depth = 64usize;
    let mut seed = 1u64;
    let mut stall = Duration::from_secs(30);
    let mut jsonl: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--workers" => workers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => queue_depth = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--stall-secs" => {
                stall = Duration::from_secs(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--jsonl" => jsonl = Some(take(&mut i)),
            "--jobs" => {
                let path = take(&mut i);
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("ftsg-serve: cannot read {path}: {e}");
                    std::process::exit(2);
                });
                specs.extend(
                    text.lines()
                        .map(str::trim)
                        .filter(|l| !l.is_empty() && !l.starts_with('#'))
                        .map(String::from),
                );
            }
            s if s.starts_with("--") => usage(),
            s => specs.push(s.to_string()),
        }
        i += 1;
    }
    if specs.is_empty() {
        eprintln!("ftsg-serve: no job specs given");
        usage();
    }

    // Parse everything before starting workers: a typo should not launch
    // half a campaign.
    let mut jobs: Vec<(String, JobSpec)> = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        let case = match ChaosCase::parse(spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ftsg-serve: bad spec {spec:?}: {e}");
                std::process::exit(2);
            }
        };
        if !case.victims_valid() {
            eprintln!("ftsg-serve: inadmissible victims in {spec:?}");
            std::process::exit(2);
        }
        let (cfg, _world) = case.solve_config();
        let job = JobSpec {
            name: spec.clone(),
            work: JobWork::Solve(Box::new(SolveSpec {
                cfg,
                seed: seed + idx as u64,
                stall: Some(stall),
                sim_workers: 1,
            })),
            cancel: None,
        };
        jobs.push((spec.clone(), job));
    }

    let (svc, rx) = Service::start(ServiceConfig { workers, queue_depth });
    let sink = match &jsonl {
        Some(path) => {
            let f = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("ftsg-serve: cannot create {path}: {e}");
                std::process::exit(2);
            });
            std::thread::spawn(move || pump(rx, f).map(|_| ()))
        }
        None => std::thread::spawn(move || pump(rx, std::io::stdout().lock()).map(|_| ())),
    };

    let mut ids = Vec::new();
    for (spec, job) in jobs {
        match svc.submit(job) {
            Ok(id) => ids.push((spec, id)),
            Err(e) => {
                eprintln!("ftsg-serve: submit failed: {e}");
                std::process::exit(2);
            }
        }
    }
    let mut ok = true;
    for (spec, id) in &ids {
        match svc.wait(*id) {
            Some(JobState::Done) => {}
            Some(JobState::Failed(msg)) => {
                eprintln!("ftsg-serve: {spec} FAILED: {msg}");
                ok = false;
            }
            Some(JobState::Cancelled) => {
                eprintln!("ftsg-serve: {spec} cancelled");
                ok = false;
            }
            other => {
                eprintln!("ftsg-serve: {spec} in unexpected state {other:?}");
                ok = false;
            }
        }
    }
    svc.shutdown(); // closes the event stream; the pump thread ends
    let _ = sink.join();
    std::process::exit(if ok { 0 } else { 1 });
}
