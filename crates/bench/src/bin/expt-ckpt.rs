//! `expt-ckpt` — synchronous vs asynchronous checkpointing A/B on the
//! paper's two clusters (OPL: T_IO ≈ 3.52 s per checkpoint write; Raijin:
//! T_IO ≈ 0.03 s), in **virtual seconds** from the runtime's cost models.
//!
//! Both arms run the identical Checkpoint/Restart application at emulated
//! paper scale; the only difference is whether the write sits on the
//! critical path (`--sync-ckpt` behavior) or is handed to the background
//! writer and charged as deferred I/O that compute can cover. The run
//! reports how much checkpoint I/O the overlap hid (`io_hidden` vs
//! `io_exposed`), and re-derives Eq. 2's optimal checkpoint count `C =
//! (t_app / 2) / T_IO` from the *measured exposed* time per write — with
//! the write off the critical path the effective `T_IO` collapses and the
//! optimum moves to "checkpoint every period".
//!
//! A third arm kills a rank mid-run to prove the recovery drain barrier:
//! the restart must produce the bitwise-identical combined solution.
//!
//! Emits `BENCH_pr5.json` (override with `BENCH_OUT`).

use ftsg_bench::runner::{emulate_paper_scale, launch_on, ModelKind};
use ftsg_core::app::keys;
use ftsg_core::{AppConfig, ProcLayout, Technique};
use ulfm_sim::{ClusterProfile, FaultPlan, Report};

const N: u32 = 7;
const LOG2_STEPS: u32 = 5;
const CHECKPOINTS: u32 = 3; // period 8 → writes at steps 8, 16, 24
const SEED: u64 = 2014;

/// What one A/B arm measured.
struct Outcome {
    makespan: f64,
    err: f64,
    io_hidden: f64,
    io_exposed: f64,
    t_ckpt: f64,
}

fn outcome(report: &Report) -> Outcome {
    let g = |k: &str| report.get_f64(k).unwrap_or(f64::NAN);
    Outcome {
        makespan: report.makespan,
        err: g(keys::ERR_L1),
        io_hidden: report.io_hidden,
        io_exposed: report.io_exposed,
        t_ckpt: g(keys::T_CKPT),
    }
}

fn cr_run(profile: &ClusterProfile, sync: bool, plan: FaultPlan) -> Outcome {
    let mut cfg = AppConfig::paper_shaped(Technique::CheckpointRestart, N, 1, LOG2_STEPS)
        .with_checkpoints(CHECKPOINTS)
        .with_plan(plan);
    if sync {
        cfg = cfg.with_sync_checkpoints();
    }
    let profile = emulate_paper_scale(profile.clone(), N, LOG2_STEPS);
    let report = launch_on(profile, ModelKind::Beta, cfg, SEED);
    outcome(&report)
}

fn hidden_frac(o: &Outcome) -> f64 {
    let total = o.io_hidden + o.io_exposed;
    if total > 0.0 {
        o.io_hidden / total
    } else {
        0.0
    }
}

/// UTC date (YYYY-MM-DD) from the system clock, no external crates.
fn utc_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let layout = ProcLayout::new(N, 4, Technique::CheckpointRestart.layout(), 1);
    let n_grids = layout.system().n_grids();
    // Each group root writes once per period: total writes in a healthy run.
    let n_writes = (n_grids as u64 * u64::from(CHECKPOINTS)) as f64;

    let mut cases = Vec::new();
    let mut record = |case: &str, o: &Outcome| {
        println!(
            "{case:<24} makespan {:>10.3}  t_ckpt {:>8.3}  io hidden/exposed {:>8.3}/{:>8.3}  \
             hidden {:>6.1}%",
            o.makespan,
            o.t_ckpt,
            o.io_hidden,
            o.io_exposed,
            100.0 * hidden_frac(o)
        );
        cases.push(format!(
            "  {{\"case\": \"{case}\", \"virtual_makespan_s\": {:.6}, \"t_ckpt_s\": {:.6}, \
             \"io_hidden_s\": {:.6}, \"io_exposed_s\": {:.6}, \"hidden_io_fraction\": {:.4}, \
             \"err_l1\": {:.17e}}}",
            o.makespan,
            o.t_ckpt,
            o.io_hidden,
            o.io_exposed,
            hidden_frac(o),
            o.err
        ));
    };

    let opl = ClusterProfile::opl();
    let raijin = ClusterProfile::raijin();

    let opl_sync = cr_run(&opl, true, FaultPlan::none());
    let opl_async = cr_run(&opl, false, FaultPlan::none());
    let rai_sync = cr_run(&raijin, true, FaultPlan::none());
    let rai_async = cr_run(&raijin, false, FaultPlan::none());
    // Recovery-drain arm: a rank dies between the first two writes; the
    // restart drains in-flight checkpoints, falls back to the step-8 file
    // and recomputes — the combined solution must not move by one bit.
    let opl_fail = cr_run(&opl, false, FaultPlan::new(vec![(3, 12)]));

    record("opl/sync", &opl_sync);
    record("opl/async", &opl_async);
    record("raijin/sync", &rai_sync);
    record("raijin/async", &rai_async);
    record("opl/async+kill@12", &opl_fail);

    // Eq. 2 with the measured *exposed* write cost: what the schedule
    // optimizer should actually price once writes overlap compute.
    let tio = |o: &Outcome| o.io_exposed / n_writes;
    let eq2 = |o: &Outcome| AppConfig::optimal_checkpoints(o.makespan, tio(o));
    let (tio_sync, tio_async) = (tio(&opl_sync), tio(&opl_async));
    let (c_sync, c_async) = (eq2(&opl_sync), eq2(&opl_async));
    println!(
        "\nEq. 2 on OPL:  exposed T_IO per write  sync {tio_sync:.3}s -> C = {c_sync}   \
         async {tio_async:.3}s -> C = {c_async}"
    );

    let frac = hidden_frac(&opl_async);
    let bitwise_sync_async = opl_sync.err.to_bits() == opl_async.err.to_bits()
        && rai_sync.err.to_bits() == rai_async.err.to_bits();
    let bitwise_recovery = opl_fail.err.to_bits() == opl_async.err.to_bits();
    println!(
        "hidden-io fraction (OPL async) {frac:.3} (required >= 0.5)   bitwise sync==async: \
         {bitwise_sync_async}   bitwise after kill: {bitwise_recovery}"
    );
    assert!(
        frac >= 0.5,
        "async checkpointing must hide >= 50% of checkpoint I/O at OPL T_IO, got {frac:.3}"
    );
    assert!(bitwise_sync_async, "sync and async checkpointing must produce identical solutions");
    assert!(bitwise_recovery, "restart after a kill must reproduce the solution bitwise");
    assert!(
        opl_async.makespan < opl_sync.makespan,
        "hiding T_IO must shorten the OPL makespan: async {} vs sync {}",
        opl_async.makespan,
        opl_sync.makespan
    );

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr5.json".into());
    let json = format!(
        "{{\n \"pr\": 5,\n \"date\": \"{date}\",\n \"note\": \"Sync vs async checkpointing A/B \
         from expt-ckpt (virtual seconds; emulated paper scale, n={N}, 2^{LOG2_STEPS} steps, \
         C={CHECKPOINTS}, {n_grids} grids). Eq. 2 re-derived from the measured exposed write \
         cost: overlap collapses the effective T_IO, moving the optimal C from the paper's \
         disk-limited value toward one checkpoint per period.\",\n \"acceptance\": {{\n  \
         \"hidden_io_fraction_opl_async\": {frac:.4},\n  \
         \"required_min_hidden_io_fraction\": 0.5,\n  \
         \"bitwise_identical_sync_vs_async\": {bitwise_sync_async},\n  \
         \"bitwise_identical_after_midrun_kill\": {bitwise_recovery},\n  \
         \"opl_makespan_sync_s\": {:.6},\n  \"opl_makespan_async_s\": {:.6},\n  \
         \"eq2_exposed_tio_per_write_sync_s\": {tio_sync:.6},\n  \
         \"eq2_exposed_tio_per_write_async_s\": {tio_async:.6},\n  \
         \"eq2_optimal_checkpoints_sync\": {c_sync},\n  \
         \"eq2_optimal_checkpoints_async\": {c_async}\n }},\n \"cases\": [\n{cases}\n ]\n}}\n",
        opl_sync.makespan,
        opl_async.makespan,
        date = utc_today(),
        cases = cases.join(",\n"),
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
