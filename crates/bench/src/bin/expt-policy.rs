//! `expt-policy` — recovery-policy matrix: per-failure-count overhead vs
//! solution error vs virtual makespan across `RecoveryPolicy` × technique
//! (see `ftsg_bench::experiments::policy`). Emits `BENCH_pr7.json`
//! (override the path with `BENCH_OUT`) and `results/policy.csv`.
//!
//! Accepts the standard experiment flags (`--n`, `--l`, `--steps`,
//! `--reps`, `--seed`, `--quick`).

use ftsg_bench::experiments::policy;
use ftsg_bench::table::utc_today;
use ftsg_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let report = policy::run(&opts);
    report.table().emit("results/policy.csv");
    println!(
        "overhead vs respawn at {} failures: substitute {:.2}x, shrink {:.2}x",
        policy::FAILURE_COUNTS.last().unwrap(),
        report.substitute_overhead_ratio,
        report.shrink_overhead_ratio,
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr7.json".into());
    std::fs::write(&out, report.to_json(&utc_today())).expect("write bench json");
    println!("wrote {out}");
}
