//! Virtual-makespan A/B for the nonblocking-overlap PR: the combination
//! phase under the centralized master gather vs the binomial reduction
//! tree over group leaders, and the halo stepper blocking vs overlapped —
//! all in **virtual seconds** from the runtime's cost models, exactly the
//! accounting the application charges (see `ftsg_core::app`). Emits
//! `BENCH_pr3.json` (override with `BENCH_OUT`); if `CRITERION_OUT_JSON`
//! points at an NDJSON file produced by the criterion shim, those entries
//! are merged into the `results` array.

use advect2d::AdvectionProblem;
use ftsg_bench::experiments::overlap::combine_makespan;
use ftsg_core::layout::GroupInfo;
use ftsg_core::psolve::DistributedSolver;
use sparsegrid::LevelPair;
use ulfm_sim::{run, Report, RunConfig};

/// A 2×2 distributed solve, overlapped or blocking stepper.
fn step_report(level: LevelPair, steps: u64, overlapped: bool) -> Report {
    let p = AdvectionProblem::standard();
    let report = run(RunConfig::local(4), move |ctx| {
        let w = ctx.initial_world().unwrap();
        let info = GroupInfo { grid: 0, first: 0, size: 4, px: 2, py: 2 };
        let mut s = DistributedSolver::new(p, level, 1e-4, &info, w.rank());
        for _ in 0..steps {
            if overlapped {
                s.step(ctx, &w).unwrap();
            } else {
                s.step_blocking(ctx, &w).unwrap();
            }
        }
    });
    report.assert_no_app_errors();
    report
}

use ftsg_bench::table::utc_today;

fn main() {
    let mut virt = Vec::new();
    let mut record = |case: &str, makespan: f64| {
        println!("{case:<28} {makespan:>12.6} virtual s");
        virt.push(format!("  {{\"case\": \"{case}\", \"virtual_makespan_s\": {makespan:.6}}}"));
    };

    let mut combine_speedup = |n: u32| {
        let central = combine_makespan(n, true);
        let tree = combine_makespan(n, false);
        record(&format!("combine/central/n{n}"), central);
        record(&format!("combine/tree/n{n}"), tree);
        central / tree
    };
    let s9 = combine_speedup(9);
    let s11 = combine_speedup(11);

    let steps = 16;
    let level = LevelPair::new(9, 9);
    let blocking = step_report(level, steps, false);
    let overlapped = step_report(level, steps, true);
    record("step/blocking/n9_2x2_x16", blocking.makespan);
    record("step/overlapped/n9_2x2_x16", overlapped.makespan);
    let step_speedup = blocking.makespan / overlapped.makespan;
    let hidden_frac = overlapped.hidden_comm_fraction();

    println!("combine speedup  n9  {s9:.2}x   n11 {s11:.2}x   (required >= 1.30x)");
    println!("step speedup     n9  {step_speedup:.2}x   hidden-comm fraction {hidden_frac:.3}");
    assert!(s9 >= 1.3, "combine virtual-makespan speedup at level 9 below 1.3x: {s9:.3}");
    assert!(s11 >= 1.3, "combine virtual-makespan speedup at level 11 below 1.3x: {s11:.3}");
    assert!(hidden_frac > 0.0, "overlapped stepper hid no communication");

    // Merge criterion shim NDJSON entries, if a capture file exists.
    let mut results = Vec::new();
    if let Ok(path) = std::env::var("CRITERION_OUT_JSON") {
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                results.push(format!("  {line}"));
            }
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr3.json".into());
    let json = format!(
        "{{\n \"pr\": 3,\n \"date\": \"{date}\",\n \"note\": \"Virtual-makespan A/B from \
         expt-overlap (runtime cost models; 'central' and 'blocking' re-run the reference \
         paths kept in-tree); 'results' are criterion shim wall-clock entries when captured \
         via CRITERION_OUT_JSON.\",\n \"acceptance\": {{\n  \
         \"combine_virtual_makespan_speedup_level9\": {s9:.3},\n  \
         \"combine_virtual_makespan_speedup_level11\": {s11:.3},\n  \
         \"required_min_combine_speedup\": 1.3,\n  \
         \"step_virtual_makespan_speedup_level9\": {step_speedup:.3},\n  \
         \"hidden_comm_fraction_level9_step\": {hidden_frac:.4},\n  \
         \"steady_state_allocations_per_combine_round\": 0\n }},\n \"virtual\": [\n{virt}\n ],\n \
         \"results\": [\n{results}\n ]\n}}\n",
        date = utc_today(),
        virt = virt.join(",\n"),
        results = results.join(",\n"),
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
