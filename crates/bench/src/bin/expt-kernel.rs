//! `expt-kernel` — kernel vectorization acceptance: per-stencil row
//! GFLOP/s (scalar vs SIMD) and the level-9 steady-state step wall under
//! scalar / SIMD / SIMD+bands (see `ftsg_bench::experiments::kernel`).
//! Emits `BENCH_pr8.json` (override the path with `BENCH_OUT`) and
//! `results/kernel.csv`.
//!
//! Accepts the standard experiment flags; only `--reps` (timing samples,
//! scaled ×10) and `--quick` matter here.

use ftsg_bench::experiments::kernel;
use ftsg_bench::table::utc_today;
use ftsg_bench::Opts;

fn main() {
    let opts = Opts::from_args();
    let iters = if opts.quick { 10 } else { opts.reps.max(3) * 10 };
    let report = kernel::run(".", iters);
    report.table().emit("results/kernel.csv");
    assert!(report.bitwise_ok, "SIMD/banded paths drifted from the scalar reference");
    println!(
        "level-9 step: simd {:.2}x vs scalar, simd+bands {:.2}x vs scalar (isa: {})",
        report.simd_speedup_vs_scalar, report.bands_speedup_vs_scalar, report.isa
    );
    if let Some(v) = report.speedup_vs_pr1_fast {
        println!("vs committed BENCH_pr1 fast path: {v:.2}x (required: 2.0x)");
    }
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pr8.json".into());
    std::fs::write(&out, report.to_json(&utc_today())).expect("write bench json");
    println!("wrote {out}");
}
