//! Regenerate the paper's Table I (ULFM operation wall times with two
//! failed processes, 19–304 cores) with the paper's published values
//! alongside.

use ftsg_bench::{experiments::table1, Opts};

fn main() {
    let opts = Opts::from_args();
    for t in table1::run(&opts) {
        t.emit("results/table1.csv");
    }
}
