//! `expt-3d` — 3D error-vs-lost-grids curves (the paper's Figs. 9/10
//! lifted to d = 3), for the advection–diffusion and elliptic problems
//! under CR / RC / AC.
//!
//! ```text
//! expt-3d [--smoke] [--n N] [--l L] [--steps LOG2] [--reps R]
//!         [--max-lost K] [--seed S] [--out PATH]
//! ```
//!
//! Writes `results/expt3d.csv` and the `BENCH_pr10.json` acceptance
//! artifact (`--out` overrides the JSON path). `--smoke` shrinks the
//! sweep for the CI lane.

use ftsg_bench::experiments::dim3::{self, Dim3Opts};

fn parse_args() -> Dim3Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!(
            "usage: expt-3d [--smoke] [--n N] [--l L] [--steps LOG2] [--reps R] [--max-lost K] \
             [--seed S] [--out PATH]"
        );
        std::process::exit(2);
    };
    let mut o = Dim3Opts::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--smoke" => o.apply_smoke(),
            "--n" => o.n = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--l" => o.l = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => o.log2_steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--reps" => o.reps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-lost" => o.max_lost = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => o.out = take(&mut i),
            _ => usage(),
        }
        i += 1;
    }
    if o.l < 2 || o.n < o.l {
        eprintln!("expt-3d: need 2 <= l <= n (got n={}, l={})", o.n, o.l);
        std::process::exit(2);
    }
    o
}

fn main() {
    let o = parse_args();
    let points = dim3::sweep(&o);
    let t = dim3::table(&o, &points);
    t.emit("results/expt3d.csv");
    let json = dim3::to_json(&o, &points);
    if let Err(e) = std::fs::write(&o.out, &json) {
        eprintln!("expt-3d: cannot write {}: {e}", o.out);
        std::process::exit(1);
    }
    println!("acceptance artifact written to {}", o.out);
    let bad = points.iter().filter(|p| !p.err.is_finite()).count();
    std::process::exit(if bad == 0 { 0 } else { 1 });
}
