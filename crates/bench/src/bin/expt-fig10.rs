//! Regenerate the paper's Fig. 10 (average approximation error of the
//! combined solution vs number of lost grids).

use ftsg_bench::{experiments::fig10, Opts};

fn main() {
    let opts = Opts::from_args();
    for t in fig10::run(&opts) {
        t.emit("results/fig10.csv");
    }
}
