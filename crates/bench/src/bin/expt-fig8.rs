//! Regenerate the paper's Fig. 8 (failed-list creation and communicator
//! reconstruction times vs cores, 1 and 2 failures).

use ftsg_bench::{experiments::fig8, Opts};

fn main() {
    let opts = Opts::from_args();
    for t in fig8::run(&opts) {
        t.emit("results/fig8.csv");
    }
}
