//! `expt-regress` — bench-regression gate: re-measure the level-9 step
//! speedup, the n9 combine-tree speedup and the ~1k-rank pooled scale
//! wall, and fail (exit 1) if any slips more than 15% against the
//! committed `BENCH_pr1.json` / `BENCH_pr3.json` / `BENCH_pr6.json`
//! baselines (see `ftsg_bench::experiments::regress`).
//!
//! ```text
//! expt-regress [--dir PATH] [--iters K]
//! ```
//!
//! `--dir` points at the directory holding the committed baselines
//! (default `.`, the repo root); `--iters` sets the timed repetitions per
//! wall-clock measurement (default 30, median taken).

use ftsg_bench::experiments::regress;

fn usage() -> ! {
    eprintln!("usage: expt-regress [--dir PATH] [--iters K]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = ".".to_string();
    let mut iters = 30usize;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--dir" => dir = take(&mut i),
            "--iters" => iters = take(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    match regress::run(&dir, iters) {
        Ok(report) => {
            report.table().emit("results/regress.csv");
            if report.all_pass() {
                println!(
                    "regression gate: PASS ({} gates within {:.0}%)",
                    report.gates.len(),
                    report.tolerance * 100.0
                );
            } else {
                for g in report.gates.iter().filter(|g| !g.pass) {
                    eprintln!(
                        "regression gate: {} regressed beyond {:.0}%: baseline {:.4} vs fresh \
                         {:.4} ({})",
                        g.name,
                        report.tolerance * 100.0,
                        g.baseline,
                        g.fresh,
                        g.source
                    );
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("expt-regress: {e}");
            std::process::exit(2);
        }
    }
}
