//! Run every paper experiment in sequence and save all CSVs under
//! `results/`. `--quick` smoke-tests the whole harness in seconds.

use ftsg_bench::{experiments, Opts};

fn main() {
    let opts = Opts::from_args();
    println!(
        "ftsg experiment suite: n={}, l={}, 2^{} steps, scales {:?}, {} reps{}\n",
        opts.n,
        opts.l,
        opts.log2_steps,
        opts.scales,
        opts.reps,
        if opts.quick { " (quick)" } else { "" }
    );

    let t0 = std::time::Instant::now();
    for t in experiments::fig8::run(&opts) {
        t.emit("results/fig8.csv");
    }
    for t in experiments::table1::run(&opts) {
        t.emit("results/table1.csv");
    }
    let f9 = experiments::fig9::run(&opts);
    f9[0].emit("results/fig9a.csv");
    f9[1].emit("results/fig9b.csv");
    for t in experiments::fig10::run(&opts) {
        t.emit("results/fig10.csv");
    }
    let f11 = experiments::fig11::run(&opts);
    f11[0].emit("results/fig11a.csv");
    f11[1].emit("results/fig11b.csv");
    let abl = experiments::ablation::run(&opts);
    abl[0].emit("results/ablation_respawn.csv");
    abl[1].emit("results/ablation_ulfm.csv");
    abl[2].emit("results/ablation_buddy.csv");
    println!("all experiments finished in {:.1?} (real time)", t0.elapsed());
}
