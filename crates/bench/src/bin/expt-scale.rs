//! `expt-scale` — re-run a Fig-8-style failure sweep at ~1k/10k/100k
//! simulated ranks and compare the pooled cooperative scheduler against
//! the legacy thread-per-rank runtime (wall-clock per simulated step,
//! peak RSS, largest launchable world). Emits `BENCH_pr6.json`.
//!
//! ```text
//! expt-scale [--smoke] [--threads-per-rank] [--scales a,b,c] [--n N]
//!            [--steps LOG2] [--failures F] [--seed S] [--workers W]
//!            [--stack-kb K] [--timeout-secs T] [--out PATH]
//! ```
//!
//! Each configuration runs in a child re-exec of this binary (internal
//! `--child` flag) so peak RSS is per-configuration and a thread-mode
//! attempt that cannot finish is recorded as a DNF instead of hanging
//! the sweep.

use std::time::Duration;

use ftsg_bench::experiments::scale::{orchestrate, run_child, ChildSpec, ScaleOpts};
use ftsg_core::RecoveryPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: expt-scale [--smoke] [--threads-per-rank] [--scales a,b,c] [--n N] \
         [--steps LOG2] [--failures F] [--seed S] [--workers W] [--stack-kb K] \
         [--policy respawn|shrink|substitute|defer] [--timeout-secs T] [--out PATH]"
    );
    std::process::exit(2);
}

fn child_main(args: &[String]) -> ! {
    let mut spec = ChildSpec {
        n: 9,
        s: 53,
        log2_steps: 4,
        failures: 1,
        seed: 2014,
        threads: false,
        workers: 0,
        stack_kb: 1024,
        policy: RecoveryPolicy::Respawn,
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--child" => {}
            "--n" => spec.n = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--s" => spec.s = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => spec.log2_steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--failures" => spec.failures = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => spec.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mode" => spec.threads = take(&mut i) == "threads",
            "--workers" => spec.workers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--stack-kb" => spec.stack_kb = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                spec.policy = RecoveryPolicy::from_label(&take(&mut i)).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
        i += 1;
    }
    println!("{}", run_child(&spec));
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--child") {
        child_main(&args);
    }
    let mut o = ScaleOpts::default();
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--threads-per-rank" => o.threads_only = true,
            "--scales" => {
                o.scales =
                    take(&mut i).split(',').map(|s| s.parse().unwrap_or_else(|_| usage())).collect()
            }
            "--n" => o.n = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => o.log2_steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--failures" => o.failures = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => o.workers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--stack-kb" => o.stack_kb = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                o.policy = RecoveryPolicy::from_label(&take(&mut i)).unwrap_or_else(|| usage())
            }
            "--timeout-secs" => {
                o.timeout = Duration::from_secs(take(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--out" => o.out = take(&mut i),
            _ => usage(),
        }
        i += 1;
    }
    if smoke {
        o.apply_smoke();
    }
    std::process::exit(orchestrate(&o));
}
