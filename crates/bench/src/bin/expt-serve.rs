//! `expt-serve` — throughput sweep, 10k-job soak with seeded panic
//! injection, and the regression-gate measurement of the multi-tenant
//! campaign service. Emits `BENCH_pr9.json`.
//!
//! ```text
//! expt-serve [--smoke] [--workers a,b,c] [--sweep-jobs N] [--soak-jobs N]
//!            [--soak-workers W] [--sabotage K] [--seed S] [--out PATH]
//! ```

use ftsg_bench::experiments::serve::{run, ServeOpts};

fn usage() -> ! {
    eprintln!(
        "usage: expt-serve [--smoke] [--workers a,b,c] [--sweep-jobs N] [--soak-jobs N] \
         [--soak-workers W] [--sabotage K] [--seed S] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = ServeOpts::default();
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                o.workers_sweep =
                    take(&mut i).split(',').map(|s| s.parse().unwrap_or_else(|_| usage())).collect()
            }
            "--sweep-jobs" => o.sweep_jobs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--soak-jobs" => o.soak_jobs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--soak-workers" => o.soak_workers = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--sabotage" => o.sabotage = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => o.out = take(&mut i),
            _ => usage(),
        }
        i += 1;
    }
    if smoke {
        o.apply_smoke();
    }
    std::process::exit(run(&o));
}
